//! Trace the MESI + turn-off state machine of the paper's Fig. 2
//! through the scenarios §III discusses, printing each transition.
//!
//! ```text
//! cargo run --example coherence_trace
//! ```

use cmp_leakage::coherence::bus::SnoopKind;
use cmp_leakage::coherence::mesi::{fill_state, step, Event, MesiState, SnoopContext};

struct TracedLine {
    state: MesiState,
    name: &'static str,
}

impl TracedLine {
    fn new(name: &'static str, state: MesiState) -> Self {
        println!("[{name}] starts in {}", state.label());
        Self { state, name }
    }

    fn apply(&mut self, what: &str, event: Event, ctx: SnoopContext) {
        let t = step(self.state, event, ctx);
        let mut actions = Vec::new();
        if t.supply_data {
            actions.push("flush data");
        }
        if t.writeback {
            actions.push("write back to memory");
        }
        if t.invalidate_upper {
            actions.push("invalidate L1 copy");
        }
        if t.assert_shared {
            actions.push("assert shared wire");
        }
        if t.gate {
            actions.push("GATE (power off)");
        }
        if t.protocol_invalidation {
            actions.push("protocol invalidation (gate if Protocol technique)");
        }
        if t.deferred {
            actions.push("DEFERRED (wait for stationary state)");
        }
        let next = t.next.unwrap_or(self.state);
        println!(
            "[{}] {:24} {} -> {}   {}",
            self.name,
            what,
            self.state.label(),
            next.label(),
            if actions.is_empty() { "-".to_string() } else { actions.join(", ") }
        );
        self.state = next;
    }
}

fn main() {
    let alone = SnoopContext { upper_has_copy: false, pending_write: false };
    let with_l1 = SnoopContext { upper_has_copy: true, pending_write: false };

    println!("=== scenario 1: clean line decays (free turn-off) ===");
    let mut a = TracedLine::new("core0/L2", fill_state(false, false)); // E after read miss
    a.apply("local read", Event::PrRead, alone);
    a.apply("decay turn-off", Event::TurnOff, alone);

    println!("\n=== scenario 2: Modified line decays with an L1 copy (the costly path) ===");
    let mut b = TracedLine::new("core1/L2", fill_state(false, true)); // M after write miss
    b.apply("local write", Event::PrWrite, with_l1);
    b.apply("decay turn-off", Event::TurnOff, with_l1);
    b.apply("turn-off again (busy)", Event::TurnOff, with_l1);
    b.apply("L1 invalidation acks", Event::Grant, alone);

    println!("\n=== scenario 3: protocol invalidation feeds the Protocol technique ===");
    let mut c = TracedLine::new("core2/L2", MesiState::Shared);
    c.apply("snoop BusRd", Event::Snoop(SnoopKind::BusRd), alone);
    c.apply("snoop BusRdX (other writes)", Event::Snoop(SnoopKind::BusRdX), alone);

    println!("\n=== scenario 4: dirty owner services a read, then an upgrade ===");
    let mut d = TracedLine::new("core3/L2", MesiState::Modified);
    d.apply("snoop BusRd", Event::Snoop(SnoopKind::BusRd), alone);
    d.apply("local write (needs bus)", Event::PrWrite, alone);

    println!("\nLegend: M/E/S/I as in MESI; TC/TD = Transient Clean/Dirty (line is");
    println!("being invalidated in the upper level before it may be gated).");
}
