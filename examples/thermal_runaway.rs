//! The leakage–temperature feedback loop: why the paper pairs its decay
//! evaluation with a temperature-dependent leakage model.
//!
//! Leakage grows exponentially with temperature; dissipated leakage heats
//! the chip, which raises leakage again. This example solves the fixed
//! point for an always-on cache and for a decayed cache at several
//! occupancies, showing the super-linear saving gating buys.
//!
//! ```text
//! cargo run --release --example thermal_runaway
//! ```

use cmp_leakage::coherence::Technique;
use cmp_leakage::power::{LeakageModel, PowerParams, ThermalModel};

fn main() {
    let params = PowerParams::default();
    let n_cores = 4;
    let lines_total = 4 * 16384u64; // 4 MB total L2
    let model = LeakageModel::new(params, Technique::Decay { decay_cycles: 1 << 19 }, lines_total);

    // Fixed non-L2 power heating the core blocks (watts per block).
    let core_power_w = 0.5;

    println!("4 MB total L2, {} lines, ambient {:.0} °C", lines_total, params.ambient_celsius);
    println!(
        "\n{:>12} {:>14} {:>14} {:>16}",
        "occupancy", "L2 temp (°C)", "leak (mW)", "vs linear scaling"
    );

    let mut full_leak_mw = 0.0;
    for occ in [1.0f64, 0.5, 0.25, 0.1, 0.01] {
        // Solve the leakage<->temperature fixed point by damped
        // iteration: temperature determines leakage determines block
        // power determines steady-state temperature.
        let thermal = ThermalModel::new(params, n_cores);
        let mut t_l2 = params.ambient_celsius;
        let mut leak_w = 0.0;
        for _ in 0..40 {
            let powered_line_cycles = (lines_total as f64 * occ) as u64; // per cycle
            let pj_per_cycle = model.l2_interval_pj(powered_line_cycles, t_l2);
            leak_w = params.pj_per_cycles_to_watts(pj_per_cycle, 1);
            let mut powers = vec![core_power_w; n_cores];
            powers.extend(vec![leak_w / n_cores as f64; n_cores]);
            let ss = thermal.steady_state(&powers);
            let new_t = ss[n_cores..].iter().sum::<f64>() / n_cores as f64;
            // Damping keeps the iteration stable even for leaky corners.
            t_l2 = 0.5 * t_l2 + 0.5 * new_t;
        }
        if occ == 1.0 {
            full_leak_mw = leak_w * 1e3;
        }
        let linear = full_leak_mw * occ;
        println!(
            "{:>11.0}% {:>14.1} {:>14.1} {:>15.1}%",
            occ * 100.0,
            t_l2,
            leak_w * 1e3,
            if linear > 0.0 { (leak_w * 1e3) / linear * 100.0 } else { 0.0 }
        );
    }

    println!("\nGating saves *more* than linearly: fewer powered lines also run");
    println!("cooler, and cooler SRAM leaks exponentially less (Liao et al.).");
}
