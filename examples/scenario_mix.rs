//! Heterogeneous multiprogrammed scenarios + trace record/replay.
//!
//! Runs the three curated workload mixes under Protocol and Decay,
//! printing the per-core breakdown only heterogeneous runs expose, then
//! records one mix to a trace file and verifies that replaying it is
//! bit-identical to live generation.
//!
//! ```text
//! cargo run --release --example scenario_mix
//! ```

use cmp_leakage::core::metrics::TechniqueMetrics;
use cmp_leakage::core::{run_experiment, ExperimentConfig, Scenario, Technique};
use cmp_leakage::workloads::ScenarioSpec;

fn main() {
    // CMPLEAK_INSTR shrinks the budget for CI smoke runs.
    let instr: u64 =
        std::env::var("CMPLEAK_INSTR").ok().and_then(|v| v.parse().ok()).unwrap_or(400_000);

    for mix in ScenarioSpec::paper_mixes() {
        let mut cfg =
            ExperimentConfig::paper_scenario(Scenario::Mix(mix.clone()), Technique::Baseline, 4);
        cfg.instructions_per_core = instr;
        let base = run_experiment(&cfg);
        println!("\nscenario {} (4 MB total L2, {instr} instr/core):", mix.name);
        println!("  per-core breakdown (baseline):");
        for (c, name) in base.stats.core_workloads.iter().enumerate() {
            let cs = &base.stats.cores[c];
            println!(
                "    core {c}: {:10} {:>8} loads {:>8} stores  {:>7} window-stall cycles",
                name, cs.loads, cs.stores, cs.window_stall_cycles
            );
        }
        for technique in [Technique::Protocol, Technique::Decay { decay_cycles: 128 * 1024 }] {
            cfg.technique = technique;
            let r = run_experiment(&cfg);
            let m = TechniqueMetrics::compare(&base, &r);
            println!(
                "  {:10} occupation {:5.1}%  energy −{:.1}%  IPC loss {:.2}%",
                r.technique,
                m.occupation * 100.0,
                m.energy_reduction * 100.0,
                m.ipc_loss * 100.0
            );
        }
    }

    // Record → replay round trip on one mix.
    let scenario = Scenario::Mix(ScenarioSpec::stream_revisit());
    let path = std::env::temp_dir().join("scenario_mix_example.cmpt");
    scenario.record(4, 42, instr).save(&path).expect("trace written");
    println!("\nrecorded {} -> {}", scenario.label(), path.display());

    let mut live_cfg =
        ExperimentConfig::paper_scenario(scenario, Technique::Decay { decay_cycles: 64 * 1024 }, 4);
    live_cfg.instructions_per_core = instr;
    let live = run_experiment(&live_cfg);

    let mut replay_cfg = live_cfg.clone();
    replay_cfg.scenario = Scenario::from_trace(&path).expect("trace readable");
    let replay = run_experiment(&replay_cfg);

    assert_eq!(live.stats, replay.stats, "replay must be bit-identical");
    assert_eq!(live.power, replay.power, "energy must be bit-identical");
    println!(
        "replay verified bit-identical: {} cycles, {:.3} µJ",
        replay.stats.cycles,
        replay.power.energy.total_pj() / 1e6
    );
    std::fs::remove_file(&path).ok();
}
