//! Quickstart: simulate a 4-core CMP with a decaying private L2 and
//! print the paper's key metrics against the always-on baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cmp_leakage::core::metrics::TechniqueMetrics;
use cmp_leakage::core::{run_experiment, ExperimentConfig, Technique, WorkloadSpec};

fn main() {
    // The system of the paper's Fig. 1: four cores, private write-through
    // L1s, private inclusive snoopy-MESI L2s (4 MB total), shared bus.
    let mut cfg = ExperimentConfig::paper(
        WorkloadSpec::water_ns(),
        Technique::Baseline,
        4, // MB of total L2
    );
    // CMPLEAK_INSTR shrinks the budget for CI smoke runs.
    cfg.instructions_per_core =
        std::env::var("CMPLEAK_INSTR").ok().and_then(|v| v.parse().ok()).unwrap_or(1_000_000);

    println!("simulating baseline (always-on L2) ...");
    let baseline = run_experiment(&cfg);
    println!(
        "  {} cycles, IPC {:.2}, L2 miss rate {:.3}, AMAT {:.1} cycles",
        baseline.stats.cycles,
        baseline.stats.ipc(),
        baseline.stats.l2_miss_rate(),
        baseline.stats.amat()
    );
    println!(
        "  system energy {:.2} µJ, avg L2 temperature {:.1} °C",
        baseline.power.energy.total_pj() / 1e6,
        baseline.power.avg_l2_temp_c
    );

    for technique in [
        Technique::Protocol,
        Technique::Decay { decay_cycles: 128 * 1024 },
        Technique::SelectiveDecay { decay_cycles: 128 * 1024 },
    ] {
        cfg.technique = technique;
        let r = run_experiment(&cfg);
        let m = TechniqueMetrics::compare(&baseline, &r);
        println!("\ntechnique: {}", r.technique);
        println!("  L2 occupation        {:6.1}%  (baseline: 100%)", m.occupation * 100.0);
        println!("  energy reduction     {:6.1}%", m.energy_reduction * 100.0);
        println!("  IPC loss             {:6.2}%", m.ipc_loss * 100.0);
        println!("  memory bandwidth     {:+6.1}%", m.bandwidth_increase * 100.0);
        println!("  AMAT                 {:+6.1}%", m.amat_increase * 100.0);
    }

    println!("\n(the `repro` binary regenerates every figure of the paper: `cargo run --release -p cmpleak-bench --bin repro -- all`)");
}
