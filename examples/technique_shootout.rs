//! Compare all seven technique configurations of the paper on one
//! benchmark, across two cache sizes — a miniature of Figures 3–5.
//!
//! ```text
//! cargo run --release --example technique_shootout [benchmark]
//! ```
//! Benchmarks: mpeg2enc, mpeg2dec, facerec, WATER-NS, FMM, VOLREND.

use cmp_leakage::core::adaptive::relative_edp;
use cmp_leakage::core::metrics::TechniqueMetrics;
use cmp_leakage::core::{run_experiment, ExperimentConfig, Technique, WorkloadSpec};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "FMM".into());
    let spec = WorkloadSpec::by_name(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown benchmark {name}; try FMM, WATER-NS, VOLREND, mpeg2enc, mpeg2dec, facerec"
        );
        std::process::exit(2);
    });
    println!("benchmark: {} ({:?})", spec.name, spec.class);

    for total_mb in [1usize, 4] {
        let mut cfg = ExperimentConfig::paper(spec, Technique::Baseline, total_mb);
        // CMPLEAK_INSTR shrinks the budget for CI smoke runs.
        cfg.instructions_per_core =
            std::env::var("CMPLEAK_INSTR").ok().and_then(|v| v.parse().ok()).unwrap_or(1_500_000);
        let base = run_experiment(&cfg);
        println!(
            "\n[{total_mb} MB total L2]  baseline: IPC {:.2}, energy {:.2} µJ",
            base.stats.ipc(),
            base.power.energy.total_pj() / 1e6
        );
        println!(
            "  {:>14} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "technique", "occ", "energy", "ipc", "bw", "edp"
        );
        for technique in Technique::paper_set() {
            cfg.technique = technique;
            let r = run_experiment(&cfg);
            let m = TechniqueMetrics::compare(&base, &r);
            println!(
                "  {:>14} {:>7.1}% {:>7.1}% {:>7.2}% {:>+7.1}% {:>8.3}",
                r.technique,
                m.occupation * 100.0,
                m.energy_reduction * 100.0,
                m.ipc_loss * 100.0,
                m.bandwidth_increase * 100.0,
                relative_edp(&m)
            );
        }
    }
    println!("\ncolumns: occupation, energy reduction, IPC loss, memory-bandwidth increase, relative energy-delay product (<1 beats baseline)");
}
