//! # cmp-leakage
//!
//! A reproduction, as a production-quality Rust workspace, of
//! *Monchiero, Canal, González — "Using Coherence Information and Decay
//! Techniques to Optimize L2 Cache Leakage in CMPs"* (ICPP 2009).
//!
//! The paper proposes three Gated-Vdd leakage-saving techniques for the
//! private, inclusive, snoopy-MESI L2 caches of a chip multiprocessor:
//! **Protocol** (gate lines the coherence protocol invalidates anyway),
//! **Decay** (fixed-interval cache decay adapted to a coherent L2 via
//! the TC/TD transient states of its Fig. 2), and **Selective Decay**
//! (decay armed only on transitions into clean states, so Modified
//! lines never pay the write-back + L1-invalidate turn-off cost).
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`mem`] | `cmpleak-mem` | tag arrays, MSHRs, write buffers, decay counters |
//! | [`coherence`] | `cmpleak-coherence` | MESI+TC/TD (Fig. 2), Table I, MOESI, techniques |
//! | [`cpu`] | `cmpleak-cpu` | core timing model, trace/workload contract |
//! | [`workloads`] | `cmpleak-workloads` | synthetic SPLASH-2/ALPbench-class generators, scenario mixes |
//! | [`trace`] | `cmpleak-trace` | record/replay/inspect binary reference traces |
//! | [`system`] | `cmpleak-system` | the cycle-level CMP simulator (Fig. 1) |
//! | [`power`] | `cmpleak-power` | energy, thermal RC model, Liao-style leakage |
//! | [`store`] | `cmpleak-store` | content-addressed persistent result store |
//! | [`core`] | `cmpleak-core` | experiments, metrics, sweeps, figure builders |
//!
//! ## Quickstart
//!
//! Run one experiment and compare a technique against the baseline:
//!
//! ```
//! use cmp_leakage::core::{run_experiment, ExperimentConfig, Technique, WorkloadSpec};
//! use cmp_leakage::core::metrics::TechniqueMetrics;
//!
//! let mut cfg = ExperimentConfig::paper(
//!     WorkloadSpec::mpeg2dec(),
//!     Technique::Baseline,
//!     1, // 1 MB total L2
//! );
//! cfg.instructions_per_core = 50_000; // keep the doc test quick
//! let baseline = run_experiment(&cfg);
//!
//! cfg.technique = Technique::SelectiveDecay { decay_cycles: 64 * 1024 };
//! let sd = run_experiment(&cfg);
//!
//! let m = TechniqueMetrics::compare(&baseline, &sd);
//! assert!(m.occupation < 1.0, "some lines were gated");
//! assert!(m.ipc_loss < 0.2, "selective decay is performance-friendly");
//! ```
//!
//! Reproduce a whole paper figure (reduced scale shown; the `repro`
//! binary runs the full grid):
//!
//! ```
//! use cmp_leakage::core::figures::FigureSet;
//! use cmp_leakage::core::sweep::{run_sweep, SweepConfig};
//!
//! let results = run_sweep(&SweepConfig::smoke(30_000));
//! let figs = FigureSet::new(&results);
//! println!("{}", figs.fig5a()); // energy reduction table
//! ```

#![forbid(unsafe_code)]

pub use cmpleak_coherence as coherence;
pub use cmpleak_core as core;
pub use cmpleak_cpu as cpu;
pub use cmpleak_mem as mem;
pub use cmpleak_power as power;
pub use cmpleak_store as store;
pub use cmpleak_system as system;
pub use cmpleak_trace as trace;
pub use cmpleak_workloads as workloads;

/// Workspace version, for reports.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        // Types from different crates must interoperate through the
        // facade paths.
        let spec = crate::workloads::WorkloadSpec::fmm();
        let tech = crate::coherence::Technique::Protocol;
        let cfg = crate::core::ExperimentConfig::paper(spec, tech, 1);
        assert_eq!(cfg.n_cores, 4);
        assert!(!crate::VERSION.is_empty());
    }
}
