//! Cross-crate invariants of the simulated system, checked end-to-end
//! on randomized multi-core workloads: inclusion accounting, occupancy
//! bookkeeping, energy-model consistency, determinism.

use cmp_leakage::coherence::Technique;
use cmp_leakage::cpu::{ReplayWorkload, TraceOp, Workload};
use cmp_leakage::power::{evaluate_energy, PowerParams};
use cmp_leakage::system::{run_simulation, CmpConfig, SimStats};
use cmp_leakage::workloads::Xoshiro256pp;

fn random_workloads(seed: u64, n_cores: usize, shared_lines: u64) -> Vec<Box<dyn Workload>> {
    (0..n_cores)
        .map(|c| {
            let mut rng = Xoshiro256pp::seeded(seed ^ ((c as u64) << 32));
            let ops: Vec<TraceOp> = (0..4000)
                .map(|_| {
                    let r = rng.below(100);
                    let addr = if rng.chance(0.08) {
                        rng.below(shared_lines) * 64 // contended segment
                    } else {
                        ((c as u64 + 1) << 28) + rng.below(2048) * 64
                    };
                    if r < 55 {
                        TraceOp::Exec((1 + rng.below(6)) as u32)
                    } else if r < 80 {
                        TraceOp::Load(addr)
                    } else {
                        TraceOp::Store(addr)
                    }
                })
                .collect();
            Box::new(ReplayWorkload::cycle(ops)) as Box<dyn Workload>
        })
        .collect()
}

fn run(technique: Technique, seed: u64) -> SimStats {
    let mut cfg =
        CmpConfig { n_cores: 4, instructions_per_core: 60_000, technique, ..CmpConfig::default() };
    cfg.l2.size_bytes = 128 * 1024;
    run_simulation(cfg, random_workloads(seed, 4, 512))
}

#[test]
fn every_run_drains_completely() {
    for (i, technique) in [
        Technique::Baseline,
        Technique::Protocol,
        Technique::Decay { decay_cycles: 8 * 1024 },
        Technique::SelectiveDecay { decay_cycles: 8 * 1024 },
    ]
    .into_iter()
    .enumerate()
    {
        let stats = run(technique, 1000 + i as u64);
        assert_eq!(stats.instructions, 240_000, "{technique:?} must drain");
        assert!(stats.cycles < 100_000_000, "{technique:?} finished before the cap");
    }
}

#[test]
fn occupancy_is_bounded_and_ordered() {
    let base = run(Technique::Baseline, 7);
    let prot = run(Technique::Protocol, 7);
    let decay = run(Technique::Decay { decay_cycles: 8 * 1024 }, 7);
    assert!((base.occupation_rate() - 1.0).abs() < 1e-12);
    assert!(prot.occupation_rate() <= 1.0 && prot.occupation_rate() > 0.0);
    assert!(decay.occupation_rate() < prot.occupation_rate());
}

#[test]
fn trace_totals_are_conserved() {
    for technique in [Technique::Baseline, Technique::Decay { decay_cycles: 16 * 1024 }] {
        let stats = run(technique, 99);
        let cyc: u64 = stats.trace.iter().map(|t| t.cycles).sum();
        let instr: u64 = stats.trace.iter().map(|t| t.instructions).sum();
        let on: u64 = stats.trace.iter().map(|t| t.l2_powered_line_cycles).sum();
        let mem: u64 = stats.trace.iter().map(|t| t.mem_bytes).sum();
        assert_eq!(cyc, stats.cycles);
        assert_eq!(instr, stats.instructions);
        assert_eq!(on, stats.l2_on_line_cycles);
        assert_eq!(mem, stats.mem_bytes);
    }
}

#[test]
fn l1_never_outlives_l2_lines_under_gating() {
    // Indirect inclusion check: with an aggressive decay every L2
    // turn-off of a line with an L1 copy must back-invalidate it, so the
    // number of technique-induced L1 invalidations must equal or exceed
    // the dirty decay turn-offs that reported an upper copy. We assert
    // the accounting is active on both sides.
    let stats = run(Technique::Decay { decay_cycles: 4 * 1024 }, 3);
    let decays: u64 = stats.l2.iter().map(|s| s.turnoffs_decay).sum();
    assert!(decays > 0, "aggressive decay must fire");
    let back: u64 = stats.l1.iter().map(|s| s.back_invalidations).sum();
    assert!(back > 0, "inclusion must be enforced");
    assert!(
        stats.upper_invalidations >= stats.l1.iter().map(|s| s.technique_back_invalidations).sum()
    );
}

#[test]
fn memory_traffic_accounts_fills_and_writebacks() {
    let stats = run(Technique::Baseline, 11);
    let expected = (stats.mem_fills + stats.mem_writebacks) * 64;
    assert_eq!(stats.mem_bytes, expected);
}

#[test]
fn energy_breakdown_components_are_nonnegative_and_sum() {
    let stats = run(Technique::Decay { decay_cycles: 8 * 1024 }, 5);
    let report = evaluate_energy(
        PowerParams::default(),
        Technique::Decay { decay_cycles: 8 * 1024 },
        4,
        128 * 1024,
        &stats,
    );
    let e = report.energy;
    for (name, v) in [
        ("core", e.core_dynamic_pj),
        ("l1", e.l1_dynamic_pj),
        ("l2dyn", e.l2_dynamic_pj),
        ("bus", e.bus_dynamic_pj),
        ("l2leak", e.l2_leakage_pj),
        ("other", e.other_leakage_pj),
        ("decay_dyn", e.decay_dynamic_pj),
        ("decay_leak", e.decay_leakage_pj),
    ] {
        assert!(v >= 0.0, "{name} negative: {v}");
    }
    let sum = e.core_dynamic_pj
        + e.l1_dynamic_pj
        + e.l2_dynamic_pj
        + e.bus_dynamic_pj
        + e.l2_leakage_pj
        + e.other_leakage_pj
        + e.decay_dynamic_pj
        + e.decay_leakage_pj;
    assert!((sum - e.total_pj()).abs() < 1e-6);
    assert!(report.peak_temp_c >= PowerParams::default().ambient_celsius);
}

#[test]
fn identical_configs_are_bit_deterministic() {
    let a = run(Technique::SelectiveDecay { decay_cycles: 8 * 1024 }, 77);
    let b = run(Technique::SelectiveDecay { decay_cycles: 8 * 1024 }, 77);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.l2_on_line_cycles, b.l2_on_line_cycles);
    assert_eq!(a.mem_bytes, b.mem_bytes);
    assert_eq!(a.load_latency_sum, b.load_latency_sum);
    for (x, y) in a.l2.iter().zip(&b.l2) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(Technique::Baseline, 1);
    let b = run(Technique::Baseline, 2);
    assert_ne!(
        (a.cycles, a.mem_bytes),
        (b.cycles, b.mem_bytes),
        "distinct workload seeds must not collide"
    );
}
