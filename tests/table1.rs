//! Integration test for Table I of the paper: the simulated multiprocessor
//! system must behave exactly as the "Multiprocessor – private L2, L1
//! Write-Through" column prescribes, and the legality module must agree
//! with the MESI machine's actions.

use cmp_leakage::coherence::legality::{turn_off_requirements, LineDirtiness, SystemKind};
use cmp_leakage::coherence::mesi::{step, Event, MesiState, SnoopContext};
use cmp_leakage::coherence::Technique;
use cmp_leakage::cpu::{ReplayWorkload, TraceOp, Workload};
use cmp_leakage::system::{run_simulation, CmpConfig};

/// The legality table and the Fig. 2 machine must prescribe the same
/// actions for the multiprocessor column.
#[test]
fn legality_matches_the_state_machine() {
    let multi = SystemKind::MultiprocessorWriteThroughL1;

    // Clean line (Shared/Exclusive): turn off, no write-back.
    let clean = turn_off_requirements(multi, LineDirtiness::Clean);
    for s in [MesiState::Shared, MesiState::Exclusive] {
        let t = step(s, Event::TurnOff, SnoopContext::default());
        assert_eq!(t.writeback, clean.requires_writeback, "{s:?}");
        assert!(t.gate, "{s:?} must gate");
    }

    // Dirty line (Modified): write back, and with an L1 copy present the
    // upper level must be invalidated before gating.
    let dirty = turn_off_requirements(multi, LineDirtiness::Dirty);
    let ctx = SnoopContext { upper_has_copy: true, pending_write: false };
    let t = step(MesiState::Modified, Event::TurnOff, ctx);
    assert_eq!(t.writeback, dirty.requires_writeback);
    assert_eq!(t.invalidate_upper, dirty.requires_upper_invalidate);
    assert!(!t.gate, "gating waits for the Grant");
}

/// End-to-end: decaying a dirty line in the full system generates the
/// write-back and the L1 back-invalidation Table I requires; decaying
/// clean lines does not.
#[test]
fn simulated_system_obeys_the_dirty_cell() {
    let mut cfg = CmpConfig {
        n_cores: 2,
        instructions_per_core: 60_000,
        technique: Technique::Decay { decay_cycles: 4096 },
        ..CmpConfig::default()
    };
    cfg.l2.size_bytes = 64 * 1024;

    // Core 0 writes a region then moves on (dirty lines decay);
    // core 1 only reads its own region (clean lines decay).
    let writer: Vec<TraceOp> = (0..64u64)
        .flat_map(|i| [TraceOp::Exec(2), TraceOp::Store((1 << 30) + i * 64)])
        .chain((0..512).flat_map(|i| [TraceOp::Exec(4), TraceOp::Load((1 << 31) + i * 64)]))
        .collect();
    let reader: Vec<TraceOp> =
        (0..512u64).flat_map(|i| [TraceOp::Exec(4), TraceOp::Load((1 << 32) + i * 64)]).collect();
    let wls: Vec<Box<dyn Workload>> =
        vec![Box::new(ReplayWorkload::cycle(writer)), Box::new(ReplayWorkload::cycle(reader))];
    let stats = run_simulation(cfg, wls);

    // Writer core: dirty decays happened and were written back.
    assert!(stats.l2[0].dirty_decay_turnoffs > 0, "dirty lines must decay");
    assert!(stats.mem_writebacks > 0, "Table I: dirty turn-off writes back");
    // Reader core: decays happened with no write-backs from that cache.
    assert!(stats.l2[1].turnoffs_decay > 0, "clean lines must decay");
    assert_eq!(stats.l2[1].writebacks, 0, "clean turn-offs never write back");
}

/// The pending-write condition: a turned-off line must never lose a
/// write. We hammer one line with stores while using an aggressive decay
/// and check the system still drains (no lost update deadlock) and the
/// line's stores all reached the L2.
#[test]
fn pending_writes_are_never_lost_to_gating() {
    let mut cfg = CmpConfig {
        n_cores: 2,
        instructions_per_core: 30_000,
        technique: Technique::Decay { decay_cycles: 1024 }, // very aggressive
        ..CmpConfig::default()
    };
    cfg.l2.size_bytes = 64 * 1024;

    let ops: Vec<TraceOp> =
        (0..16u64).flat_map(|i| [TraceOp::Exec(8), TraceOp::Store((1 << 30) + i * 64)]).collect();
    let wls: Vec<Box<dyn Workload>> =
        (0..2).map(|_| Box::new(ReplayWorkload::cycle(ops.clone())) as Box<dyn Workload>).collect();
    let stats = run_simulation(cfg, wls);
    assert_eq!(stats.instructions, 60_000, "system drained completely");
    let stores_issued: u64 = stats.l1.iter().map(|l| l.stores).sum();
    assert!(stores_issued > 0);
}

/// Uniprocessor rows exist for completeness and differ from the
/// multiprocessor row only in the upper-invalidate requirement.
#[test]
fn uniprocessor_rows_never_need_upper_invalidation() {
    for kind in [SystemKind::UniprocessorWriteBackL1, SystemKind::UniprocessorWriteThroughL1] {
        for dirt in [LineDirtiness::Clean, LineDirtiness::Dirty] {
            assert!(!turn_off_requirements(kind, dirt).requires_upper_invalidate);
        }
    }
}
