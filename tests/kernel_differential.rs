//! The two-kernel differential oracle.
//!
//! The quiescence-skipping kernel claims bit-identity with the
//! per-cycle reference loop: same `SimStats` (every counter, every
//! per-core stall breakdown, every sampled interval) and therefore the
//! same `PowerReport`. This suite pins that claim across every paper
//! technique, every scenario kind (homogeneous, heterogeneous mix,
//! trace replay), and a randomized grid of workload/seed/size
//! combinations. Any divergence — a missed wakeup source, a stall
//! cycle charged to the wrong counter, a decay tick applied late — is a
//! kernel bug by definition.

use cmp_leakage::coherence::Technique;
use cmp_leakage::core::{run_experiment, ExperimentConfig, Scenario};
use cmp_leakage::system::SimKernel;
use cmp_leakage::workloads::{BenchClass, ScenarioSpec, WorkloadSpec};
use proptest::prelude::*;

const INSTR: u64 = 25_000;

fn all_techniques() -> Vec<Technique> {
    let mut v = vec![Technique::Baseline];
    v.extend(Technique::paper_set());
    v
}

fn assert_kernels_agree(mut cfg: ExperimentConfig, tag: &str) {
    cfg.kernel = SimKernel::PerCycle;
    let reference = run_experiment(&cfg);
    cfg.kernel = SimKernel::QuiescenceSkip;
    let skipping = run_experiment(&cfg);
    assert_eq!(
        reference.stats, skipping.stats,
        "{tag}/{}: quiescence-skipping SimStats diverged from the per-cycle kernel",
        reference.technique
    );
    assert_eq!(
        reference.power, skipping.power,
        "{tag}/{}: PowerReport diverged between kernels",
        reference.technique
    );
}

fn differential_over_techniques(scenario: Scenario, tag: &str) {
    for technique in all_techniques() {
        let mut cfg = ExperimentConfig::paper_scenario(scenario.clone(), technique, 1);
        cfg.instructions_per_core = INSTR;
        assert_kernels_agree(cfg, tag);
    }
}

#[test]
fn kernels_agree_for_every_technique_homogeneous() {
    differential_over_techniques(Scenario::Homogeneous(WorkloadSpec::water_ns()), "homogeneous");
}

#[test]
fn kernels_agree_for_every_technique_mix() {
    // bursty_idle is the skip kernel's best case (long all-blocked
    // spans) and thus its most bug-exposing scenario.
    differential_over_techniques(Scenario::Mix(ScenarioSpec::bursty_idle()), "mix_bursty_idle");
}

#[test]
fn kernels_agree_for_every_technique_read_burst() {
    // A read-burst stresser: pure-load streaming bursts with no exec
    // gaps, so the L1s fire misses into the L2 read queues as fast as
    // dispatch allows. Spans where a jammed read head provably keeps
    // retrying (transient line / saturated MSHR) are skippable since
    // `L2Cache::read_would_retry`; this pins that the skip stays
    // bit-identical through read-dominated phases for every technique.
    // (The queue-jam microstructure itself — small MSHRs behind a slow
    // memory — is additionally pinned by the system crate's
    // `kernels_bit_identical_through_blocked_read_bursts` unit test.)
    let read_burst = WorkloadSpec {
        name: "read_burst",
        class: BenchClass::Scientific,
        pool_regions: 64,
        region_bytes: 64 * 1024,
        hot_regions: 2,
        generation_bursts: 4,
        burst_lines: 64,
        accesses_per_line: 1,
        exec_gap: (0, 0),
        store_lines: 0.0,
        write_fraction: 0.0,
        shared_fraction: 0.05,
        shared_regions: 4,
        share_epoch_ops: 50_000,
        revisit: false,
    };
    differential_over_techniques(Scenario::Homogeneous(read_burst), "read_burst");
}

#[test]
fn kernels_agree_for_every_technique_trace_replay() {
    let scenario = Scenario::Mix(ScenarioSpec::stream_revisit());
    let path = std::env::temp_dir().join("cmpleak_kernel_diff.cmpt");
    scenario.record(4, 42, INSTR).save(&path).expect("trace written");
    let replay = Scenario::from_trace(&path).expect("trace readable");
    differential_over_techniques(replay, "trace_replay");
    std::fs::remove_file(&path).ok();
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![
        (0..WorkloadSpec::extended_suite().len())
            .prop_map(|i| Scenario::Homogeneous(WorkloadSpec::extended_suite()[i])),
        (0..ScenarioSpec::paper_mixes().len())
            .prop_map(|i| Scenario::Mix(ScenarioSpec::paper_mixes().swap_remove(i))),
    ]
}

fn arb_technique() -> impl Strategy<Value = Technique> {
    prop_oneof![
        Just(Technique::Baseline),
        Just(Technique::Protocol),
        (10u64..18).prop_map(|p| Technique::Decay { decay_cycles: 1 << p }),
        (10u64..18).prop_map(|p| Technique::SelectiveDecay { decay_cycles: 1 << p }),
    ]
}

proptest! {
    /// Randomized grid: any (scenario, technique, seed, size) must be
    /// bit-identical across kernels. Case count via `PROPTEST_CASES`
    /// (default 64); each case is kept small so the per-cycle reference
    /// run stays cheap.
    #[test]
    fn kernels_agree_on_randomized_scenarios(
        scenario in arb_scenario(),
        technique in arb_technique(),
        seed in 0u64..1000,
        size_mb in prop_oneof![Just(1usize), Just(2)],
        instr in 4_000u64..12_000,
    ) {
        let mut cfg = ExperimentConfig::paper_scenario(scenario, technique, size_mb);
        cfg.seed = seed;
        cfg.instructions_per_core = instr;
        assert_kernels_agree(cfg, "randomized");
    }
}
