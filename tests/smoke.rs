//! Fast end-to-end smoke test: every technique must run the tiny paper
//! system to completion, retire the full instruction budget, and never
//! leak more from the L2 than the always-on baseline does.

use cmp_leakage::coherence::Technique;
use cmp_leakage::cpu::Workload;
use cmp_leakage::power::{evaluate_energy, PowerParams};
use cmp_leakage::system::{run_simulation, CmpConfig, SimStats};
use cmp_leakage::workloads::{GenerationalWorkload, WorkloadSpec};

const INSTR: u64 = 20_000;

fn run(technique: Technique) -> (SimStats, f64) {
    let mut cfg = CmpConfig::paper_system(1, technique);
    cfg.instructions_per_core = INSTR;
    let n_cores = cfg.n_cores;
    let bank_bytes = cfg.l2.size_bytes;
    let wls: Vec<Box<dyn Workload>> = (0..n_cores)
        .map(|core| {
            Box::new(GenerationalWorkload::new(WorkloadSpec::water_ns(), core, n_cores, 42))
                as Box<dyn Workload>
        })
        .collect();
    let stats = run_simulation(cfg, wls);
    let report = evaluate_energy(PowerParams::default(), technique, n_cores, bank_bytes, &stats);
    (stats, report.energy.l2_leakage_pj)
}

#[test]
fn every_technique_completes_and_saves_leakage() {
    let (base_stats, base_leak) = run(Technique::Baseline);
    assert!(base_stats.instructions > 0, "baseline retired nothing");
    assert!(base_leak > 0.0, "baseline must leak");
    assert!((base_stats.occupation_rate() - 1.0).abs() < 1e-12, "baseline never gates");

    for technique in [
        Technique::Protocol,
        Technique::Decay { decay_cycles: 64 * 1024 },
        Technique::SelectiveDecay { decay_cycles: 64 * 1024 },
    ] {
        let (stats, leak) = run(technique);
        assert_eq!(
            stats.instructions, base_stats.instructions,
            "{technique:?}: fixed-workload contract broken"
        );
        assert!(stats.instructions > 0, "{technique:?}: retired nothing");
        assert!(
            leak <= base_leak,
            "{technique:?}: leaked {leak:.1} pJ, baseline {base_leak:.1} pJ"
        );
        assert!(stats.occupation_rate() <= 1.0 + 1e-12, "{technique:?}: occupation above 1");
    }
}
