//! The shared-op-stream differential oracle.
//!
//! The sweep planner claims that recording each (scenario, seed,
//! instruction budget) group once into an in-memory trace and replaying
//! cursors over it in every cell is **bit-identical** to regenerating
//! the streams live per cell: same `SimStats` (every counter, every
//! per-core breakdown, every sampled interval) and therefore the same
//! `PowerReport`. The claim rests on the op-source budget contract (a
//! core fetches ops only while its instruction budget is uncovered, so
//! a recording covering the budget covers every fetch) — this suite
//! pins it end to end for every paper technique across homogeneous and
//! heterogeneous-mix scenarios, at both the experiment and the sweep
//! surface.

use cmp_leakage::core::experiment::{run_experiment, ExperimentConfig};
use cmp_leakage::core::sweep::{run_sweep, run_sweep_unshared, SweepConfig};
use cmp_leakage::core::{Scenario, Technique, WorkloadSpec};
use cmp_leakage::mem::BankArena;
use cmp_leakage::workloads::ScenarioSpec;

const INSTR: u64 = 25_000;

fn all_techniques() -> Vec<Technique> {
    let mut v = vec![Technique::Baseline];
    v.extend(Technique::paper_set());
    v
}

/// Every technique run from a shared recording must match its
/// live-generation twin in whole-struct equality.
fn differential_over_techniques(live: Scenario, tag: &str) {
    let shared = live.record_shared(4, 42, INSTR, &mut BankArena::default());
    for technique in all_techniques() {
        let mut live_cfg = ExperimentConfig::paper_scenario(live.clone(), technique, 1);
        live_cfg.instructions_per_core = INSTR;
        let mut shared_cfg = ExperimentConfig::paper_scenario(shared.clone(), technique, 1);
        shared_cfg.instructions_per_core = INSTR;
        let a = run_experiment(&live_cfg);
        let b = run_experiment(&shared_cfg);
        assert_eq!(a.benchmark, b.benchmark, "{tag}: shared cells keep the scenario label");
        assert_eq!(
            a.stats, b.stats,
            "{tag}/{}: shared-stream SimStats diverged from live generation",
            a.technique
        );
        assert_eq!(
            a.power, b.power,
            "{tag}/{}: PowerReport diverged between shared and live streams",
            a.technique
        );
    }
}

#[test]
fn shared_streams_agree_for_every_technique_homogeneous() {
    differential_over_techniques(Scenario::Homogeneous(WorkloadSpec::water_ns()), "homogeneous");
}

#[test]
fn shared_streams_agree_for_every_technique_mix() {
    for mix in ScenarioSpec::paper_mixes() {
        let tag = mix.name.clone();
        differential_over_techniques(Scenario::Mix(mix), &tag);
    }
}

/// The sweep surface: `run_sweep` (stream sharing on, default) against
/// `run_sweep_unshared` (live generation), serialized cell-for-cell.
#[test]
fn shared_sweep_is_byte_identical_to_live_generation_sweep() {
    let cfg = SweepConfig {
        scenarios: vec![
            Scenario::Homogeneous(WorkloadSpec::mpeg2dec()),
            Scenario::Mix(ScenarioSpec::bursty_idle()),
        ],
        sizes_mb: vec![1, 2],
        techniques: Technique::paper_set(),
        instructions_per_core: 20_000,
        seed: 42,
        n_cores: 4,
        threads: 4,
        store: None,
    };
    let shared = run_sweep(&cfg);
    let live = run_sweep_unshared(&cfg);
    let a = serde_json::to_string(&shared).expect("serializable");
    let b = serde_json::to_string(&live).expect("serializable");
    assert_eq!(a, b, "shared-stream sweep diverged from the live-generation sweep");
}
