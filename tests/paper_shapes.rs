//! Shape tests against the paper's qualitative claims (§VI/§VII).
//!
//! These run a reduced-scale grid (one scientific + one multimedia
//! benchmark, two cache sizes, ~0.8M instructions per core) and assert
//! the *orderings and trends* the paper reports — who wins, in which
//! direction each metric moves — not absolute numbers. The full-scale
//! equivalents are in EXPERIMENTS.md via the `repro` binary.

use cmp_leakage::core::figures::FigureSet;
use cmp_leakage::core::sweep::{run_sweep, SweepConfig, SweepResults};
use cmp_leakage::core::{Scenario, Technique, WorkloadSpec};
use std::sync::OnceLock;

fn grid() -> &'static SweepResults {
    static GRID: OnceLock<SweepResults> = OnceLock::new();
    GRID.get_or_init(|| {
        run_sweep(&SweepConfig {
            scenarios: vec![
                Scenario::Homogeneous(WorkloadSpec::water_ns()),
                Scenario::Homogeneous(WorkloadSpec::mpeg2dec()),
            ],
            sizes_mb: vec![1, 4],
            techniques: vec![
                Technique::Protocol,
                Technique::Decay { decay_cycles: 512 * 1024 },
                Technique::Decay { decay_cycles: 64 * 1024 },
                Technique::SelectiveDecay { decay_cycles: 512 * 1024 },
                Technique::SelectiveDecay { decay_cycles: 64 * 1024 },
            ],
            instructions_per_core: 800_000,
            seed: 42,
            n_cores: 4,
            threads: 0,
            store: None,
        })
    })
}

fn mean(tech: &str, size: usize) -> cmp_leakage::core::TechniqueMetrics {
    grid().mean_over_benchmarks(tech, size).expect("cell present")
}

#[test]
fn occupation_ordering_matches_fig3a() {
    for size in [1, 4] {
        let protocol = mean("protocol", size).occupation;
        let decay = mean("decay64K", size).occupation;
        let sel = mean("sel_decay64K", size).occupation;
        assert!(decay < protocol, "decay gates more than protocol at {size}MB");
        assert!(sel <= protocol, "selective decay gates more than protocol at {size}MB");
        assert!(decay <= sel + 1e-9, "plain decay is the most aggressive at {size}MB");
        assert!(protocol < 1.0);
    }
}

#[test]
fn occupation_falls_with_cache_size_fixed_workload() {
    // §VI: "since the workload is fixed for various cache sizes, the
    // occupation rate decreases as the size increases."
    for tech in ["protocol", "decay512K", "sel_decay512K"] {
        assert!(
            mean(tech, 4).occupation < mean(tech, 1).occupation,
            "{tech} occupancy must fall from 1MB to 4MB"
        );
    }
}

#[test]
fn miss_rate_is_technique_dominated_like_fig3b() {
    for size in [1, 4] {
        let protocol = mean("protocol", size).l2_miss_rate;
        let decay = mean("decay64K", size).l2_miss_rate;
        assert!(decay > protocol, "more aggressive decay -> higher miss rate at {size}MB");
    }
    // Decay-induced misses exist and are classified.
    assert!(mean("decay64K", 4).induced_miss_rate > 0.0);
    assert!(mean("protocol", 4).induced_miss_rate < 1e-4);
}

#[test]
fn bandwidth_follows_fig4a() {
    // Protocol never adds traffic.
    for size in [1, 4] {
        assert!(mean("protocol", size).bandwidth_increase.abs() < 0.01);
    }
    // Decay's bandwidth overhead grows with cache size...
    assert!(mean("decay512K", 4).bandwidth_increase > mean("decay512K", 1).bandwidth_increase);
    // ...and selective decay costs no more than decay (it avoids the
    // dirty turn-off write-backs).
    assert!(
        mean("sel_decay64K", 4).bandwidth_increase <= mean("decay64K", 4).bandwidth_increase + 1e-9
    );
}

#[test]
fn amat_follows_fig4b() {
    for size in [1, 4] {
        assert!(mean("protocol", size).amat_increase.abs() < 0.01, "protocol AMAT untouched");
        assert!(
            mean("sel_decay64K", size).amat_increase <= mean("decay64K", size).amat_increase + 1e-9,
            "selective decay has better AMAT at {size}MB"
        );
    }
}

#[test]
fn energy_follows_fig5a() {
    // Savings grow with cache size (the optimised fraction grows).
    for tech in ["protocol", "decay512K", "sel_decay512K"] {
        assert!(
            mean(tech, 4).energy_reduction > mean(tech, 1).energy_reduction,
            "{tech} saves more at 4MB than at 1MB"
        );
    }
    // Decay saves the most at 4MB; protocol the least of the three
    // families; everything saves something at 4MB.
    let p = mean("protocol", 4).energy_reduction;
    let d = mean("decay64K", 4).energy_reduction;
    let s = mean("sel_decay64K", 4).energy_reduction;
    assert!(d > p, "decay out-saves protocol at 4MB");
    assert!(s > p, "selective decay out-saves protocol at 4MB");
    assert!(d >= s - 0.02, "plain decay saves at least about as much as selective");
    assert!(p > 0.0);
}

#[test]
fn ipc_follows_fig5b() {
    for size in [1, 4] {
        let p = mean("protocol", size).ipc_loss;
        assert!(p.abs() < 0.005, "protocol is performance-free, got {p} at {size}MB");
        let d512 = mean("decay512K", size).ipc_loss;
        let d64 = mean("decay64K", size).ipc_loss;
        assert!(d64 >= d512, "shorter decay interval costs more IPC at {size}MB");
        let s64 = mean("sel_decay64K", size).ipc_loss;
        assert!(s64 <= d64 + 1e-9, "selective decay never loses more IPC than decay");
    }
}

#[test]
fn scientific_codes_suffer_more_than_multimedia_like_fig6b() {
    let water = grid().cell("WATER-NS", "decay64K", 4).unwrap().metrics.ipc_loss;
    let mpeg = grid().cell("mpeg2dec", "decay64K", 4).unwrap().metrics.ipc_loss;
    assert!(water > mpeg, "scientific {water} must lose more IPC than multimedia {mpeg}");
}

#[test]
fn figures_render_for_the_reduced_grid() {
    let figs = FigureSet::new(grid());
    for f in figs.all_by_size() {
        let text = f.to_string();
        assert!(text.contains(f.id));
        assert!(!text.is_empty());
    }
    let headline = figs.headline(4);
    assert_eq!(headline.len(), 3);
}
