//! The two-engine differential oracle.
//!
//! The worklist engine claims bit-identity with the full-scan reference:
//! same `SimStats` (every counter, every per-core stall breakdown, every
//! sampled interval) and therefore the same `PowerReport`. The claim has
//! to hold per stepped cycle — not just over quiet spans like the kernel
//! differential — so this suite pins it across every paper technique,
//! every scenario kind (homogeneous, heterogeneous mix, trace replay,
//! shared-stream replay), a randomized grid, and the adversarial shapes
//! that stress the active-set bookkeeping: a single core, cores that go
//! idle early and sleep for the rest of the run, and retry storms where
//! sleeping cores must be bulk-charged their stall/retry statistics on
//! wake. Any divergence — a missed wake edge, a settle charged to the
//! wrong counter, a stale powered-line integral — is an engine bug by
//! definition.
//!
//! Both engines are additionally crossed with both kernels: the engine
//! choice concerns *stepped* cycles, the kernel choice concerns *which*
//! cycles are stepped, and the contract is that the four combinations
//! form one equivalence class.

use cmp_leakage::coherence::Technique;
use cmp_leakage::core::{run_experiment, ExperimentConfig, Scenario};
use cmp_leakage::system::{CycleEngine, SimKernel};
use cmp_leakage::workloads::{BenchClass, ScenarioSpec, WorkloadSpec};
use proptest::prelude::*;

const INSTR: u64 = 25_000;

fn all_techniques() -> Vec<Technique> {
    let mut v = vec![Technique::Baseline];
    v.extend(Technique::paper_set());
    v
}

/// Assert the full kernel × engine matrix collapses to one result.
fn assert_engines_agree(cfg: ExperimentConfig, tag: &str) {
    let mut reference = None;
    for kernel in [SimKernel::PerCycle, SimKernel::QuiescenceSkip] {
        for engine in [CycleEngine::FullScan, CycleEngine::Worklist] {
            let mut c = cfg.clone();
            c.kernel = kernel;
            c.engine = engine;
            let r = run_experiment(&c);
            match &reference {
                None => reference = Some(r),
                Some(base) => {
                    assert_eq!(
                        base.stats, r.stats,
                        "{tag}/{}: SimStats diverged at {kernel:?} × {engine:?}",
                        base.technique
                    );
                    assert_eq!(
                        base.power, r.power,
                        "{tag}/{}: PowerReport diverged at {kernel:?} × {engine:?}",
                        base.technique
                    );
                }
            }
        }
    }
}

fn differential_over_techniques(scenario: Scenario, tag: &str) {
    for technique in all_techniques() {
        let mut cfg = ExperimentConfig::paper_scenario(scenario.clone(), technique, 1);
        cfg.instructions_per_core = INSTR;
        assert_engines_agree(cfg, tag);
    }
}

#[test]
fn engines_agree_for_every_technique_homogeneous() {
    differential_over_techniques(Scenario::Homogeneous(WorkloadSpec::water_ns()), "homogeneous");
}

#[test]
fn engines_agree_for_every_technique_mix() {
    // bursty_idle puts two cores to sleep for long stretches mid-run —
    // the worklist engine's best case and its most bug-exposing one.
    differential_over_techniques(Scenario::Mix(ScenarioSpec::bursty_idle()), "mix_bursty_idle");
}

#[test]
fn engines_agree_for_every_technique_trace_replay() {
    let scenario = Scenario::Mix(ScenarioSpec::stream_revisit());
    let path = std::env::temp_dir().join("cmpleak_engine_diff.cmpt");
    scenario.record(4, 42, INSTR).save(&path).expect("trace written");
    let replay = Scenario::from_trace(&path).expect("trace readable");
    differential_over_techniques(replay, "trace_replay");
    std::fs::remove_file(&path).ok();
}

#[test]
fn engines_agree_on_shared_stream_replay() {
    // Shared streams ride the devirtualized `CoreSource::Trace` arm;
    // everything else rides `CoreSource::Live`. Cover the trace arm
    // explicitly under both engines.
    use cmp_leakage::mem::BankArena;
    let live = Scenario::Mix(ScenarioSpec::producer_sharing());
    let shared = live.record_shared(4, 42, INSTR, &mut BankArena::default());
    differential_over_techniques(shared, "shared_stream");
}

#[test]
fn engines_agree_single_core() {
    // n_cores = 1: the active set is a single bit, every bus grant is a
    // self-grant, and wake_all degenerates to wake(0). Off-by-ones in
    // the mask arithmetic show up here first.
    for technique in all_techniques() {
        let mut cfg = ExperimentConfig::paper_scenario(
            Scenario::Homogeneous(WorkloadSpec::water_ns()),
            technique,
            1,
        );
        cfg.n_cores = 1;
        cfg.instructions_per_core = INSTR;
        assert_engines_agree(cfg, "single_core");
    }
}

#[test]
fn engines_agree_all_idle_tail() {
    // Exec-heavy cores drain their instruction budgets at different
    // times and then idle; the run's tail is a shrinking active set
    // ending with every core asleep between decay deadlines. Pins the
    // Idle sleep charge and the decay-deadline wake channel.
    let idler = WorkloadSpec {
        name: "idler",
        class: BenchClass::Multimedia,
        pool_regions: 8,
        region_bytes: 16 * 1024,
        hot_regions: 2,
        generation_bursts: 2,
        burst_lines: 4,
        accesses_per_line: 1,
        exec_gap: (200, 400),
        store_lines: 0.25,
        write_fraction: 0.1,
        shared_fraction: 0.0,
        shared_regions: 1,
        share_epoch_ops: 50_000,
        revisit: false,
    };
    for technique in all_techniques() {
        let mut cfg = ExperimentConfig::paper_scenario(Scenario::Homogeneous(idler), technique, 1);
        cfg.instructions_per_core = 4_000;
        assert_engines_agree(cfg, "all_idle");
    }
}

#[test]
fn engines_agree_retry_storm() {
    // Store-dominated streaming with no exec gaps: write buffers fill,
    // L2 write queues jam, and cores spend most cycles asleep on
    // refused stores. The settle path must reproduce the reject-stall,
    // wb-full and L2-retry charges the full scan accrues cycle by
    // cycle.
    let storm = WorkloadSpec {
        name: "retry_storm",
        class: BenchClass::Scientific,
        pool_regions: 64,
        region_bytes: 64 * 1024,
        hot_regions: 2,
        generation_bursts: 4,
        burst_lines: 64,
        accesses_per_line: 1,
        exec_gap: (0, 0),
        store_lines: 1.0,
        write_fraction: 1.0,
        shared_fraction: 0.05,
        shared_regions: 4,
        share_epoch_ops: 50_000,
        revisit: false,
    };
    differential_over_techniques(Scenario::Homogeneous(storm), "retry_storm");
}

#[test]
fn engines_agree_nack_storm_under_grant_gating() {
    // Heavily shared write traffic: many in-flight fills to the same
    // lines, so bus grants repeatedly hit the split-transaction conflict
    // rule and NACK-retry — each retry re-enqueues after charging
    // occupancy, reopening the grant horizon. The gate must never skip a
    // cycle in which a retried request could be granted.
    let nack = WorkloadSpec {
        name: "nack_storm",
        class: BenchClass::Scientific,
        pool_regions: 4,
        region_bytes: 4 * 1024,
        hot_regions: 2,
        generation_bursts: 4,
        burst_lines: 32,
        accesses_per_line: 2,
        exec_gap: (0, 4),
        store_lines: 0.8,
        write_fraction: 0.8,
        shared_fraction: 0.9,
        shared_regions: 2,
        share_epoch_ops: 1_000,
        revisit: true,
    };
    differential_over_techniques(Scenario::Homogeneous(nack), "nack_storm");
}

#[test]
fn engines_agree_lone_core_sleeping_mid_batch() {
    // One core alternating compute bursts with long exec gaps: the
    // worklist engine enters a lone-core batch during every burst, and
    // each gap ends the batch with a no-work cycle after which the core
    // must sleep and the kernel must skip the quiet span — the
    // batch-exit → try_sleep → quiescence handoff, repeated per burst.
    let burster = WorkloadSpec {
        name: "lone_burster",
        class: BenchClass::Multimedia,
        pool_regions: 8,
        region_bytes: 16 * 1024,
        hot_regions: 2,
        generation_bursts: 2,
        burst_lines: 8,
        accesses_per_line: 4,
        exec_gap: (300, 600),
        store_lines: 0.2,
        write_fraction: 0.2,
        shared_fraction: 0.0,
        shared_regions: 1,
        share_epoch_ops: 50_000,
        revisit: false,
    };
    for technique in all_techniques() {
        let mut cfg =
            ExperimentConfig::paper_scenario(Scenario::Homogeneous(burster), technique, 1);
        cfg.n_cores = 1;
        cfg.instructions_per_core = 12_000;
        assert_engines_agree(cfg, "lone_sleep_mid_batch");
    }
}

#[test]
fn engines_agree_staggered_drain_inside_lockstep_batch() {
    // Four compute-heavy cores with different exec-gap distributions:
    // all ports idle for long stretches, so the worklist engine runs
    // them as one lockstep working-span batch — but their per-cycle
    // throughputs differ, so one core drains its instruction budget
    // while the others are mid-span. The batch must stop on that exact
    // cycle (the reference consults `done()` after every cycle) and the
    // drained core must be excluded from subsequent spans so it can
    // reach `try_sleep` on a normal cycle.
    let mut fast = WorkloadSpec::volrend();
    fast.name = "fast_cruncher";
    fast.exec_gap = (2, 6);
    fast.shared_fraction = 0.0;
    let mut slow = WorkloadSpec::volrend();
    slow.name = "slow_cruncher";
    slow.exec_gap = (40, 90);
    slow.shared_fraction = 0.0;
    let mix = ScenarioSpec::new("mix_staggered_drain", vec![fast, slow, fast, slow]);
    for technique in all_techniques() {
        let mut cfg = ExperimentConfig::paper_scenario(Scenario::Mix(mix.clone()), technique, 1);
        cfg.instructions_per_core = 12_000;
        assert_engines_agree(cfg, "staggered_drain");
    }
}

#[test]
fn engines_agree_decay_deadline_inside_batched_span() {
    // A lone compute-heavy core under a short decay interval: decay
    // ticks land every ~1K cycles, well inside the exec spans the batch
    // would otherwise cover. The batch horizon must stop at each
    // deadline so the L2 phase processes the decay clock exactly on
    // time — one late tick shifts turn-off cycles and breaks the
    // leakage integral.
    let cruncher = WorkloadSpec {
        name: "cruncher",
        class: BenchClass::Scientific,
        pool_regions: 8,
        region_bytes: 16 * 1024,
        hot_regions: 2,
        generation_bursts: 2,
        burst_lines: 8,
        accesses_per_line: 8,
        exec_gap: (100, 250),
        store_lines: 0.3,
        write_fraction: 0.3,
        shared_fraction: 0.0,
        shared_regions: 1,
        share_epoch_ops: 50_000,
        revisit: true,
    };
    for technique in [
        Technique::Decay { decay_cycles: 1 << 10 },
        Technique::SelectiveDecay { decay_cycles: 1 << 10 },
        Technique::Decay { decay_cycles: 1 << 14 },
    ] {
        for n_cores in [1usize, 2] {
            let mut cfg =
                ExperimentConfig::paper_scenario(Scenario::Homogeneous(cruncher), technique, 1);
            cfg.n_cores = n_cores;
            cfg.instructions_per_core = 12_000;
            assert_engines_agree(cfg, "decay_in_batch");
        }
    }
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    prop_oneof![
        (0..WorkloadSpec::extended_suite().len())
            .prop_map(|i| Scenario::Homogeneous(WorkloadSpec::extended_suite()[i])),
        (0..ScenarioSpec::paper_mixes().len())
            .prop_map(|i| Scenario::Mix(ScenarioSpec::paper_mixes().swap_remove(i))),
    ]
}

fn arb_technique() -> impl Strategy<Value = Technique> {
    prop_oneof![
        Just(Technique::Baseline),
        Just(Technique::Protocol),
        (10u64..18).prop_map(|p| Technique::Decay { decay_cycles: 1 << p }),
        (10u64..18).prop_map(|p| Technique::SelectiveDecay { decay_cycles: 1 << p }),
    ]
}

proptest! {
    /// Randomized grid: any (scenario, technique, seed, size, cores)
    /// must land all four kernel × engine cells on one result. Case
    /// count via `PROPTEST_CASES` (default 64); each case is kept small
    /// so the 4-way product stays cheap.
    #[test]
    fn engines_agree_on_randomized_scenarios(
        scenario in arb_scenario(),
        technique in arb_technique(),
        seed in 0u64..1000,
        size_mb in prop_oneof![Just(1usize), Just(2)],
        instr in 4_000u64..12_000,
        n_cores in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let mut cfg = ExperimentConfig::paper_scenario(scenario, technique, size_mb);
        cfg.seed = seed;
        cfg.instructions_per_core = instr;
        cfg.n_cores = n_cores;
        assert_engines_agree(cfg, "randomized");
    }
}
