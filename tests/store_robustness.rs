//! Store corruption robustness: a damaged result store must never
//! change results — only cost the latency of re-simulating.
//!
//! Every record carries a magic, a schema version, its own content
//! address, a code fingerprint and a payload checksum; any mismatch,
//! truncation or version skew decodes to a silent miss. This suite
//! damages a populated store in every one of those ways mid-sweep and
//! pins the outcome: byte-identical to the uncached sweep, no panic,
//! and — because `publish` overwrites — the damaged cells are repaired
//! by the very pass that missed on them.

use cmp_leakage::core::sweep::{
    run_sweep_uncached, run_sweep_with_telemetry, SweepConfig, SweepTelemetry,
};
use cmp_leakage::core::{ExperimentScratch, Scenario, Technique, WorkloadSpec};
use cmp_leakage::store::ResultStore;
use cmp_leakage::workloads::ScenarioSpec;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn grid(store: Option<Arc<ResultStore>>) -> SweepConfig {
    SweepConfig {
        scenarios: vec![
            Scenario::Homogeneous(WorkloadSpec::mpeg2dec()),
            Scenario::Mix(ScenarioSpec::bursty_idle()),
        ],
        sizes_mb: vec![1],
        techniques: Technique::paper_set(),
        instructions_per_core: 15_000,
        seed: 42,
        n_cores: 4,
        threads: 2,
        store,
    }
}

fn run(cfg: &SweepConfig) -> (String, SweepTelemetry) {
    let mut scratch = ExperimentScratch::default();
    let (res, t) = run_sweep_with_telemetry(cfg, &mut scratch);
    (serde_json::to_string(&res).expect("serializable"), t)
}

/// All record files under the store's two-level fan-out.
fn record_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in std::fs::read_dir(root).expect("store root").flatten() {
        if dir.path().is_dir() {
            for f in std::fs::read_dir(dir.path()).expect("fan-out dir").flatten() {
                files.push(f.path());
            }
        }
    }
    files.sort();
    assert!(!files.is_empty(), "populated store has no record files");
    files
}

/// Populate a fresh store with the grid, damage every record with
/// `damage`, and pin: the next sweep still matches the uncached
/// baseline (all misses — silent fallback), and the pass after that
/// runs fully warm again (publish repaired the files).
fn damaged_store_roundtrip(tag: &str, mut damage: impl FnMut(&PathBuf)) {
    let fresh = run_sweep_uncached(&grid(None));
    let fresh_json = serde_json::to_string(&fresh).expect("serializable");
    let root = std::env::temp_dir().join(format!("cmpleak-store-rob-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let store = Arc::new(ResultStore::open(&root).expect("store root"));

    let cfg = grid(Some(Arc::clone(&store)));
    let (cold, t_cold) = run(&cfg);
    assert_eq!(cold, fresh_json, "{tag}: cold pass diverged before any damage");
    for f in record_files(&root) {
        damage(&f);
    }

    let (after, t_after) = run(&cfg);
    assert_eq!(after, fresh_json, "{tag}: damaged store changed sweep results");
    assert_eq!(
        t_after.store_hits, 0,
        "{tag}: a damaged record decoded as a hit instead of a silent miss"
    );
    assert_eq!(
        t_after.store_misses, t_cold.store_misses,
        "{tag}: fallback did not re-simulate every damaged cell"
    );

    // `publish` overwrites: the miss pass repaired every damaged file.
    let (repaired, t_repaired) = run(&cfg);
    assert_eq!(repaired, fresh_json, "{tag}: repaired store diverged");
    assert_eq!(t_repaired.store_misses, 0, "{tag}: repair pass left misses behind");
    assert_eq!(
        t_repaired.store_hits, t_cold.store_misses,
        "{tag}: repair pass did not answer every cell from disk"
    );
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn flipped_payload_byte_falls_back_and_repairs() {
    damaged_store_roundtrip("byteflip", |f| {
        let mut bytes = std::fs::read(f).expect("record readable");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(f, bytes).expect("record writable");
    });
}

#[test]
fn truncated_record_falls_back_and_repairs() {
    damaged_store_roundtrip("truncate", |f| {
        let bytes = std::fs::read(f).expect("record readable");
        std::fs::write(f, &bytes[..bytes.len() / 2]).expect("record writable");
    });
}

#[test]
fn schema_version_skew_falls_back_and_repairs() {
    // The schema version is the little-endian u32 after the 4-byte
    // magic; a bumped store format must read as a miss, never as a
    // misdecoded record.
    damaged_store_roundtrip("skew", |f| {
        let mut bytes = std::fs::read(f).expect("record readable");
        bytes[4] = bytes[4].wrapping_add(1);
        std::fs::write(f, bytes).expect("record writable");
    });
}

#[test]
fn garbage_and_empty_records_fall_back_and_repair() {
    let mut toggle = false;
    damaged_store_roundtrip("garbage", move |f| {
        toggle = !toggle;
        if toggle {
            std::fs::write(f, b"not a CMPS record at all").expect("record writable");
        } else {
            std::fs::write(f, b"").expect("record writable");
        }
    });
}

/// Damage must also be invisible at the single-load surface: a corrupt
/// record loads as `None`, not as an error or a wrong cell.
#[test]
fn corrupt_record_loads_as_none() {
    let root = std::env::temp_dir().join(format!("cmpleak-store-rob-load-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let store = Arc::new(ResultStore::open(&root).expect("store root"));
    let cfg = grid(Some(Arc::clone(&store)));
    run(&cfg);

    let cell0 = cfg.scenarios[0].clone();
    let key = cmp_leakage::core::ExperimentConfig::paper_scenario(
        cell0,
        cfg.techniques[0],
        cfg.sizes_mb[0],
    );
    let key = {
        let mut k = key;
        k.instructions_per_core = cfg.instructions_per_core;
        k.seed = cfg.seed;
        k.n_cores = cfg.n_cores;
        k.store_key()
    };
    assert!(store.load(&key).is_some(), "published cell must load back");
    let path = store.path_of(&key);
    let mut bytes = std::fs::read(&path).expect("record readable");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, bytes).expect("record writable");
    assert!(store.load(&key).is_none(), "corrupt record must be a silent miss");
    std::fs::remove_dir_all(root).ok();
}
