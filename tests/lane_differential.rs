//! The lane-engine differential oracle.
//!
//! The lane engine claims that stepping N technique configurations
//! through **one** decoded op window is bit-identical to running each
//! configuration alone over its own sources: same `SimStats` (every
//! counter, every per-core breakdown, every sampled interval) and
//! therefore the same `PowerReport`. The claim rests on two facts the
//! suite pins end to end: segment pauses land between cycles and
//! consume nothing, and the window's `Exec(0)` filtering is
//! timing- and statistics-neutral. Coverage: baseline + all seven
//! paper techniques × homogeneous / heterogeneous-mix / trace-replay
//! scenarios, plus the sweep surface (`run_sweep` with lanes on by
//! default against `run_sweep_sequential`, serialized cell-for-cell).

use cmp_leakage::core::experiment::{
    run_experiment, run_experiment_lanes, ExperimentConfig, ExperimentScratch,
};
use cmp_leakage::core::sweep::{run_sweep, run_sweep_sequential, SweepConfig};
use cmp_leakage::core::{Scenario, Technique, WorkloadSpec};
use cmp_leakage::workloads::ScenarioSpec;

const INSTR: u64 = 25_000;
const SEED: u64 = 42;

fn all_techniques() -> Vec<Technique> {
    let mut v = vec![Technique::Baseline];
    v.extend(Technique::paper_set());
    v
}

/// One lane group over baseline + the full paper set must match the
/// solo run of every member in whole-struct equality.
fn differential_over_techniques(scenario: Scenario, tag: &str) {
    let cfgs: Vec<ExperimentConfig> = all_techniques()
        .into_iter()
        .map(|technique| {
            let mut cfg = ExperimentConfig::paper_scenario(scenario.clone(), technique, 1);
            cfg.instructions_per_core = INSTR;
            cfg.seed = SEED;
            cfg
        })
        .collect();
    let laned = run_experiment_lanes(&cfgs, &mut ExperimentScratch::default());
    assert_eq!(laned.len(), cfgs.len());
    for (cfg, lane) in cfgs.iter().zip(&laned) {
        let solo = run_experiment(cfg);
        assert_eq!(lane.benchmark, solo.benchmark, "{tag}: lanes keep the scenario label");
        assert_eq!(
            lane.stats, solo.stats,
            "{tag}/{}: lane SimStats diverged from the solo run",
            lane.technique
        );
        assert_eq!(
            lane.power, solo.power,
            "{tag}/{}: lane PowerReport diverged from the solo run",
            lane.technique
        );
    }
}

#[test]
fn lanes_agree_for_every_technique_homogeneous() {
    differential_over_techniques(Scenario::Homogeneous(WorkloadSpec::water_ns()), "homogeneous");
}

#[test]
fn lanes_agree_for_every_technique_mix() {
    for mix in ScenarioSpec::paper_mixes() {
        let tag = mix.name.clone();
        differential_over_techniques(Scenario::Mix(mix), &tag);
    }
}

#[test]
fn lanes_agree_for_every_technique_trace_replay() {
    let live = Scenario::Homogeneous(WorkloadSpec::mpeg2dec());
    let path = std::env::temp_dir().join("cmpleak_lane_diff.cmpt");
    live.record(4, SEED, INSTR).save(&path).expect("trace written");
    let replay = Scenario::from_trace(&path).expect("trace readable");
    differential_over_techniques(replay, "trace-replay");
    std::fs::remove_file(&path).ok();
}

/// The sweep surface: `run_sweep` (lanes on, default) against
/// `run_sweep_sequential` (the pre-lane planner: memoization and
/// stream sharing only), serialized cell-for-cell.
#[test]
fn laned_sweep_is_byte_identical_to_sequential_sweep() {
    let cfg = SweepConfig {
        scenarios: vec![
            Scenario::Homogeneous(WorkloadSpec::mpeg2dec()),
            Scenario::Mix(ScenarioSpec::bursty_idle()),
        ],
        sizes_mb: vec![1, 2],
        techniques: Technique::paper_set(),
        instructions_per_core: 20_000,
        seed: 42,
        n_cores: 4,
        threads: 4,
        store: None,
    };
    let laned = run_sweep(&cfg);
    let sequential = run_sweep_sequential(&cfg);
    let a = serde_json::to_string(&laned).expect("serializable");
    let b = serde_json::to_string(&sequential).expect("serializable");
    assert_eq!(a, b, "laned sweep diverged from the sequential planner");
}
