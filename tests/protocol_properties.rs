//! Property-based tests on the MESI+turn-off state machine (Fig. 2):
//! arbitrary event sequences must never violate the protocol's safety
//! invariants.

use cmp_leakage::coherence::bus::SnoopKind;
use cmp_leakage::coherence::mesi::{step, Event, MesiState, SnoopContext};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        Just(Event::PrRead),
        Just(Event::PrWrite),
        Just(Event::Snoop(SnoopKind::BusRd)),
        Just(Event::Snoop(SnoopKind::BusRdX)),
        Just(Event::TurnOff),
        Just(Event::Grant),
    ]
}

fn arb_ctx() -> impl Strategy<Value = SnoopContext> {
    (any::<bool>(), any::<bool>())
        .prop_map(|(upper_has_copy, pending_write)| SnoopContext { upper_has_copy, pending_write })
}

proptest! {
    /// Under any event sequence: clean states never write back, data is
    /// only supplied from dirty states, gating and protocol invalidation
    /// are mutually exclusive reasons, and upper-level invalidation
    /// always leads to a transient that later resolves to Invalid.
    #[test]
    fn safety_invariants_hold_for_any_sequence(
        events in proptest::collection::vec((arb_event(), arb_ctx()), 1..200)
    ) {
        let mut state = MesiState::Invalid;
        let mut pending_grant = false;
        for (ev, ctx) in events {
            let was_dirty = state.is_dirty();
            let was_stationary = state.is_stationary();
            let t = step(state, ev, ctx);

            if t.writeback {
                prop_assert!(was_dirty, "write-back from clean state {state:?} on {ev:?}");
            }
            if t.supply_data {
                prop_assert!(was_dirty, "data supplied from non-owner {state:?}");
            }
            prop_assert!(!(t.gate && t.protocol_invalidation),
                "a transition has exactly one invalidation reason");
            if t.deferred {
                prop_assert!(!was_stationary, "stationary states never defer");
                prop_assert!(t.next.is_none(), "deferred events change nothing");
            }
            if t.invalidate_upper {
                prop_assert!(matches!(t.next,
                    Some(MesiState::TransientClean(_)) | Some(MesiState::TransientDirty(_))),
                    "upper invalidation implies a transient next state");
                pending_grant = true;
            }
            if let Some(next) = t.next {
                if !next.is_stationary() {
                    prop_assert!(was_stationary, "transients are entered from stationary states");
                }
                if state == MesiState::Invalid {
                    // The FSM never resurrects a line by itself; fills go
                    // through the controller's fill path.
                    prop_assert!(next == MesiState::Invalid,
                        "invalid lines only leave I via controller fills");
                }
                state = next;
            }
            if ev == Event::Grant && !state.is_stationary() {
                // A grant on a transient always completes it.
                prop_assert!(false, "grant must resolve transients");
            }
            if state.is_stationary() {
                pending_grant = false;
            }
        }
        // No sequence may park the machine in a transient without a
        // pending grant having been requested at some point.
        if !state.is_stationary() {
            prop_assert!(pending_grant);
        }
    }

    /// Gating only ever happens on the way to (or at) Invalid.
    #[test]
    fn gating_implies_invalid(
        events in proptest::collection::vec((arb_event(), arb_ctx()), 1..200)
    ) {
        let mut state = MesiState::Exclusive;
        for (ev, ctx) in events {
            let t = step(state, ev, ctx);
            if t.gate {
                prop_assert!(t.next == Some(MesiState::Invalid) || state == MesiState::Invalid);
            }
            if let Some(n) = t.next { state = n; }
        }
    }

    /// A line bounced between reads/writes/snoops without turn-offs never
    /// enters a transient unless an upper-level copy forces the detour.
    #[test]
    fn no_spurious_transients_without_upper_copies(
        events in proptest::collection::vec(arb_event(), 1..100)
    ) {
        let ctx = SnoopContext { upper_has_copy: false, pending_write: false };
        let mut state = MesiState::Modified;
        for ev in events {
            let t = step(state, ev, ctx);
            if let Some(n) = t.next {
                prop_assert!(n.is_stationary(),
                    "without L1 copies every transition is direct, got {n:?}");
                state = n;
            }
        }
    }
}
