//! The persistent-result-store differential oracle.
//!
//! The store's contract is that it may only ever change **latency**,
//! never results: a sweep through a cold store (simulate + publish), a
//! sweep through a warm store (load every cell from disk), and an
//! uncached sweep must be byte-identical — at every thread count, with
//! the in-pool stream recording active. This suite pins that end to
//! end, plus the telemetry invariants that make the cache honest
//! (a cold pass hits nothing; a fully-warm pass neither simulates nor
//! records anything).

use cmp_leakage::core::sweep::{
    run_sweep_uncached, run_sweep_with_telemetry, SweepConfig, SweepTelemetry,
};
use cmp_leakage::core::{ExperimentScratch, Scenario, Technique, WorkloadSpec};
use cmp_leakage::store::ResultStore;
use cmp_leakage::workloads::ScenarioSpec;
use std::path::PathBuf;
use std::sync::Arc;

fn grid(threads: usize, store: Option<Arc<ResultStore>>) -> SweepConfig {
    SweepConfig {
        scenarios: vec![
            Scenario::Homogeneous(WorkloadSpec::water_ns()),
            Scenario::Mix(ScenarioSpec::bursty_idle()),
        ],
        sizes_mb: vec![1, 2],
        techniques: Technique::paper_set(),
        instructions_per_core: 20_000,
        seed: 42,
        n_cores: 4,
        threads,
        store,
    }
}

fn temp_store(tag: &str) -> (PathBuf, Arc<ResultStore>) {
    let root =
        std::env::temp_dir().join(format!("cmpleak-store-diff-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let store = Arc::new(ResultStore::open(&root).expect("store root"));
    (root, store)
}

fn json(results: &cmp_leakage::core::sweep::SweepResults) -> String {
    serde_json::to_string(results).expect("serializable")
}

fn run(cfg: &SweepConfig) -> (String, SweepTelemetry) {
    let mut scratch = ExperimentScratch::default();
    let (res, t) = run_sweep_with_telemetry(cfg, &mut scratch);
    (json(&res), t)
}

/// Cold (simulate + publish) and warm (load from disk) sweeps are
/// byte-identical to the uncached sweep, and the telemetry proves the
/// warm pass did no simulation work.
#[test]
fn cold_and_warm_store_sweeps_match_uncached_byte_for_byte() {
    let fresh = json(&run_sweep_uncached(&grid(4, None)));
    let (root, store) = temp_store("coldwarm");

    let (cold, t_cold) = run(&grid(4, Some(Arc::clone(&store))));
    assert_eq!(cold, fresh, "cold store sweep diverged from uncached");
    assert_eq!(t_cold.store_hits, 0, "a wiped store produced hits");
    assert!(t_cold.store_misses > 0, "cold pass published nothing");
    assert!(t_cold.recorded > 0, "cold pass never recorded a stream group");

    let (warm, t_warm) = run(&grid(4, Some(Arc::clone(&store))));
    assert_eq!(warm, fresh, "warm store sweep diverged from uncached");
    assert_eq!(t_warm.store_misses, 0, "warm pass re-simulated a stored cell");
    assert_eq!(t_warm.recorded, 0, "warm pass recorded streams it never replays");
    assert_eq!(t_warm.store_hits, t_cold.store_misses, "hit/miss populations disagree");

    std::fs::remove_dir_all(root).ok();
}

/// The cache is thread-count-blind: cold at T threads == warm at T'
/// threads == uncached, for every combination of 1/2/8 — the in-pool
/// recording and the hit/miss partition must not perturb results.
#[test]
fn store_sweeps_identical_across_thread_counts() {
    let fresh = json(&run_sweep_uncached(&grid(1, None)));
    for cold_threads in [1usize, 2, 8] {
        let (root, store) = temp_store(&format!("threads{cold_threads}"));
        let (cold, _) = run(&grid(cold_threads, Some(Arc::clone(&store))));
        assert_eq!(cold, fresh, "cold store sweep diverged at {cold_threads} thread(s)");
        for warm_threads in [1usize, 2, 8] {
            let (warm, t) = run(&grid(warm_threads, Some(Arc::clone(&store))));
            assert_eq!(
                warm, fresh,
                "warm sweep at {warm_threads} thread(s) over a store written at \
                 {cold_threads} diverged"
            );
            assert_eq!(t.store_misses, 0, "cross-thread warm pass missed");
        }
        std::fs::remove_dir_all(root).ok();
    }
}

/// Uncached in-pool recording alone (no store) is byte-identical across
/// thread counts — the first-toucher recording protocol is
/// deterministic for any pool size.
#[test]
fn in_pool_recording_is_deterministic_across_thread_counts() {
    let serial = json(&run_sweep_uncached(&grid(1, None)));
    for threads in [2usize, 8] {
        let parallel = json(&run_sweep_uncached(&grid(threads, None)));
        assert_eq!(serial, parallel, "in-pool recording diverged at {threads} thread(s)");
    }
}

/// Derived baseline cells are published too: a warm sweep whose grid
/// includes the memoized baseline answers every simulated cell from
/// the store and still derives baselines to the same bytes.
#[test]
fn derived_baselines_survive_the_store_round_trip() {
    let (root, store) = temp_store("derived");
    let cfg = grid(2, Some(Arc::clone(&store)));
    let (cold, t_cold) = run(&cfg);
    // 2 scenarios x 2 sizes x (1 baseline + 7 techniques) = 32 cells,
    // of which the 4 baselines are derived, not simulated.
    assert_eq!(t_cold.derived, 4, "baseline memoization off in this grid shape");
    let (warm, t_warm) = run(&cfg);
    assert_eq!(cold, warm, "derivation over store hits diverged from cold derivation");
    assert_eq!(t_warm.derived, 4, "warm pass stopped deriving baselines");
    std::fs::remove_dir_all(root).ok();
}
