//! Golden regression test: the full metric set of a small sweep —
//! leakage savings, IPC, energy, temperatures — is pinned to a
//! checked-in JSON snapshot, bit-for-bit.
//!
//! The same grid is run at 1, 2 and 8 worker threads and every result
//! must serialize identically: `run_sweep`'s claim that thread count
//! never changes the output is enforced here, not just asserted on two
//! counters.
//!
//! If an *intentional* model change shifts the numbers, regenerate with
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden_sweep
//! ```
//!
//! and commit the new snapshot together with the change that explains
//! it.
//!
//! Portability: the snapshot pins full-precision floats that pass
//! through `f64::exp` (the leakage temperature factor), whose last-ULP
//! results can differ between libm implementations. It is blessed on
//! the CI platform (linux x86_64 / glibc); a byte-level mismatch on
//! another OS or libc with *no* model change means platform libm
//! divergence, not a regression — re-bless locally to compare.

use cmp_leakage::core::sweep::{run_sweep, SweepConfig};
use cmp_leakage::core::{Scenario, Technique, WorkloadSpec};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/sweep_2bench_1mb.json")
}

fn grid(threads: usize) -> SweepConfig {
    SweepConfig {
        scenarios: vec![
            Scenario::Homogeneous(WorkloadSpec::mpeg2dec()),
            Scenario::Homogeneous(WorkloadSpec::volrend()),
        ],
        sizes_mb: vec![1],
        techniques: Technique::paper_set(),
        instructions_per_core: 40_000,
        seed: 42,
        n_cores: 2,
        threads,
        store: None,
    }
}

#[test]
fn sweep_metrics_match_golden_snapshot_for_1_2_8_threads() {
    let mut rendered = Vec::new();
    for threads in [1usize, 2, 8] {
        let res = run_sweep(&grid(threads));
        assert_eq!(res.cells.len(), 2 * (1 + 7), "2 benchmarks × (baseline + 7 techniques)");
        let mut json = serde_json::to_string_pretty(&res).expect("serializable");
        json.push('\n');
        rendered.push((threads, json));
    }
    let (_, reference) = &rendered[0];
    for (threads, json) in &rendered[1..] {
        assert_eq!(
            json, reference,
            "sweep output with {threads} threads differs from the 1-thread run"
        );
    }

    let path = golden_path();
    if std::env::var("GOLDEN_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, reference).unwrap();
        eprintln!("blessed {} ({} bytes)", path.display(), reference.len());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden snapshot {} ({e}); generate it with GOLDEN_BLESS=1", path.display())
    });
    assert_eq!(
        reference, &golden,
        "sweep metrics diverged from the golden snapshot; if the change is intentional, \
         regenerate with GOLDEN_BLESS=1 and commit the new snapshot"
    );
}
