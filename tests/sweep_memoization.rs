//! Differential oracle for the baseline→technique sweep memoization.
//!
//! `run_sweep` derives each (scenario, size) group's baseline cell from
//! its timing-identical technique twin (Protocol), re-running only the
//! power bookkeeping. This suite pins the claim that the memoized sweep
//! is **byte-identical** to the fully simulated reference
//! (`run_sweep_reference`) — every metric, every raw counter, every
//! float — across homogeneous scenarios, heterogeneous mixes, multiple
//! cache sizes and thread counts. Any divergence means a statistic that
//! is not pure power bookkeeping leaked into the derivation, which is a
//! memoization bug by definition.

use cmp_leakage::core::sweep::{run_sweep, run_sweep_reference, SweepConfig};
use cmp_leakage::core::{Scenario, Technique, WorkloadSpec};
use cmp_leakage::workloads::ScenarioSpec;

fn assert_sweeps_identical(cfg: &SweepConfig, tag: &str) {
    let memo = run_sweep(cfg);
    let full = run_sweep_reference(cfg);
    let memo_json = serde_json::to_string_pretty(&memo).expect("serializable");
    let full_json = serde_json::to_string_pretty(&full).expect("serializable");
    assert_eq!(
        memo_json, full_json,
        "{tag}: memoized sweep diverged from the fully simulated reference"
    );
}

#[test]
fn memoized_sweep_equals_full_sweep_homogeneous_two_sizes() {
    let cfg = SweepConfig {
        scenarios: vec![
            Scenario::Homogeneous(WorkloadSpec::mpeg2dec()),
            Scenario::Homogeneous(WorkloadSpec::water_ns()),
        ],
        sizes_mb: vec![1, 2],
        techniques: vec![
            Technique::Protocol,
            Technique::Decay { decay_cycles: 64 * 1024 },
            Technique::SelectiveDecay { decay_cycles: 64 * 1024 },
        ],
        instructions_per_core: 30_000,
        seed: 42,
        n_cores: 2,
        threads: 4,
        store: None,
    };
    assert_sweeps_identical(&cfg, "homogeneous");
}

#[test]
fn memoized_sweep_equals_full_sweep_mixes_and_single_thread() {
    // Heterogeneous mixes stress per-core stat divergence; a single
    // worker thread pins the serial path of the memoized job pool.
    let cfg = SweepConfig {
        scenarios: vec![
            Scenario::Mix(ScenarioSpec::bursty_idle()),
            Scenario::Mix(ScenarioSpec::stream_revisit()),
        ],
        sizes_mb: vec![1],
        techniques: vec![Technique::Protocol, Technique::Decay { decay_cycles: 128 * 1024 }],
        instructions_per_core: 25_000,
        seed: 7,
        n_cores: 4,
        threads: 1,
        store: None,
    };
    assert_sweeps_identical(&cfg, "mixes");
}
