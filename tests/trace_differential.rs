//! The record/replay differential oracle.
//!
//! Recording a scenario's live streams and replaying them must be
//! *invisible* to the simulator: for every technique of the paper set
//! the replayed run's `SimStats` and `PowerReport` must be bit-identical
//! to live generation. This pins the whole stack — generator
//! determinism, trace encoding, the core model's fetch discipline — and
//! gives every future PR a regression oracle: record once, replay
//! forever.

use cmp_leakage::coherence::Technique;
use cmp_leakage::core::{run_experiment, ExperimentConfig, Scenario};
use cmp_leakage::workloads::{ScenarioSpec, WorkloadSpec};
use std::path::PathBuf;

const INSTR: u64 = 25_000;
const SEED: u64 = 42;

fn all_techniques() -> Vec<Technique> {
    let mut v = vec![Technique::Baseline];
    v.extend(Technique::paper_set());
    v
}

fn record_to_temp(scenario: &Scenario, tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("cmpleak_diff_{tag}.cmpt"));
    scenario.record(4, SEED, INSTR).save(&path).expect("trace written");
    path
}

fn assert_replay_is_bit_identical(scenario: Scenario, tag: &str) {
    let path = record_to_temp(&scenario, tag);
    let replay_scenario = Scenario::from_trace(&path).expect("trace readable");
    for technique in all_techniques() {
        let mut live_cfg = ExperimentConfig::paper_scenario(scenario.clone(), technique, 1);
        live_cfg.instructions_per_core = INSTR;
        live_cfg.seed = SEED;
        let live = run_experiment(&live_cfg);

        let mut replay_cfg = live_cfg.clone();
        replay_cfg.scenario = replay_scenario.clone();
        let replay = run_experiment(&replay_cfg);

        assert_eq!(
            live.stats,
            replay.stats,
            "{tag}/{}: replayed SimStats diverged from live generation",
            technique.name()
        );
        assert_eq!(
            live.power,
            replay.power,
            "{tag}/{}: replayed PowerReport diverged from live generation",
            technique.name()
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn replay_matches_live_for_every_technique_homogeneous() {
    assert_replay_is_bit_identical(Scenario::Homogeneous(WorkloadSpec::mpeg2dec()), "homogeneous");
}

#[test]
fn replay_matches_live_for_every_technique_heterogeneous() {
    assert_replay_is_bit_identical(Scenario::Mix(ScenarioSpec::producer_sharing()), "mix");
}

#[test]
fn replay_labels_cores_like_the_live_run() {
    let scenario = Scenario::Mix(ScenarioSpec::bursty_idle());
    let path = record_to_temp(&scenario, "labels");
    let mut cfg = ExperimentConfig::paper_scenario(
        Scenario::from_trace(&path).unwrap(),
        Technique::Protocol,
        1,
    );
    cfg.instructions_per_core = INSTR;
    cfg.seed = SEED;
    let r = run_experiment(&cfg);
    assert_eq!(r.stats.core_workloads, vec!["WATER-NS", "bursty", "VOLREND", "bursty"]);
    assert_eq!(r.benchmark, "mix_bursty_idle@trace");
    std::fs::remove_file(&path).ok();
}
