//! Exhaustive state-space exploration of the MESI+turn-off machine and
//! the MOESI extension: every state reachable from Invalid is explored
//! under every (event, context) pair, and global protocol properties are
//! checked on the full reachable graph — a miniature model check of the
//! paper's Fig. 2.

use cmpleak_coherence::bus::SnoopKind;
use cmpleak_coherence::mesi::{fill_state, step, Event, MesiState, SnoopContext};
use cmpleak_coherence::moesi;
use cmpleak_coherence::policy::{DecayArming, Technique};
use std::collections::{HashSet, VecDeque};

fn all_events() -> Vec<Event> {
    vec![
        Event::PrRead,
        Event::PrWrite,
        Event::Snoop(SnoopKind::BusRd),
        Event::Snoop(SnoopKind::BusRdX),
        Event::TurnOff,
        Event::Grant,
    ]
}

fn all_ctxs() -> Vec<SnoopContext> {
    let mut v = Vec::new();
    for upper in [false, true] {
        for pending in [false, true] {
            v.push(SnoopContext { upper_has_copy: upper, pending_write: pending });
        }
    }
    v
}

/// All states reachable from the three fill states + Invalid.
fn reachable_states() -> HashSet<MesiState> {
    let mut seen: HashSet<MesiState> = HashSet::new();
    let mut queue: VecDeque<MesiState> = VecDeque::new();
    for s in [
        MesiState::Invalid,
        fill_state(false, false),
        fill_state(true, false),
        fill_state(false, true),
    ] {
        if seen.insert(s) {
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        for ev in all_events() {
            for ctx in all_ctxs() {
                if let Some(n) = step(s, ev, ctx).next {
                    if seen.insert(n) {
                        queue.push_back(n);
                    }
                }
            }
        }
    }
    seen
}

#[test]
fn reachable_space_is_exactly_fig2() {
    let states = reachable_states();
    // M, E, S, I + TC/TD with both pending reasons = 8 states.
    assert_eq!(states.len(), 8, "reachable: {states:?}");
    assert!(states.contains(&MesiState::Modified));
    assert!(states.contains(&MesiState::Exclusive));
    assert!(states.contains(&MesiState::Shared));
    assert!(states.contains(&MesiState::Invalid));
    assert_eq!(states.iter().filter(|s| !s.is_stationary()).count(), 4);
}

#[test]
fn every_transient_resolves_in_one_grant() {
    for s in reachable_states().into_iter().filter(|s| !s.is_stationary()) {
        let t = step(s, Event::Grant, SnoopContext::default());
        assert_eq!(t.next, Some(MesiState::Invalid), "{s:?} must resolve to Invalid");
        assert!(t.gate || t.protocol_invalidation, "{s:?} grant carries its reason");
    }
}

#[test]
fn no_transition_leaves_the_reachable_space() {
    let states = reachable_states();
    for &s in &states {
        for ev in all_events() {
            for ctx in all_ctxs() {
                if let Some(n) = step(s, ev, ctx).next {
                    assert!(states.contains(&n), "{s:?} --{ev:?}--> {n:?} escapes");
                }
            }
        }
    }
}

#[test]
fn writebacks_only_from_dirty_states_everywhere() {
    for s in reachable_states() {
        for ev in all_events() {
            for ctx in all_ctxs() {
                let t = step(s, ev, ctx);
                if t.writeback {
                    assert!(s.is_dirty(), "{s:?} --{ev:?} emitted a write-back");
                }
                if t.supply_data {
                    assert!(s.is_dirty(), "{s:?} --{ev:?} supplied data");
                }
            }
        }
    }
}

#[test]
fn shared_wire_only_asserted_by_holders() {
    for s in reachable_states() {
        for ev in all_events() {
            for ctx in all_ctxs() {
                let t = step(s, ev, ctx);
                if t.assert_shared {
                    assert!(s.is_valid() && s.is_stationary(), "{s:?} asserted shared");
                }
            }
        }
    }
}

#[test]
fn moesi_state_space_is_closed_and_safe() {
    use moesi::{step as mstep, MoesiEvent, MoesiState};
    let states = [
        MoesiState::Modified,
        MoesiState::Owned,
        MoesiState::Exclusive,
        MoesiState::Shared,
        MoesiState::Invalid,
    ];
    let events = [
        MoesiEvent::Snoop(SnoopKind::BusRd),
        MoesiEvent::Snoop(SnoopKind::BusRdX),
        MoesiEvent::TurnOff,
    ];
    for s in states {
        for ev in events {
            let t = mstep(s, ev);
            if let Some(n) = t.next {
                assert!(states.contains(&n), "MOESI {s:?} --{ev:?}--> {n:?}");
            }
            if t.writeback || t.supply_data {
                assert!(s.is_dirty(), "MOESI {s:?} moved data while clean");
            }
            if t.invalidate_other_copies {
                assert_eq!(s, MoesiState::Owned, "only Owned broadcasts invalidations");
            }
        }
    }
}

#[test]
fn techniques_agree_with_the_machine_on_arming() {
    // Selective Decay must arm exactly the states whose turn-off is free
    // (no write-back): the machine and the policy must agree.
    let sd = Technique::SelectiveDecay { decay_cycles: 1 << 16 };
    for s in [MesiState::Modified, MesiState::Exclusive, MesiState::Shared] {
        let t = step(s, Event::TurnOff, SnoopContext::default());
        let free = !t.writeback;
        match sd.arming_on_enter(s) {
            DecayArming::Arm => assert!(free, "{s:?} armed but turn-off costs a write-back"),
            DecayArming::Disarm => assert!(!free, "{s:?} disarmed but turn-off is free"),
            DecayArming::Unchanged => panic!("SD must decide for {s:?}"),
        }
    }
}

#[test]
fn turn_off_cost_ordering_matches_the_paper() {
    // §III: "turning off a Modified line generates a write-back and
    // invalidation in the upper level. On the other hand,
    // Shared/Exclusive lines don't incur in any penalty."
    let ctx = SnoopContext { upper_has_copy: true, pending_write: false };
    let m = step(MesiState::Modified, Event::TurnOff, ctx);
    assert!(m.writeback && m.invalidate_upper);
    for s in [MesiState::Shared, MesiState::Exclusive] {
        let t = step(s, Event::TurnOff, SnoopContext::default());
        assert!(!t.writeback && !t.invalidate_upper && t.gate);
    }
}
