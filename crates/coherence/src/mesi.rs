//! The MESI snoopy protocol extended with a Gated-Vdd turn-off mechanism
//! — the state machine of Fig. 2 in the paper.
//!
//! # States
//!
//! Beyond the stationary **M/E/S/I** states, two transient states model a
//! line whose copy in the upper (L1) level is being invalidated:
//!
//! * **TC — Transient Clean**: a clean (Shared or Exclusive) line on its
//!   way to Invalid,
//! * **TD — Transient Dirty**: a Modified line on its way to Invalid.
//!
//! Both carry the *reason* the line is leaving ([`PendingInval`]): a
//! snooped `BusRdX` from another cache, or an external **turn-off
//! signal** raised by the decay logic / leakage policy. The distinction
//! matters at completion time ([`Event::Grant`]): a protocol invalidation
//! is an opportunity the *Protocol* technique may exploit to gate the
//! line, while a turn-off-initiated transition always gates.
//!
//! # Why the transients exist
//!
//! The simulated L1 is write-through, so the L2 always holds current
//! data; the transients are **not** about data freshness. They exist
//! because a line may not be power-gated while the L1 still holds a copy
//! (inclusion: later snoops could no longer reach that copy) or while a
//! write to it is pending in the L1 write buffer (the write would land on
//! a gated line and be lost). Gating therefore waits for the upper-level
//! invalidation to be acknowledged. This matches the paper: "the turn-off
//! signal may trigger a state transition only from a 'stationary' state",
//! and Table I's "turn off, if no pending write" conditions.
//!
//! All externally visible actions of a turn-off (the write-back of a
//! Modified line, data supply to a snooper) are emitted when the
//! transient is *entered*; the bus serialises them, so a line sitting in
//! TC/TD is logically dead and ignores further snoops.

use crate::bus::{BusRequest, SnoopKind};

/// Why a line is in a transient (TC/TD) state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PendingInval {
    /// Another cache's BusRdX/BusUpgr invalidated us; the upper level is
    /// being cleaned up. Whether the line is *gated* on completion is the
    /// leakage policy's decision (`protocol_invalidation`).
    SnoopRdX,
    /// The leakage technique raised the turn-off signal; the line gates
    /// unconditionally on completion.
    TurnOff,
}

/// Coherence state of one L2 line (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesiState {
    /// Dirty exclusive owner.
    Modified,
    /// Clean exclusive.
    Exclusive,
    /// Clean, possibly replicated.
    Shared,
    /// Not present (and, under a gating policy, possibly powered off).
    Invalid,
    /// Transient Clean: S/E line awaiting upper-level invalidation.
    TransientClean(PendingInval),
    /// Transient Dirty: M line awaiting upper-level invalidation.
    TransientDirty(PendingInval),
}

impl MesiState {
    /// Stationary states may accept processor events, snoops and turn-off
    /// signals; transient states only accept [`Event::Grant`].
    #[inline]
    pub fn is_stationary(self) -> bool {
        matches!(
            self,
            MesiState::Modified | MesiState::Exclusive | MesiState::Shared | MesiState::Invalid
        )
    }

    /// Whether the line currently holds valid data.
    #[inline]
    pub fn is_valid(self) -> bool {
        !matches!(self, MesiState::Invalid)
    }

    /// Whether the line holds data newer than memory.
    #[inline]
    pub fn is_dirty(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::TransientDirty(_))
    }

    /// Short display name matching the paper's figure labels.
    pub fn label(self) -> &'static str {
        match self {
            MesiState::Modified => "M",
            MesiState::Exclusive => "E",
            MesiState::Shared => "S",
            MesiState::Invalid => "I",
            MesiState::TransientClean(_) => "TC",
            MesiState::TransientDirty(_) => "TD",
        }
    }
}

/// Input event to the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Local processor read reached the L2 (L1 miss, or L1 read-through).
    PrRead,
    /// Local processor write reached the L2 (write-through L1).
    PrWrite,
    /// A transaction by another cache was snooped on the bus.
    Snoop(SnoopKind),
    /// The leakage technique requests this line be turned off.
    TurnOff,
    /// The upper-level invalidation for a transient line completed.
    Grant,
}

/// Per-transition context the controller supplies.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnoopContext {
    /// True if the upper-level (L1) cache currently holds a copy of the
    /// line; determines whether leaving requires a TC/TD detour.
    pub upper_has_copy: bool,
    /// True if a write to the line is pending in the L1 write buffer
    /// (Table I: gating must wait for it).
    pub pending_write: bool,
}

impl SnoopContext {
    /// Whether gating must be deferred through a transient state.
    #[inline]
    fn must_defer(self) -> bool {
        self.upper_has_copy || self.pending_write
    }
}

/// The effects of one transition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Transition {
    /// New state, or `None` when the event leaves the state unchanged.
    pub next: Option<MesiState>,
    /// Bus request the controller must issue to complete a processor
    /// event (e.g. `BusUpgr` for a write hit on Shared). Misses from
    /// Invalid are issued by the controller via [`fill_state`] instead.
    pub bus: Option<BusRequest>,
    /// We supply the line on the bus (cache-to-cache flush).
    pub supply_data: bool,
    /// Memory must be updated with our data.
    pub writeback: bool,
    /// The upper level must invalidate its copy; a `Grant` follows.
    pub invalidate_upper: bool,
    /// We assert the shared wire in response to a snoop.
    pub assert_shared: bool,
    /// The line reached Invalid via the turn-off path: gate it now.
    pub gate: bool,
    /// The line reached Invalid because of a protocol invalidation; the
    /// *Protocol* family of techniques gates on this.
    pub protocol_invalidation: bool,
    /// The event could not be accepted in this state (turn-off in a
    /// transient, write to a transient line): the caller must retry once
    /// the line is stationary.
    pub deferred: bool,
}

impl Transition {
    fn stay() -> Self {
        Transition::default()
    }

    fn to(next: MesiState) -> Self {
        Transition { next: Some(next), ..Transition::default() }
    }

    fn deferred() -> Self {
        Transition { deferred: true, ..Transition::default() }
    }
}

/// State a line fills into after winning the bus for a miss, per MESI:
/// an exclusive (write) request fills to Modified; a read fills to Shared
/// if any other cache asserted the shared wire, else to Exclusive.
#[inline]
pub fn fill_state(shared_wire: bool, exclusive: bool) -> MesiState {
    if exclusive {
        MesiState::Modified
    } else if shared_wire {
        MesiState::Shared
    } else {
        MesiState::Exclusive
    }
}

/// Advance the state machine: `state` receives `event` under `ctx`.
///
/// The function is total: events that a real controller would never
/// deliver in a given state (e.g. a processor read on an Invalid line —
/// the controller turns that into a miss instead) return a no-op
/// transition, and events that must wait return `deferred`.
pub fn step(state: MesiState, event: Event, ctx: SnoopContext) -> Transition {
    use Event::*;
    use MesiState::*;

    match (state, event) {
        // ---- Modified ---------------------------------------------------
        (Modified, PrRead) | (Modified, PrWrite) => Transition::stay(),
        (Modified, Snoop(SnoopKind::BusRd)) => {
            // Flush: supply the line, update memory, keep a Shared copy.
            Transition {
                supply_data: true,
                writeback: true,
                assert_shared: true,
                ..Transition::to(Shared)
            }
        }
        (Modified, Snoop(SnoopKind::BusRdX)) => {
            // Supply and relinquish. The L1 copy (if any) must go too.
            let base = Transition { supply_data: true, writeback: true, ..Transition::default() };
            if ctx.must_defer() {
                Transition {
                    invalidate_upper: true,
                    next: Some(TransientDirty(PendingInval::SnoopRdX)),
                    ..base
                }
            } else {
                Transition { protocol_invalidation: true, next: Some(Invalid), ..base }
            }
        }
        (Modified, TurnOff) => {
            // Fig. 2: M --Turn-off--> TD, write-back, invalidate upper,
            // gate on Grant. Without an upper copy the detour is skipped.
            if ctx.must_defer() {
                Transition {
                    writeback: true,
                    invalidate_upper: true,
                    ..Transition::to(TransientDirty(PendingInval::TurnOff))
                }
            } else {
                Transition { writeback: true, gate: true, ..Transition::to(Invalid) }
            }
        }

        // ---- Exclusive --------------------------------------------------
        (Exclusive, PrRead) => Transition::stay(),
        (Exclusive, PrWrite) => Transition::to(Modified), // silent upgrade
        (Exclusive, Snoop(SnoopKind::BusRd)) => {
            Transition { assert_shared: true, ..Transition::to(Shared) }
        }
        (Exclusive, Snoop(SnoopKind::BusRdX)) => clean_invalidate(ctx, PendingInval::SnoopRdX),
        (Exclusive, TurnOff) => clean_invalidate(ctx, PendingInval::TurnOff),

        // ---- Shared -----------------------------------------------------
        (Shared, PrRead) => Transition::stay(),
        (Shared, PrWrite) => {
            // Needs the bus: invalidate the other copies. The controller
            // completes the upgrade with `fill_state(_, true)` (or a
            // direct move to Modified) when the BusUpgr wins arbitration.
            Transition { bus: Some(BusRequest::BusUpgr), ..Transition::stay() }
        }
        (Shared, Snoop(SnoopKind::BusRd)) => {
            Transition { assert_shared: true, ..Transition::stay() }
        }
        (Shared, Snoop(SnoopKind::BusRdX)) => clean_invalidate(ctx, PendingInval::SnoopRdX),
        (Shared, TurnOff) => clean_invalidate(ctx, PendingInval::TurnOff),

        // ---- Invalid ----------------------------------------------------
        // Misses are issued by the controller (MSHR + bus arbitration +
        // `fill_state`); snoops and turn-offs on an Invalid line are
        // no-ops (gating an already-invalid line needs no protocol work).
        (Invalid, PrRead) | (Invalid, PrWrite) => Transition::stay(),
        (Invalid, Snoop(_)) => Transition::stay(),
        (Invalid, TurnOff) => Transition { gate: true, ..Transition::stay() },

        // ---- Transients -------------------------------------------------
        // All bus-visible effects were emitted on entry; the line is
        // logically dead. Snoops are ignored; processor events and
        // turn-offs must wait for the next stationary state (the paper:
        // "if the line is in any transient state, it must wait").
        (TransientClean(p), Grant) => {
            let mut t = Transition::to(Invalid);
            match p {
                PendingInval::SnoopRdX => t.protocol_invalidation = true,
                PendingInval::TurnOff => t.gate = true,
            }
            t
        }
        (TransientDirty(p), Grant) => {
            let mut t = Transition::to(Invalid);
            match p {
                PendingInval::SnoopRdX => t.protocol_invalidation = true,
                PendingInval::TurnOff => t.gate = true,
            }
            t
        }
        (TransientClean(_), Snoop(_)) | (TransientDirty(_), Snoop(_)) => Transition::stay(),
        (TransientClean(_), _) | (TransientDirty(_), _) => Transition::deferred(),

        // Grants only make sense in transients.
        (_, Grant) => Transition::stay(),
    }
}

/// Shared/Exclusive line leaving due to `reason`: detour through TC when
/// the upper level must be cleaned up, else straight to Invalid. No data
/// movement — clean lines are backed by memory.
fn clean_invalidate(ctx: SnoopContext, reason: PendingInval) -> Transition {
    use MesiState::*;
    if ctx.must_defer() {
        Transition { invalidate_upper: true, ..Transition::to(TransientClean(reason)) }
    } else {
        let mut t = Transition::to(Invalid);
        match reason {
            PendingInval::SnoopRdX => t.protocol_invalidation = true,
            PendingInval::TurnOff => t.gate = true,
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::SnoopKind;

    const NO_UPPER: SnoopContext = SnoopContext { upper_has_copy: false, pending_write: false };
    const UPPER: SnoopContext = SnoopContext { upper_has_copy: true, pending_write: false };
    const PENDING_WR: SnoopContext = SnoopContext { upper_has_copy: false, pending_write: true };

    fn next(t: &Transition) -> MesiState {
        t.next.expect("transition must change state")
    }

    #[test]
    fn fill_states_follow_mesi() {
        assert_eq!(fill_state(false, false), MesiState::Exclusive);
        assert_eq!(fill_state(true, false), MesiState::Shared);
        assert_eq!(fill_state(false, true), MesiState::Modified);
        assert_eq!(fill_state(true, true), MesiState::Modified);
    }

    #[test]
    fn exclusive_write_upgrades_silently() {
        let t = step(MesiState::Exclusive, Event::PrWrite, NO_UPPER);
        assert_eq!(next(&t), MesiState::Modified);
        assert!(t.bus.is_none());
    }

    #[test]
    fn shared_write_requests_upgrade_on_bus() {
        let t = step(MesiState::Shared, Event::PrWrite, NO_UPPER);
        assert_eq!(t.bus, Some(BusRequest::BusUpgr));
        assert!(t.next.is_none(), "upgrade completes at bus grant, not here");
    }

    #[test]
    fn modified_flushes_and_shares_on_busrd() {
        let t = step(MesiState::Modified, Event::Snoop(SnoopKind::BusRd), UPPER);
        assert_eq!(next(&t), MesiState::Shared);
        assert!(t.supply_data && t.writeback && t.assert_shared);
        assert!(!t.invalidate_upper, "a read snoop does not evict the L1 copy");
    }

    #[test]
    fn modified_supplies_and_dies_on_busrdx() {
        let t = step(MesiState::Modified, Event::Snoop(SnoopKind::BusRdX), NO_UPPER);
        assert_eq!(next(&t), MesiState::Invalid);
        assert!(t.supply_data && t.writeback && t.protocol_invalidation);
    }

    #[test]
    fn modified_busrdx_with_upper_copy_takes_td() {
        let t = step(MesiState::Modified, Event::Snoop(SnoopKind::BusRdX), UPPER);
        assert_eq!(next(&t), MesiState::TransientDirty(PendingInval::SnoopRdX));
        assert!(t.supply_data && t.writeback && t.invalidate_upper);
        let g = step(next(&t), Event::Grant, NO_UPPER);
        assert_eq!(next(&g), MesiState::Invalid);
        assert!(g.protocol_invalidation && !g.gate);
    }

    #[test]
    fn modified_turnoff_writes_back_and_takes_td() {
        let t = step(MesiState::Modified, Event::TurnOff, UPPER);
        assert_eq!(next(&t), MesiState::TransientDirty(PendingInval::TurnOff));
        assert!(t.writeback && t.invalidate_upper && !t.supply_data);
        let g = step(next(&t), Event::Grant, NO_UPPER);
        assert_eq!(next(&g), MesiState::Invalid);
        assert!(g.gate && !g.protocol_invalidation);
    }

    #[test]
    fn modified_turnoff_without_upper_copy_gates_directly() {
        let t = step(MesiState::Modified, Event::TurnOff, NO_UPPER);
        assert_eq!(next(&t), MesiState::Invalid);
        assert!(t.writeback && t.gate && !t.invalidate_upper);
    }

    #[test]
    fn clean_turnoff_gates_directly_without_upper_copy() {
        for s in [MesiState::Exclusive, MesiState::Shared] {
            let t = step(s, Event::TurnOff, NO_UPPER);
            assert_eq!(next(&t), MesiState::Invalid);
            assert!(t.gate && !t.writeback && !t.supply_data, "S/E turn-off is free");
        }
    }

    #[test]
    fn clean_turnoff_with_upper_copy_takes_tc() {
        for s in [MesiState::Exclusive, MesiState::Shared] {
            let t = step(s, Event::TurnOff, UPPER);
            assert_eq!(next(&t), MesiState::TransientClean(PendingInval::TurnOff));
            assert!(t.invalidate_upper && !t.writeback);
            let g = step(next(&t), Event::Grant, NO_UPPER);
            assert_eq!(next(&g), MesiState::Invalid);
            assert!(g.gate);
        }
    }

    #[test]
    fn pending_write_defers_gating_like_an_upper_copy() {
        // Table I: "turn off, if no pending write".
        let t = step(MesiState::Shared, Event::TurnOff, PENDING_WR);
        assert_eq!(next(&t), MesiState::TransientClean(PendingInval::TurnOff));
    }

    #[test]
    fn exclusive_demotes_to_shared_on_busrd() {
        let t = step(MesiState::Exclusive, Event::Snoop(SnoopKind::BusRd), NO_UPPER);
        assert_eq!(next(&t), MesiState::Shared);
        assert!(t.assert_shared);
    }

    #[test]
    fn shared_invalidates_on_busrdx() {
        let t = step(MesiState::Shared, Event::Snoop(SnoopKind::BusRdX), NO_UPPER);
        assert_eq!(next(&t), MesiState::Invalid);
        assert!(t.protocol_invalidation && !t.gate);
    }

    #[test]
    fn turnoff_in_transient_is_deferred() {
        for s in [
            MesiState::TransientClean(PendingInval::SnoopRdX),
            MesiState::TransientDirty(PendingInval::TurnOff),
        ] {
            let t = step(s, Event::TurnOff, NO_UPPER);
            assert!(t.deferred, "turn-off must wait for a stationary state");
            assert!(t.next.is_none());
        }
    }

    #[test]
    fn snoops_on_transients_are_ignored() {
        let s = MesiState::TransientDirty(PendingInval::TurnOff);
        for k in [SnoopKind::BusRd, SnoopKind::BusRdX] {
            let t = step(s, Event::Snoop(k), NO_UPPER);
            assert!(t.next.is_none() && !t.deferred && !t.supply_data);
        }
    }

    #[test]
    fn turnoff_on_invalid_line_just_gates() {
        let t = step(MesiState::Invalid, Event::TurnOff, NO_UPPER);
        assert!(t.gate);
        assert!(t.next.is_none());
    }

    #[test]
    fn invalid_ignores_snoops() {
        for k in [SnoopKind::BusRd, SnoopKind::BusRdX] {
            let t = step(MesiState::Invalid, Event::Snoop(k), UPPER);
            assert_eq!(t, Transition::stay());
        }
    }

    #[test]
    fn stationary_classification() {
        assert!(MesiState::Modified.is_stationary());
        assert!(MesiState::Invalid.is_stationary());
        assert!(!MesiState::TransientClean(PendingInval::TurnOff).is_stationary());
        assert!(!MesiState::TransientDirty(PendingInval::SnoopRdX).is_stationary());
    }

    #[test]
    fn dirtiness_classification() {
        assert!(MesiState::Modified.is_dirty());
        assert!(MesiState::TransientDirty(PendingInval::TurnOff).is_dirty());
        assert!(!MesiState::Exclusive.is_dirty());
        assert!(!MesiState::Shared.is_dirty());
    }

    /// Exhaustive safety sweep: no transition from a clean state ever
    /// claims to write back or supply data, and every path into Invalid
    /// is flagged as either a gate or a protocol invalidation (never
    /// both).
    #[test]
    fn safety_sweep_all_stationary_transitions() {
        let states =
            [MesiState::Modified, MesiState::Exclusive, MesiState::Shared, MesiState::Invalid];
        let events = [
            Event::PrRead,
            Event::PrWrite,
            Event::Snoop(SnoopKind::BusRd),
            Event::Snoop(SnoopKind::BusRdX),
            Event::TurnOff,
        ];
        let ctxs = [NO_UPPER, UPPER, PENDING_WR];
        for s in states {
            for e in events {
                for c in ctxs {
                    let t = step(s, e, c);
                    if !s.is_dirty() && s != MesiState::Invalid {
                        assert!(!t.writeback, "{s:?} {e:?}: clean lines never write back");
                    }
                    if t.next == Some(MesiState::Invalid) && s != MesiState::Invalid {
                        assert!(
                            t.gate ^ t.protocol_invalidation,
                            "{s:?} {e:?}: exactly one invalidation reason"
                        );
                    }
                    if t.invalidate_upper {
                        assert!(
                            matches!(
                                t.next,
                                Some(MesiState::TransientClean(_))
                                    | Some(MesiState::TransientDirty(_))
                            ),
                            "{s:?} {e:?}: upper invalidation implies a transient"
                        );
                    }
                }
            }
        }
    }
}
