//! MOESI extension of the turn-off mechanism.
//!
//! §III of the paper notes the mechanism "may be easily extended to any
//! coherence protocol, of course taking care of the different semantic of
//! the states. For example, considering the Owned state of the MOESI,
//! other copies must be invalidated before a line is turned off."
//!
//! MOESI adds **Owned**: a dirty line that other caches share. The owner
//! supplies data on snoops *without* updating memory (that is the point
//! of the state — dirty sharing avoids write-back traffic). Turning off
//! an Owned line is therefore the most expensive turn-off in the
//! protocol family: memory must be updated **and** the other Shared
//! copies must be invalidated first (they would otherwise keep reading a
//! line whose owner — the only agent responsible for eventually writing
//! it back — has vanished).
//!
//! This module provides a stationary-state transition function mirroring
//! [`crate::mesi`]; the upper-level (TC/TD) handling is identical and
//! shared with the MESI controller, so it is not duplicated here.

use crate::bus::SnoopKind;

/// Coherence state of one L2 line under MOESI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoesiState {
    /// Dirty, exclusive.
    Modified,
    /// Dirty, shared — this cache owns the only up-to-date copy and
    /// services snoops for it.
    Owned,
    /// Clean, exclusive.
    Exclusive,
    /// Clean or dirty-elsewhere, replicated.
    Shared,
    /// Not present.
    Invalid,
}

impl MoesiState {
    /// Whether this state holds data newer than memory.
    #[inline]
    pub fn is_dirty(self) -> bool {
        matches!(self, MoesiState::Modified | MoesiState::Owned)
    }

    /// Whether the line holds valid data.
    #[inline]
    pub fn is_valid(self) -> bool {
        !matches!(self, MoesiState::Invalid)
    }
}

/// Effects of a MOESI transition (superset of the MESI effects that
/// matter for turn-off studies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoesiTransition {
    /// New state, or `None` to stay.
    pub next: Option<MoesiState>,
    /// This cache supplies the line on the bus.
    pub supply_data: bool,
    /// Memory must be updated.
    pub writeback: bool,
    /// Other caches' copies must be invalidated (extra bus transaction)
    /// before the transition completes — the Owned turn-off cost.
    pub invalidate_other_copies: bool,
    /// We assert the shared wire.
    pub assert_shared: bool,
    /// Line is gated after this transition.
    pub gate: bool,
    /// Line left because of another cache's invalidating request.
    pub protocol_invalidation: bool,
}

/// Events relevant to the turn-off study (processor write upgrades etc.
/// follow standard MOESI and are omitted — the simulator uses MESI; this
/// model exists for the protocol-extension analysis and its benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoesiEvent {
    /// Another cache reads the line.
    Snoop(SnoopKind),
    /// The leakage technique requests a turn-off.
    TurnOff,
}

/// Advance a stationary MOESI line.
pub fn step(state: MoesiState, event: MoesiEvent) -> MoesiTransition {
    use MoesiEvent::*;
    use MoesiState::*;
    match (state, event) {
        // Dirty sharing: the owner keeps servicing reads without
        // write-backs — this is what MESI's M --BusRd--> S + writeback
        // path avoids under MOESI.
        (Modified, Snoop(SnoopKind::BusRd)) => MoesiTransition {
            next: Some(Owned),
            supply_data: true,
            assert_shared: true,
            ..Default::default()
        },
        (Owned, Snoop(SnoopKind::BusRd)) => {
            MoesiTransition { supply_data: true, assert_shared: true, ..Default::default() }
        }
        (Exclusive, Snoop(SnoopKind::BusRd)) => {
            MoesiTransition { next: Some(Shared), assert_shared: true, ..Default::default() }
        }
        (Shared, Snoop(SnoopKind::BusRd)) => {
            MoesiTransition { assert_shared: true, ..Default::default() }
        }
        (Invalid, Snoop(SnoopKind::BusRd)) => MoesiTransition::default(),

        // Invalidating snoops: dirty states supply data.
        (Modified, Snoop(SnoopKind::BusRdX)) | (Owned, Snoop(SnoopKind::BusRdX)) => {
            MoesiTransition {
                next: Some(Invalid),
                supply_data: true,
                writeback: true,
                protocol_invalidation: true,
                ..Default::default()
            }
        }
        (Exclusive, Snoop(SnoopKind::BusRdX)) | (Shared, Snoop(SnoopKind::BusRdX)) => {
            MoesiTransition {
                next: Some(Invalid),
                protocol_invalidation: true,
                ..Default::default()
            }
        }
        (Invalid, Snoop(SnoopKind::BusRdX)) => MoesiTransition::default(),

        // Turn-off costs by state semantics (§III):
        //  M — write back (as in MESI);
        //  O — write back AND invalidate the other copies first;
        //  E/S — free;
        //  I — trivially gate.
        (Modified, TurnOff) => MoesiTransition {
            next: Some(Invalid),
            writeback: true,
            gate: true,
            ..Default::default()
        },
        (Owned, TurnOff) => MoesiTransition {
            next: Some(Invalid),
            writeback: true,
            invalidate_other_copies: true,
            gate: true,
            ..Default::default()
        },
        (Exclusive, TurnOff) | (Shared, TurnOff) => {
            MoesiTransition { next: Some(Invalid), gate: true, ..Default::default() }
        }
        (Invalid, TurnOff) => MoesiTransition { gate: true, ..Default::default() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busrd_on_modified_creates_owner_without_writeback() {
        let t = step(MoesiState::Modified, MoesiEvent::Snoop(SnoopKind::BusRd));
        assert_eq!(t.next, Some(MoesiState::Owned));
        assert!(t.supply_data && !t.writeback, "dirty sharing avoids the write-back");
    }

    #[test]
    fn owner_services_reads_in_place() {
        let t = step(MoesiState::Owned, MoesiEvent::Snoop(SnoopKind::BusRd));
        assert!(t.next.is_none());
        assert!(t.supply_data && t.assert_shared);
    }

    #[test]
    fn owned_turn_off_is_the_most_expensive() {
        let t = step(MoesiState::Owned, MoesiEvent::TurnOff);
        assert!(t.writeback && t.invalidate_other_copies && t.gate);
        // No other state needs the copy-invalidation broadcast.
        for s in
            [MoesiState::Modified, MoesiState::Exclusive, MoesiState::Shared, MoesiState::Invalid]
        {
            assert!(!step(s, MoesiEvent::TurnOff).invalidate_other_copies, "{s:?}");
        }
    }

    #[test]
    fn clean_turn_offs_are_free() {
        for s in [MoesiState::Exclusive, MoesiState::Shared] {
            let t = step(s, MoesiEvent::TurnOff);
            assert!(t.gate && !t.writeback && !t.supply_data);
        }
    }

    #[test]
    fn dirty_states_flush_on_invalidating_snoop() {
        for s in [MoesiState::Modified, MoesiState::Owned] {
            let t = step(s, MoesiEvent::Snoop(SnoopKind::BusRdX));
            assert!(t.supply_data && t.writeback && t.protocol_invalidation);
            assert_eq!(t.next, Some(MoesiState::Invalid));
        }
    }

    #[test]
    fn dirtiness_and_validity_classification() {
        assert!(MoesiState::Owned.is_dirty());
        assert!(MoesiState::Modified.is_dirty());
        assert!(!MoesiState::Shared.is_dirty());
        assert!(!MoesiState::Invalid.is_valid());
    }
}
