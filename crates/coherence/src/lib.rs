//! Coherence substrate: snoopy protocols extended with a line turn-off
//! mechanism (Monchiero et al., ICPP 2009, §III).
//!
//! The centrepiece is [`mesi`] — the MESI state machine of the paper's
//! Fig. 2, extended with the transient states **TC** (Transient Clean) and
//! **TD** (Transient Dirty) used while a line is being invalidated in the
//! upper (L1) cache level, and with external *turn-off* transitions that
//! gate a line's power (Gated-Vdd) without violating coherence or
//! inclusion.
//!
//! Companion modules:
//!
//! * [`legality`] — Table I of the paper: in which system configurations
//!   (uniprocessor write-back L1, uniprocessor write-through L1,
//!   multiprocessor write-through L1) a clean/dirty L2 line may be turned
//!   off and at what cost,
//! * [`policy`] — the paper's three techniques (*Protocol*, *Decay*,
//!   *Selective Decay*) expressed as decisions layered over the turn-off
//!   mechanism, plus the always-on *Baseline*,
//! * [`moesi`] — the MOESI extension sketched in §III (an Owned line must
//!   invalidate the other copies before it can be turned off),
//! * [`bus`] — the snoopy-bus transaction vocabulary shared with
//!   `cmpleak-system`.

#![forbid(unsafe_code)]

pub mod bus;
pub mod legality;
pub mod mesi;
pub mod moesi;
pub mod policy;

pub use bus::BusRequest;
pub use legality::{turn_off_requirements, LineDirtiness, SystemKind, TurnOffRequirements};
pub use mesi::{Event, MesiState, SnoopContext, Transition};
pub use moesi::{MoesiEvent, MoesiState, MoesiTransition};
pub use policy::{DecayArming, Technique};
