//! Table I of the paper: when may an L2 line be turned off, and at what
//! cost, across system configurations.
//!
//! The table compares three configurations — a uniprocessor whose L1 is
//! write-back, a uniprocessor whose L1 is write-through, and the paper's
//! target, a multiprocessor with private snoopy L2s and write-through
//! L1s — against the state (clean/dirty) of the L2 line. This module
//! encodes the table as data so that both the simulator and the
//! reproduction harness (`repro table1`) derive from a single source of
//! truth, and the integration tests can check the simulated system
//! behaves exactly as each cell prescribes.

/// The system configuration axis of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Single processor (or shared L2), write-back L1.
    UniprocessorWriteBackL1,
    /// Single processor (or shared L2), write-through L1.
    UniprocessorWriteThroughL1,
    /// Multiprocessor with private snoopy L2s, write-through L1.
    MultiprocessorWriteThroughL1,
}

impl SystemKind {
    /// All rows of the table, in the paper's column order.
    pub const ALL: [SystemKind; 3] = [
        SystemKind::UniprocessorWriteBackL1,
        SystemKind::UniprocessorWriteThroughL1,
        SystemKind::MultiprocessorWriteThroughL1,
    ];

    /// Human-readable label matching the table header.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::UniprocessorWriteBackL1 => "Single processor or shared L2, L1 Write-Back",
            SystemKind::UniprocessorWriteThroughL1 => {
                "Single processor or shared L2, L1 Write-Through"
            }
            SystemKind::MultiprocessorWriteThroughL1 => {
                "Multiprocessor - private L2, L1 Write-Through"
            }
        }
    }
}

/// The line-state axis of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineDirtiness {
    /// The L2 copy matches memory (MESI Shared/Exclusive).
    Clean,
    /// The L2 copy is newer than memory (MESI Modified).
    Dirty,
}

impl LineDirtiness {
    /// Both rows, in the paper's order.
    pub const ALL: [LineDirtiness; 2] = [LineDirtiness::Clean, LineDirtiness::Dirty];
}

/// What a turn-off requires in a given cell of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TurnOffRequirements {
    /// The line may be turned off at all (always true in Table I; kept so
    /// protocol variants with non-gateable states can reuse the type).
    pub allowed: bool,
    /// Gating must wait until no write to the line is pending in the L1
    /// write buffer.
    pub requires_no_pending_write: bool,
    /// The freshest copy must be written back to memory first.
    pub requires_writeback: bool,
    /// The upper-level (L1) copy must be invalidated to preserve
    /// inclusion.
    pub requires_upper_invalidate: bool,
}

/// Look up a cell of Table I.
pub fn turn_off_requirements(kind: SystemKind, dirt: LineDirtiness) -> TurnOffRequirements {
    use LineDirtiness::*;
    use SystemKind::*;
    match (kind, dirt) {
        // "Turn off" — the L1 copy (clean or dirty) either gets discarded
        // or will re-allocate the line on its own write-back.
        (UniprocessorWriteBackL1, Clean) => {
            TurnOffRequirements { allowed: true, ..Default::default() }
        }
        // "Write back and turn off" — newest copy may be at either level;
        // memory must be updated.
        (UniprocessorWriteBackL1, Dirty) => {
            TurnOffRequirements { allowed: true, requires_writeback: true, ..Default::default() }
        }
        // "Turn off, if no pending write".
        (UniprocessorWriteThroughL1, Clean) => TurnOffRequirements {
            allowed: true,
            requires_no_pending_write: true,
            ..Default::default()
        },
        // "Turn off, if no pending write, and write back".
        (UniprocessorWriteThroughL1, Dirty) => TurnOffRequirements {
            allowed: true,
            requires_no_pending_write: true,
            requires_writeback: true,
            ..Default::default()
        },
        // "Turn off, if no pending write".
        (MultiprocessorWriteThroughL1, Clean) => TurnOffRequirements {
            allowed: true,
            requires_no_pending_write: true,
            ..Default::default()
        },
        // "Turn off, but invalidate the upper level" — inclusion must be
        // maintained; §III also notes this transition causes a write-back.
        (MultiprocessorWriteThroughL1, Dirty) => TurnOffRequirements {
            allowed: true,
            requires_no_pending_write: true,
            requires_writeback: true,
            requires_upper_invalidate: true,
        },
    }
}

/// Render the table in the paper's layout (used by `repro table1`).
pub fn render_table() -> String {
    let mut out = String::new();
    out.push_str(
        "Table I: summary of the various situations related to line state and possibility of turning off\n\n",
    );
    for kind in SystemKind::ALL {
        out.push_str(&format!("{}:\n", kind.label()));
        for dirt in LineDirtiness::ALL {
            let r = turn_off_requirements(kind, dirt);
            let mut clauses: Vec<&str> = Vec::new();
            if r.allowed {
                clauses.push("turn off");
            }
            if r.requires_no_pending_write {
                clauses.push("if no pending write");
            }
            if r.requires_writeback {
                clauses.push("write back");
            }
            if r.requires_upper_invalidate {
                clauses.push("invalidate the upper level");
            }
            out.push_str(&format!("  {:5?}: {}\n", dirt, clauses.join(", ")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_allows_turn_off() {
        for kind in SystemKind::ALL {
            for dirt in LineDirtiness::ALL {
                assert!(turn_off_requirements(kind, dirt).allowed, "{kind:?}/{dirt:?}");
            }
        }
    }

    #[test]
    fn only_dirty_lines_write_back() {
        for kind in SystemKind::ALL {
            assert!(!turn_off_requirements(kind, LineDirtiness::Clean).requires_writeback);
            assert!(turn_off_requirements(kind, LineDirtiness::Dirty).requires_writeback);
        }
    }

    #[test]
    fn write_through_systems_check_the_write_buffer() {
        for kind in
            [SystemKind::UniprocessorWriteThroughL1, SystemKind::MultiprocessorWriteThroughL1]
        {
            for dirt in LineDirtiness::ALL {
                assert!(
                    turn_off_requirements(kind, dirt).requires_no_pending_write,
                    "{kind:?}/{dirt:?}: WT L1 implies a pending-write check"
                );
            }
        }
        // A write-back L1 has no write-through traffic to race with.
        for dirt in LineDirtiness::ALL {
            assert!(
                !turn_off_requirements(SystemKind::UniprocessorWriteBackL1, dirt)
                    .requires_no_pending_write
            );
        }
    }

    #[test]
    fn only_the_multiprocessor_dirty_cell_invalidates_upward() {
        for kind in SystemKind::ALL {
            for dirt in LineDirtiness::ALL {
                let expect = kind == SystemKind::MultiprocessorWriteThroughL1
                    && dirt == LineDirtiness::Dirty;
                assert_eq!(
                    turn_off_requirements(kind, dirt).requires_upper_invalidate,
                    expect,
                    "{kind:?}/{dirt:?}"
                );
            }
        }
    }

    #[test]
    fn render_covers_all_cells() {
        let s = render_table();
        assert_eq!(s.matches("turn off").count(), 6);
        assert_eq!(s.matches("invalidate the upper level").count(), 1);
        assert_eq!(s.matches("write back").count(), 3);
    }
}
