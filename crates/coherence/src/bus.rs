//! Snoopy-bus transaction vocabulary.
//!
//! The shared bus of the simulated CMP (Fig. 1 of the paper) carries
//! these request kinds between the private L2 caches and toward the
//! external memory interface. Timing (arbitration, pipelining, data
//! beats) lives in `cmpleak-system`; this module only defines the
//! protocol-visible vocabulary so the state machines and the system model
//! agree on it.

/// A coherence request placed on the shared bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusRequest {
    /// Read a line with intent to share (load miss).
    BusRd,
    /// Read a line with intent to modify (store miss): all other copies
    /// must be invalidated and the data returned.
    BusRdX,
    /// Upgrade an already-resident Shared line to Modified: invalidation
    /// only, no data transfer.
    BusUpgr,
}

impl BusRequest {
    /// Whether this request invalidates other caches' copies.
    #[inline]
    pub fn invalidating(self) -> bool {
        matches!(self, BusRequest::BusRdX | BusRequest::BusUpgr)
    }

    /// Whether a data transfer accompanies this request.
    #[inline]
    pub fn carries_data(self) -> bool {
        matches!(self, BusRequest::BusRd | BusRequest::BusRdX)
    }
}

/// What a snooping cache observed on the bus, as seen by its state
/// machine. `BusUpgr` is indistinguishable from `BusRdX` to a snooper
/// (both invalidate), so the snoop vocabulary is smaller than the request
/// vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnoopKind {
    /// Another cache is reading the line.
    BusRd,
    /// Another cache is acquiring exclusive ownership.
    BusRdX,
}

impl From<BusRequest> for SnoopKind {
    fn from(r: BusRequest) -> Self {
        match r {
            BusRequest::BusRd => SnoopKind::BusRd,
            BusRequest::BusRdX | BusRequest::BusUpgr => SnoopKind::BusRdX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalidating_requests() {
        assert!(!BusRequest::BusRd.invalidating());
        assert!(BusRequest::BusRdX.invalidating());
        assert!(BusRequest::BusUpgr.invalidating());
    }

    #[test]
    fn upgrades_carry_no_data() {
        assert!(BusRequest::BusRd.carries_data());
        assert!(BusRequest::BusRdX.carries_data());
        assert!(!BusRequest::BusUpgr.carries_data());
    }

    #[test]
    fn snoopers_see_upgrades_as_rdx() {
        assert_eq!(SnoopKind::from(BusRequest::BusUpgr), SnoopKind::BusRdX);
        assert_eq!(SnoopKind::from(BusRequest::BusRdX), SnoopKind::BusRdX);
        assert_eq!(SnoopKind::from(BusRequest::BusRd), SnoopKind::BusRd);
    }
}
