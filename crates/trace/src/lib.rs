//! `cmpleak-trace` — record, replay and inspect reference traces.
//!
//! The simulator's workloads are live generators ([`cmpleak_cpu::Workload`]);
//! this crate decouples workload *acquisition* from *simulation* the way
//! trace-driven cache simulators do: any workload can be recorded into a
//! compact, versioned, seekable binary file ([`TraceRecorder`]) and
//! replayed later ([`TraceFile`] → [`TraceWorkload`]) with **bit-identical**
//! simulation results.
//!
//! The replay contract rests on one property of the core model: a core
//! fetches ops only while its dispatched-instruction count is below its
//! budget, so the set of ops a simulation consumes is exactly the stream
//! prefix whose cumulative instruction count first reaches the budget —
//! independent of the leakage technique, cache size or timing. Recording
//! that prefix (which [`TraceRecorder::record_core`] does) therefore
//! captures everything any same-budget simulation will ask for.
//!
//! See [`format`] for the file layout (varint ops, delta-encoded
//! addresses, ≈2 bytes/op on the workspace's generators). [`mem`] holds
//! the same encoding without the file: an arena-backed [`MemTrace`]
//! records a workload set once and any number of per-core
//! [`MemTraceCursor`]s replay it concurrently — the substrate of the
//! sweep planner's shared op streams.

#![forbid(unsafe_code)]

pub mod format;
pub mod mem;
pub mod reader;
pub mod writer;

pub use format::{CoreStreamInfo, OpDecoder, OpEncoder, TraceHeader, MAGIC, VERSION};
pub use mem::{MemTrace, MemTraceCursor};
pub use reader::{TraceFile, TraceWorkload};
pub use writer::{record_workloads, TraceRecorder};
