//! Opening trace files and replaying their per-core streams.

use crate::format::{OpDecoder, TraceHeader};
use cmpleak_cpu::{TraceOp, Workload};
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// An opened trace file: parsed header plus a seekable source for the
/// per-core streams. Opening reads only the header; each core's stream
/// is loaded on demand by [`TraceFile::core_workload`].
#[derive(Debug, Clone)]
pub struct TraceFile {
    header: TraceHeader,
    source: Source,
}

#[derive(Clone)]
enum Source {
    Path(PathBuf),
    Bytes(Vec<u8>),
}

impl std::fmt::Debug for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Source::Path(p) => f.debug_tuple("Path").field(p).finish(),
            Source::Bytes(b) => write!(f, "Bytes({} bytes)", b.len()),
        }
    }
}

/// Check that the header's claimed stream lengths fit the actual image
/// size, so corrupt length fields fail here with an error instead of
/// reaching a giant buffer allocation later.
fn validate_size(header: &TraceHeader, available: u64) -> io::Result<()> {
    let mut expected = header.byte_len();
    for c in &header.cores {
        expected = expected.checked_add(c.len).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "trace stream lengths overflow")
        })?;
    }
    if expected != available {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("trace header claims {expected} bytes but the image has {available}"),
        ));
    }
    Ok(())
}

impl TraceFile {
    /// Open `path`, parsing and validating the header (including that
    /// the per-core stream lengths add up to the file size).
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = std::fs::File::open(path.as_ref())?;
        let header = TraceHeader::read(&mut f)?;
        validate_size(&header, f.metadata()?.len())?;
        Ok(Self { header, source: Source::Path(path.as_ref().to_path_buf()) })
    }

    /// Parse an in-memory trace image (round-trip tests, network use).
    pub fn from_bytes(bytes: Vec<u8>) -> io::Result<Self> {
        let header = TraceHeader::read(&mut bytes.as_slice())?;
        validate_size(&header, bytes.len() as u64)?;
        Ok(Self { header, source: Source::Bytes(bytes) })
    }

    /// Pull the whole file into memory so that subsequent
    /// [`core_workload`](Self::core_workload) calls slice the cached
    /// image instead of re-opening and re-reading the file per core —
    /// the right mode when all cores (or many experiments) will be
    /// built from the same trace.
    pub fn preload(&mut self) -> io::Result<()> {
        if let Source::Path(p) = &self.source {
            self.source = Source::Bytes(std::fs::read(p)?);
        }
        Ok(())
    }

    /// The parsed header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The raw file image, if it has been pulled into memory (via
    /// [`preload`](Self::preload) or [`from_bytes`](Self::from_bytes)).
    /// `None` while the source is still a path — callers needing the
    /// exact bytes for content addressing should preload first.
    pub fn cached_image(&self) -> Option<&[u8]> {
        match &self.source {
            Source::Bytes(b) => Some(b),
            Source::Path(_) => None,
        }
    }

    /// Scenario label recorded in the header.
    pub fn label(&self) -> &str {
        &self.header.label
    }

    /// Seed the recorded streams were generated with.
    pub fn seed(&self) -> u64 {
        self.header.seed
    }

    /// Number of per-core streams.
    pub fn n_cores(&self) -> usize {
        self.header.n_cores()
    }

    /// Smallest per-core instruction coverage — the largest
    /// `instructions_per_core` this trace can drive without exhausting a
    /// stream.
    pub fn min_core_instructions(&self) -> u64 {
        self.header.cores.iter().map(|c| c.instructions).min().unwrap_or(0)
    }

    /// Load `core`'s stream and wrap it as a replayable [`Workload`].
    ///
    /// Seeks directly to the stream (other cores' bytes are never read).
    pub fn core_workload(&self, core: usize) -> io::Result<TraceWorkload> {
        let info = self.header.cores.get(core).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("trace has {} cores, requested core {core}", self.n_cores()),
            )
        })?;
        let offset = self.header.stream_offset(core);
        let len = info.len as usize;
        let buf = match &self.source {
            Source::Path(p) => {
                let mut f = std::fs::File::open(p)?;
                f.seek(SeekFrom::Start(offset))?;
                let mut buf = vec![0u8; len];
                f.read_exact(&mut buf)?;
                buf
            }
            Source::Bytes(bytes) => {
                let start = offset as usize;
                let end =
                    start.checked_add(len).filter(|&e| e <= bytes.len()).ok_or_else(|| {
                        io::Error::new(io::ErrorKind::UnexpectedEof, "trace image truncated")
                    })?;
                bytes[start..end].to_vec()
            }
        };
        Ok(TraceWorkload {
            name: info.name.clone(),
            total_ops: info.ops,
            total_instructions: info.instructions,
            buf,
            pos: 0,
            ops_read: 0,
            dec: OpDecoder::new(),
        })
    }
}

/// Replays one recorded core stream as a [`Workload`].
///
/// The stream is finite; it covers at least the instruction budget it
/// was recorded for ([`TraceWorkload::total_instructions`]). Driving it
/// past the end is a configuration error and panics with a diagnostic —
/// silently looping would diverge from the live stream and defeat the
/// bit-identical replay contract.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: String,
    total_ops: u64,
    total_instructions: u64,
    buf: Vec<u8>,
    pos: usize,
    ops_read: u64,
    dec: OpDecoder,
}

impl TraceWorkload {
    /// Ops in the stream.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Σ `op.instructions()` over the stream — the largest simulation
    /// budget this stream can drive.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Ops decoded so far.
    pub fn ops_read(&self) -> u64 {
        self.ops_read
    }

    /// Decode the next op, or `None` at end of stream.
    pub fn try_next_op(&mut self) -> Option<TraceOp> {
        if self.ops_read >= self.total_ops {
            return None;
        }
        let op = self.dec.decode(&self.buf, &mut self.pos)?;
        self.ops_read += 1;
        Some(op)
    }
}

impl Workload for TraceWorkload {
    fn next_op(&mut self) -> TraceOp {
        self.try_next_op().unwrap_or_else(|| {
            // audit:allow(unwrap-in-lib, contract violation: the recording covered the requested budget by construction, so exhaustion is a caller bug worth aborting on)
            panic!(
                "trace stream '{}' exhausted after {} ops / {} instructions — it was recorded \
                 for a smaller instruction budget than this simulation requests",
                self.name, self.total_ops, self.total_instructions
            )
        })
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ops_remaining(&self) -> Option<u64> {
        Some(self.total_ops - self.ops_read)
    }

    /// Batch refill (see [`Workload::fill_ops`]): decode straight into
    /// `out` through the batch decoder instead of one op at a time.
    fn fill_ops(&mut self, out: &mut Vec<TraceOp>, max: usize) -> usize {
        let take = (self.total_ops - self.ops_read).min(max as u64) as usize;
        let before = out.len();
        out.resize(before + take, TraceOp::Exec(0));
        let got = self.dec.decode_batch(&self.buf, &mut self.pos, &mut out[before..]);
        assert_eq!(got, take, "stream shorter than its recorded op count");
        self.ops_read += take as u64;
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceRecorder;
    use cmpleak_cpu::ReplayWorkload;

    fn two_core_trace() -> TraceRecorder {
        let mut a = ReplayWorkload::named(
            "alpha",
            vec![TraceOp::Exec(2), TraceOp::Load(0x40), TraceOp::Store(0x80)],
        );
        let mut b = ReplayWorkload::named("beta", vec![TraceOp::Load(0x1000), TraceOp::Exec(5)]);
        let mut rec = TraceRecorder::new("pair", 3);
        rec.record_core(&mut a, 16);
        rec.record_core(&mut b, 12);
        rec
    }

    #[test]
    fn roundtrip_through_bytes_preserves_streams() {
        let rec = two_core_trace();
        let tf = TraceFile::from_bytes(rec.to_bytes()).unwrap();
        assert_eq!(tf.label(), "pair");
        assert_eq!(tf.seed(), 3);
        assert_eq!(tf.n_cores(), 2);

        let mut replay = tf.core_workload(0).unwrap();
        assert_eq!(replay.name(), "alpha");
        let mut live = ReplayWorkload::named(
            "alpha",
            vec![TraceOp::Exec(2), TraceOp::Load(0x40), TraceOp::Store(0x80)],
        );
        for _ in 0..replay.total_ops() {
            assert_eq!(replay.next_op(), live.next_op());
        }
        assert!(replay.try_next_op().is_none());
    }

    #[test]
    fn roundtrip_through_a_real_file_with_seek() {
        let rec = two_core_trace();
        let path = std::env::temp_dir().join("cmpleak_trace_reader_test.cmpt");
        rec.save(&path).unwrap();
        let tf = TraceFile::open(&path).unwrap();
        let mut w1 = tf.core_workload(1).unwrap();
        assert_eq!(w1.name(), "beta");
        assert_eq!(w1.next_op(), TraceOp::Load(0x1000));
        assert_eq!(w1.next_op(), TraceOp::Exec(5));
        assert!(tf.core_workload(2).is_err(), "out-of-range core is rejected");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_stream_length_is_rejected_at_open() {
        let rec = two_core_trace();
        let mut bytes = rec.to_bytes();
        // Truncate the payload: header now claims more bytes than exist.
        bytes.truncate(bytes.len() - 3);
        assert!(TraceFile::from_bytes(bytes).is_err());
        // Same through a real file, where an unchecked length would
        // otherwise size a buffer allocation.
        let path = std::env::temp_dir().join("cmpleak_trace_corrupt_test.cmpt");
        let mut good = rec.to_bytes();
        good.extend_from_slice(b"junk");
        std::fs::write(&path, &good).unwrap();
        assert!(TraceFile::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn min_core_instructions_is_the_weakest_stream() {
        let tf = TraceFile::from_bytes(two_core_trace().to_bytes()).unwrap();
        assert_eq!(
            tf.min_core_instructions(),
            tf.header().cores.iter().map(|c| c.instructions).min().unwrap()
        );
    }

    #[test]
    fn fill_ops_decodes_batches_identically_to_next_op() {
        let rec = two_core_trace();
        let tf = TraceFile::from_bytes(rec.to_bytes()).unwrap();
        let mut a = tf.core_workload(0).unwrap();
        let mut b = tf.core_workload(0).unwrap();
        let mut got = Vec::new();
        assert_eq!(a.fill_ops(&mut got, 3), 3);
        while a.fill_ops(&mut got, 5) == 5 {}
        let want: Vec<TraceOp> = (0..b.total_ops()).map(|_| b.next_op()).collect();
        assert_eq!(got, want);
        assert_eq!(a.ops_remaining(), Some(0));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics_with_diagnostic() {
        let tf = TraceFile::from_bytes(two_core_trace().to_bytes()).unwrap();
        let mut w = tf.core_workload(0).unwrap();
        for _ in 0..=w.total_ops() {
            w.next_op();
        }
    }
}
