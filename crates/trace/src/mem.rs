//! In-memory traces: record a workload set once, replay it through
//! cheap per-core cursors — no file round-trip.
//!
//! A [`MemTrace`] holds exactly what a `.cmpt` file holds — the CMPT v1
//! op encoding (one LEB128 varint per op, zigzag delta-encoded
//! addresses, ≈2 bytes/op) plus the per-core [`CoreStreamInfo`]
//! metadata — but keeps the encoded streams as pooled `u8` columns
//! checked out of a [`BankArena`], so a sweep that records one trace per
//! (scenario, seed, budget) group reuses the stream buffers the same way
//! the caches reuse their per-line columns. [`MemTrace::to_file_bytes`]
//! emits a byte-identical CMPT file image, so an in-memory trace can be
//! persisted or inspected with the existing file tooling at any time.
//!
//! Replay is a [`MemTraceCursor`] per core: an `Arc` handle on the
//! shared trace plus a decode position and a [`BATCH`]-sized local op
//! buffer (~16 KB), so any number of simulations — across worker
//! threads — replay the same recording concurrently, each paying only
//! a cursor instead of a stream copy.
//! The cursor implements [`Workload`] (finite, panicking past the
//! recorded budget with a diagnostic, exactly like
//! [`TraceWorkload`](crate::TraceWorkload)) and therefore the
//! `cmpleak_cpu::OpSource` delivery contract: the core model fetches
//! ops only while its instruction budget is uncovered, so a recording
//! that covers the budget covers every fetch of every cell that replays
//! it — the bit-identity property pinned by `tests/stream_sharing.rs`
//! and the cursor-vs-live proptests in `crates/cpu/tests/`.

use crate::format::{CoreStreamInfo, OpDecoder, OpEncoder, TraceHeader, VERSION};
use cmpleak_cpu::{TraceOp, Workload};
use cmpleak_mem::BankArena;
use std::sync::Arc;

/// A recorded trace held in memory: CMPT v1 encoded per-core streams
/// over arena-pooled byte columns.
#[derive(Debug, Clone, Default)]
pub struct MemTrace {
    label: String,
    seed: u64,
    cores: Vec<CoreStreamInfo>,
    streams: Vec<Vec<u8>>,
}

impl MemTrace {
    /// An empty recording labelled `label` for streams generated under
    /// `seed`. Record cores in core order with
    /// [`record_core`](Self::record_core).
    pub fn new(label: impl Into<String>, seed: u64) -> Self {
        Self { label: label.into(), seed, cores: Vec::new(), streams: Vec::new() }
    }

    /// Record one stream per workload (core order), each covering
    /// `min_instructions` instructions, with stream buffers checked out
    /// of `arena`.
    pub fn record(
        label: impl Into<String>,
        seed: u64,
        workloads: &mut [Box<dyn Workload>],
        min_instructions: u64,
        arena: &mut BankArena,
    ) -> Self {
        let mut t = Self::new(label, seed);
        for wl in workloads.iter_mut() {
            t.record_core(wl.as_mut(), min_instructions, arena);
        }
        t
    }

    /// Pull ops from `wl` until their cumulative instruction count
    /// reaches `min_instructions`, encoding them as the next core's
    /// stream into a buffer checked out of `arena`. Returns the recorded
    /// stream's metadata.
    ///
    /// This captures the exact op prefix any simulation with a budget
    /// `≤ min_instructions` will fetch: the core model stops pulling ops
    /// once its budget is dispatched (see `cmpleak_cpu::OpSource`).
    pub fn record_core(
        &mut self,
        wl: &mut dyn Workload,
        min_instructions: u64,
        arena: &mut BankArena,
    ) -> &CoreStreamInfo {
        let bytes = arena.take_u8_empty(Self::stream_capacity_hint(min_instructions));
        self.record_core_in(wl, min_instructions, bytes)
    }

    /// Capacity hint for one core's encoded stream, from the generators'
    /// observed density (≈2 B/op at ≈3.5 instructions/op) — so best-fit
    /// matching finds a buffer of the right magnitude and a reused
    /// buffer rarely regrows.
    pub fn stream_capacity_hint(min_instructions: u64) -> usize {
        (min_instructions as usize / 2).max(64)
    }

    /// [`record_core`](Self::record_core) into a caller-provided buffer
    /// (cleared first) instead of an arena checkout. This is the
    /// lock-free recording path: a sweep worker checks its buffers out
    /// of the shared pool under one brief lock, then records here
    /// without touching the pool again.
    pub fn record_core_in(
        &mut self,
        wl: &mut dyn Workload,
        min_instructions: u64,
        mut bytes: Vec<u8>,
    ) -> &CoreStreamInfo {
        let mut enc = OpEncoder::new();
        bytes.clear();
        let (mut ops, mut instructions) = (0u64, 0u64);
        while instructions < min_instructions {
            let op = wl.next_op();
            enc.encode(op, &mut bytes);
            ops += 1;
            instructions += op.instructions();
        }
        self.cores.push(CoreStreamInfo {
            name: wl.name().to_string(),
            ops,
            instructions,
            len: bytes.len() as u64,
        });
        self.streams.push(bytes);
        // audit:allow(unwrap-in-lib, a CoreStreamInfo was pushed two statements above)
        self.cores.last().expect("just pushed")
    }

    /// Hand the stream buffers back to `arena`. The trace becomes empty.
    pub fn release_into(&mut self, arena: &mut BankArena) {
        for s in self.streams.drain(..) {
            arena.give_u8(s);
        }
        self.cores.clear();
    }

    /// Scenario label of the recording.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Seed the recorded streams were generated with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of per-core streams.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Metadata of `core`'s stream.
    pub fn core_info(&self, core: usize) -> &CoreStreamInfo {
        &self.cores[core]
    }

    /// Smallest per-core instruction coverage — the largest budget this
    /// trace can drive without exhausting a stream.
    pub fn min_core_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).min().unwrap_or(0)
    }

    /// Total encoded stream bytes (the memory cost of sharing this
    /// recording, excluding the header-equivalent metadata).
    pub fn stream_bytes(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// The encoded byte stream of `core` (the payload a file stores at
    /// [`TraceHeader::stream_offset`]).
    pub fn stream(&self, core: usize) -> &[u8] {
        &self.streams[core]
    }

    /// The header a file written from this trace would carry.
    pub fn header(&self) -> TraceHeader {
        TraceHeader {
            version: VERSION,
            label: self.label.clone(),
            seed: self.seed,
            cores: self.cores.clone(),
        }
    }

    /// Serialize as a complete CMPT v1 file image, byte-identical to
    /// recording the same streams through `TraceRecorder` — the
    /// interchange path between in-memory sharing and the file tooling.
    pub fn to_file_bytes(&self) -> Vec<u8> {
        let mut out = self.header().encode();
        for s in &self.streams {
            out.extend_from_slice(s);
        }
        out
    }

    /// A replay cursor over `core`'s stream of the shared trace.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn cursor(self: &Arc<Self>, core: usize) -> MemTraceCursor {
        assert!(core < self.n_cores(), "trace has {} cores, requested {core}", self.n_cores());
        MemTraceCursor {
            total_ops: self.cores[core].ops,
            trace: Arc::clone(self),
            core,
            pos: 0,
            decoded: 0,
            served: 0,
            dec: OpDecoder::new(),
            batch: [TraceOp::Exec(0); BATCH],
            head: 0,
            len: 0,
        }
    }
}

/// Ops decoded per refill of a cursor's local batch. Sized so the
/// shared buffer's pointer chain (`Arc` → stream column) is walked once
/// per batch instead of once per op — in simulation, `next_op` calls
/// interleave with cache and bus work, so the per-op path must be a
/// plain array read to compete with the generators' queues — and large
/// enough that the decode loop's branch history re-warms inside one
/// refill (16 KB of decoded ops per cursor).
const BATCH: usize = 1024;

/// A seekable per-core replay cursor over a shared [`MemTrace`].
///
/// Decodes the core's stream in place (no copy), a [`BATCH`] of ops at
/// a time into a local buffer; cloning the `Arc`'d trace handle plus
/// the buffer is the only per-cursor cost. The stream is finite — it
/// covers at least the instruction budget it was recorded for; driving
/// it further panics with a diagnostic, like file replay, because
/// silently looping would break the bit-identity contract.
#[derive(Debug, Clone)]
pub struct MemTraceCursor {
    trace: Arc<MemTrace>,
    core: usize,
    /// Byte position in the encoded stream.
    pos: usize,
    /// Ops decoded from the stream into batches so far.
    decoded: u64,
    /// Ops handed out so far.
    served: u64,
    total_ops: u64,
    dec: OpDecoder,
    batch: [TraceOp; BATCH],
    head: usize,
    len: usize,
}

impl MemTraceCursor {
    /// Ops in the underlying stream.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Σ `op.instructions()` over the stream — the largest simulation
    /// budget this cursor can drive.
    pub fn total_instructions(&self) -> u64 {
        self.trace.cores[self.core].instructions
    }

    /// Ops handed out so far.
    pub fn ops_read(&self) -> u64 {
        self.served
    }

    /// Seek back to the start of the stream (delta state reset), ready
    /// to replay again.
    pub fn rewind(&mut self) {
        self.pos = 0;
        self.decoded = 0;
        self.served = 0;
        self.dec = OpDecoder::new();
        self.head = 0;
        self.len = 0;
    }

    /// Refill the local batch from the shared stream (one walk of the
    /// `Arc` chain per [`BATCH`] ops, through the fast batch decoder).
    #[cold]
    fn refill(&mut self) {
        let stream = &self.trace.streams[self.core];
        let take = (self.total_ops - self.decoded).min(BATCH as u64) as usize;
        let got = self.dec.decode_batch(stream, &mut self.pos, &mut self.batch[..take]);
        assert_eq!(got, take, "stream shorter than its recorded op count");
        self.decoded += take as u64;
        self.head = 0;
        self.len = take;
    }

    /// Decode the next op, or `None` at end of stream.
    #[inline]
    pub fn try_next_op(&mut self) -> Option<TraceOp> {
        if self.head == self.len {
            if self.served >= self.total_ops {
                return None;
            }
            self.refill();
        }
        let op = self.batch[self.head];
        self.head += 1;
        self.served += 1;
        Some(op)
    }
}

impl Workload for MemTraceCursor {
    fn next_op(&mut self) -> TraceOp {
        self.try_next_op().unwrap_or_else(|| {
            let info = &self.trace.cores[self.core];
            // audit:allow(unwrap-in-lib, contract violation: the recording covered the requested budget by construction, so exhaustion is a caller bug worth aborting on)
            panic!(
                "shared stream '{}' (core {}) exhausted after {} ops / {} instructions — it was \
                 recorded for a smaller instruction budget than this simulation requests",
                info.name, self.core, info.ops, info.instructions
            )
        })
    }

    fn name(&self) -> &str {
        &self.trace.cores[self.core].name
    }

    fn ops_remaining(&self) -> Option<u64> {
        Some(self.total_ops - self.served)
    }

    /// Batch refill for the lane engine's shared op windows: drain the
    /// local batch (a cursor may interleave `next_op` and `fill_ops`),
    /// then decode whole batches from the shared stream **straight into
    /// `out`**, skipping the local-buffer copy entirely — the decode is
    /// paid once per lane group instead of once per cell.
    fn fill_ops(&mut self, out: &mut Vec<TraceOp>, max: usize) -> usize {
        let take_total = (self.total_ops - self.served).min(max as u64) as usize;
        out.reserve(take_total);
        let mut produced = 0;
        while produced < take_total && self.head < self.len {
            out.push(self.batch[self.head]);
            self.head += 1;
            self.served += 1;
            produced += 1;
        }
        if produced < take_total {
            // Local batch drained: every decoded op has been handed out
            // (`served == decoded`), so the stream position is exactly
            // at the next undecoded op.
            let stream = &self.trace.streams[self.core];
            let take = take_total - produced;
            let before = out.len();
            out.resize(before + take, TraceOp::Exec(0));
            let got = self.dec.decode_batch(stream, &mut self.pos, &mut out[before..]);
            assert_eq!(got, take, "stream shorter than its recorded op count");
            self.decoded += take as u64;
            self.served += take as u64;
        }
        take_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::TraceFile;
    use crate::writer::TraceRecorder;
    use cmpleak_cpu::ReplayWorkload;

    type Workloads = Vec<Box<dyn Workload>>;

    fn pair() -> (Workloads, Workloads) {
        let mk = || -> Workloads {
            vec![
                Box::new(ReplayWorkload::named(
                    "alpha",
                    vec![TraceOp::Exec(2), TraceOp::Load(0x40), TraceOp::Store(0x80)],
                )),
                Box::new(ReplayWorkload::named(
                    "beta",
                    vec![TraceOp::Load(0x1000), TraceOp::Exec(5)],
                )),
            ]
        };
        (mk(), mk())
    }

    #[test]
    fn cursors_replay_the_recorded_prefix() {
        let (mut rec_wls, mut live_wls) = pair();
        let mut arena = BankArena::default();
        let trace = Arc::new(MemTrace::record("pair", 3, &mut rec_wls, 16, &mut arena));
        assert_eq!(trace.n_cores(), 2);
        for (core, live) in live_wls.iter_mut().enumerate() {
            let mut cur = trace.cursor(core);
            assert_eq!(Workload::name(&cur), live.name());
            assert!(cur.total_instructions() >= 16);
            for _ in 0..cur.total_ops() {
                assert_eq!(cur.next_op(), live.next_op(), "core {core}");
            }
            assert!(cur.try_next_op().is_none());
        }
    }

    #[test]
    fn cursor_rewind_restarts_the_stream() {
        let (mut wls, _) = pair();
        let mut arena = BankArena::default();
        let trace = Arc::new(MemTrace::record("pair", 3, &mut wls, 12, &mut arena));
        let mut cur = trace.cursor(0);
        let first: Vec<TraceOp> = (0..cur.total_ops()).map(|_| cur.next_op()).collect();
        cur.rewind();
        let second: Vec<TraceOp> = (0..cur.total_ops()).map(|_| cur.next_op()).collect();
        assert_eq!(first, second, "rewind must reset position and delta state");
    }

    #[test]
    fn file_image_matches_trace_recorder_byte_for_byte() {
        let (mut a, mut b) = pair();
        let mut arena = BankArena::default();
        let mem = MemTrace::record("pair", 7, &mut a, 20, &mut arena);
        let mut rec = TraceRecorder::new("pair", 7);
        for wl in b.iter_mut() {
            rec.record_core(wl.as_mut(), 20);
        }
        assert_eq!(mem.to_file_bytes(), rec.to_bytes());
        // And the image opens as a regular trace file.
        let tf = TraceFile::from_bytes(mem.to_file_bytes()).unwrap();
        assert_eq!(tf.label(), "pair");
        assert_eq!(tf.min_core_instructions(), mem.min_core_instructions());
    }

    #[test]
    fn release_returns_stream_buffers_to_the_arena() {
        let (mut wls, _) = pair();
        let mut arena = BankArena::default();
        let mut trace = MemTrace::record("pair", 3, &mut wls, 1000, &mut arena);
        let returns_before = arena.stats().returns;
        trace.release_into(&mut arena);
        assert_eq!(arena.stats().returns, returns_before + 2, "both stream buffers pooled");
        assert_eq!(trace.n_cores(), 0);
        // A second recording of the same shape reuses the pooled buffers.
        let (mut wls2, _) = pair();
        let fresh_before = arena.stats().fresh_allocations;
        let _again = MemTrace::record("pair", 3, &mut wls2, 1000, &mut arena);
        assert_eq!(arena.stats().fresh_allocations, fresh_before, "streams served from the pool");
    }

    #[test]
    fn fill_ops_matches_next_op_with_interleaving() {
        let (mut wls, _) = pair();
        let mut arena = BankArena::default();
        let trace = Arc::new(MemTrace::record("pair", 3, &mut wls, 4000, &mut arena));
        let mut a = trace.cursor(0);
        let mut b = trace.cursor(0);
        let mut got = Vec::new();
        // Interleave odd-sized batch fills with single fetches so the
        // local batch is drained and bypassed in every combination.
        loop {
            if got.len() % 3 == 0 {
                if a.fill_ops(&mut got, 7) == 0 {
                    break;
                }
            } else {
                match a.try_next_op() {
                    Some(op) => got.push(op),
                    None => break,
                }
            }
        }
        let want: Vec<TraceOp> = (0..b.total_ops()).map(|_| b.next_op()).collect();
        assert_eq!(got, want, "fill_ops must hand out the identical stream");
        assert_eq!(a.ops_remaining(), Some(0));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics_with_diagnostic() {
        let (mut wls, _) = pair();
        let mut arena = BankArena::default();
        let trace = Arc::new(MemTrace::record("pair", 3, &mut wls, 8, &mut arena));
        let mut cur = trace.cursor(1);
        for _ in 0..=cur.total_ops() {
            cur.next_op();
        }
    }
}
