//! The on-disk trace format (`CMPT`, version 1).
//!
//! # Layout
//!
//! ```text
//! magic        4 bytes  b"CMPT"
//! version      u16 LE
//! label        u16 LE length + UTF-8 bytes (scenario label)
//! seed         u64 LE   (workload seed the streams were generated with)
//! n_cores      u32 LE
//! per core:    name (u16 LE length + UTF-8), ops u64 LE,
//!              instructions u64 LE, stream_len u64 LE
//! streams      n_cores encoded op streams, concatenated in core order
//! ```
//!
//! Stream offsets are not stored: they follow from the header length and
//! the per-core `stream_len` prefix sums, so a reader can seek straight
//! to any core's stream without touching the others.
//!
//! # Op encoding
//!
//! Each [`TraceOp`] is one LEB128 varint whose low two bits tag the kind
//! and whose remaining bits carry the payload:
//!
//! * `Exec(n)`  → `n << 2 | 0`
//! * `Load(a)`  → `zigzag(a − prev) << 2 | 1`
//! * `Store(a)` → `zigzag(a − prev) << 2 | 2`
//!
//! where `prev` is the previous memory address of the same stream
//! (initially 0, updated by every load/store). The generators' spatial
//! locality makes most deltas fit in 1–2 bytes, so a stream costs ≈2
//! bytes per op against 9+ for a naive tag+u64 encoding.

use cmpleak_cpu::TraceOp;
use std::io::{self, Read};

/// File magic.
pub const MAGIC: [u8; 4] = *b"CMPT";
/// Current format version. Readers reject anything newer.
pub const VERSION: u16 = 1;

const TAG_EXEC: u64 = 0;
const TAG_LOAD: u64 = 1;
const TAG_STORE: u64 = 2;

/// Append `v` as an LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an LEB128 varint from `buf` at `*pos`, advancing it. `None` on
/// truncated input or an over-long/overflowing encoding.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        // The 10th byte may only carry the final bit of a u64; anything
        // more is corruption and must not be silently truncated.
        if shift == 63 && (byte & 0x7F) > 1 {
            return None;
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None; // over-long encoding: corrupt stream
        }
    }
}

/// Map a signed delta onto the unsigned varint domain (small magnitudes
/// of either sign stay small).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Streaming encoder: one per core stream (carries the address-delta
/// state).
#[derive(Debug, Clone, Default)]
pub struct OpEncoder {
    prev_addr: u64,
}

impl OpEncoder {
    /// Fresh stream state (`prev = 0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append `op` to `out`.
    ///
    /// # Panics
    /// Panics if an address delta's zigzag encoding needs more than 62
    /// bits (magnitude ≥ 2^61): the two tag bits leave 62 payload bits
    /// per key, and truncating silently would corrupt every later
    /// delta-decoded address in the stream. No realistic address space
    /// gets near this (the generators top out at 2^44); hitting it
    /// means the workload emits nonsense addresses, which must fail at
    /// record time, not replay time.
    pub fn encode(&mut self, op: TraceOp, out: &mut Vec<u8>) {
        let key = match op {
            TraceOp::Exec(n) => (u64::from(n) << 2) | TAG_EXEC,
            TraceOp::Load(addr) | TraceOp::Store(addr) => {
                let delta = addr.wrapping_sub(self.prev_addr) as i64;
                let z = zigzag(delta);
                assert!(
                    z >> 62 == 0,
                    "address delta {delta:#x} (to {addr:#x}) exceeds the trace format's 62-bit payload"
                );
                self.prev_addr = addr;
                let tag = if matches!(op, TraceOp::Load(_)) { TAG_LOAD } else { TAG_STORE };
                (z << 2) | tag
            }
        };
        write_varint(out, key);
    }
}

/// Streaming decoder, mirroring [`OpEncoder`].
#[derive(Debug, Clone, Default)]
pub struct OpDecoder {
    prev_addr: u64,
}

impl OpDecoder {
    /// Fresh stream state (`prev = 0`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn a decoded varint key into an op, updating the delta state.
    #[inline]
    fn op_from_key(&mut self, key: u64) -> Option<TraceOp> {
        let payload = key >> 2;
        match key & 0b11 {
            TAG_EXEC => Some(TraceOp::Exec(payload.try_into().ok()?)),
            tag @ (TAG_LOAD | TAG_STORE) => {
                let addr = self.prev_addr.wrapping_add(unzigzag(payload) as u64);
                self.prev_addr = addr;
                Some(if tag == TAG_LOAD { TraceOp::Load(addr) } else { TraceOp::Store(addr) })
            }
            _ => None, // tag 3: corrupt stream
        }
    }

    /// Decode the next op from `buf` at `*pos`. `None` at end of stream
    /// or on truncation.
    pub fn decode(&mut self, buf: &[u8], pos: &mut usize) -> Option<TraceOp> {
        let key = read_varint(buf, pos)?;
        self.op_from_key(key)
    }

    /// Decode up to `out.len()` ops from `buf` at `*pos`, returning how
    /// many were produced (short only at end of stream or corruption).
    ///
    /// Identical to repeated [`OpDecoder::decode`] (property-tested in
    /// `tests/roundtrip.rs`), but with the 1- and 2-byte varint cases —
    /// which cover essentially every op the workspace's generators emit
    /// — peeled out of the generic shift-accumulate loop. Replay
    /// cursors refill their batches through this: per-op decode cost is
    /// what shared-stream sweep cells pay instead of generator work, so
    /// it must stay below the generators' ns/op even when the branch
    /// predictor sees interleaved streams.
    pub fn decode_batch(&mut self, buf: &[u8], pos: &mut usize, out: &mut [TraceOp]) -> usize {
        let mut p = *pos;
        let mut n = 0;
        while n < out.len() && p + 2 <= buf.len() {
            let b0 = buf[p];
            let b1 = buf[p + 1];
            if b0 >= 0x80 && b1 >= 0x80 {
                // ≥3-byte varint (a huge exec burst or address jump —
                // rare on real streams): generic path for this op. A
                // corrupt op stops the batch with the cursor past the
                // bad varint, exactly where repeated `decode` stops.
                match self.decode(buf, &mut p) {
                    Some(op) => {
                        out[n] = op;
                        n += 1;
                        continue;
                    }
                    None => {
                        *pos = p;
                        return n;
                    }
                }
            }
            // 1- or 2-byte varint, selected by arithmetic on the
            // continuation bit: the 1-vs-2-byte pattern of a real
            // stream is data, not a predictable branch, so folding it
            // into a mask keeps the decode pipeline full even when
            // replay interleaves with simulation work.
            let two = u64::from(b0 >= 0x80);
            let key = u64::from(b0 & 0x7F) | (u64::from(b1 & 0x7F) << 7) & two.wrapping_neg();
            p += 1 + two as usize;
            match self.op_from_key(key) {
                Some(op) => out[n] = op,
                None => {
                    // Corrupt op (tag 3 / oversized exec): stop, cursor
                    // past the varint, like sequential decode.
                    *pos = p;
                    return n;
                }
            }
            n += 1;
        }
        // Tail: the last byte of the stream no longer has a 2-byte
        // window; finish generically.
        while n < out.len() {
            match self.decode(buf, &mut p) {
                Some(op) => out[n] = op,
                None => break,
            }
            n += 1;
        }
        *pos = p;
        n
    }
}

/// Per-core stream metadata as stored in the header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreStreamInfo {
    /// The recorded workload's report name (replay reuses it so replayed
    /// statistics label cores identically to the live run).
    pub name: String,
    /// Ops in the stream.
    pub ops: u64,
    /// Σ `op.instructions()` over the stream — the largest per-core
    /// instruction budget this trace can drive.
    pub instructions: u64,
    /// Encoded stream length in bytes.
    pub len: u64,
}

/// Decoded trace file header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version the file was written with.
    pub version: u16,
    /// Scenario label (e.g. a benchmark name or `mix_*` scenario name).
    pub label: String,
    /// Workload seed used at record time.
    pub seed: u64,
    /// Per-core stream metadata, core order.
    pub cores: Vec<CoreStreamInfo>,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    // audit:allow(unwrap-in-lib, header labels are scenario/spec names, validated far below the u16 ceiling at construction)
    let len = u16::try_from(s.len()).expect("trace labels are short");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_str(r: &mut impl Read) -> io::Result<String> {
    let mut len = [0u8; 2];
    r.read_exact(&mut len)?;
    let mut bytes = vec![0u8; usize::from(u16::from_le_bytes(len))];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes).map_err(|_| bad("trace header string is not UTF-8"))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

impl TraceHeader {
    /// Number of per-core streams.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Encoded header size in bytes (streams start at this offset).
    pub fn byte_len(&self) -> u64 {
        let mut n = 4 + 2 + 2 + self.label.len() as u64 + 8 + 4;
        for c in &self.cores {
            n += 2 + c.name.len() as u64 + 8 * 3;
        }
        n
    }

    /// Byte offset of `core`'s stream from the start of the file.
    pub fn stream_offset(&self, core: usize) -> u64 {
        self.byte_len() + self.cores[..core].iter().map(|c| c.len).sum::<u64>()
    }

    /// Serialize the header.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len() as usize);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        write_str(&mut out, &self.label);
        out.extend_from_slice(&self.seed.to_le_bytes());
        // audit:allow(unwrap-in-lib, core counts are small powers of two; u32 overflow is structurally impossible)
        out.extend_from_slice(&u32::try_from(self.cores.len()).unwrap().to_le_bytes());
        for c in &self.cores {
            write_str(&mut out, &c.name);
            out.extend_from_slice(&c.ops.to_le_bytes());
            out.extend_from_slice(&c.instructions.to_le_bytes());
            out.extend_from_slice(&c.len.to_le_bytes());
        }
        out
    }

    /// Parse a header from the start of `r`, validating magic and
    /// version.
    pub fn read(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(bad("not a CMPT trace file (bad magic)"));
        }
        let mut v = [0u8; 2];
        r.read_exact(&mut v)?;
        let version = u16::from_le_bytes(v);
        if version == 0 || version > VERSION {
            return Err(bad(format!(
                "unsupported trace version {version} (reader supports ≤ {VERSION})"
            )));
        }
        let label = read_str(r)?;
        let seed = read_u64(r)?;
        let mut n = [0u8; 4];
        r.read_exact(&mut n)?;
        let n_cores = u32::from_le_bytes(n);
        if n_cores == 0 || n_cores > 4096 {
            return Err(bad(format!("implausible core count {n_cores}")));
        }
        let mut cores = Vec::with_capacity(n_cores as usize);
        for _ in 0..n_cores {
            let name = read_str(r)?;
            let ops = read_u64(r)?;
            let instructions = read_u64(r)?;
            let len = read_u64(r)?;
            cores.push(CoreStreamInfo { name, ops, instructions, len });
        }
        Ok(Self { version, label, seed, cores })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn varint_rejects_overflowing_tenth_byte() {
        // Nine continuation bytes then a 10th byte whose payload exceeds
        // the single bit a u64 has room for: corrupt, not truncatable.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x7E);
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
        // The legitimate encoding of u64::MAX still decodes.
        let mut good = Vec::new();
        write_varint(&mut good, u64::MAX);
        let mut pos = 0;
        assert_eq!(read_varint(&good, &mut pos), Some(u64::MAX));
    }

    #[test]
    fn zigzag_is_involutive_and_small() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn op_encoding_roundtrips_with_delta_state() {
        let ops = vec![
            TraceOp::Exec(3),
            TraceOp::Load(0x1000_0040),
            TraceOp::Store(0x1000_0048),
            TraceOp::Load(0x40), // large negative delta
            TraceOp::Exec(0),
            TraceOp::Store(u64::MAX),
            TraceOp::Load(0),
        ];
        let mut enc = OpEncoder::new();
        let mut buf = Vec::new();
        for &op in &ops {
            enc.encode(op, &mut buf);
        }
        let mut dec = OpDecoder::new();
        let mut pos = 0;
        let decoded: Vec<TraceOp> = std::iter::from_fn(|| dec.decode(&buf, &mut pos)).collect();
        assert_eq!(decoded, ops);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn batch_decode_stops_at_corrupt_ops_like_sequential_decode() {
        // Three corruption shapes: a tag-3 key (1-byte fast path), an
        // oversized Exec payload behind a long varint (generic path),
        // and a tag-3 key in a 2-byte varint. In each case the batch
        // decoder must produce exactly the ops sequential decode does
        // and leave the cursor at the same byte.
        let cases: Vec<Vec<u8>> = vec![
            vec![0x03], // tag 3, 1-byte
            {
                let mut v = Vec::new();
                write_varint(&mut v, (u64::from(u32::MAX) + 1) << 2); // Exec > u32::MAX
                v
            },
            vec![0x83, 0x01], // 2-byte varint, tag 3
        ];
        for corrupt in cases {
            let mut enc = OpEncoder::new();
            let mut buf = Vec::new();
            enc.encode(TraceOp::Exec(5), &mut buf);
            enc.encode(TraceOp::Load(0x1000), &mut buf);
            buf.extend_from_slice(&corrupt);
            enc.encode(TraceOp::Store(0x1040), &mut buf); // after the corruption
            let mut seq = OpDecoder::new();
            let mut sp = 0;
            let sequential: Vec<TraceOp> =
                std::iter::from_fn(|| seq.decode(&buf, &mut sp)).collect();
            let mut bat = OpDecoder::new();
            let mut bp = 0;
            let mut out = [TraceOp::Exec(0); 16];
            let n = bat.decode_batch(&buf, &mut bp, &mut out);
            assert_eq!(&out[..n], &sequential[..], "ops diverged for {corrupt:?}");
            assert_eq!(bp, sp, "cursor diverged for {corrupt:?}");
        }
    }

    #[test]
    #[should_panic(expected = "62-bit payload")]
    fn oversized_delta_is_rejected_at_encode_time() {
        let mut enc = OpEncoder::new();
        let mut buf = Vec::new();
        // First mem op: delta from 0 is the address itself; 1 << 62 has
        // magnitude 2^62 > 2^61 and must be refused, not truncated.
        enc.encode(TraceOp::Load(1 << 62), &mut buf);
    }

    #[test]
    fn local_deltas_encode_compactly() {
        let mut enc = OpEncoder::new();
        let mut buf = Vec::new();
        enc.encode(TraceOp::Load(1 << 36), &mut buf); // first op pays the full base
        let before = buf.len();
        for i in 1..100u64 {
            enc.encode(TraceOp::Load((1 << 36) + i * 8), &mut buf);
        }
        let per_op = (buf.len() - before) as f64 / 99.0;
        assert!(per_op <= 2.0, "sequential loads must cost ≤2 bytes/op, got {per_op}");
    }

    #[test]
    fn header_roundtrips() {
        let h = TraceHeader {
            version: VERSION,
            label: "mix_stream_revisit".into(),
            seed: 42,
            cores: vec![
                CoreStreamInfo { name: "mpeg2enc".into(), ops: 10, instructions: 55, len: 21 },
                CoreStreamInfo { name: "WATER-NS".into(), ops: 7, instructions: 40, len: 13 },
            ],
        };
        let bytes = h.encode();
        assert_eq!(bytes.len() as u64, h.byte_len());
        let parsed = TraceHeader::read(&mut bytes.as_slice()).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(h.stream_offset(0), h.byte_len());
        assert_eq!(h.stream_offset(1), h.byte_len() + 21);
    }

    #[test]
    fn header_rejects_bad_magic_and_version() {
        let h = TraceHeader { version: VERSION, label: "x".into(), seed: 0, cores: vec![] };
        let mut bytes = h.encode();
        bytes[0] = b'X';
        assert!(TraceHeader::read(&mut bytes.as_slice()).is_err());
        let mut bytes = h.encode();
        bytes[4] = 0xFF; // version 0xFF..
        assert!(TraceHeader::read(&mut bytes.as_slice()).is_err());
    }
}
