//! Recording live workloads into trace files.
//!
//! The recorder is a file-writing veneer over the in-memory
//! [`MemTrace`]: one recording engine serves both the shared-stream
//! path (sweep cells replaying cursors) and the `.cmpt` file tooling,
//! so their byte streams cannot drift apart.

use crate::format::{CoreStreamInfo, TraceHeader};
use crate::mem::MemTrace;
use cmpleak_cpu::Workload;
use cmpleak_mem::BankArena;
use std::io::{self, Write};
use std::path::Path;

/// Accumulates per-core encoded streams and writes the final file.
///
/// Record cores in core order; each stream captures the exact op prefix
/// a simulation with `instructions ≤ min_instructions` will fetch (the
/// core model stops pulling ops once its budget is dispatched, so a
/// stream whose cumulative instruction count reaches the budget covers
/// every fetch).
#[derive(Debug)]
pub struct TraceRecorder {
    trace: MemTrace,
    arena: BankArena,
}

impl TraceRecorder {
    /// Start a recording labelled `label` (scenario/benchmark name) for
    /// streams generated under `seed`.
    pub fn new(label: impl Into<String>, seed: u64) -> Self {
        Self { trace: MemTrace::new(label, seed), arena: BankArena::default() }
    }

    /// Pull ops from `wl` until their cumulative instruction count
    /// reaches `min_instructions`, encoding them as the next core's
    /// stream. Returns the recorded stream's metadata.
    pub fn record_core(&mut self, wl: &mut dyn Workload, min_instructions: u64) -> &CoreStreamInfo {
        self.trace.record_core(wl, min_instructions, &mut self.arena)
    }

    /// The header describing what has been recorded so far.
    pub fn header(&self) -> TraceHeader {
        self.trace.header()
    }

    /// The recording itself, for in-memory replay without a file.
    pub fn into_mem_trace(self) -> MemTrace {
        self.trace
    }

    /// Serialize the whole trace file (header + streams).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.trace.to_file_bytes()
    }

    /// Write the trace file through `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.header().encode())?;
        for core in 0..self.trace.n_cores() {
            w.write_all(self.trace.stream(core))?;
        }
        Ok(())
    }

    /// Save the trace file to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.write_to(&mut f)?;
        f.flush()
    }
}

/// Record one stream per workload (core order), each covering
/// `min_instructions` instructions.
pub fn record_workloads(
    label: impl Into<String>,
    seed: u64,
    workloads: &mut [Box<dyn Workload>],
    min_instructions: u64,
) -> TraceRecorder {
    let mut rec = TraceRecorder::new(label, seed);
    for wl in workloads.iter_mut() {
        rec.record_core(wl.as_mut(), min_instructions);
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpleak_cpu::{ReplayWorkload, TraceOp};

    #[test]
    fn records_until_budget_is_covered() {
        let mut wl = ReplayWorkload::named(
            "t",
            vec![TraceOp::Exec(3), TraceOp::Load(64), TraceOp::Store(128)],
        );
        let mut rec = TraceRecorder::new("unit", 1);
        let info = rec.record_core(&mut wl, 10);
        // Cycle of 5 instructions: 10 requires exactly two full cycles.
        assert_eq!(info.instructions, 10);
        assert_eq!(info.ops, 6);
        assert_eq!(info.name, "t");
    }

    #[test]
    fn file_layout_matches_header_offsets() {
        let mut a = ReplayWorkload::named("a", vec![TraceOp::Exec(2), TraceOp::Load(64)]);
        let mut b = ReplayWorkload::named("b", vec![TraceOp::Store(4096)]);
        let mut rec = TraceRecorder::new("two", 7);
        rec.record_core(&mut a, 9);
        rec.record_core(&mut b, 4);
        let bytes = rec.to_bytes();
        let header = rec.header();
        let total: u64 = header.byte_len() + header.cores.iter().map(|c| c.len).sum::<u64>();
        assert_eq!(bytes.len() as u64, total);
        assert_eq!(header.stream_offset(1), header.byte_len() + header.cores[0].len);
    }

    #[test]
    fn recorder_converts_into_a_replayable_mem_trace() {
        let mut wl = ReplayWorkload::named("t", vec![TraceOp::Exec(1), TraceOp::Load(64)]);
        let mut rec = TraceRecorder::new("unit", 9);
        rec.record_core(&mut wl, 8);
        let trace = std::sync::Arc::new(rec.into_mem_trace());
        let mut cur = trace.cursor(0);
        let mut live = ReplayWorkload::named("t", vec![TraceOp::Exec(1), TraceOp::Load(64)]);
        for _ in 0..cur.total_ops() {
            assert_eq!(cmpleak_cpu::Workload::next_op(&mut cur), live.next_op());
        }
    }
}
