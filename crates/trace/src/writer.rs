//! Recording live workloads into trace files.

use crate::format::{CoreStreamInfo, OpEncoder, TraceHeader, VERSION};
use cmpleak_cpu::Workload;
use std::io::{self, Write};
use std::path::Path;

/// Accumulates per-core encoded streams and writes the final file.
///
/// Record cores in core order; each stream captures the exact op prefix
/// a simulation with `instructions ≤ min_instructions` will fetch (the
/// core model stops pulling ops once its budget is dispatched, so a
/// stream whose cumulative instruction count reaches the budget covers
/// every fetch).
#[derive(Debug)]
pub struct TraceRecorder {
    label: String,
    seed: u64,
    cores: Vec<RecordedCore>,
}

#[derive(Debug)]
struct RecordedCore {
    info: CoreStreamInfo,
    bytes: Vec<u8>,
}

impl TraceRecorder {
    /// Start a recording labelled `label` (scenario/benchmark name) for
    /// streams generated under `seed`.
    pub fn new(label: impl Into<String>, seed: u64) -> Self {
        Self { label: label.into(), seed, cores: Vec::new() }
    }

    /// Pull ops from `wl` until their cumulative instruction count
    /// reaches `min_instructions`, encoding them as the next core's
    /// stream. Returns the recorded stream's metadata.
    pub fn record_core(&mut self, wl: &mut dyn Workload, min_instructions: u64) -> &CoreStreamInfo {
        let mut enc = OpEncoder::new();
        let mut bytes = Vec::new();
        let (mut ops, mut instructions) = (0u64, 0u64);
        while instructions < min_instructions {
            let op = wl.next_op();
            enc.encode(op, &mut bytes);
            ops += 1;
            instructions += op.instructions();
        }
        let info = CoreStreamInfo {
            name: wl.name().to_string(),
            ops,
            instructions,
            len: bytes.len() as u64,
        };
        self.cores.push(RecordedCore { info, bytes });
        &self.cores.last().expect("just pushed").info
    }

    /// The header describing what has been recorded so far.
    pub fn header(&self) -> TraceHeader {
        TraceHeader {
            version: VERSION,
            label: self.label.clone(),
            seed: self.seed,
            cores: self.cores.iter().map(|c| c.info.clone()).collect(),
        }
    }

    /// Serialize the whole trace file (header + streams).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.header().encode();
        for c in &self.cores {
            out.extend_from_slice(&c.bytes);
        }
        out
    }

    /// Write the trace file through `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.header().encode())?;
        for c in &self.cores {
            w.write_all(&c.bytes)?;
        }
        Ok(())
    }

    /// Save the trace file to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.write_to(&mut f)?;
        f.flush()
    }
}

/// Record one stream per workload (core order), each covering
/// `min_instructions` instructions.
pub fn record_workloads(
    label: impl Into<String>,
    seed: u64,
    workloads: &mut [Box<dyn Workload>],
    min_instructions: u64,
) -> TraceRecorder {
    let mut rec = TraceRecorder::new(label, seed);
    for wl in workloads.iter_mut() {
        rec.record_core(wl.as_mut(), min_instructions);
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpleak_cpu::{ReplayWorkload, TraceOp};

    #[test]
    fn records_until_budget_is_covered() {
        let mut wl = ReplayWorkload::named(
            "t",
            vec![TraceOp::Exec(3), TraceOp::Load(64), TraceOp::Store(128)],
        );
        let mut rec = TraceRecorder::new("unit", 1);
        let info = rec.record_core(&mut wl, 10);
        // Cycle of 5 instructions: 10 requires exactly two full cycles.
        assert_eq!(info.instructions, 10);
        assert_eq!(info.ops, 6);
        assert_eq!(info.name, "t");
    }

    #[test]
    fn file_layout_matches_header_offsets() {
        let mut a = ReplayWorkload::named("a", vec![TraceOp::Exec(2), TraceOp::Load(64)]);
        let mut b = ReplayWorkload::named("b", vec![TraceOp::Store(4096)]);
        let mut rec = TraceRecorder::new("two", 7);
        rec.record_core(&mut a, 9);
        rec.record_core(&mut b, 4);
        let bytes = rec.to_bytes();
        let header = rec.header();
        let total: u64 = header.byte_len() + header.cores.iter().map(|c| c.len).sum::<u64>();
        assert_eq!(bytes.len() as u64, total);
        assert_eq!(header.stream_offset(1), header.byte_len() + header.cores[0].len);
    }
}
