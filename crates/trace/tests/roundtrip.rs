//! Round-trip properties: recording any generator stream and replaying
//! it must reproduce the exact op sequence, for every benchmark, core
//! and seed — the foundation the system-level differential tests build
//! on.

use cmpleak_cpu::{TraceOp, Workload};
use cmpleak_trace::{record_workloads, OpDecoder, OpEncoder, TraceFile, TraceRecorder};
use cmpleak_workloads::{GenerationalWorkload, WorkloadSpec};
use proptest::prelude::*;

proptest! {
    /// Replay equals live generation op-for-op across the whole suite.
    #[test]
    fn replay_matches_live_stream(
        idx in 0usize..6,
        core in 0usize..4,
        seed in 0u64..100_000,
    ) {
        let spec = WorkloadSpec::paper_suite()[idx];
        let mut live = GenerationalWorkload::new(spec, core, 4, seed);
        let mut rec = TraceRecorder::new(spec.name, seed);
        let info = rec.record_core(&mut live, 20_000);
        let (ops, instructions) = (info.ops, info.instructions);
        prop_assert!(instructions >= 20_000);
        prop_assert!(instructions - 20_000 < 64, "overshoot is at most one op's instructions");

        let tf = TraceFile::from_bytes(rec.to_bytes()).unwrap();
        let mut replay = tf.core_workload(0).unwrap();
        prop_assert_eq!(replay.name(), spec.name);
        let mut fresh = GenerationalWorkload::new(spec, core, 4, seed);
        for i in 0..ops {
            let (r, l) = (replay.next_op(), fresh.next_op());
            prop_assert_eq!(r, l, "op {} diverged", i);
        }
        prop_assert!(replay.try_next_op().is_none());
    }

    /// The fast batch decoder (1/2-byte varint fast paths + generic
    /// fallback) equals sequential `decode`, for arbitrary op mixes —
    /// including large deltas that force long varints — and for every
    /// split of the stream into odd-sized batches.
    #[test]
    fn batch_decode_equals_sequential_decode(
        ops in proptest::collection::vec(
            prop_oneof![
                (0u32..1 << 20).prop_map(TraceOp::Exec),
                any::<u64>().prop_map(|a| TraceOp::Load(a >> 4)),
                any::<u64>().prop_map(|a| TraceOp::Store(a >> 4)),
            ],
            1..200,
        ),
        chunk in 1usize..70,
    ) {
        let mut enc = OpEncoder::new();
        let mut buf = Vec::new();
        for &op in &ops {
            enc.encode(op, &mut buf);
        }
        let mut seq = OpDecoder::new();
        let mut sp = 0;
        let sequential: Vec<TraceOp> =
            std::iter::from_fn(|| seq.decode(&buf, &mut sp)).collect();
        prop_assert_eq!(&sequential, &ops);

        let mut bat = OpDecoder::new();
        let mut bp = 0;
        let mut batched = Vec::new();
        let mut out = vec![TraceOp::Exec(0); chunk];
        loop {
            let n = bat.decode_batch(&buf, &mut bp, &mut out);
            batched.extend_from_slice(&out[..n]);
            if n < chunk {
                break;
            }
        }
        prop_assert_eq!(&batched, &ops, "batch decode diverged (chunk {})", chunk);
        prop_assert_eq!(bp, sp, "batch decode must consume the same bytes");
    }

    /// The encoded stream is compact: well under 4 bytes per op on the
    /// suite's spatially local streams.
    #[test]
    fn encoding_is_compact(idx in 0usize..6, seed in 0u64..10_000) {
        let spec = WorkloadSpec::paper_suite()[idx];
        let mut live = GenerationalWorkload::new(spec, 0, 4, seed);
        let mut rec = TraceRecorder::new(spec.name, seed);
        let info = rec.record_core(&mut live, 30_000);
        let per_op = info.len as f64 / info.ops as f64;
        prop_assert!(per_op < 4.0, "{}: {per_op:.2} bytes/op", spec.name);
    }
}

#[test]
fn multi_core_recording_keeps_streams_independent() {
    let spec = WorkloadSpec::water_ns();
    let mut wls: Vec<Box<dyn Workload>> = (0..4)
        .map(|c| Box::new(GenerationalWorkload::new(spec, c, 4, 42)) as Box<dyn Workload>)
        .collect();
    let rec = record_workloads(spec.name, 42, &mut wls, 5_000);
    let tf = TraceFile::from_bytes(rec.to_bytes()).unwrap();
    assert_eq!(tf.n_cores(), 4);
    assert!(tf.min_core_instructions() >= 5_000);
    // Each replayed stream must match a fresh generator for its core.
    for core in 0..4 {
        let mut replay = tf.core_workload(core).unwrap();
        let mut fresh = GenerationalWorkload::new(spec, core, 4, 42);
        for _ in 0..replay.total_ops() {
            assert_eq!(replay.next_op(), fresh.next_op(), "core {core}");
        }
    }
}

#[test]
fn instruction_accounting_matches_op_sum() {
    let spec = WorkloadSpec::fmm();
    let mut live = GenerationalWorkload::new(spec, 1, 4, 9);
    let mut rec = TraceRecorder::new(spec.name, 9);
    rec.record_core(&mut live, 8_000);
    let tf = TraceFile::from_bytes(rec.to_bytes()).unwrap();
    let mut replay = tf.core_workload(0).unwrap();
    let mut sum = 0u64;
    let mut ops = 0u64;
    while let Some(op) = replay.try_next_op() {
        sum += op.instructions();
        ops += 1;
        // Sanity: decoded ops are well-formed.
        if let TraceOp::Exec(n) = op {
            assert!(n < 1_000_000, "implausible exec burst {n}");
        }
    }
    assert_eq!(ops, tf.header().cores[0].ops);
    assert_eq!(sum, tf.header().cores[0].instructions);
}
