//! Adversarial-boundary differential for [`OpDecoder::decode_batch`]
//! against sequential [`OpDecoder::decode`].
//!
//! The generic batch-vs-sequential property lives in
//! `tests/roundtrip.rs`; this file targets the three boundaries where
//! the batched fast path hands over to other code paths, because that is
//! where a cursor bookkeeping slip would hide:
//!
//! * a **1-byte op landing exactly on the final byte** of the stream —
//!   the 2-byte fast-path window no longer fits and the tail loop must
//!   finish the op;
//! * **≥3-byte varints mid-batch** (huge exec bursts, huge address
//!   jumps) — the fast path must bail to the generic decoder for that op
//!   only and resume batching after it;
//! * **corrupt ops at the batch edge** — the batch must stop with the
//!   cursor exactly one varint past the corruption, byte-for-byte where
//!   repeated sequential decode stops.
//!
//! Every property pins both the decoded ops *and* the cursor position —
//! not just at the end of the stream but after every refill, because the
//! lane engine's shared op windows are refilled incrementally and any
//! intermediate cursor drift would corrupt every later delta-decoded
//! address.

use cmpleak_cpu::TraceOp;
use cmpleak_trace::{OpDecoder, OpEncoder};
use proptest::prelude::*;

/// Append `v` as an LEB128 varint (the format's encoding, hand-rolled so
/// the tests can construct corrupt keys `OpEncoder` refuses to emit).
fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Drive a batch decoder and a sequential decoder through `buf` in
/// `chunk`-op refills, asserting identical ops and an identical cursor
/// after **every** refill, then identical final cursors once the batch
/// side stops short (end of stream or corruption). Returns the decoded
/// ops and the final cursor.
fn assert_lockstep(buf: &[u8], chunk: usize) -> (Vec<TraceOp>, usize) {
    let mut seq = OpDecoder::new();
    let mut sp = 0usize;
    let mut bat = OpDecoder::new();
    let mut bp = 0usize;
    let mut all = Vec::new();
    let mut out = vec![TraceOp::Exec(0); chunk];
    loop {
        let n = bat.decode_batch(buf, &mut bp, &mut out);
        for (i, op) in out[..n].iter().enumerate() {
            let s = seq.decode(buf, &mut sp);
            assert_eq!(Some(*op), s, "op {} of a refill diverged", all.len() + i);
        }
        all.extend_from_slice(&out[..n]);
        if n < chunk {
            // The batch stopped short: sequential decode must stop at
            // the very next op, and consuming that `None` (which walks
            // past a corrupt varint, exactly like the batch path) must
            // land both cursors on the same byte.
            assert_eq!(seq.decode(buf, &mut sp), None, "sequential decode kept going");
            assert_eq!(bp, sp, "final cursors diverged (chunk {chunk})");
            return (all, bp);
        }
        assert_eq!(bp, sp, "cursors diverged after a full {chunk}-op refill");
    }
}

fn small_ops() -> impl Strategy<Value = Vec<TraceOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..1 << 20).prop_map(TraceOp::Exec),
            any::<u64>().prop_map(|a| TraceOp::Load(a >> 4)),
            any::<u64>().prop_map(|a| TraceOp::Store(a >> 4)),
        ],
        0..40,
    )
}

proptest! {
    /// A 1-byte op whose encoding is the stream's final byte decodes via
    /// the tail loop (no 2-byte window left) with the cursor ending
    /// exactly at `buf.len()`, for every batch size and prefix.
    #[test]
    fn one_byte_op_on_the_final_byte(
        prefix in small_ops(),
        last_exec in 0u32..32,
        mem_last in any::<bool>(),
        chunk in 1usize..48,
    ) {
        let mut enc = OpEncoder::new();
        let mut buf = Vec::new();
        // Mirror the encoder's delta state so the trailing memory op can
        // be given a small delta (→ a 1-byte varint) from any prefix.
        let mut prev = 0u64;
        for &op in &prefix {
            if let TraceOp::Load(a) | TraceOp::Store(a) = op {
                prev = a;
            }
            enc.encode(op, &mut buf);
        }
        let last =
            if mem_last { TraceOp::Load(prev.wrapping_add(4)) } else { TraceOp::Exec(last_exec) };
        let before = buf.len();
        enc.encode(last, &mut buf);
        prop_assert_eq!(buf.len(), before + 1, "the trailing op must encode to 1 byte");

        let (ops, end) = assert_lockstep(&buf, chunk);
        prop_assert_eq!(ops.len(), prefix.len() + 1);
        prop_assert_eq!(ops.last().copied(), Some(last));
        prop_assert_eq!(end, buf.len());
    }

    /// ≥3-byte varints interleaved mid-batch (huge exec bursts and huge
    /// address jumps): the fast path bails to the generic decoder for
    /// those ops only, with no cursor drift at any refill boundary.
    #[test]
    fn long_varints_mid_batch(
        ops in proptest::collection::vec(
            prop_oneof![
                (0u32..64).prop_map(TraceOp::Exec),
                // key = n << 2 ≥ 2^16 → at least a 3-byte varint.
                ((1u32 << 14)..u32::MAX).prop_map(TraceOp::Exec),
                ((1u64 << 21)..(1 << 44)).prop_map(TraceOp::Load),
                (0u64..(1 << 44)).prop_map(TraceOp::Store),
            ],
            1..120,
        ),
        chunk in 1usize..70,
    ) {
        let mut enc = OpEncoder::new();
        let mut buf = Vec::new();
        for &op in &ops {
            enc.encode(op, &mut buf);
        }
        let (decoded, end) = assert_lockstep(&buf, chunk);
        prop_assert_eq!(decoded, ops);
        prop_assert_eq!(end, buf.len());
    }

    /// A corrupt varint after `good` well-formed ops: by sweeping `good`
    /// against `chunk` the corruption lands at every in-batch offset,
    /// including the first and last slot of a refill. The batch stops
    /// with the cursor one varint past the corruption — not at the
    /// stream end — and byte-identical to sequential decode.
    #[test]
    fn corrupt_op_at_batch_edge(
        good in 0usize..48,
        chunk in 1usize..48,
        kind in 0usize..3,
    ) {
        let mut enc = OpEncoder::new();
        let mut buf = Vec::new();
        let mut expect = Vec::new();
        for i in 0..good {
            let op = if i % 2 == 0 {
                TraceOp::Exec(3)
            } else {
                TraceOp::Load(0x1000 + i as u64 * 8)
            };
            expect.push(op);
            enc.encode(op, &mut buf);
        }
        match kind {
            0 => buf.push(0x03),                       // tag 3, 1-byte fast path
            1 => buf.extend_from_slice(&[0x83, 0x01]), // tag 3, 2-byte fast path
            // Exec payload > u32::MAX behind a long varint: the generic
            // path decodes the varint, then rejects the key.
            _ => push_varint(&mut buf, (u64::from(u32::MAX) + 1) << 2),
        }
        let after_corrupt = buf.len();
        enc.encode(TraceOp::Store(0x8000), &mut buf); // bytes beyond the corruption

        let (ops, end) = assert_lockstep(&buf, chunk);
        prop_assert_eq!(ops, expect);
        prop_assert_eq!(end, after_corrupt, "cursor must stop one varint past the corruption");
    }
}

#[test]
fn corrupt_final_byte_is_consumed_like_sequential_decode() {
    // Corruption in the tail position (the stream's last byte): the tail
    // loop consumes the bad varint and stops, cursor at end-of-stream.
    let mut enc = OpEncoder::new();
    let mut buf = Vec::new();
    for op in [TraceOp::Exec(7), TraceOp::Load(0x2000), TraceOp::Store(0x2040)] {
        enc.encode(op, &mut buf);
    }
    buf.push(0x03); // tag-3 key as the final byte
    let (ops, end) = assert_lockstep(&buf, 16);
    assert_eq!(ops, vec![TraceOp::Exec(7), TraceOp::Load(0x2000), TraceOp::Store(0x2040)]);
    assert_eq!(end, buf.len());
}

#[test]
fn truncated_trailing_varint_stops_both_decoders_at_the_same_byte() {
    // A continuation byte with no successor: both paths walk to the end
    // of the buffer looking for the terminator and stop there.
    let mut enc = OpEncoder::new();
    let mut buf = Vec::new();
    enc.encode(TraceOp::Exec(500_000), &mut buf); // multi-byte varint
    buf.push(0x80); // dangling continuation byte
    let (ops, end) = assert_lockstep(&buf, 8);
    assert_eq!(ops, vec![TraceOp::Exec(500_000)]);
    assert_eq!(end, buf.len());
}
