//! Shared helpers for the benchmark harness (`repro` binary + criterion
//! benches).

#![forbid(unsafe_code)]

pub mod json_scan;

pub use json_scan::{array_lines, json_field, json_str_field};

use cmpleak_core::sweep::{run_sweep, SweepConfig, SweepResults};

/// The paper's full evaluation grid (6 benchmarks × 4 sizes × 7
/// techniques + baselines) at a given per-core instruction count.
pub fn paper_sweep(instructions_per_core: u64) -> SweepResults {
    run_sweep(&SweepConfig::paper(instructions_per_core))
}

/// A reduced grid for smoke tests and criterion benches.
pub fn smoke_sweep(instructions_per_core: u64) -> SweepResults {
    run_sweep(&SweepConfig::smoke(instructions_per_core))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpleak_core::figures::FigureSet;

    #[test]
    fn smoke_sweep_feeds_every_figure() {
        let res = smoke_sweep(20_000);
        let figs = FigureSet::new(&res);
        for f in figs.all_by_size() {
            assert!(!f.rows.is_empty() && !f.cols.is_empty(), "{}", f.id);
        }
        assert_eq!(figs.headline(1).len(), 3);
    }
}
