//! Minimal line scanners for the harness's own pretty-printed BENCH
//! JSON reports.
//!
//! The vendored JSON crate is serialize-only, and every file these
//! scanners read is a bench bin's own `to_string_pretty` output — one
//! field per line — so a line-per-field scan is exact. This is *not* a
//! general JSON parser: feed it hand-edited or minified JSON and fields
//! simply fail to match (`None`), they never misparse into wrong
//! values.

/// `"key": value` on a pretty-printed line → the raw value text
/// (string quotes intact). The line must already be trimmed with any
/// trailing comma removed, which is what [`array_lines`] yields.
pub fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    Some(line.strip_prefix('"')?.strip_prefix(key)?.strip_prefix("\":")?.trim())
}

/// `"key": "text"` on a pretty-printed line → the unquoted text.
pub fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    Some(json_field(line, key)?.trim_matches('"'))
}

/// The trimmed lines (trailing commas stripped) of a named top-level
/// array in a pretty-printed report: iteration starts *after* the line
/// introducing `"array_key"` and ends at the line introducing
/// `"stop_key"` (exclusive) or at end of input. Callers scan the
/// yielded lines with [`json_field`] and assemble rows when every
/// wanted field has been seen — object braces pass through harmlessly.
pub fn array_lines<'a>(
    text: &'a str,
    array_key: &str,
    stop_key: &str,
) -> impl Iterator<Item = &'a str> + 'a {
    let start = format!("\"{array_key}\"");
    let stop = format!("\"{stop_key}\"");
    let mut in_array = false;
    let mut done = false;
    text.lines().filter_map(move |line| {
        if done {
            return None;
        }
        let t = line.trim().trim_end_matches(',');
        if !in_array {
            in_array = t.starts_with(start.as_str());
            return None;
        }
        if t.starts_with(stop.as_str()) {
            done = true;
            return None;
        }
        Some(t)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "reps": 3,
  "groups": [
    {
      "scenario": "water-ns",
      "size_mb": 1,
      "speedup": 2.5
    },
    {
      "scenario": "fft",
      "size_mb": 8,
      "speedup": 1.25
    }
  ],
  "grid": {
    "scenario": "NOT-A-GROUP",
    "size_mb": 99
  }
}
"#;

    #[test]
    fn fields_parse_and_strings_unquote() {
        assert_eq!(json_field("\"size_mb\": 8", "size_mb"), Some("8"));
        assert_eq!(json_str_field("\"scenario\": \"fft\"", "scenario"), Some("fft"));
        assert_eq!(json_field("\"size_mb\": 8", "scenario"), None);
        assert_eq!(json_field("size_mb: 8", "size_mb"), None);
    }

    #[test]
    fn array_scan_stops_at_the_stop_key() {
        let mut rows = Vec::new();
        let (mut scenario, mut size) = (None::<String>, None::<usize>);
        for t in array_lines(DOC, "groups", "grid") {
            if let Some(v) = json_str_field(t, "scenario") {
                scenario = Some(v.to_string());
            } else if let Some(v) = json_field(t, "size_mb") {
                size = v.parse().ok();
            }
            if let (Some(s), Some(mb)) = (&scenario, size) {
                rows.push((s.clone(), mb));
                (scenario, size) = (None, None);
            }
        }
        assert_eq!(rows, vec![("water-ns".to_string(), 1), ("fft".to_string(), 8)]);
    }

    #[test]
    fn missing_array_yields_nothing() {
        assert_eq!(array_lines(DOC, "absent", "grid").count(), 0);
    }
}
