//! Result-store harness: measures what the content-addressed
//! persistent store buys — replaying a previously published grid from
//! disk instead of re-simulating it — and what in-pool stream
//! recording costs across worker counts, and emits `BENCH_store.json`.
//!
//! ```text
//! store [--instr N] [--reps N] [--quick] [--out PATH]
//! ```
//!
//! Two sections:
//!
//! * **cold vs warm** — the paper grid through `run_sweep` against a
//!   fresh store (every cell a miss: simulate + publish) and then again
//!   against the now-populated store (every cell a hit: decode only).
//!   Both passes are asserted byte-identical to `run_sweep_uncached`
//!   before timing — the store may change latency, never results.
//! * **recording** — the same grid uncached at 1, 2 and 8 worker
//!   threads, exercising the in-pool first-toucher stream recording;
//!   all thread counts are asserted byte-identical.
//!
//! `--quick` shrinks everything to a CI smoke asserting the warm pass
//! is at least 2× the cold pass and thread counts agree; the committed
//! JSON is a full run (where warm replay is expected well above 5×).

use cmpleak_core::sweep::{
    run_sweep_uncached, run_sweep_with_telemetry, SweepConfig, SweepTelemetry,
};
use cmpleak_core::{ExperimentScratch, Scenario, Technique, WorkloadSpec};
use cmpleak_store::ResultStore;
use cmpleak_workloads::ScenarioSpec;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct PassCell {
    /// Wall-clock seconds, best of `reps`.
    wall_s: f64,
    store_hits: usize,
    store_misses: usize,
    /// Stream groups recorded in-pool during the pass.
    recorded: usize,
}

#[derive(Debug, Serialize)]
struct ThreadCell {
    threads: usize,
    /// Wall-clock seconds, best of `reps` (uncached, in-pool recording).
    wall_s: f64,
    recorded: usize,
    /// `serial wall_s / this wall_s`.
    speedup_vs_serial: f64,
}

#[derive(Debug, Serialize)]
struct StoreReport {
    instructions_per_core: u64,
    n_cores: usize,
    reps: u32,
    scenarios: usize,
    sizes: usize,
    cells: usize,
    /// On-disk records after the cold pass.
    records: usize,
    cold: PassCell,
    warm: PassCell,
    /// `cold.wall_s / warm.wall_s` — what a fully-warm repeat buys.
    warm_speedup: f64,
    recording: Vec<ThreadCell>,
}

struct Opts {
    instr: u64,
    reps: u32,
    quick: bool,
    out: Option<String>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts { instr: 150_000, reps: 2, quick: false, out: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--instr" => opts.instr = args.next().and_then(|v| v.parse().ok()).expect("--instr N"),
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--quick" => opts.quick = true,
            "--out" => opts.out = Some(args.next().expect("--out PATH")),
            other => panic!("unknown argument {other} (try --instr/--reps/--quick/--out)"),
        }
    }
    if opts.quick {
        opts.instr = opts.instr.min(30_000);
        opts.reps = 2;
    }
    opts
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let mut v: Vec<Scenario> =
        WorkloadSpec::paper_suite().into_iter().map(Scenario::Homogeneous).collect();
    v.extend(ScenarioSpec::paper_mixes().into_iter().map(Scenario::Mix));
    if quick {
        v = vec![
            Scenario::Homogeneous(WorkloadSpec::water_ns()),
            Scenario::Mix(ScenarioSpec::bursty_idle()),
        ];
    }
    v
}

fn grid_cfg(opts: &Opts, sizes: &[usize], threads: usize) -> SweepConfig {
    SweepConfig {
        scenarios: scenarios(opts.quick),
        sizes_mb: sizes.to_vec(),
        techniques: Technique::paper_set(),
        instructions_per_core: opts.instr,
        seed: 42,
        n_cores: 4,
        threads,
        store: None,
    }
}

/// Best-of-`reps` wall-clock of `f`, with a per-rep reset hook that is
/// NOT timed (wiping the store between cold reps).
fn time_s(reps: u32, mut reset: impl FnMut(), mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        reset();
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn json(results: &cmpleak_core::sweep::SweepResults) -> String {
    serde_json::to_string(results).expect("serializable")
}

fn main() {
    let opts = parse_opts();
    let sizes: Vec<usize> = if opts.quick { vec![1] } else { vec![1, 2, 4, 8] };
    let root = std::env::temp_dir().join(format!("cmpleak-store-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    // Ground truth: the uncached grid. Every store-backed pass below
    // must reproduce this byte-for-byte.
    let cfg = grid_cfg(&opts, &sizes, 0);
    let fresh = run_sweep_uncached(&cfg);
    let fresh_json = json(&fresh);
    let cells = fresh.cells.len();
    println!(
        "grid: {} scenarios x {} sizes x {} techniques = {} cells",
        cfg.scenarios.len(),
        sizes.len(),
        cfg.techniques.len(),
        cells
    );

    // == cold vs warm ==
    let store = Arc::new(ResultStore::open(&root).expect("store root"));
    let mut cached_cfg = grid_cfg(&opts, &sizes, 0);
    cached_cfg.store = Some(Arc::clone(&store));

    let mut scratch = ExperimentScratch::default();
    let mut telemetry = SweepTelemetry::default();
    let cold_s = time_s(
        opts.reps,
        || {
            // Wipe so every rep is a true cold start (untimed).
            std::fs::remove_dir_all(&root).ok();
            std::fs::create_dir_all(&root).expect("store root");
        },
        || {
            let (res, t) = run_sweep_with_telemetry(&cached_cfg, &mut scratch);
            assert_eq!(json(&res), fresh_json, "cold store pass diverged from uncached");
            telemetry = t;
        },
    );
    let cold = PassCell {
        wall_s: cold_s,
        store_hits: telemetry.store_hits,
        store_misses: telemetry.store_misses,
        recorded: telemetry.recorded,
    };
    assert_eq!(cold.store_hits, 0, "cold pass saw hits in a wiped store");
    let records = store.record_count();
    println!(
        "cold: {:.3}s ({} misses published, {} stream groups recorded, {} records on disk)",
        cold.wall_s, cold.store_misses, cold.recorded, records
    );

    let warm_s = time_s(
        opts.reps,
        || {},
        || {
            let (res, t) = run_sweep_with_telemetry(&cached_cfg, &mut scratch);
            assert_eq!(json(&res), fresh_json, "warm store pass diverged from uncached");
            telemetry = t;
        },
    );
    let warm = PassCell {
        wall_s: warm_s,
        store_hits: telemetry.store_hits,
        store_misses: telemetry.store_misses,
        recorded: telemetry.recorded,
    };
    assert_eq!(warm.store_misses, 0, "warm pass re-simulated a stored cell");
    assert_eq!(warm.recorded, 0, "warm pass recorded streams it never replays");
    let warm_speedup = cold.wall_s / warm.wall_s;
    println!(
        "warm: {:.3}s ({} hits, {} recorded) -> {:.1}x over cold",
        warm.wall_s, warm.store_hits, warm.recorded, warm_speedup
    );

    // == in-pool recording scaling (uncached) ==
    let mut recording = Vec::new();
    let mut serial_s = f64::NAN;
    for threads in [1usize, 2, 8] {
        let cfg_t = grid_cfg(&opts, &sizes, threads);
        let mut t = SweepTelemetry::default();
        let wall_s = time_s(
            opts.reps,
            || {},
            || {
                let mut s = ExperimentScratch::default();
                let mut cfg_uncached = cfg_t.clone();
                cfg_uncached.store = None;
                let (res, tel) = run_sweep_with_telemetry(&cfg_uncached, &mut s);
                assert_eq!(
                    json(&res),
                    fresh_json,
                    "in-pool recording diverged at {threads} thread(s)"
                );
                t = tel;
            },
        );
        if threads == 1 {
            serial_s = wall_s;
        }
        let cell = ThreadCell {
            threads,
            wall_s,
            recorded: t.recorded,
            speedup_vs_serial: serial_s / wall_s,
        };
        println!(
            "recording @ {} thread(s): {:.3}s ({} groups recorded in-pool, {:.2}x vs serial)",
            cell.threads, cell.wall_s, cell.recorded, cell.speedup_vs_serial
        );
        recording.push(cell);
    }

    if opts.quick {
        // CI smoke: a fully-warm repeat must beat a cold run by a wide
        // margin even at smoke scale (full runs land far above this).
        assert!(warm_speedup > 2.0, "warm store replay only {warm_speedup:.2}x over cold");
    }

    let report = StoreReport {
        instructions_per_core: opts.instr,
        n_cores: 4,
        reps: opts.reps,
        scenarios: cfg.scenarios.len(),
        sizes: sizes.len(),
        cells,
        records,
        cold,
        warm,
        warm_speedup,
        recording,
    };
    std::fs::remove_dir_all(&root).ok();
    if let Some(path) = &opts.out {
        let mut json = serde_json::to_string_pretty(&report).expect("serializable");
        json.push('\n');
        std::fs::write(path, json).expect("report written");
        println!("wrote {path}");
    }
}
