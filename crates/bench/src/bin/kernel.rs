//! Kernel throughput harness: measures simulator instructions/second for
//! every (scenario × technique) cell of the paper grid under both cycle
//! kernels and emits `BENCH_kernel.json`.
//!
//! ```text
//! kernel [--instr N] [--reps N] [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the grid and budget to a CI smoke (it checks that
//! both kernels run and that the skip kernel is not slower by more than
//! a sanity margin; the committed JSON is produced by a full run).

use cmpleak_core::experiment::{run_experiment_with_scratch, ExperimentConfig, ExperimentScratch};
use cmpleak_core::{Scenario, Technique, WorkloadSpec};
use cmpleak_system::SimKernel;
use cmpleak_workloads::ScenarioSpec;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct BenchCell {
    scenario: String,
    technique: String,
    /// Simulated instructions per wall-clock second, per-cycle kernel.
    per_cycle_ips: f64,
    /// Simulated instructions per wall-clock second, skip kernel.
    quiescence_skip_ips: f64,
    /// `quiescence_skip_ips / per_cycle_ips`.
    speedup: f64,
    /// Simulated cycles of the run (identical for both kernels).
    cycles: u64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    instructions_per_core: u64,
    n_cores: usize,
    total_l2_mb: usize,
    reps: u32,
    cells: Vec<BenchCell>,
}

struct Opts {
    instr: u64,
    reps: u32,
    quick: bool,
    out: Option<String>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts { instr: 300_000, reps: 3, quick: false, out: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--instr" => opts.instr = args.next().and_then(|v| v.parse().ok()).expect("--instr N"),
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--quick" => opts.quick = true,
            "--out" => opts.out = Some(args.next().expect("--out PATH")),
            other => panic!("unknown argument {other} (try --instr/--reps/--quick/--out)"),
        }
    }
    if opts.quick {
        opts.instr = opts.instr.min(40_000);
        opts.reps = 1;
    }
    opts
}

fn grid(quick: bool) -> (Vec<Scenario>, Vec<Technique>) {
    let mut scenarios: Vec<Scenario> =
        WorkloadSpec::paper_suite().into_iter().map(Scenario::Homogeneous).collect();
    scenarios.extend(ScenarioSpec::paper_mixes().into_iter().map(Scenario::Mix));
    let mut techniques = vec![Technique::Baseline];
    techniques.extend(Technique::paper_set());
    if quick {
        scenarios = vec![
            Scenario::Homogeneous(WorkloadSpec::water_ns()),
            Scenario::Mix(ScenarioSpec::bursty_idle()),
        ];
        techniques = vec![Technique::Baseline, Technique::Decay { decay_cycles: 64 * 1024 }];
    }
    (scenarios, techniques)
}

/// Best-of-`reps` instructions/second (and the run's cycle count).
fn measure(cfg: &ExperimentConfig, reps: u32, scratch: &mut ExperimentScratch) -> (f64, u64) {
    let mut best = 0f64;
    let mut cycles = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = run_experiment_with_scratch(cfg, scratch);
        let dt = t0.elapsed().as_secs_f64();
        best = best.max(r.stats.instructions as f64 / dt);
        cycles = r.stats.cycles;
    }
    (best, cycles)
}

fn main() {
    let opts = parse_opts();
    let (scenarios, techniques) = grid(opts.quick);
    let total_l2_mb = 4;
    let mut scratch = ExperimentScratch::default();
    let mut cells = Vec::new();
    println!(
        "{:<20} {:<14} {:>12} {:>12} {:>8}",
        "scenario", "technique", "percycle i/s", "skip i/s", "speedup"
    );
    for scenario in &scenarios {
        for &technique in &techniques {
            let mut cfg =
                ExperimentConfig::paper_scenario(scenario.clone(), technique, total_l2_mb);
            cfg.instructions_per_core = opts.instr;
            cfg.kernel = SimKernel::PerCycle;
            let (per_cycle_ips, cycles) = measure(&cfg, opts.reps, &mut scratch);
            cfg.kernel = SimKernel::QuiescenceSkip;
            let (skip_ips, skip_cycles) = measure(&cfg, opts.reps, &mut scratch);
            assert_eq!(cycles, skip_cycles, "kernels diverged — run the differential tests");
            let cell = BenchCell {
                scenario: scenario.label(),
                technique: technique.name(),
                per_cycle_ips,
                quiescence_skip_ips: skip_ips,
                speedup: skip_ips / per_cycle_ips,
                cycles,
            };
            println!(
                "{:<20} {:<14} {:>12.3e} {:>12.3e} {:>7.2}x",
                cell.scenario,
                cell.technique,
                cell.per_cycle_ips,
                cell.quiescence_skip_ips,
                cell.speedup
            );
            cells.push(cell);
        }
    }

    let worst = cells.iter().map(|c| c.speedup).fold(f64::INFINITY, f64::min);
    let bursty_best = cells
        .iter()
        .filter(|c| c.scenario == "mix_bursty_idle")
        .map(|c| c.speedup)
        .fold(0f64, f64::max);
    println!("worst-cell speedup {worst:.2}x; best mix_bursty_idle speedup {bursty_best:.2}x");

    let report = BenchReport {
        instructions_per_core: opts.instr,
        n_cores: 4,
        total_l2_mb,
        reps: opts.reps,
        cells,
    };
    if let Some(path) = &opts.out {
        let mut json = serde_json::to_string_pretty(&report).expect("serializable");
        json.push('\n');
        std::fs::write(path, json).expect("report written");
        println!("wrote {path}");
    }
    if opts.quick {
        // CI smoke: the skip kernel must never be catastrophically
        // slower than the reference on the quick grid.
        assert!(worst > 0.80, "skip kernel regressed >20% on the quick grid ({worst:.2}x)");
    }
}
