//! Per-cycle engine harness: measures what the worklist engine buys —
//! iterating only awake cores, integrating the powered-line sum as
//! value × span, and enum-dispatched op feeds — against the full-scan
//! reference on the paper grid, and emits `BENCH_cycle.json`.
//!
//! ```text
//! cycle [--instr N] [--reps N] [--quick] [--out PATH]
//! ```
//!
//! Every (scenario × size) group of the paper grid runs its full
//! technique column (baseline + the 7 paper configurations) over a
//! shared-stream recording — so op delivery is replay-cursor cheap and
//! the timed quantity is the model work per simulated cycle that PR 7's
//! `BENCH_lanes.json` pinned at ~240 ns. Both engine arms are asserted
//! bit-identical (whole `SimStats`, every technique) before any timing.
//!
//! When built with `--features cycle-profile`, the report additionally
//! carries the engines' attribution counters (cycles stepped vs
//! skipped, core phases run vs suppressed, events, grants) — the
//! denominator data for the ns/cycle numbers. The default build
//! compiles those counters out; the committed JSON notes which build
//! produced it.
//!
//! `--quick` shrinks everything to a CI smoke asserting the worklist
//! arm is not slower beyond noise; the committed JSON is a full run.

use cmpleak_core::{Scenario, Technique, WorkloadSpec};
use cmpleak_mem::BankArena;
use cmpleak_system::{run_feeds_with_scratch, CmpConfig, CycleEngine, CycleProfile, SimScratch};
use cmpleak_workloads::ScenarioSpec;
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 42;
const N_CORES: usize = 4;

#[derive(Debug, Serialize)]
struct GroupCell {
    scenario: String,
    size_mb: usize,
    /// Simulated cells in the group (baseline + techniques).
    cells: usize,
    /// Simulated cycles across the group's cells (identical in both
    /// arms — asserted).
    sim_cycles: u64,
    /// Host ns per simulated cycle, full-scan reference arm.
    full_scan_ns_per_cycle: f64,
    /// Host ns per simulated cycle, worklist arm.
    worklist_ns_per_cycle: f64,
    /// `full_scan / worklist`.
    speedup: f64,
}

/// Engine attribution totals (all zero unless built with
/// `--features cycle-profile`).
#[derive(Debug, Default, Clone, Copy, Serialize)]
struct ProfileTotals {
    cycles_stepped: u64,
    cycles_skipped: u64,
    events_popped: u64,
    bus_grants: u64,
    core_phases_run: u64,
    core_phases_suppressed: u64,
}

impl ProfileTotals {
    fn add(&mut self, p: CycleProfile) {
        self.cycles_stepped += p.cycles_stepped;
        self.cycles_skipped += p.cycles_skipped;
        self.events_popped += p.events_popped;
        self.bus_grants += p.bus_grants;
        self.core_phases_run += p.core_phases_run;
        self.core_phases_suppressed += p.core_phases_suppressed;
    }
}

#[derive(Debug, Serialize)]
struct ProfileReport {
    full_scan: ProfileTotals,
    worklist: ProfileTotals,
    /// Share of per-core phases the worklist arm did not run:
    /// `suppressed / (run + suppressed)`.
    worklist_phase_suppression: f64,
}

#[derive(Debug, Serialize)]
struct GridSummary {
    scenarios: usize,
    sizes: usize,
    cells: usize,
    sim_cycles: u64,
    full_scan_s: f64,
    worklist_s: f64,
    full_scan_ns_per_cycle: f64,
    worklist_ns_per_cycle: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct CycleReport {
    instructions_per_core: u64,
    n_cores: usize,
    reps: u32,
    /// Whether the attribution counters were compiled in for this run.
    profiled_build: bool,
    groups: Vec<GroupCell>,
    grid: GridSummary,
    profile: Option<ProfileReport>,
}

struct Opts {
    instr: u64,
    reps: u32,
    quick: bool,
    out: Option<String>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts { instr: 150_000, reps: 3, quick: false, out: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--instr" => opts.instr = args.next().and_then(|v| v.parse().ok()).expect("--instr N"),
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--quick" => opts.quick = true,
            "--out" => opts.out = Some(args.next().expect("--out PATH")),
            other => panic!("unknown argument {other} (try --instr/--reps/--quick/--out)"),
        }
    }
    if opts.quick {
        opts.instr = opts.instr.min(30_000);
        opts.reps = 2;
    }
    opts
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let mut v: Vec<Scenario> =
        WorkloadSpec::paper_suite().into_iter().map(Scenario::Homogeneous).collect();
    v.extend(ScenarioSpec::paper_mixes().into_iter().map(Scenario::Mix));
    if quick {
        v = vec![
            Scenario::Homogeneous(WorkloadSpec::water_ns()),
            Scenario::Mix(ScenarioSpec::bursty_idle()),
        ];
    }
    v
}

fn techniques() -> Vec<Technique> {
    let mut v = vec![Technique::Baseline];
    v.extend(Technique::paper_set());
    v
}

/// Best-of-`reps` wall-clock of two arms, interleaved A/B per rep so a
/// transient machine-noise window degrades both arms instead of
/// silently skewing whichever one it landed on.
fn time_pair(reps: u32, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        a();
        best_a = best_a.min(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        b();
        best_b = best_b.min(t1.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

/// Run the group's full technique column under `engine`, returning the
/// summed simulated cycles.
fn run_group(
    shared: &Scenario,
    size_mb: usize,
    instr: u64,
    engine: CycleEngine,
    scratch: &mut SimScratch,
    profile: &mut ProfileTotals,
) -> u64 {
    let mut cycles = 0u64;
    for technique in techniques() {
        let mut cfg = CmpConfig::paper_system(size_mb, technique);
        cfg.instructions_per_core = instr;
        cfg.engine = engine;
        let feeds = shared.build_feeds(N_CORES, SEED, instr);
        let stats = run_feeds_with_scratch(cfg, feeds, scratch);
        cycles += stats.cycles;
        profile.add(scratch.cycle_profile());
        std::hint::black_box(&stats);
    }
    cycles
}

fn main() {
    let opts = parse_opts();
    let sizes: Vec<usize> = if opts.quick { vec![1] } else { vec![1, 2, 4, 8] };
    let profiled_build = cfg!(feature = "cycle-profile");

    // One scratch per arm so the interleaved timing closures each own
    // their pools (and neither arm warms the other's allocations).
    let mut scratch = SimScratch::default();
    let mut wl_scratch = SimScratch::default();
    let mut arena = BankArena::default();
    let mut groups: Vec<GroupCell> = Vec::new();
    let (mut fs_profile, mut wl_profile) = (ProfileTotals::default(), ProfileTotals::default());
    let cells = techniques().len();

    println!("== per-group technique columns: full scan vs worklist (serial) ==");
    for scenario in scenarios(opts.quick) {
        // Record the scenario's streams once; both arms replay the same
        // recording, so the timed quantity is model work, not op
        // generation.
        let shared = scenario.record_shared(N_CORES, SEED, opts.instr, &mut arena);
        for &size in &sizes {
            // Identity first: the differential suite pins this at scale;
            // here it guards the numbers below against divergence.
            for technique in techniques() {
                let mut cfg = CmpConfig::paper_system(size, technique);
                cfg.instructions_per_core = opts.instr;
                cfg.engine = CycleEngine::FullScan;
                let a = run_feeds_with_scratch(
                    cfg,
                    shared.build_feeds(N_CORES, SEED, opts.instr),
                    &mut scratch,
                );
                cfg.engine = CycleEngine::Worklist;
                let b = run_feeds_with_scratch(
                    cfg,
                    shared.build_feeds(N_CORES, SEED, opts.instr),
                    &mut scratch,
                );
                assert_eq!(
                    a,
                    b,
                    "engines diverged for {}@{size}MB/{}",
                    scenario.label(),
                    technique.name()
                );
            }
            let mut sim_cycles = 0u64;
            let (full_scan_s, worklist_s) = time_pair(
                opts.reps,
                || {
                    sim_cycles = run_group(
                        &shared,
                        size,
                        opts.instr,
                        CycleEngine::FullScan,
                        &mut scratch,
                        &mut fs_profile,
                    );
                },
                || {
                    run_group(
                        &shared,
                        size,
                        opts.instr,
                        CycleEngine::Worklist,
                        &mut wl_scratch,
                        &mut wl_profile,
                    );
                },
            );
            let cell = GroupCell {
                scenario: scenario.label(),
                size_mb: size,
                cells,
                sim_cycles,
                full_scan_ns_per_cycle: full_scan_s / sim_cycles as f64 * 1e9,
                worklist_ns_per_cycle: worklist_s / sim_cycles as f64 * 1e9,
                speedup: full_scan_s / worklist_s,
            };
            println!(
                "{:<22} {:>2} MB | full scan {:>6.1} ns/cy vs worklist {:>6.1} ns/cy ({:>5.2}x)",
                cell.scenario,
                cell.size_mb,
                cell.full_scan_ns_per_cycle,
                cell.worklist_ns_per_cycle,
                cell.speedup
            );
            groups.push(cell);
        }
    }

    let sim_cycles: u64 = groups.iter().map(|g| g.sim_cycles).sum();
    let full_scan_s: f64 =
        groups.iter().map(|g| g.full_scan_ns_per_cycle * g.sim_cycles as f64 / 1e9).sum();
    let worklist_s: f64 =
        groups.iter().map(|g| g.worklist_ns_per_cycle * g.sim_cycles as f64 / 1e9).sum();
    let grid = GridSummary {
        scenarios: scenarios(opts.quick).len(),
        sizes: sizes.len(),
        cells: groups.len() * cells,
        sim_cycles,
        full_scan_s,
        worklist_s,
        full_scan_ns_per_cycle: full_scan_s / sim_cycles as f64 * 1e9,
        worklist_ns_per_cycle: worklist_s / sim_cycles as f64 * 1e9,
        speedup: full_scan_s / worklist_s,
    };
    println!(
        "grid: {} cells, {:.1} Mcycles | full scan {:.1} ns/cy vs worklist {:.1} ns/cy ({:.2}x)",
        grid.cells,
        grid.sim_cycles as f64 / 1e6,
        grid.full_scan_ns_per_cycle,
        grid.worklist_ns_per_cycle,
        grid.speedup
    );

    let profile = profiled_build.then(|| {
        let denom = (wl_profile.core_phases_run + wl_profile.core_phases_suppressed).max(1);
        let report = ProfileReport {
            full_scan: fs_profile,
            worklist: wl_profile,
            worklist_phase_suppression: wl_profile.core_phases_suppressed as f64 / denom as f64,
        };
        println!(
            "profile: worklist suppressed {:.1}% of core phases ({} stepped / {} skipped cycles)",
            report.worklist_phase_suppression * 100.0,
            wl_profile.cycles_stepped,
            wl_profile.cycles_skipped
        );
        report
    });

    let worst = groups.iter().map(|g| g.speedup).fold(f64::INFINITY, f64::min);
    let mean = groups.iter().map(|g| g.speedup).sum::<f64>() / groups.len().max(1) as f64;
    println!("worst group {worst:.2}x, mean group {mean:.2}x, grid {:.2}x", grid.speedup);

    if opts.quick {
        // CI smoke: the worklist engine must never cost more than
        // noise. The floor is a noise floor, not a perf target — quick
        // cells are small and shared-runner timing jitters; real
        // numbers come from full runs.
        assert!(worst > 0.85, "worklist engine regressed on a group ({worst:.2}x)");
    }

    let report = CycleReport {
        instructions_per_core: opts.instr,
        n_cores: N_CORES,
        reps: opts.reps,
        profiled_build,
        groups,
        grid,
        profile,
    };
    if let Some(path) = &opts.out {
        let mut json = serde_json::to_string_pretty(&report).expect("serializable");
        json.push('\n');
        std::fs::write(path, json).expect("report written");
        println!("wrote {path}");
    }
}
