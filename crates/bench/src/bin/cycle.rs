//! Per-cycle engine harness: measures what the worklist engine buys —
//! iterating only awake cores, integrating the powered-line sum as
//! value × span, and enum-dispatched op feeds — against the full-scan
//! reference on the paper grid, and emits `BENCH_cycle.json`.
//!
//! ```text
//! cycle [--instr N] [--reps N] [--quick] [--out PATH]
//! ```
//!
//! Every (scenario × size) group of the paper grid runs its full
//! technique column (baseline + the 7 paper configurations) over a
//! shared-stream recording — so op delivery is replay-cursor cheap and
//! the timed quantity is the model work per simulated cycle that PR 7's
//! `BENCH_lanes.json` pinned at ~240 ns. Both engine arms are asserted
//! bit-identical (whole `SimStats`, every technique) before any timing.
//!
//! When built with `--features cycle-profile`, the report additionally
//! carries the engines' attribution counters (cycles stepped vs
//! skipped vs batched, core phases run vs suppressed, events, grants,
//! and the spine-gating skip counters) — the denominator data for the
//! ns/cycle numbers; `--profile` prints them as a per-mechanism
//! attribution table. The default build compiles those counters out;
//! the committed JSON notes which build produced it.
//!
//! Every run also compares its per-group numbers against the committed
//! `BENCH_cycle.json` (override with `--baseline PATH`): the report
//! records each group's worklist ns/cycle delta (host-sensitive,
//! informational) and its speedup delta (in-run relative, so
//! host-independent). `--quick` shrinks everything to a CI smoke that
//! fails when a group's measured speedup regresses more than 5% below
//! the committed one (or below the absolute noise floor); the committed
//! JSON is a full run.

use cmpleak_bench::json_scan::{array_lines, json_field, json_str_field};
use cmpleak_core::{Scenario, Technique, WorkloadSpec};
use cmpleak_mem::BankArena;
use cmpleak_system::{run_feeds_with_scratch, CmpConfig, CycleEngine, CycleProfile, SimScratch};
use cmpleak_workloads::ScenarioSpec;
use serde::Serialize;
use std::time::Instant;

const SEED: u64 = 42;
const N_CORES: usize = 4;

/// Per-group speedup regression tolerance of the `--quick` gate,
/// relative to the committed baseline's speedup for the same group.
const REGRESSION_TOLERANCE: f64 = 0.05;

#[derive(Debug, Serialize)]
struct GroupCell {
    scenario: String,
    size_mb: usize,
    /// Simulated cells in the group (baseline + techniques).
    cells: usize,
    /// Simulated cycles across the group's cells (identical in both
    /// arms — asserted).
    sim_cycles: u64,
    /// Host ns per simulated cycle, full-scan reference arm.
    full_scan_ns_per_cycle: f64,
    /// Host ns per simulated cycle, worklist arm.
    worklist_ns_per_cycle: f64,
    /// `full_scan / worklist`.
    speedup: f64,
    /// Worklist ns/cycle of the committed baseline for this group
    /// (absent when the baseline lacks the group). Host-sensitive:
    /// meaningful only when measured on comparable hardware.
    baseline_worklist_ns_per_cycle: Option<f64>,
    /// `(worklist - baseline) / baseline × 100` (host-sensitive).
    worklist_ns_delta_pct: Option<f64>,
    /// The baseline's speedup for this group — the host-independent
    /// comparison basis the `--quick` gate uses.
    baseline_speedup: Option<f64>,
}

/// One group of the committed baseline report, recovered by
/// [`load_baseline`] through the shared `json_scan` line scanner (the
/// vendored JSON crate is serialize-only, and the file is this bin's
/// own output, so a line-per-field scan is exact).
struct BaselineGroup {
    scenario: String,
    size_mb: usize,
    full_scan_ns_per_cycle: f64,
    worklist_ns_per_cycle: f64,
}

/// Recover the per-group rows of a committed `BENCH_cycle.json`. Group
/// objects live in the `"groups"` array with one field per line (the
/// bin's own pretty-printer wrote them); `"grid"` ends the array.
fn load_baseline(path: &str) -> Option<Vec<BaselineGroup>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut groups = Vec::new();
    let (mut scenario, mut size, mut fs, mut wl) = (None::<String>, None, None, None);
    for t in array_lines(&text, "groups", "grid") {
        if let Some(v) = json_str_field(t, "scenario") {
            scenario = Some(v.to_string());
        } else if let Some(v) = json_field(t, "size_mb") {
            size = v.parse().ok();
        } else if let Some(v) = json_field(t, "full_scan_ns_per_cycle") {
            fs = v.parse().ok();
        } else if let Some(v) = json_field(t, "worklist_ns_per_cycle") {
            wl = v.parse().ok();
        }
        if let (Some(s), Some(size_mb), Some(f), Some(w)) = (&scenario, size, fs, wl) {
            groups.push(BaselineGroup {
                scenario: s.clone(),
                size_mb,
                full_scan_ns_per_cycle: f,
                worklist_ns_per_cycle: w,
            });
            (scenario, size, fs, wl) = (None, None, None, None);
        }
    }
    (!groups.is_empty()).then_some(groups)
}

/// Engine attribution totals (all zero unless built with
/// `--features cycle-profile`).
#[derive(Debug, Default, Clone, Copy, Serialize)]
struct ProfileTotals {
    cycles_stepped: u64,
    cycles_skipped: u64,
    cycles_batched: u64,
    events_popped: u64,
    bus_grants: u64,
    grant_checks_skipped: u64,
    port_loops_skipped: u64,
    core_phases_run: u64,
    core_phases_suppressed: u64,
}

impl ProfileTotals {
    fn add(&mut self, p: CycleProfile) {
        self.cycles_stepped += p.cycles_stepped;
        self.cycles_skipped += p.cycles_skipped;
        self.cycles_batched += p.cycles_batched;
        self.events_popped += p.events_popped;
        self.bus_grants += p.bus_grants;
        self.grant_checks_skipped += p.grant_checks_skipped;
        self.port_loops_skipped += p.port_loops_skipped;
        self.core_phases_run += p.core_phases_run;
        self.core_phases_suppressed += p.core_phases_suppressed;
    }
}

#[derive(Debug, Serialize)]
struct ProfileReport {
    full_scan: ProfileTotals,
    worklist: ProfileTotals,
    /// Share of per-core phases the worklist arm did not run:
    /// `suppressed / (run + suppressed)`.
    worklist_phase_suppression: f64,
}

#[derive(Debug, Serialize)]
struct GridSummary {
    scenarios: usize,
    sizes: usize,
    cells: usize,
    sim_cycles: u64,
    full_scan_s: f64,
    worklist_s: f64,
    full_scan_ns_per_cycle: f64,
    worklist_ns_per_cycle: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct CycleReport {
    instructions_per_core: u64,
    n_cores: usize,
    reps: u32,
    /// Whether the attribution counters were compiled in for this run.
    profiled_build: bool,
    groups: Vec<GroupCell>,
    grid: GridSummary,
    profile: Option<ProfileReport>,
}

struct Opts {
    instr: u64,
    reps: u32,
    quick: bool,
    profile: bool,
    out: Option<String>,
    baseline: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        instr: 150_000,
        reps: 3,
        quick: false,
        profile: false,
        out: None,
        baseline: "BENCH_cycle.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--instr" => opts.instr = args.next().and_then(|v| v.parse().ok()).expect("--instr N"),
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--quick" => opts.quick = true,
            "--profile" => opts.profile = true,
            "--out" => opts.out = Some(args.next().expect("--out PATH")),
            "--baseline" => opts.baseline = args.next().expect("--baseline PATH"),
            other => panic!(
                "unknown argument {other} (try --instr/--reps/--quick/--profile/--out/--baseline)"
            ),
        }
    }
    if opts.quick {
        opts.instr = opts.instr.min(30_000);
        // Three interleaved reps, best-of: the regression gate asserts
        // on the measured speedup, and a CI host's transient load can
        // outlast two short reps.
        opts.reps = 3;
    }
    opts
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let mut v: Vec<Scenario> =
        WorkloadSpec::paper_suite().into_iter().map(Scenario::Homogeneous).collect();
    v.extend(ScenarioSpec::paper_mixes().into_iter().map(Scenario::Mix));
    if quick {
        v = vec![
            Scenario::Homogeneous(WorkloadSpec::water_ns()),
            Scenario::Mix(ScenarioSpec::bursty_idle()),
        ];
    }
    v
}

fn techniques() -> Vec<Technique> {
    let mut v = vec![Technique::Baseline];
    v.extend(Technique::paper_set());
    v
}

/// Best-of-`reps` wall-clock of two arms, interleaved A/B per rep so a
/// transient machine-noise window degrades both arms instead of
/// silently skewing whichever one it landed on.
fn time_pair(reps: u32, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        a();
        best_a = best_a.min(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        b();
        best_b = best_b.min(t1.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

/// Run the group's full technique column under `engine`, returning the
/// summed simulated cycles.
fn run_group(
    shared: &Scenario,
    size_mb: usize,
    instr: u64,
    engine: CycleEngine,
    scratch: &mut SimScratch,
    profile: &mut ProfileTotals,
) -> u64 {
    let mut cycles = 0u64;
    for technique in techniques() {
        let mut cfg = CmpConfig::paper_system(size_mb, technique);
        cfg.instructions_per_core = instr;
        cfg.engine = engine;
        let feeds = shared.build_feeds(N_CORES, SEED, instr);
        let stats = run_feeds_with_scratch(cfg, feeds, scratch);
        cycles += stats.cycles;
        profile.add(scratch.cycle_profile());
        std::hint::black_box(&stats);
    }
    cycles
}

/// The `--profile` attribution table: where each arm's cycles and
/// per-mechanism skips went, aggregated over the whole grid.
fn print_attribution(profiled_build: bool, fs: &ProfileTotals, wl: &ProfileTotals) {
    if !profiled_build {
        println!("profile attribution requires `--features cycle-profile` (counters compiled out)");
        return;
    }
    println!("== cycle-profile attribution ==");
    println!("{:<28} {:>14} {:>14}", "counter", "full-scan", "worklist");
    let rows: [(&str, u64, u64); 9] = [
        ("cycles stepped", fs.cycles_stepped, wl.cycles_stepped),
        ("cycles skipped (quiescent)", fs.cycles_skipped, wl.cycles_skipped),
        ("cycles batched (working-span)", fs.cycles_batched, wl.cycles_batched),
        ("events popped", fs.events_popped, wl.events_popped),
        ("bus grants", fs.bus_grants, wl.bus_grants),
        ("grant checks skipped", fs.grant_checks_skipped, wl.grant_checks_skipped),
        ("port loops skipped", fs.port_loops_skipped, wl.port_loops_skipped),
        ("core phases run", fs.core_phases_run, wl.core_phases_run),
        ("core phases suppressed", fs.core_phases_suppressed, wl.core_phases_suppressed),
    ];
    for (label, a, b) in rows {
        println!("{label:<28} {a:>14} {b:>14}");
    }
    for (label, t) in [("full-scan", fs), ("worklist", wl)] {
        let stepped = t.cycles_stepped.max(1) as f64;
        println!(
            "{label}: {:.1}% of stepped cycles skipped arbitration, {:.2} port loops skipped per stepped cycle, {:.1}% of executed cycles batched",
            t.grant_checks_skipped as f64 / stepped * 100.0,
            t.port_loops_skipped as f64 / stepped,
            t.cycles_batched as f64 / (t.cycles_stepped + t.cycles_batched).max(1) as f64 * 100.0,
        );
    }
}

fn main() {
    let opts = parse_opts();
    let sizes: Vec<usize> = if opts.quick { vec![1] } else { vec![1, 2, 4, 8] };
    let profiled_build = cfg!(feature = "cycle-profile");
    let baseline = load_baseline(&opts.baseline);
    match &baseline {
        Some(b) => println!("baseline: {} ({} groups)", opts.baseline, b.len()),
        None => println!("baseline: none ({} absent or unreadable)", opts.baseline),
    }

    // One scratch per arm so the interleaved timing closures each own
    // their pools (and neither arm warms the other's allocations).
    let mut scratch = SimScratch::default();
    let mut wl_scratch = SimScratch::default();
    let mut arena = BankArena::default();
    let mut groups: Vec<GroupCell> = Vec::new();
    let (mut fs_profile, mut wl_profile) = (ProfileTotals::default(), ProfileTotals::default());
    let cells = techniques().len();

    println!("== per-group technique columns: full scan vs worklist (serial) ==");
    for scenario in scenarios(opts.quick) {
        // Record the scenario's streams once; both arms replay the same
        // recording, so the timed quantity is model work, not op
        // generation.
        let shared = scenario.record_shared(N_CORES, SEED, opts.instr, &mut arena);
        for &size in &sizes {
            // Identity first: the differential suite pins this at scale;
            // here it guards the numbers below against divergence.
            for technique in techniques() {
                let mut cfg = CmpConfig::paper_system(size, technique);
                cfg.instructions_per_core = opts.instr;
                cfg.engine = CycleEngine::FullScan;
                let a = run_feeds_with_scratch(
                    cfg,
                    shared.build_feeds(N_CORES, SEED, opts.instr),
                    &mut scratch,
                );
                cfg.engine = CycleEngine::Worklist;
                let b = run_feeds_with_scratch(
                    cfg,
                    shared.build_feeds(N_CORES, SEED, opts.instr),
                    &mut scratch,
                );
                assert_eq!(
                    a,
                    b,
                    "engines diverged for {}@{size}MB/{}",
                    scenario.label(),
                    technique.name()
                );
            }
            let mut sim_cycles = 0u64;
            let (full_scan_s, worklist_s) = time_pair(
                opts.reps,
                || {
                    sim_cycles = run_group(
                        &shared,
                        size,
                        opts.instr,
                        CycleEngine::FullScan,
                        &mut scratch,
                        &mut fs_profile,
                    );
                },
                || {
                    run_group(
                        &shared,
                        size,
                        opts.instr,
                        CycleEngine::Worklist,
                        &mut wl_scratch,
                        &mut wl_profile,
                    );
                },
            );
            let mut cell = GroupCell {
                scenario: scenario.label(),
                size_mb: size,
                cells,
                sim_cycles,
                full_scan_ns_per_cycle: full_scan_s / sim_cycles as f64 * 1e9,
                worklist_ns_per_cycle: worklist_s / sim_cycles as f64 * 1e9,
                speedup: full_scan_s / worklist_s,
                baseline_worklist_ns_per_cycle: None,
                worklist_ns_delta_pct: None,
                baseline_speedup: None,
            };
            if let Some(base) = baseline.as_deref().and_then(|b| {
                b.iter().find(|g| g.scenario == cell.scenario && g.size_mb == cell.size_mb)
            }) {
                cell.baseline_worklist_ns_per_cycle = Some(base.worklist_ns_per_cycle);
                cell.worklist_ns_delta_pct = Some(
                    (cell.worklist_ns_per_cycle - base.worklist_ns_per_cycle)
                        / base.worklist_ns_per_cycle
                        * 100.0,
                );
                cell.baseline_speedup =
                    Some(base.full_scan_ns_per_cycle / base.worklist_ns_per_cycle);
            }
            let delta = match cell.worklist_ns_delta_pct {
                Some(d) => format!(" | vs baseline {d:+.1}%"),
                None => String::new(),
            };
            println!(
                "{:<22} {:>2} MB | full scan {:>6.1} ns/cy vs worklist {:>6.1} ns/cy ({:>5.2}x){}",
                cell.scenario,
                cell.size_mb,
                cell.full_scan_ns_per_cycle,
                cell.worklist_ns_per_cycle,
                cell.speedup,
                delta
            );
            groups.push(cell);
        }
    }

    let sim_cycles: u64 = groups.iter().map(|g| g.sim_cycles).sum();
    let full_scan_s: f64 =
        groups.iter().map(|g| g.full_scan_ns_per_cycle * g.sim_cycles as f64 / 1e9).sum();
    let worklist_s: f64 =
        groups.iter().map(|g| g.worklist_ns_per_cycle * g.sim_cycles as f64 / 1e9).sum();
    let grid = GridSummary {
        scenarios: scenarios(opts.quick).len(),
        sizes: sizes.len(),
        cells: groups.len() * cells,
        sim_cycles,
        full_scan_s,
        worklist_s,
        full_scan_ns_per_cycle: full_scan_s / sim_cycles as f64 * 1e9,
        worklist_ns_per_cycle: worklist_s / sim_cycles as f64 * 1e9,
        speedup: full_scan_s / worklist_s,
    };
    println!(
        "grid: {} cells, {:.1} Mcycles | full scan {:.1} ns/cy vs worklist {:.1} ns/cy ({:.2}x)",
        grid.cells,
        grid.sim_cycles as f64 / 1e6,
        grid.full_scan_ns_per_cycle,
        grid.worklist_ns_per_cycle,
        grid.speedup
    );

    let profile = profiled_build.then(|| {
        let denom = (wl_profile.core_phases_run + wl_profile.core_phases_suppressed).max(1);
        let report = ProfileReport {
            full_scan: fs_profile,
            worklist: wl_profile,
            worklist_phase_suppression: wl_profile.core_phases_suppressed as f64 / denom as f64,
        };
        println!(
            "profile: worklist suppressed {:.1}% of core phases ({} stepped / {} skipped / {} batched cycles)",
            report.worklist_phase_suppression * 100.0,
            wl_profile.cycles_stepped,
            wl_profile.cycles_skipped,
            wl_profile.cycles_batched,
        );
        report
    });
    if opts.profile {
        print_attribution(profiled_build, &fs_profile, &wl_profile);
    }

    let worst = groups.iter().map(|g| g.speedup).fold(f64::INFINITY, f64::min);
    let mean = groups.iter().map(|g| g.speedup).sum::<f64>() / groups.len().max(1) as f64;
    println!("worst group {worst:.2}x, mean group {mean:.2}x, grid {:.2}x", grid.speedup);

    // Per-group regression check against the committed baseline, on the
    // host-independent quantity (this run's speedup vs the baseline
    // run's): ns/cycle deltas across different hosts mean nothing, but
    // the worklist arm's advantage over the full scan measured in the
    // same process must not erode.
    let regressed: Vec<String> = groups
        .iter()
        .filter_map(|g| {
            let base = g.baseline_speedup?;
            (g.speedup < base * (1.0 - REGRESSION_TOLERANCE)).then(|| {
                format!("{}@{}MB {:.2}x vs baseline {:.2}x", g.scenario, g.size_mb, g.speedup, base)
            })
        })
        .collect();
    for r in &regressed {
        println!("REGRESSION: {r}");
    }

    if opts.quick {
        // CI smoke: the worklist engine must never cost more than
        // noise (absolute floor), nor fall more than the tolerance
        // below the committed baseline's speedup for any group.
        assert!(worst > 0.85, "worklist engine regressed on a group ({worst:.2}x)");
        assert!(
            regressed.is_empty(),
            "worklist speedup regressed >{:.0}% vs committed baseline: {}",
            REGRESSION_TOLERANCE * 100.0,
            regressed.join("; ")
        );
    }

    let report = CycleReport {
        instructions_per_core: opts.instr,
        n_cores: N_CORES,
        reps: opts.reps,
        profiled_build,
        groups,
        grid,
        profile,
    };
    if let Some(path) = &opts.out {
        let mut json = serde_json::to_string_pretty(&report).expect("serializable");
        json.push('\n');
        std::fs::write(path, json).expect("report written");
        println!("wrote {path}");
    }
}
