//! Sweep throughput harness: measures what the shared-op-stream layer
//! buys — recording each (scenario, seed, budget) group once and
//! replaying cursors in every cell, vs. regenerating the streams live
//! per cell — and emits `BENCH_sweep.json`.
//!
//! ```text
//! sweep [--instr N] [--reps N] [--quick] [--out PATH]
//! sweep serve [--store DIR] [--requests PATH] [--instr N] [--out PATH]
//! ```
//!
//! The `serve` subcommand turns the sweep into sweep-as-a-service: it
//! reads experiment-cell requests (one per line: `scenario technique
//! size_mb [instr]`; `#` comments), answers every cell already in the
//! persistent result store from disk, batches the misses into grouped
//! sweep grids that publish back to the store, and reports per-request
//! hit/miss and load latency. See the "Persistent result store"
//! section of the README.
//!
//! Three sections:
//!
//! * **groups** — every (scenario × size) group of the paper grid
//!   (baseline + 7 techniques per group, baseline derived), timed
//!   serially: `run_sweep` (shared streams) vs. `run_sweep_unshared`
//!   (live generation; baseline memoization on in both arms, so the
//!   delta isolates stream sharing). Both arms are asserted
//!   byte-identical before timing.
//! * **grid** — the whole multi-threaded paper grid, wall-clock.
//! * **streams** — per-scenario recording cost and replay rate: ns/op
//!   for live generation vs. cursor decode, plus the encoded bytes a
//!   shared recording holds resident (the memory cost of sharing).
//!
//! `--quick` shrinks everything to a CI smoke asserting the shared path
//! is not slower beyond noise; the committed JSON is a full run.

use cmpleak_core::sweep::{run_sweep, run_sweep_unshared, run_sweep_with_scratch, SweepConfig};
use cmpleak_core::{ExperimentConfig, ExperimentScratch, Scenario, Technique, WorkloadSpec};
use cmpleak_mem::BankArena;
use cmpleak_store::ResultStore;
use cmpleak_workloads::ScenarioSpec;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct GroupCell {
    scenario: String,
    size_mb: usize,
    /// Cells in the group (baseline + techniques).
    cells: usize,
    /// Wall-clock seconds, live generation per cell (memoized baseline).
    live_s: f64,
    /// Wall-clock seconds, shared streams (memoized baseline).
    shared_s: f64,
    /// `live_s / shared_s`.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct StreamCell {
    scenario: String,
    /// Ops recorded per core stream (core 0 shown; streams are similar).
    ops_per_core: u64,
    /// Encoded bytes the shared recording keeps resident (all cores).
    resident_bytes: usize,
    /// Encoded bytes per op.
    bytes_per_op: f64,
    /// Nanoseconds per op, live generation (LiveGen over the spec).
    live_ns_per_op: f64,
    /// Nanoseconds per op, shared-cursor replay.
    replay_ns_per_op: f64,
}

#[derive(Debug, Serialize)]
struct GridReport {
    scenarios: usize,
    sizes: usize,
    cells: usize,
    threads: usize,
    live_s: f64,
    shared_s: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct SweepReport {
    instructions_per_core: u64,
    n_cores: usize,
    reps: u32,
    groups: Vec<GroupCell>,
    grid: GridReport,
    streams: Vec<StreamCell>,
}

struct Opts {
    instr: u64,
    reps: u32,
    quick: bool,
    out: Option<String>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts { instr: 150_000, reps: 3, quick: false, out: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--instr" => opts.instr = args.next().and_then(|v| v.parse().ok()).expect("--instr N"),
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--quick" => opts.quick = true,
            "--out" => opts.out = Some(args.next().expect("--out PATH")),
            other => panic!("unknown argument {other} (try --instr/--reps/--quick/--out)"),
        }
    }
    if opts.quick {
        opts.instr = opts.instr.min(30_000);
        opts.reps = 2;
    }
    opts
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let mut v: Vec<Scenario> =
        WorkloadSpec::paper_suite().into_iter().map(Scenario::Homogeneous).collect();
    v.extend(ScenarioSpec::paper_mixes().into_iter().map(Scenario::Mix));
    if quick {
        v = vec![
            Scenario::Homogeneous(WorkloadSpec::water_ns()),
            Scenario::Mix(ScenarioSpec::bursty_idle()),
        ];
    }
    v
}

fn group_cfg(scenario: &Scenario, size_mb: usize, instr: u64) -> SweepConfig {
    SweepConfig {
        scenarios: vec![scenario.clone()],
        sizes_mb: vec![size_mb],
        techniques: Technique::paper_set(),
        instructions_per_core: instr,
        seed: 42,
        n_cores: 4,
        threads: 1, // serial: measure simulation work, not scheduling
        store: None,
    }
}

/// Best-of-`reps` wall-clock of `f`.
fn time_s(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-`reps` wall-clock of two arms, interleaved A/B per rep so a
/// transient machine-noise window degrades both arms instead of
/// silently skewing whichever one it landed on.
fn time_pair(reps: u32, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        a();
        best_a = best_a.min(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        b();
        best_b = best_b.min(t1.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

fn group_section(opts: &Opts, sizes: &[usize]) -> Vec<GroupCell> {
    let mut out = Vec::new();
    let mut scratch = ExperimentScratch::default();
    for scenario in scenarios(opts.quick) {
        for &size in sizes {
            let cfg = group_cfg(&scenario, size, opts.instr);
            // Identity first (the differential tests pin this at scale;
            // here it guards the numbers below against divergence).
            let a = run_sweep_with_scratch(&cfg, &mut scratch);
            let b = run_sweep_unshared(&cfg);
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "shared and live sweeps diverged for {}@{size}MB",
                scenario.label()
            );
            let (shared_s, live_s) = time_pair(
                opts.reps,
                || {
                    std::hint::black_box(run_sweep_with_scratch(&cfg, &mut scratch));
                },
                || {
                    std::hint::black_box(run_sweep_unshared(&cfg));
                },
            );
            let cell = GroupCell {
                scenario: scenario.label(),
                size_mb: size,
                cells: a.cells.len(),
                live_s,
                shared_s,
                speedup: live_s / shared_s,
            };
            println!(
                "{:<22} {:>2} MB | live {:>7.3}s vs shared {:>7.3}s ({:>5.2}x)",
                cell.scenario, cell.size_mb, cell.live_s, cell.shared_s, cell.speedup
            );
            out.push(cell);
        }
    }
    out
}

fn grid_section(opts: &Opts, sizes: &[usize]) -> GridReport {
    let cfg = SweepConfig {
        scenarios: scenarios(opts.quick),
        sizes_mb: sizes.to_vec(),
        techniques: Technique::paper_set(),
        instructions_per_core: opts.instr,
        seed: 42,
        n_cores: 4,
        threads: 0,
        store: None,
    };
    let mut scratch = ExperimentScratch::default();
    let mut cells = 0;
    let (shared_s, live_s) = time_pair(
        opts.reps,
        || {
            cells = run_sweep_with_scratch(&cfg, &mut scratch).cells.len();
        },
        || {
            std::hint::black_box(run_sweep_unshared(&cfg));
        },
    );
    GridReport {
        scenarios: cfg.scenarios.len(),
        sizes: sizes.len(),
        cells,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        live_s,
        shared_s,
        speedup: live_s / shared_s,
    }
}

fn stream_section(opts: &Opts) -> Vec<StreamCell> {
    let mut out = Vec::new();
    for scenario in scenarios(opts.quick) {
        let mut arena = BankArena::default();
        let shared = scenario.record_shared(4, 42, opts.instr, &mut arena);
        let Scenario::SharedStream { trace } = &shared else { unreachable!() };
        let ops: u64 = (0..4).map(|c| trace.core_info(c).ops).sum();

        // ns/op live generation (through the LiveGen adapter, as the
        // simulator consumes it).
        let mut live = scenario.build_sources(4, 42, opts.instr);
        let live_ns = time_s(opts.reps, || {
            for src in live.iter_mut() {
                for _ in 0..trace.core_info(0).ops {
                    std::hint::black_box(src.next_op());
                }
            }
        }) * 1e9
            / (4 * trace.core_info(0).ops) as f64;

        // ns/op shared-cursor replay.
        let replay_ns = time_s(opts.reps, || {
            for c in 0..4 {
                let mut cur = trace.cursor(c);
                for _ in 0..cur.total_ops() {
                    std::hint::black_box(cmpleak_cpu::Workload::next_op(&mut cur));
                }
            }
        }) * 1e9
            / ops as f64;

        let cell = StreamCell {
            scenario: scenario.label(),
            ops_per_core: trace.core_info(0).ops,
            resident_bytes: trace.stream_bytes(),
            bytes_per_op: trace.stream_bytes() as f64 / ops as f64,
            live_ns_per_op: live_ns,
            replay_ns_per_op: replay_ns,
        };
        println!(
            "{:<22} | {:>8} ops/core, {:>9} B resident ({:>4.2} B/op) | gen {:>5.2} ns/op vs replay {:>5.2} ns/op",
            cell.scenario, cell.ops_per_core, cell.resident_bytes, cell.bytes_per_op,
            cell.live_ns_per_op, cell.replay_ns_per_op
        );
        out.push(cell);
    }
    out
}

// ---------------------------------------------------------------------------
// `sweep serve` — sweep-as-a-service over the persistent result store.
// ---------------------------------------------------------------------------

struct ServeOpts {
    store: String,
    /// Request file; `None` reads stdin.
    requests: Option<String>,
    /// Default instruction budget for requests that omit one.
    instr: u64,
    seed: u64,
    n_cores: usize,
    threads: usize,
    out: Option<String>,
}

fn parse_serve_opts(args: &[String]) -> ServeOpts {
    let mut opts = ServeOpts {
        store: ".cmpleak-store".to_string(),
        requests: None,
        instr: 150_000,
        seed: 42,
        n_cores: 4,
        threads: 0,
        out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => opts.store = it.next().expect("--store DIR").clone(),
            "--requests" => opts.requests = Some(it.next().expect("--requests PATH").clone()),
            "--instr" => opts.instr = it.next().and_then(|v| v.parse().ok()).expect("--instr N"),
            "--seed" => opts.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--n-cores" => {
                opts.n_cores = it.next().and_then(|v| v.parse().ok()).expect("--n-cores N")
            }
            "--threads" => {
                opts.threads = it.next().and_then(|v| v.parse().ok()).expect("--threads N")
            }
            "--out" => opts.out = Some(it.next().expect("--out PATH").clone()),
            other => panic!(
                "unknown serve argument {other} (try --store/--requests/--instr/--seed/--n-cores/--threads/--out)"
            ),
        }
    }
    opts
}

/// One parsed request line, carrying the exact cell configuration a
/// sweep would build for it — so its content address matches what
/// `run_sweep` publishes.
struct Request {
    line_no: usize,
    cfg: ExperimentConfig,
}

/// Requests the service can name: the paper suite plus the mixes, and
/// the baseline plus the seven paper techniques.
fn serve_catalog() -> (Vec<Scenario>, Vec<Technique>) {
    let mut scenarios: Vec<Scenario> =
        WorkloadSpec::paper_suite().into_iter().map(Scenario::Homogeneous).collect();
    scenarios.extend(ScenarioSpec::paper_mixes().into_iter().map(Scenario::Mix));
    let mut techniques = vec![Technique::Baseline];
    techniques.extend(Technique::paper_set());
    (scenarios, techniques)
}

#[derive(Debug, Serialize)]
struct ServeRow {
    line: usize,
    scenario: String,
    technique: String,
    size_mb: usize,
    instructions_per_core: u64,
    /// Whether the first probe answered from the store (before any
    /// batched simulation this run published).
    hit: bool,
    /// Latency of the answering store load, microseconds.
    load_us: f64,
    cycles: u64,
    avg_power_w: f64,
}

#[derive(Debug, Serialize)]
struct ServeReport {
    store: String,
    requests: usize,
    skipped: usize,
    hits: usize,
    misses: usize,
    /// Grid cells the miss batches simulated beyond the missed
    /// requests themselves — published to the store as prefetch.
    prefetched: usize,
    /// Wall-clock seconds spent in the batched miss grids.
    batch_s: f64,
    rows: Vec<ServeRow>,
}

/// A batch of missed cells sharing (scenario, instruction budget):
/// served as one sweep grid so stream recording, baseline memoization
/// and the worker pool amortize across them.
struct MissGroup {
    scenario: Scenario,
    sizes: std::collections::BTreeSet<usize>,
    /// Non-baseline techniques, deduped (the grid's implicit baseline
    /// slot covers baseline requests).
    techniques: Vec<Technique>,
    /// Content addresses of the requested cells in this group.
    missed: std::collections::BTreeSet<String>,
}

fn serve(args: &[String]) {
    let opts = parse_serve_opts(args);
    let text = match &opts.requests {
        Some(path) => std::fs::read_to_string(path).expect("requests readable"),
        None => {
            let mut s = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut s).expect("stdin readable");
            s
        }
    };
    let (scenarios, techniques) = serve_catalog();
    let store = Arc::new(ResultStore::open(&opts.store).expect("store root"));
    println!("store: {} ({} records)", opts.store, store.record_count());

    // Parse. Malformed lines are reported and skipped, never fatal —
    // the queue may be machine-generated and partially stale.
    let mut skipped = 0usize;
    let mut requests: Vec<Request> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(scen), Some(tech), Some(size)) = (parts.next(), parts.next(), parts.next())
        else {
            eprintln!("line {line_no}: want `scenario technique size_mb [instr]` — skipped");
            skipped += 1;
            continue;
        };
        let Some(scenario) = scenarios.iter().find(|s| s.label() == scen) else {
            let known: Vec<String> = scenarios.iter().map(|s| s.label()).collect();
            eprintln!(
                "line {line_no}: unknown scenario `{scen}` (known: {}) — skipped",
                known.join(", ")
            );
            skipped += 1;
            continue;
        };
        let Some(&technique) = techniques.iter().find(|t| t.name() == tech) else {
            let known: Vec<String> = techniques.iter().map(|t| t.name()).collect();
            eprintln!(
                "line {line_no}: unknown technique `{tech}` (known: {}) — skipped",
                known.join(", ")
            );
            skipped += 1;
            continue;
        };
        let instr = parts.next().map_or(Ok(opts.instr), str::parse);
        let (Ok(size_mb), Ok(instr)) = (size.parse::<usize>(), instr) else {
            eprintln!("line {line_no}: bad size/instr in `{line}` — skipped");
            skipped += 1;
            continue;
        };
        let mut cfg = ExperimentConfig::paper_scenario(scenario.clone(), technique, size_mb);
        cfg.instructions_per_core = instr;
        cfg.seed = opts.seed;
        cfg.n_cores = opts.n_cores;
        requests.push(Request { line_no, cfg });
    }

    // First probe: answer whatever the store already holds; misses are
    // deduped into (scenario, budget) batches.
    let mut answers = Vec::with_capacity(requests.len());
    let mut hits = 0usize;
    let mut groups: std::collections::BTreeMap<(String, u64), MissGroup> =
        std::collections::BTreeMap::new();
    for req in &requests {
        let key = req.cfg.store_key();
        let t0 = Instant::now();
        let cell = store.load(&key);
        let load_us = t0.elapsed().as_secs_f64() * 1e6;
        match cell {
            Some(c) => {
                hits += 1;
                answers.push(Some((true, load_us, c)));
            }
            None => {
                answers.push(None);
                let g = groups
                    .entry((req.cfg.scenario.label(), req.cfg.instructions_per_core))
                    .or_insert_with(|| MissGroup {
                        scenario: req.cfg.scenario.clone(),
                        sizes: Default::default(),
                        techniques: Vec::new(),
                        missed: Default::default(),
                    });
                g.sizes.insert(req.cfg.total_l2_mb);
                if !matches!(req.cfg.technique, Technique::Baseline)
                    && !g.techniques.iter().any(|t| t.name() == req.cfg.technique.name())
                {
                    g.techniques.push(req.cfg.technique);
                }
                g.missed.insert(key.hex());
            }
        }
    }
    let misses = requests.len() - hits;

    // Batched miss grids: each group runs as one sweep with the store
    // attached, so every simulated cell (requested or grid prefetch)
    // is published for future requests.
    let mut prefetched = 0usize;
    let t0 = Instant::now();
    for ((label, instr), g) in &groups {
        let cfg = SweepConfig {
            scenarios: vec![g.scenario.clone()],
            sizes_mb: g.sizes.iter().copied().collect(),
            techniques: g.techniques.clone(),
            instructions_per_core: *instr,
            seed: opts.seed,
            n_cores: opts.n_cores,
            threads: opts.threads,
            store: Some(Arc::clone(&store)),
        };
        let res = run_sweep(&cfg);
        let extra = res.cells.len().saturating_sub(g.missed.len());
        prefetched += extra;
        println!(
            "batched {label} @ {instr} instr: {} grid cells for {} missed requests ({extra} prefetched)",
            res.cells.len(),
            g.missed.len()
        );
    }
    let batch_s = t0.elapsed().as_secs_f64();

    // Second probe: every miss is now on disk.
    let mut rows = Vec::with_capacity(requests.len());
    for (req, ans) in requests.iter().zip(answers) {
        let (hit, load_us, cell) = ans.unwrap_or_else(|| {
            let key = req.cfg.store_key();
            let t0 = Instant::now();
            let cell = store.load(&key).expect("batched grid published every missed cell");
            (false, t0.elapsed().as_secs_f64() * 1e6, cell)
        });
        let row = ServeRow {
            line: req.line_no,
            scenario: req.cfg.scenario.label(),
            technique: req.cfg.technique.name(),
            size_mb: req.cfg.total_l2_mb,
            instructions_per_core: req.cfg.instructions_per_core,
            hit,
            load_us,
            cycles: cell.stats.cycles,
            avg_power_w: cell.power.avg_power_w,
        };
        println!(
            "{:<22} {:<13} {:>2} MB | {} {:>9.1} us | {:>10} cycles {:>7.3} W",
            row.scenario,
            row.technique,
            row.size_mb,
            if row.hit { "hit " } else { "miss" },
            row.load_us,
            row.cycles,
            row.avg_power_w
        );
        rows.push(row);
    }

    println!(
        "{} request(s): {hits} hit / {misses} miss ({skipped} skipped), {prefetched} prefetched, batch {batch_s:.2}s, store now {} records",
        requests.len(),
        store.record_count()
    );
    let report = ServeReport {
        store: opts.store.clone(),
        requests: requests.len(),
        skipped,
        hits,
        misses,
        prefetched,
        batch_s,
        rows,
    };
    if let Some(path) = &opts.out {
        let mut json = serde_json::to_string_pretty(&report).expect("serializable");
        json.push('\n');
        std::fs::write(path, json).expect("report written");
        println!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        serve(&args[1..]);
        return;
    }
    let opts = parse_opts();
    let sizes: Vec<usize> = if opts.quick { vec![1] } else { vec![1, 2, 4, 8] };

    println!("== per-group sweeps: shared streams vs live generation (serial) ==");
    let groups = group_section(&opts, &sizes);

    println!("== whole paper grid (threads = available) ==");
    let grid = grid_section(&opts, &sizes);
    println!(
        "{} cells | live {:.2}s vs shared {:.2}s ({:.2}x)",
        grid.cells, grid.live_s, grid.shared_s, grid.speedup
    );

    println!("== stream recording cost / replay rate ==");
    let streams = stream_section(&opts);

    let worst = groups.iter().map(|g| g.speedup).fold(f64::INFINITY, f64::min);
    let mean = groups.iter().map(|g| g.speedup).sum::<f64>() / groups.len().max(1) as f64;
    println!("worst group {worst:.2}x, mean group {mean:.2}x, grid {:.2}x", grid.speedup);

    if opts.quick {
        // CI smoke: sharing must never cost more than noise.
        assert!(worst > 0.90, "shared-stream sweep regressed on a group ({worst:.2}x)");
        for s in &streams {
            assert!(
                s.replay_ns_per_op < s.live_ns_per_op * 1.5,
                "cursor replay catastrophically slower than generation: {s:?}"
            );
        }
    }

    let report = SweepReport {
        instructions_per_core: opts.instr,
        n_cores: 4,
        reps: opts.reps,
        groups,
        grid,
        streams,
    };
    if let Some(path) = &opts.out {
        let mut json = serde_json::to_string_pretty(&report).expect("serializable");
        json.push('\n');
        std::fs::write(path, json).expect("report written");
        println!("wrote {path}");
    }
}
