//! Calibration probe: run a slice of the paper grid and print the raw
//! shape metrics, to tune workload/power constants against the paper's
//! reported numbers. Not part of the documented CLI (see `repro`).

use cmpleak_core::experiment::{run_experiment, ExperimentConfig};
use cmpleak_core::metrics::TechniqueMetrics;
use cmpleak_core::{Technique, WorkloadSpec};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let instr: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
    let bench_name = args.get(2).map(|s| s.as_str()).unwrap_or("WATER-NS");
    let spec = WorkloadSpec::by_name(bench_name).expect("unknown benchmark");
    let sizes = [1usize, 2, 4, 8];
    let techs = [
        Technique::Protocol,
        Technique::Decay { decay_cycles: 512 * 1024 },
        Technique::Decay { decay_cycles: 64 * 1024 },
        Technique::SelectiveDecay { decay_cycles: 512 * 1024 },
        Technique::SelectiveDecay { decay_cycles: 64 * 1024 },
    ];
    println!("benchmark={} instr/core={}", spec.name, instr);
    for size in sizes {
        let t0 = Instant::now();
        let mut cfg = ExperimentConfig::paper(spec, Technique::Baseline, size);
        cfg.instructions_per_core = instr;
        let base = run_experiment(&cfg);
        println!(
            "[{size}MB] baseline: cycles={} ipc={:.3} l2miss={:.4} amat={:.1} memMB={:.1} l2share={:.3} T={:.1}C ({:.1}s)",
            base.stats.cycles,
            base.stats.ipc(),
            base.stats.l2_miss_rate(),
            base.stats.amat(),
            base.stats.mem_bytes as f64 / 1e6,
            base.power.energy.l2_leakage_share(),
            base.power.avg_l2_temp_c,
            t0.elapsed().as_secs_f64()
        );
        for tech in techs {
            let mut c = cfg.clone();
            c.technique = tech;
            let r = run_experiment(&c);
            let m = TechniqueMetrics::compare(&base, &r);
            println!(
                "  {:14} occ={:5.1}% miss={:.4} bw=+{:5.1}% amat=+{:5.1}% er={:5.1}% ipcloss={:5.2}%",
                r.technique,
                m.occupation * 100.0,
                m.l2_miss_rate,
                m.bandwidth_increase * 100.0,
                m.amat_increase * 100.0,
                m.energy_reduction * 100.0,
                m.ipc_loss * 100.0
            );
        }
    }
}
