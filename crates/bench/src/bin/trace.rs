//! `trace` — record, replay and inspect reference traces.
//!
//! ```text
//! trace record  --out FILE --scenario NAME [--instr N] [--cores N] [--seed S]
//! trace replay  --in FILE  [--technique T] [--size MB] [--verify]
//! trace inspect --in FILE  [--ops N]
//! ```
//!
//! * `record` generates the named scenario's live streams (benchmark
//!   names like `FMM` or curated mixes like `mix_bursty_idle`) and saves
//!   them as a trace file covering `--instr` instructions per core.
//! * `replay` simulates the trace under `--technique` (default
//!   baseline); `--verify` also runs live generation with the recorded
//!   scenario/seed and asserts the statistics and energy report are
//!   **bit-identical** — the differential oracle, exit code 1 on any
//!   mismatch.
//! * `inspect` prints the header, per-core stream summaries and the
//!   first `--ops` decoded ops of core 0.

use cmpleak_core::experiment::{run_experiment, ExperimentConfig, ExperimentResult};
use cmpleak_core::{Scenario, Technique};
use cmpleak_cpu::{TraceOp, Workload};
use cmpleak_trace::TraceFile;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  trace record  --out FILE --scenario NAME [--instr N] [--cores N] [--seed S]\n  \
         trace replay  --in FILE  [--technique T] [--size MB] [--verify]\n  \
         trace inspect --in FILE  [--ops N]\n\
         scenarios: {}\n\
         techniques: baseline {}",
        Scenario::known_names().join(" "),
        Technique::paper_set().iter().map(|t| t.name()).collect::<Vec<_>>().join(" ")
    );
    exit(2);
}

#[derive(Debug, Default)]
struct Opts {
    cmd: String,
    file_in: Option<String>,
    file_out: Option<String>,
    scenario: Option<String>,
    technique: Option<String>,
    instr: u64,
    cores: usize,
    seed: u64,
    size_mb: usize,
    ops: u64,
    verify: bool,
}

fn parse_opts() -> Opts {
    let mut opts =
        Opts { instr: 200_000, cores: 4, seed: 42, size_mb: 4, ops: 16, ..Opts::default() };
    let mut it = std::env::args().skip(1);
    let Some(cmd) = it.next() else { usage() };
    opts.cmd = cmd;
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--in" => opts.file_in = Some(val()),
            "--out" => opts.file_out = Some(val()),
            "--scenario" => opts.scenario = Some(val()),
            "--technique" => opts.technique = Some(val()),
            "--instr" => opts.instr = val().parse().unwrap_or_else(|_| usage()),
            "--cores" => opts.cores = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = val().parse().unwrap_or_else(|_| usage()),
            "--size" => opts.size_mb = val().parse().unwrap_or_else(|_| usage()),
            "--ops" => opts.ops = val().parse().unwrap_or_else(|_| usage()),
            "--verify" => opts.verify = true,
            _ => usage(),
        }
    }
    opts
}

fn parse_technique(name: &str) -> Technique {
    if name.eq_ignore_ascii_case("baseline") {
        return Technique::Baseline;
    }
    Technique::paper_set().into_iter().find(|t| t.name().eq_ignore_ascii_case(name)).unwrap_or_else(
        || {
            eprintln!("unknown technique {name}");
            usage()
        },
    )
}

fn print_core_rows(cores: &[cmpleak_trace::CoreStreamInfo]) {
    for (i, c) in cores.iter().enumerate() {
        println!(
            "  core {i}: {:10} {:>9} ops {:>9} instr {:>9} bytes ({:.2} B/op)",
            c.name,
            c.ops,
            c.instructions,
            c.len,
            c.len as f64 / c.ops.max(1) as f64
        );
    }
}

fn cmd_record(opts: &Opts) {
    let name = opts.scenario.as_deref().unwrap_or_else(|| usage());
    let out = opts.file_out.as_deref().unwrap_or_else(|| usage());
    let scenario = Scenario::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown scenario {name}");
        usage()
    });
    let rec = scenario.record(opts.cores, opts.seed, opts.instr);
    rec.save(out).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    let header = rec.header();
    let total_bytes: u64 = header.cores.iter().map(|c| c.len).sum();
    let total_ops: u64 = header.cores.iter().map(|c| c.ops).sum();
    println!(
        "recorded {} ({} cores, seed {}) -> {out}",
        header.label,
        header.cores.len(),
        header.seed
    );
    print_core_rows(&header.cores);
    println!(
        "  total {} ops, {} bytes payload ({:.2} B/op)",
        total_ops,
        total_bytes,
        total_bytes as f64 / total_ops.max(1) as f64
    );
}

fn replay_config(opts: &Opts, tf: &TraceFile, scenario: Scenario) -> ExperimentConfig {
    let technique = parse_technique(opts.technique.as_deref().unwrap_or("baseline"));
    let mut cfg = ExperimentConfig::paper_scenario(scenario, technique, opts.size_mb);
    cfg.n_cores = tf.n_cores();
    cfg.seed = tf.seed();
    cfg.instructions_per_core = tf.min_core_instructions();
    cfg
}

fn print_result(tag: &str, r: &ExperimentResult) {
    println!(
        "{tag}: {} / {} — {} cycles, IPC {:.3}, L2 miss {:.4}, occ {:.3}, energy {:.3} µJ",
        r.benchmark,
        r.technique,
        r.stats.cycles,
        r.stats.ipc(),
        r.stats.l2_miss_rate(),
        r.stats.occupation_rate(),
        r.power.energy.total_pj() / 1e6
    );
    for (c, name) in r.stats.core_workloads.iter().enumerate() {
        println!(
            "  core {c}: {:10} IPC {:.3} ({} loads, {} stores)",
            name,
            r.stats.core_ipc(c),
            r.stats.cores[c].loads,
            r.stats.cores[c].stores
        );
    }
}

fn cmd_replay(opts: &Opts) {
    let path = opts.file_in.as_deref().unwrap_or_else(|| usage());
    let tf = TraceFile::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1);
    });
    let replay_scenario = Scenario::from_trace(path).expect("header was just readable");
    let cfg = replay_config(opts, &tf, replay_scenario);
    let replayed = run_experiment(&cfg);
    print_result("replay", &replayed);

    if opts.verify {
        let live_scenario = Scenario::by_name(tf.label()).unwrap_or_else(|| {
            eprintln!("--verify needs the trace label '{}' to name a known scenario", tf.label());
            exit(1);
        });
        let live_cfg = ExperimentConfig { scenario: live_scenario, ..cfg };
        let live = run_experiment(&live_cfg);
        print_result("live  ", &live);
        let stats_ok = live.stats == replayed.stats;
        let power_ok = live.power == replayed.power;
        if stats_ok && power_ok {
            println!("verify: PASS — replay is bit-identical to live generation");
        } else {
            println!(
                "verify: FAIL — stats {} / power {}",
                if stats_ok { "identical" } else { "DIVERGED" },
                if power_ok { "identical" } else { "DIVERGED" }
            );
            exit(1);
        }
    }
}

fn cmd_inspect(opts: &Opts) {
    let path = opts.file_in.as_deref().unwrap_or_else(|| usage());
    let tf = TraceFile::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1);
    });
    let h = tf.header();
    println!(
        "{path}: CMPT v{}, label '{}', seed {}, {} cores, drives ≤{} instr/core",
        h.version,
        h.label,
        h.seed,
        h.n_cores(),
        tf.min_core_instructions()
    );
    print_core_rows(&h.cores);
    let mut w = tf.core_workload(0).unwrap_or_else(|e| {
        eprintln!("cannot read core 0: {e}");
        exit(1);
    });
    println!("first {} ops of core 0 ({}):", opts.ops.min(w.total_ops()), w.name());
    let (mut execs, mut loads, mut stores) = (0u64, 0u64, 0u64);
    let mut shown = 0u64;
    while let Some(op) = w.try_next_op() {
        if shown < opts.ops {
            match op {
                TraceOp::Exec(n) => println!("  exec  {n}"),
                TraceOp::Load(a) => println!("  load  {a:#x}"),
                TraceOp::Store(a) => println!("  store {a:#x}"),
            }
            shown += 1;
        }
        match op {
            TraceOp::Exec(_) => execs += 1,
            TraceOp::Load(_) => loads += 1,
            TraceOp::Store(_) => stores += 1,
        }
    }
    println!("core 0 op mix: {execs} exec, {loads} load, {stores} store");
}

fn main() {
    let opts = parse_opts();
    match opts.cmd.as_str() {
        "record" => cmd_record(&opts),
        "replay" => cmd_replay(&opts),
        "inspect" => cmd_inspect(&opts),
        _ => usage(),
    }
}
