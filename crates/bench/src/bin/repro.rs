//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all                 # every figure + headline (one sweep)
//! repro table1              # Table I (turn-off legality matrix)
//! repro fig3a|fig3b|fig4a|fig4b|fig5a|fig5b
//! repro fig6a|fig6b         # per-benchmark figures (--size, default 4)
//! repro headline            # the paper's §VII summary numbers
//! repro json                # full sweep results as JSON
//! repro moesi               # §III MOESI extension analysis
//! repro cores               # beyond-paper: 2/4/8-core scaling
//! repro adaptive            # beyond-paper: oracle adaptive decay
//!
//! options: --instr N (default 6000000)  --size MB (default 4)
//!          --threads N (default: all)   --seed S (default 42)
//! ```

use cmpleak_core::adaptive::{oracle_advantage, oracle_pick};
use cmpleak_core::experiment::{run_experiment, ExperimentConfig};
use cmpleak_core::figures::FigureSet;
use cmpleak_core::metrics::TechniqueMetrics;
use cmpleak_core::sweep::{run_sweep, SweepConfig, SweepResults};
use cmpleak_core::{Technique, WorkloadSpec};
use std::time::Instant;

struct Opts {
    cmd: String,
    instr: u64,
    size_mb: usize,
    threads: usize,
    seed: u64,
}

fn parse_opts() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts { cmd: "all".into(), instr: 6_000_000, size_mb: 4, threads: 0, seed: 42 };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--instr" => opts.instr = it.next().and_then(|v| v.parse().ok()).expect("--instr N"),
            "--size" => opts.size_mb = it.next().and_then(|v| v.parse().ok()).expect("--size MB"),
            "--threads" => {
                opts.threads = it.next().and_then(|v| v.parse().ok()).expect("--threads N")
            }
            "--seed" => opts.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            cmd if !cmd.starts_with("--") => opts.cmd = cmd.to_string(),
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn sweep(opts: &Opts) -> SweepResults {
    let mut cfg = SweepConfig::paper(opts.instr);
    cfg.threads = opts.threads;
    cfg.seed = opts.seed;
    let t0 = Instant::now();
    let res = run_sweep(&cfg);
    eprintln!(
        "[sweep: {} cells, {:.1}s, instr/core={}]",
        res.cells.len(),
        t0.elapsed().as_secs_f64(),
        opts.instr
    );
    res
}

fn print_headline(figs: &FigureSet<'_>, size_mb: usize) {
    println!(
        "Headline (paper §VII), {size_mb}MB total L2, decay families averaged over decay times:"
    );
    println!("  paper: Protocol 13% energy / 0% IPC, Decay 30% / 8%, Selective Decay 21% / 2%");
    for (name, er, loss) in figs.headline(size_mb) {
        println!(
            "  {name:16} energy reduction {:5.1}%   IPC loss {:4.1}%",
            er * 100.0,
            loss * 100.0
        );
    }
}

fn moesi_analysis() {
    use cmpleak_coherence::bus::SnoopKind;
    use cmpleak_coherence::moesi::{step as moesi_step, MoesiEvent, MoesiState};
    println!("MOESI turn-off extension (paper §III):");
    println!("  A MESI M-line snooped by a reader becomes S with a write-back;");
    println!("  under MOESI it becomes O (dirty-shared) with no write-back —");
    println!("  but turning an O line off costs a write-back AND an invalidation");
    println!("  broadcast to the other sharers:\n");
    let scenarios = [
        (MoesiState::Modified, "M"),
        (MoesiState::Owned, "O"),
        (MoesiState::Exclusive, "E"),
        (MoesiState::Shared, "S"),
    ];
    println!("  {:>6} {:>10} {:>8} {:>20}", "state", "writeback", "gates", "invalidate sharers");
    for (s, label) in scenarios {
        let t = moesi_step(s, MoesiEvent::TurnOff);
        println!(
            "  {label:>6} {:>10} {:>8} {:>20}",
            if t.writeback { "yes" } else { "no" },
            if t.gate { "yes" } else { "no" },
            if t.invalidate_other_copies { "yes (extra bus op)" } else { "no" },
        );
    }
    let t = moesi_step(MoesiState::Owned, MoesiEvent::Snoop(SnoopKind::BusRd));
    assert!(t.supply_data && !t.writeback);
    println!("\n  Dirty sharing under MOESI avoids the M->S write-back (verified),");
    println!("  at the price of the costliest turn-off path in the family.");
}

fn cores_scaling(opts: &Opts) {
    println!("Core-count scaling (beyond the paper; {}MB total L2, WATER-NS):", opts.size_mb);
    println!(
        "  {:>6} {:>12} {:>14} {:>12} {:>12}",
        "cores", "technique", "occupation", "energy red.", "IPC loss"
    );
    for n_cores in [2usize, 4, 8] {
        let mk = |technique| ExperimentConfig {
            scenario: cmpleak_core::Scenario::Homogeneous(WorkloadSpec::water_ns()),
            technique,
            total_l2_mb: opts.size_mb,
            instructions_per_core: opts.instr / 2,
            seed: opts.seed,
            n_cores,
            power: Default::default(),
            kernel: Default::default(),
            engine: Default::default(),
        };
        let base = run_experiment(&mk(Technique::Baseline));
        for technique in [Technique::Protocol, Technique::Decay { decay_cycles: 128 * 1024 }] {
            let r = run_experiment(&mk(technique));
            let m = TechniqueMetrics::compare(&base, &r);
            println!(
                "  {n_cores:>6} {:>12} {:>13.1}% {:>11.1}% {:>11.2}%",
                r.technique,
                m.occupation * 100.0,
                m.energy_reduction * 100.0,
                m.ipc_loss * 100.0
            );
        }
    }
}

fn main() {
    let opts = parse_opts();
    match opts.cmd.as_str() {
        "table1" => {
            println!("{}", cmpleak_coherence::legality::render_table());
        }
        "moesi" => moesi_analysis(),
        "cores" => cores_scaling(&opts),
        "adaptive" => {
            let res = sweep(&opts);
            for prefix in ["decay", "sel_decay"] {
                let choices = oracle_pick(&res, prefix);
                println!("Oracle adaptive {prefix} (per-benchmark best interval by EDP):");
                for c in choices.iter().filter(|c| c.size_mb == opts.size_mb) {
                    println!(
                        "  {:10} {}MB -> {:14} EDP {:.3} (best fixed {:.3})",
                        c.benchmark, c.size_mb, c.technique, c.edp, c.best_fixed_edp
                    );
                }
                println!("  mean oracle advantage: {:.4} EDP\n", oracle_advantage(&choices));
            }
        }
        "json" => {
            let res = sweep(&opts);
            println!("{}", serde_json::to_string_pretty(&res).expect("serializable"));
        }
        "headline" => {
            let res = sweep(&opts);
            print_headline(&FigureSet::new(&res), opts.size_mb);
        }
        "all" => {
            println!("{}", cmpleak_coherence::legality::render_table());
            let res = sweep(&opts);
            let figs = FigureSet::new(&res);
            for f in figs.all_by_size() {
                println!("{f}");
            }
            println!("{}", figs.fig6a(opts.size_mb));
            println!("{}", figs.fig6b(opts.size_mb));
            print_headline(&figs, opts.size_mb);
        }
        fig @ ("fig3a" | "fig3b" | "fig4a" | "fig4b" | "fig5a" | "fig5b" | "fig6a" | "fig6b") => {
            let res = sweep(&opts);
            let figs = FigureSet::new(&res);
            let out = match fig {
                "fig3a" => figs.fig3a(),
                "fig3b" => figs.fig3b(),
                "fig4a" => figs.fig4a(),
                "fig4b" => figs.fig4b(),
                "fig5a" => figs.fig5a(),
                "fig5b" => figs.fig5b(),
                "fig6a" => figs.fig6a(opts.size_mb),
                _ => figs.fig6b(opts.size_mb),
            };
            println!("{out}");
        }
        other => {
            eprintln!("unknown command {other}; see `repro` docs");
            std::process::exit(2);
        }
    }
}
