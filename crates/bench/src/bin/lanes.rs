//! Lane-engine throughput harness: measures what lockstep lanes buy —
//! decoding each (scenario, size) group's op stream once into a shared
//! window and stepping every technique through it, vs. the sequential
//! planner that replays the shared recording cell by cell — and emits
//! `BENCH_lanes.json`.
//!
//! ```text
//! lanes [--instr N] [--reps N] [--quick] [--out PATH]
//! ```
//!
//! Three sections:
//!
//! * **delivery** — the op-delivery substrate in isolation: ns/op of
//!   live generation, of filling the shared window (generate + filter,
//!   paid once per group), and of a lane's cursor reads. This is the
//!   cost the engine removes from N-1 of every group's N cells.
//! * **groups** — every (scenario × size) group of the paper grid
//!   (baseline + 7 techniques per group, baseline derived), timed
//!   serially: `run_sweep` (lanes) vs. `run_sweep_sequential`
//!   (cell-at-a-time; memoization and stream sharing on in both arms,
//!   so the delta isolates the lane engine). Both arms are asserted
//!   byte-identical before timing.
//! * **grid** — the whole paper grid, wall-clock, all worker threads.
//!
//! Read the end-to-end sections against the delivery section: on an
//! out-of-order host the per-op delivery cost largely overlaps with the
//! simulator's own per-cycle work, so the whole-grid delta is smaller
//! than the delivery saving alone would suggest (see the committed
//! `BENCH_lanes.json` for the measured container numbers).
//!
//! `--quick` shrinks everything to a CI smoke asserting the laned path
//! is not slower beyond noise; the committed JSON is a full run.

use cmpleak_core::sweep::{run_sweep_sequential, run_sweep_with_scratch, SweepConfig};
use cmpleak_core::{ExperimentScratch, Scenario, Technique, WorkloadSpec};
use cmpleak_cpu::{OpSource, OpWindow, TraceOp};
use cmpleak_workloads::ScenarioSpec;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct GroupCell {
    scenario: String,
    size_mb: usize,
    /// Cells in the group (baseline + techniques).
    cells: usize,
    /// Simulated lanes in the group (the derived baseline is absent).
    lanes: usize,
    /// Wall-clock seconds, sequential planner (shared streams).
    sequential_s: f64,
    /// Wall-clock seconds, lane engine.
    lanes_s: f64,
    /// `sequential_s / lanes_s`.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct GridReport {
    scenarios: usize,
    sizes: usize,
    cells: usize,
    threads: usize,
    sequential_s: f64,
    lanes_s: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct DeliveryReport {
    ops_sampled: u64,
    /// ns/op of live generation through the budget-cursor adapter —
    /// what every cell of the pre-sharing planner paid in-loop.
    live_gen_ns_per_op: f64,
    /// ns/op of `OpWindow::advance` (generate + `Exec(0)` filter into
    /// the shared buffer) — paid once per lane *group*.
    window_fill_ns_per_op: f64,
    /// ns/op of a lane's `WindowCursor` reads — what each lane pays
    /// in-loop instead of generation or varint decode.
    cursor_read_ns_per_op: f64,
}

#[derive(Debug, Serialize)]
struct LanesReport {
    instructions_per_core: u64,
    n_cores: usize,
    reps: u32,
    delivery: DeliveryReport,
    groups: Vec<GroupCell>,
    grid: GridReport,
}

struct Opts {
    instr: u64,
    reps: u32,
    quick: bool,
    out: Option<String>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts { instr: 150_000, reps: 3, quick: false, out: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--instr" => opts.instr = args.next().and_then(|v| v.parse().ok()).expect("--instr N"),
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--quick" => opts.quick = true,
            "--out" => opts.out = Some(args.next().expect("--out PATH")),
            other => panic!("unknown argument {other} (try --instr/--reps/--quick/--out)"),
        }
    }
    if opts.quick {
        opts.instr = opts.instr.min(30_000);
        opts.reps = 2;
    }
    opts
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    let mut v: Vec<Scenario> =
        WorkloadSpec::paper_suite().into_iter().map(Scenario::Homogeneous).collect();
    v.extend(ScenarioSpec::paper_mixes().into_iter().map(Scenario::Mix));
    if quick {
        v = vec![
            Scenario::Homogeneous(WorkloadSpec::water_ns()),
            Scenario::Mix(ScenarioSpec::bursty_idle()),
        ];
    }
    v
}

fn group_cfg(scenario: &Scenario, size_mb: usize, instr: u64) -> SweepConfig {
    SweepConfig {
        scenarios: vec![scenario.clone()],
        sizes_mb: vec![size_mb],
        techniques: Technique::paper_set(),
        instructions_per_core: instr,
        seed: 42,
        n_cores: 4,
        threads: 1, // serial: measure simulation work, not scheduling
        store: None,
    }
}

/// Best-of-`reps` wall-clock of two arms, interleaved A/B per rep so a
/// transient machine-noise window degrades both arms instead of
/// silently skewing whichever one it landed on.
fn time_pair(reps: u32, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        a();
        best_a = best_a.min(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        b();
        best_b = best_b.min(t1.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

fn delivery_section(quick: bool) -> DeliveryReport {
    let mk = || -> Box<dyn OpSource> {
        ScenarioSpec::new("probe", vec![WorkloadSpec::water_ns()]).build_sources(1, 42).remove(0)
    };
    let n: u64 = if quick { 500_000 } else { 4_000_000 };

    let mut live = mk();
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..n {
        if let TraceOp::Load(a) = live.next_op() {
            acc ^= a;
        }
    }
    let live_gen_ns_per_op = t.elapsed().as_secs_f64() / n as f64 * 1e9;
    std::hint::black_box(acc);

    let mut win = OpWindow::new(vec![mk()]);
    let t = Instant::now();
    win.advance(&[0], &[0], n);
    let window_fill_ns_per_op = t.elapsed().as_secs_f64() / n as f64 * 1e9;

    // `Exec(0)` filtering makes the buffered count slightly smaller
    // than the fill count; read what is actually there.
    let avail = win.available(0, 0).min(n);
    let t = Instant::now();
    let mut pos = 0u64;
    let mut acc = 0u64;
    {
        let mut cur = win.cursor(0, &mut pos);
        for _ in 0..avail {
            if let TraceOp::Load(a) = cur.next_op() {
                acc ^= a;
            }
        }
    }
    let cursor_read_ns_per_op = t.elapsed().as_secs_f64() / avail as f64 * 1e9;
    std::hint::black_box(acc);

    DeliveryReport {
        ops_sampled: n,
        live_gen_ns_per_op,
        window_fill_ns_per_op,
        cursor_read_ns_per_op,
    }
}

fn group_section(opts: &Opts, sizes: &[usize]) -> Vec<GroupCell> {
    let mut out = Vec::new();
    let mut scratch = ExperimentScratch::default();
    let lanes = Technique::paper_set().len(); // baseline derived from Protocol
    for scenario in scenarios(opts.quick) {
        for &size in sizes {
            let cfg = group_cfg(&scenario, size, opts.instr);
            // Identity first (the differential tests pin this at scale;
            // here it guards the numbers below against divergence).
            let a = run_sweep_with_scratch(&cfg, &mut scratch);
            let b = run_sweep_sequential(&cfg);
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "laned and sequential sweeps diverged for {}@{size}MB",
                scenario.label()
            );
            let (lanes_s, sequential_s) = time_pair(
                opts.reps,
                || {
                    std::hint::black_box(run_sweep_with_scratch(&cfg, &mut scratch));
                },
                || {
                    std::hint::black_box(run_sweep_sequential(&cfg));
                },
            );
            let cell = GroupCell {
                scenario: scenario.label(),
                size_mb: size,
                cells: a.cells.len(),
                lanes,
                sequential_s,
                lanes_s,
                speedup: sequential_s / lanes_s,
            };
            println!(
                "{:<22} {:>2} MB | sequential {:>7.3}s vs lanes {:>7.3}s ({:>5.2}x)",
                cell.scenario, cell.size_mb, cell.sequential_s, cell.lanes_s, cell.speedup
            );
            out.push(cell);
        }
    }
    out
}

fn grid_section(opts: &Opts, sizes: &[usize]) -> GridReport {
    let cfg = SweepConfig {
        scenarios: scenarios(opts.quick),
        sizes_mb: sizes.to_vec(),
        techniques: Technique::paper_set(),
        instructions_per_core: opts.instr,
        seed: 42,
        n_cores: 4,
        threads: 0,
        store: None,
    };
    let mut scratch = ExperimentScratch::default();
    let mut cells = 0;
    let (lanes_s, sequential_s) = time_pair(
        opts.reps,
        || {
            cells = run_sweep_with_scratch(&cfg, &mut scratch).cells.len();
        },
        || {
            std::hint::black_box(run_sweep_sequential(&cfg));
        },
    );
    GridReport {
        scenarios: cfg.scenarios.len(),
        sizes: sizes.len(),
        cells,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        sequential_s,
        lanes_s,
        speedup: sequential_s / lanes_s,
    }
}

fn main() {
    let opts = parse_opts();
    let sizes: Vec<usize> = if opts.quick { vec![1] } else { vec![1, 2, 4, 8] };

    println!("== op delivery in isolation ==");
    let delivery = delivery_section(opts.quick);
    println!(
        "live gen {:.1} ns/op | window fill {:.1} ns/op (once per group) | cursor read {:.1} ns/op",
        delivery.live_gen_ns_per_op, delivery.window_fill_ns_per_op, delivery.cursor_read_ns_per_op
    );

    println!("== per-group sweeps: lane engine vs sequential planner (serial) ==");
    let groups = group_section(&opts, &sizes);

    println!("== whole paper grid (threads = available) ==");
    let grid = grid_section(&opts, &sizes);
    println!(
        "{} cells | sequential {:.2}s vs lanes {:.2}s ({:.2}x)",
        grid.cells, grid.sequential_s, grid.lanes_s, grid.speedup
    );

    let worst = groups.iter().map(|g| g.speedup).fold(f64::INFINITY, f64::min);
    let mean = groups.iter().map(|g| g.speedup).sum::<f64>() / groups.len().max(1) as f64;
    println!("worst group {worst:.2}x, mean group {mean:.2}x, grid {:.2}x", grid.speedup);

    if opts.quick {
        // CI smoke: lanes must never cost more than noise. The floor is
        // a noise floor, not a perf target — quick cells are small and
        // shared-runner timing jitters; real numbers come from full runs.
        assert!(worst > 0.85, "lane engine regressed on a group ({worst:.2}x)");
        assert!(
            delivery.cursor_read_ns_per_op < delivery.live_gen_ns_per_op,
            "window cursor reads ({:.1} ns/op) should undercut live generation ({:.1} ns/op)",
            delivery.cursor_read_ns_per_op,
            delivery.live_gen_ns_per_op
        );
    }

    let report = LanesReport {
        instructions_per_core: opts.instr,
        n_cores: 4,
        reps: opts.reps,
        delivery,
        groups,
        grid,
    };
    if let Some(path) = &opts.out {
        let mut json = serde_json::to_string_pretty(&report).expect("serializable");
        json.push('\n');
        std::fs::write(path, json).expect("report written");
        println!("wrote {path}");
    }
}
