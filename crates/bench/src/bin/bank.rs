//! Line-state bank harness: measures what the columnar storage layer
//! buys — arena reuse across sweep grid cells, word-chunked decay-tick
//! and final-accounting scans vs. the naive per-line loops, and the
//! baseline→technique sweep memoization — and emits `BENCH_bank.json`.
//!
//! ```text
//! bank [--instr N] [--reps N] [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the budgets to a CI smoke that asserts the load
//! bearing claims cheaply (arena reuse eliminates per-cell allocation;
//! the chunked scans agree with the naive reference); the committed
//! JSON is produced by a full run.

use cmpleak_core::experiment::{run_experiment_with_scratch, ExperimentConfig, ExperimentScratch};
use cmpleak_core::sweep::{run_sweep, run_sweep_reference, SweepConfig};
use cmpleak_core::{Scenario, Technique, WorkloadSpec};
use cmpleak_mem::{DecayBank, DecayConfig, LineStateBank};
use serde::Serialize;
use std::time::Instant;

// ---- naive reference models (the pre-columnar per-line loops) ---------

/// The old `Vec<bool>`/`Vec<u8>` decay scan: every line tested one at a
/// time on every tick.
struct NaiveDecay {
    counters: Vec<u8>,
    armed: Vec<bool>,
    live: Vec<bool>,
    sat: u8,
}

impl NaiveDecay {
    fn new(lines: usize, sat: u8) -> Self {
        Self { counters: vec![0; lines], armed: vec![true; lines], live: vec![false; lines], sat }
    }

    fn on_access(&mut self, slot: usize) {
        self.counters[slot] = 0;
        self.live[slot] = true;
    }

    fn tick(&mut self, decayed: &mut Vec<usize>) {
        for slot in 0..self.counters.len() {
            if !self.live[slot] || !self.armed[slot] {
                continue;
            }
            let c = &mut self.counters[slot];
            if *c < self.sat {
                *c += 1;
                if *c == self.sat {
                    self.live[slot] = false;
                    decayed.push(slot);
                }
            }
        }
    }
}

/// The old per-line final-accounting pass.
struct NaivePower {
    powered: Vec<bool>,
    since: Vec<u64>,
    on: Vec<u64>,
}

impl NaivePower {
    fn new(lines: usize) -> Self {
        Self { powered: vec![false; lines], since: vec![0; lines], on: vec![0; lines] }
    }

    fn power_on(&mut self, slot: usize, now: u64) {
        if !self.powered[slot] {
            self.powered[slot] = true;
            self.since[slot] = now;
        }
    }

    fn finish(&mut self, now: u64) -> u64 {
        for slot in 0..self.powered.len() {
            if self.powered[slot] {
                self.on[slot] += now - self.since[slot];
                self.since[slot] = now;
            }
        }
        self.on.iter().sum()
    }
}

/// Deterministic slot selection at a given density (splitmix-style hash
/// per slot, so the pattern is scattered rather than a prefix).
fn selected(slot: usize, permille: u64) -> bool {
    let mut x = slot as u64 ^ 0x9e37_79b9_7f4a_7c15;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (x ^ (x >> 31)) % 1000 < permille
}

// ---- report shape -----------------------------------------------------

#[derive(Debug, Serialize)]
struct ArenaReport {
    /// Grid cells run back-to-back on one scratch.
    cells: usize,
    total_l2_mb: usize,
    /// Fresh allocations after the first cell (the cold checkout).
    fresh_allocations_first_cell: u64,
    /// Fresh allocations added by all subsequent cells (the claim: 0).
    fresh_allocations_after_warmup: u64,
    /// Pool hits across the whole run.
    reuses: u64,
    checkouts: u64,
}

#[derive(Debug, Serialize)]
struct ScanCell {
    lines: usize,
    live_permille: u64,
    tick_naive_ns: f64,
    tick_banked_ns: f64,
    tick_speedup: f64,
    finish_naive_ns: f64,
    finish_banked_ns: f64,
    finish_speedup: f64,
}

#[derive(Debug, Serialize)]
struct MemoReport {
    grid_cells: usize,
    full_s: f64,
    memoized_s: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct BankReport {
    instructions_per_core: u64,
    reps: u32,
    arena: ArenaReport,
    scans: Vec<ScanCell>,
    sweep_memoization: MemoReport,
}

struct Opts {
    instr: u64,
    reps: u32,
    quick: bool,
    out: Option<String>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts { instr: 120_000, reps: 5, quick: false, out: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--instr" => opts.instr = args.next().and_then(|v| v.parse().ok()).expect("--instr N"),
            "--reps" => opts.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--quick" => opts.quick = true,
            "--out" => opts.out = Some(args.next().expect("--out PATH")),
            other => panic!("unknown argument {other} (try --instr/--reps/--quick/--out)"),
        }
    }
    if opts.quick {
        opts.instr = opts.instr.min(25_000);
        opts.reps = 2;
    }
    opts
}

// ---- sections ---------------------------------------------------------

/// Back-to-back experiments at the paper's largest (8 MB) configuration
/// on one scratch: after the first cell warms the arena, later cells
/// must not allocate per-line columns at all.
fn arena_section(instr: u64) -> ArenaReport {
    let total_l2_mb = 8;
    let mut scratch = ExperimentScratch::default();
    let grid: Vec<(WorkloadSpec, Technique)> =
        [Technique::Baseline, Technique::Protocol, Technique::Decay { decay_cycles: 64 * 1024 }]
            .into_iter()
            .flat_map(|t| [(WorkloadSpec::water_ns(), t), (WorkloadSpec::mpeg2dec(), t)])
            .collect();
    let mut first_cell = 0u64;
    for (i, (spec, technique)) in grid.iter().enumerate() {
        let mut cfg = ExperimentConfig::paper(*spec, *technique, total_l2_mb);
        cfg.instructions_per_core = instr;
        run_experiment_with_scratch(&cfg, &mut scratch);
        if i == 0 {
            first_cell = scratch.arena_stats().fresh_allocations;
        }
    }
    let s = scratch.arena_stats();
    ArenaReport {
        cells: grid.len(),
        total_l2_mb,
        fresh_allocations_first_cell: first_cell,
        fresh_allocations_after_warmup: s.fresh_allocations - first_cell,
        reuses: s.reuses,
        checkouts: s.checkouts,
    }
}

/// Time `f` best-of-`reps`, returning ns per inner iteration.
fn time_ns(reps: u32, iters: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

/// Decay-tick and final-accounting scans, word-chunked vs. naive, on the
/// per-cache line counts of the 8 MB configurations (2 MB per private
/// cache = 32 K lines; 131 K = the whole 8 MB as one array).
fn scan_section(reps: u32, iters: u32, quick: bool) -> Vec<ScanCell> {
    let line_counts: &[usize] = if quick { &[32 * 1024] } else { &[32 * 1024, 128 * 1024] };
    let densities: &[u64] = if quick { &[250] } else { &[1000, 250, 30] };
    let mut out = Vec::new();
    for &lines in line_counts {
        for &permille in densities {
            let sat = DecayConfig::fixed(4 << 10).saturation();

            // -- decay tick --
            let mut naive = NaiveDecay::new(lines, sat);
            let mut bank = DecayBank::new(DecayConfig::fixed(4 << 10));
            let mut st = LineStateBank::new(lines);
            let arm = |nv: &mut NaiveDecay, bk: &mut DecayBank, st: &mut LineStateBank| {
                for slot in 0..lines {
                    if selected(slot, permille) {
                        nv.on_access(slot);
                        bk.on_access(st, slot);
                    }
                }
            };
            arm(&mut naive, &mut bank, &mut st);
            // Equality of one full decay sequence before timing.
            let mut a = Vec::new();
            let mut b = Vec::new();
            let mut now = 0u64;
            for _ in 0..u64::from(sat) {
                now += bank.config().tick_period();
                a.clear();
                naive.tick(&mut a);
                b.clear();
                bank.advance(&mut st, now, &mut b);
                assert_eq!(a, b, "chunked tick diverged from the naive scan");
            }
            arm(&mut naive, &mut bank, &mut st);
            let mut sink = Vec::new();
            let tick_naive_ns = time_ns(reps, iters, || {
                sink.clear();
                naive.tick(&mut sink);
                if !sink.is_empty() {
                    for &s in &sink {
                        naive.on_access(s);
                    }
                }
            });
            let tick_banked_ns = time_ns(reps, iters, || {
                sink.clear();
                now += bank.config().tick_period();
                bank.advance(&mut st, now, &mut sink);
                if !sink.is_empty() {
                    for &s in &sink {
                        bank.on_access(&mut st, s);
                    }
                }
            });

            // -- final accounting --
            let mut np = NaivePower::new(lines);
            let mut pb = LineStateBank::new(lines);
            for slot in 0..lines {
                if selected(slot, permille) {
                    np.power_on(slot, 5);
                    pb.power_on(slot, 5);
                }
            }
            assert_eq!(np.finish(1000), pb.finish_on_cycles(1000), "accounting diverged");
            let mut t = 1000u64;
            let finish_naive_ns = time_ns(reps, iters, || {
                t += 1000;
                std::hint::black_box(np.finish(t));
            });
            let mut t2 = 1000u64;
            let finish_banked_ns = time_ns(reps, iters, || {
                t2 += 1000;
                std::hint::black_box(pb.finish_on_cycles(t2));
            });

            out.push(ScanCell {
                lines,
                live_permille: permille,
                tick_naive_ns,
                tick_banked_ns,
                tick_speedup: tick_naive_ns / tick_banked_ns,
                finish_naive_ns,
                finish_banked_ns,
                finish_speedup: finish_naive_ns / finish_banked_ns,
            });
        }
    }
    out
}

/// Wall-clock of the memoized sweep vs. the fully simulated reference
/// over a Protocol-bearing grid.
fn memo_section(instr: u64, reps: u32) -> MemoReport {
    let cfg = SweepConfig {
        scenarios: vec![
            Scenario::Homogeneous(WorkloadSpec::water_ns()),
            Scenario::Homogeneous(WorkloadSpec::mpeg2dec()),
        ],
        sizes_mb: vec![8],
        techniques: Technique::paper_set(),
        instructions_per_core: instr,
        seed: 42,
        n_cores: 4,
        threads: 1, // serial: measure simulation work saved, not scheduling
        store: None,
    };
    let mut full_s = f64::INFINITY;
    let mut memoized_s = f64::INFINITY;
    let mut cells = 0;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let full = run_sweep_reference(&cfg);
        full_s = full_s.min(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        let memo = run_sweep(&cfg);
        memoized_s = memoized_s.min(t1.elapsed().as_secs_f64());
        assert_eq!(full.cells.len(), memo.cells.len());
        cells = memo.cells.len();
    }
    MemoReport { grid_cells: cells, full_s, memoized_s, speedup: full_s / memoized_s }
}

fn main() {
    let opts = parse_opts();
    let iters = if opts.quick { 20 } else { 200 };

    println!("== arena reuse (8 MB grid cells on one scratch) ==");
    let arena = arena_section(opts.instr);
    println!(
        "cells {} | fresh allocs: first cell {}, after warmup {} | reuses {}/{}",
        arena.cells,
        arena.fresh_allocations_first_cell,
        arena.fresh_allocations_after_warmup,
        arena.reuses,
        arena.checkouts
    );

    println!("== per-line scans: word-chunked vs naive ==");
    let scans = scan_section(opts.reps, iters, opts.quick);
    for s in &scans {
        println!(
            "{:>7} lines @{:>4}‰ live | tick {:>10.0}ns vs {:>10.0}ns ({:>5.2}x) | finish {:>10.0}ns vs {:>10.0}ns ({:>5.2}x)",
            s.lines, s.live_permille, s.tick_naive_ns, s.tick_banked_ns, s.tick_speedup,
            s.finish_naive_ns, s.finish_banked_ns, s.finish_speedup
        );
    }

    println!("== sweep memoization (serial, 8 MB, paper techniques) ==");
    let memo = memo_section(opts.instr, if opts.quick { 1 } else { opts.reps.min(3) });
    println!(
        "{} cells | full {:.2}s vs memoized {:.2}s ({:.2}x)",
        memo.grid_cells, memo.full_s, memo.memoized_s, memo.speedup
    );

    if opts.quick {
        // CI smoke: the load-bearing claims, cheaply.
        assert_eq!(
            arena.fresh_allocations_after_warmup, 0,
            "warmed arena must serve every later cell from the pool"
        );
        for s in &scans {
            assert!(
                s.tick_speedup > 0.5 && s.finish_speedup > 0.5,
                "chunked scans catastrophically slower than naive: {s:?}"
            );
        }
        assert!(memo.speedup > 0.9, "memoized sweep slower than the full one ({memo:?})");
    }

    let report = BankReport {
        instructions_per_core: opts.instr,
        reps: opts.reps,
        arena,
        scans,
        sweep_memoization: memo,
    };
    if let Some(path) = &opts.out {
        let mut json = serde_json::to_string_pretty(&report).expect("serializable");
        json.push('\n');
        std::fs::write(path, json).expect("report written");
        println!("wrote {path}");
    }
}
