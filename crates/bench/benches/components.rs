//! Micro-benchmarks for the substrate components: tag arrays, MSHRs,
//! decay counter banks, the MESI machine, workload generation, thermal
//! stepping, and raw simulator throughput.

use cmpleak_coherence::bus::SnoopKind;
use cmpleak_coherence::mesi::{step, Event, MesiState, SnoopContext};
use cmpleak_coherence::Technique;
use cmpleak_cpu::Workload;
use cmpleak_mem::{
    DecayBank, DecayConfig, Geometry, LineAddr, LineStateBank, LookupOutcome, Mshr, SetAssocArray,
    ShadowTags,
};
use cmpleak_power::{PowerParams, ThermalModel};
use cmpleak_system::{run_simulation, CmpConfig};
use cmpleak_workloads::{GenerationalWorkload, WorkloadSpec, Xoshiro256pp};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

#[derive(Default, Clone)]
struct V(bool);
impl cmpleak_mem::array::LineMeta for V {
    fn is_valid(&self) -> bool {
        self.0
    }
    fn to_byte(&self) -> u8 {
        self.0.into()
    }
    fn from_byte(b: u8) -> Self {
        V(b != 0)
    }
}

fn bench_mem(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem");
    g.measurement_time(Duration::from_secs(3)).sample_size(30);

    // Tag array lookup/fill mix over a 1 MB, 8-way array.
    g.bench_function("tag_array_access_mix", |b| {
        let geom = Geometry::new(1 << 20, 64, 8);
        let mut arr: SetAssocArray<V> = SetAssocArray::new(geom);
        let mut rng = Xoshiro256pp::seeded(1);
        b.iter(|| {
            let line = LineAddr(rng.below(1 << 18));
            match arr.lookup(line) {
                LookupOutcome::Hit(_) => {}
                LookupOutcome::Miss => {
                    let v = arr.victim(line);
                    arr.fill(v, line, V(true));
                }
            }
        })
    });

    g.bench_function("mshr_allocate_complete", |b| {
        let mut mshr: Mshr<u32> = Mshr::new(16, 8);
        let mut i = 0u64;
        b.iter(|| {
            let line = LineAddr(i % 13);
            i += 1;
            mshr.allocate(line, 0, false);
            mshr.complete(line);
        })
    });

    // One decay tick over a 16K-line bank (the recurring cost of the
    // hierarchical counter scan, now word-chunked over the columnar
    // line-state bank).
    g.bench_function("decay_bank_tick_16k_lines", |b| {
        let mut bank = DecayBank::new(DecayConfig::fixed(4 << 10));
        let mut st = LineStateBank::new(16 * 1024);
        for slot in 0..16 * 1024 {
            bank.on_access(&mut st, slot);
        }
        let mut now = 0u64;
        let mut sink = Vec::new();
        b.iter(|| {
            now += 1 << 10;
            sink.clear();
            bank.advance(&mut st, now, &mut sink);
            // Keep lines live so every tick scans everything.
            if sink.len() > 8 * 1024 {
                for slot in 0..16 * 1024 {
                    bank.on_access(&mut st, slot);
                }
            }
        })
    });

    g.bench_function("shadow_tags_access", |b| {
        let mut sh = ShadowTags::new(Geometry::new(1 << 18, 64, 8));
        let mut rng = Xoshiro256pp::seeded(3);
        b.iter(|| sh.access(LineAddr(rng.below(1 << 16))))
    });
    g.finish();
}

fn bench_coherence(c: &mut Criterion) {
    let mut g = c.benchmark_group("coherence");
    g.measurement_time(Duration::from_secs(3)).sample_size(30);
    let events = [
        Event::PrRead,
        Event::PrWrite,
        Event::Snoop(SnoopKind::BusRd),
        Event::Snoop(SnoopKind::BusRdX),
        Event::TurnOff,
        Event::Grant,
    ];
    g.bench_function("mesi_step_walk", |b| {
        let mut state = MesiState::Invalid;
        let mut i = 0usize;
        let ctx = SnoopContext { upper_has_copy: true, pending_write: false };
        b.iter(|| {
            let t = step(state, events[i % events.len()], ctx);
            i += 1;
            if let Some(n) = t.next {
                state = n;
            } else if state == MesiState::Invalid {
                state = MesiState::Exclusive; // re-seed after gating
            }
            t
        })
    });
    g.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.measurement_time(Duration::from_secs(3)).sample_size(30);
    for spec in [WorkloadSpec::fmm(), WorkloadSpec::mpeg2dec()] {
        g.bench_function(format!("generate_{}", spec.name), |b| {
            b.iter_batched(
                || GenerationalWorkload::new(spec, 0, 4, 42),
                |mut w| {
                    let mut acc = 0u64;
                    for _ in 0..10_000 {
                        acc = acc.wrapping_add(w.next_op().instructions());
                    }
                    acc
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_thermal(c: &mut Criterion) {
    let mut g = c.benchmark_group("thermal");
    g.measurement_time(Duration::from_secs(3)).sample_size(30);
    g.bench_function("rc_step_8_blocks", |b| {
        let mut m = ThermalModel::new(PowerParams::default(), 4);
        let powers = vec![0.5; 8];
        b.iter(|| m.step(&powers, 2.5e-6))
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.measurement_time(Duration::from_secs(10)).sample_size(10);
    for technique in [Technique::Baseline, Technique::Decay { decay_cycles: 64 * 1024 }] {
        g.bench_function(format!("throughput_{}", technique.name()), |b| {
            b.iter(|| {
                let mut cfg = CmpConfig::paper_system(1, technique);
                cfg.instructions_per_core = 50_000;
                let wls: Vec<Box<dyn Workload>> = (0..4)
                    .map(|core| {
                        Box::new(GenerationalWorkload::new(WorkloadSpec::water_ns(), core, 4, 1))
                            as Box<dyn Workload>
                    })
                    .collect();
                run_simulation(cfg, wls)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mem,
    bench_coherence,
    bench_workloads,
    bench_thermal,
    bench_simulator
);
criterion_main!(benches);
