//! One criterion bench group per paper figure.
//!
//! Each group times the regeneration of its figure at a reduced scale
//! (so `cargo bench` exercises every figure path end-to-end) and prints
//! the figure once per group so the series are visible in the bench log.
//! Full-scale tables are produced by the `repro` binary (see
//! EXPERIMENTS.md).

use cmpleak_core::figures::FigureSet;
use cmpleak_core::sweep::{run_sweep, SweepConfig, SweepResults};
use cmpleak_core::{Technique, WorkloadSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;
use std::time::Duration;

/// Reduced paper grid shared by all figure benches: 2 benchmarks (one
/// per class), 2 sizes, 3 techniques, 150K instructions per core.
fn shared_grid() -> &'static SweepResults {
    static GRID: OnceLock<SweepResults> = OnceLock::new();
    GRID.get_or_init(|| {
        run_sweep(&SweepConfig {
            scenarios: vec![
                cmpleak_core::Scenario::Homogeneous(WorkloadSpec::water_ns()),
                cmpleak_core::Scenario::Homogeneous(WorkloadSpec::mpeg2dec()),
            ],
            sizes_mb: vec![1, 2],
            techniques: vec![
                Technique::Protocol,
                Technique::Decay { decay_cycles: 64 * 1024 },
                Technique::SelectiveDecay { decay_cycles: 64 * 1024 },
            ],
            instructions_per_core: 150_000,
            seed: 42,
            n_cores: 4,
            threads: 0,
            store: None,
        })
    })
}

fn bench_figures(c: &mut Criterion) {
    let grid = shared_grid();
    let figs = FigureSet::new(grid);

    // Print each reproduced series once so `cargo bench` output contains
    // the same rows the paper reports.
    println!("{}", figs.fig3a());
    println!("{}", figs.fig3b());
    println!("{}", figs.fig4a());
    println!("{}", figs.fig4b());
    println!("{}", figs.fig5a());
    println!("{}", figs.fig5b());
    println!("{}", figs.fig6a(1));
    println!("{}", figs.fig6b(1));

    let mut g = c.benchmark_group("figures");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    g.bench_function("fig3a_occupation", |b| b.iter(|| figs.fig3a()));
    g.bench_function("fig3b_miss_rate", |b| b.iter(|| figs.fig3b()));
    g.bench_function("fig4a_bandwidth", |b| b.iter(|| figs.fig4a()));
    g.bench_function("fig4b_amat", |b| b.iter(|| figs.fig4b()));
    g.bench_function("fig5a_energy", |b| b.iter(|| figs.fig5a()));
    g.bench_function("fig5b_ipc", |b| b.iter(|| figs.fig5b()));
    g.bench_function("fig6a_energy_by_bench", |b| b.iter(|| figs.fig6a(1)));
    g.bench_function("fig6b_ipc_by_bench", |b| b.iter(|| figs.fig6b(1)));
    g.bench_function("headline", |b| b.iter(|| figs.headline(1)));
    g.finish();

    // Table I is pure code: bench its rendering too.
    let mut t = c.benchmark_group("table1");
    t.measurement_time(Duration::from_secs(2)).sample_size(20);
    t.bench_function("render", |b| b.iter(cmpleak_coherence::legality::render_table));
    t.finish();

    // The underlying experiment (what one grid cell costs), per technique.
    let mut e = c.benchmark_group("experiment_cell");
    e.measurement_time(Duration::from_secs(8)).sample_size(10);
    for technique in [
        Technique::Baseline,
        Technique::Protocol,
        Technique::Decay { decay_cycles: 64 * 1024 },
        Technique::SelectiveDecay { decay_cycles: 64 * 1024 },
    ] {
        let mut cfg = cmpleak_core::ExperimentConfig::paper(WorkloadSpec::mpeg2dec(), technique, 1);
        cfg.instructions_per_core = 60_000;
        e.bench_function(technique.name(), |b| b.iter(|| cmpleak_core::run_experiment(&cfg)));
    }
    e.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
