//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * decay-counter resolution (1/2/4 bits) — the hierarchical-counter
//!   quantisation trade-off,
//! * write-buffer depth and OoO window — core/memory coupling knobs,
//! * fixed vs. oracle-adaptive decay interval (the §II adaptive schemes'
//!   upper bound),
//! * MESI vs. MOESI turn-off cost profile.
//!
//! Each group prints its measurement table once (the numbers are the
//! point; timing just keeps criterion honest about the cost).

use cmpleak_coherence::bus::SnoopKind;
use cmpleak_coherence::{mesi, moesi};
use cmpleak_core::adaptive::{oracle_advantage, oracle_pick, relative_edp};
use cmpleak_core::metrics::TechniqueMetrics;
use cmpleak_core::sweep::{run_sweep, SweepConfig};
use cmpleak_core::{run_experiment, ExperimentConfig, Technique, WorkloadSpec};
use cmpleak_cpu::Workload;
use cmpleak_system::run_simulation;
use cmpleak_workloads::GenerationalWorkload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const INSTR: u64 = 150_000;

fn cell(
    technique: Technique,
    mutate: impl Fn(&mut cmpleak_system::CmpConfig),
) -> cmpleak_system::SimStats {
    let base = ExperimentConfig::paper(WorkloadSpec::water_ns(), technique, 1);
    let mut cfg = base.cmp_config();
    cfg.instructions_per_core = INSTR;
    mutate(&mut cfg);
    let wls: Vec<Box<dyn Workload>> = (0..cfg.n_cores)
        .map(|c| {
            Box::new(GenerationalWorkload::new(WorkloadSpec::water_ns(), c, cfg.n_cores, 42))
                as Box<dyn Workload>
        })
        .collect();
    run_simulation(cfg, wls)
}

fn bench_decay_granularity(c: &mut Criterion) {
    println!("\n== ablation: decay counter resolution (decay = 64K cycles) ==");
    println!("{:>6} {:>12} {:>14} {:>16}", "bits", "tick", "occupation", "counter events");
    for bits in [1u32, 2, 4] {
        let stats = cell(Technique::Decay { decay_cycles: 64 * 1024 }, |cfg| {
            cfg.l2.decay_counter_bits = bits;
        });
        let events: u64 = stats.trace.iter().map(|t| t.decay_counter_events).sum();
        println!(
            "{:>6} {:>12} {:>13.1}% {:>16}",
            bits,
            (64 * 1024) >> bits,
            stats.occupation_rate() * 100.0,
            events
        );
    }
    let mut g = c.benchmark_group("ablation_decay_bits");
    g.measurement_time(Duration::from_secs(5)).sample_size(10);
    for bits in [1u32, 2, 4] {
        g.bench_function(format!("{bits}bit"), |b| {
            b.iter(|| {
                cell(Technique::Decay { decay_cycles: 64 * 1024 }, |cfg| {
                    cfg.l2.decay_counter_bits = bits;
                })
            })
        });
    }
    g.finish();
}

fn bench_sensitivity(c: &mut Criterion) {
    println!("\n== ablation: write-buffer depth / OoO window (baseline) ==");
    println!("{:>10} {:>10} {:>10} {:>10}", "wb depth", "window", "cycles", "amat");
    for (wb, window) in [(2usize, 64u64), (8, 64), (8, 16), (8, 256)] {
        let stats = cell(Technique::Baseline, |cfg| {
            cfg.l1.write_buffer = wb;
            cfg.core.window = window;
        });
        println!("{:>10} {:>10} {:>10} {:>10.1}", wb, window, stats.cycles, stats.amat());
    }
    let mut g = c.benchmark_group("ablation_sensitivity");
    g.measurement_time(Duration::from_secs(5)).sample_size(10);
    g.bench_function("shallow_wb", |b| {
        b.iter(|| cell(Technique::Baseline, |cfg| cfg.l1.write_buffer = 2))
    });
    g.bench_function("narrow_window", |b| {
        b.iter(|| cell(Technique::Baseline, |cfg| cfg.core.window = 16))
    });
    g.finish();
}

fn bench_adaptive_vs_fixed(c: &mut Criterion) {
    let grid = run_sweep(&SweepConfig {
        scenarios: vec![
            cmpleak_core::Scenario::Homogeneous(WorkloadSpec::water_ns()),
            cmpleak_core::Scenario::Homogeneous(WorkloadSpec::mpeg2dec()),
        ],
        sizes_mb: vec![1],
        techniques: vec![
            Technique::Decay { decay_cycles: 512 * 1024 },
            Technique::Decay { decay_cycles: 128 * 1024 },
            Technique::Decay { decay_cycles: 64 * 1024 },
        ],
        instructions_per_core: INSTR,
        seed: 42,
        n_cores: 4,
        threads: 0,
        store: None,
    });
    let choices = oracle_pick(&grid, "decay");
    println!("\n== ablation: fixed vs oracle-adaptive decay interval ==");
    for ch in &choices {
        println!(
            "  {:10} -> {:12} EDP {:.3} (best fixed {:.3})",
            ch.benchmark, ch.technique, ch.edp, ch.best_fixed_edp
        );
    }
    println!("  mean oracle advantage: {:.4} EDP", oracle_advantage(&choices));

    let mut g = c.benchmark_group("ablation_adaptive");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    g.bench_function("oracle_pick", |b| b.iter(|| oracle_pick(&grid, "decay")));
    g.finish();
}

fn bench_moesi_vs_mesi(c: &mut Criterion) {
    // Protocol-level cost profile: drive both machines through the same
    // dirty-sharing + turn-off scenario and count bus-visible costs.
    fn mesi_costs(rounds: u64) -> (u64, u64) {
        let (mut writebacks, extra_invals) = (0u64, 0u64);
        for _ in 0..rounds {
            // M line read by another core, then turned off. MESI pays
            // the write-back at the snoop (M -> S flush); the clean
            // turn-off afterwards is free.
            let t1 = mesi::step(
                mesi::MesiState::Modified,
                mesi::Event::Snoop(SnoopKind::BusRd),
                mesi::SnoopContext::default(),
            );
            writebacks += t1.writeback as u64;
            let t2 =
                mesi::step(t1.next.unwrap(), mesi::Event::TurnOff, mesi::SnoopContext::default());
            writebacks += t2.writeback as u64;
        }
        (writebacks, extra_invals)
    }
    fn moesi_costs(rounds: u64) -> (u64, u64) {
        let (mut writebacks, mut extra_invals) = (0u64, 0u64);
        for _ in 0..rounds {
            let t1 = moesi::step(
                moesi::MoesiState::Modified,
                moesi::MoesiEvent::Snoop(SnoopKind::BusRd),
            );
            writebacks += t1.writeback as u64;
            let t2 = moesi::step(t1.next.unwrap(), moesi::MoesiEvent::TurnOff);
            writebacks += t2.writeback as u64;
            extra_invals += t2.invalidate_other_copies as u64;
        }
        (writebacks, extra_invals)
    }
    let (mesi_wb, mesi_inv) = mesi_costs(1000);
    let (moesi_wb, moesi_inv) = moesi_costs(1000);
    println!("\n== ablation: MESI vs MOESI per 1000 dirty-share+turn-off rounds ==");
    println!("  MESI : {mesi_wb} writebacks, {mesi_inv} sharer-invalidation broadcasts");
    println!("  MOESI: {moesi_wb} writebacks, {moesi_inv} sharer-invalidation broadcasts");

    let mut g = c.benchmark_group("ablation_moesi");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    g.bench_function("mesi_round", |b| b.iter(|| mesi_costs(100)));
    g.bench_function("moesi_round", |b| b.iter(|| moesi_costs(100)));
    g.finish();
}

fn bench_edp_frontier(c: &mut Criterion) {
    println!("\n== ablation: energy-delay frontier at 1MB (WATER-NS) ==");
    let mut base_cfg = ExperimentConfig::paper(WorkloadSpec::water_ns(), Technique::Baseline, 1);
    base_cfg.instructions_per_core = INSTR;
    let base = run_experiment(&base_cfg);
    for technique in Technique::paper_set() {
        let mut cfg = base_cfg.clone();
        cfg.technique = technique;
        let r = run_experiment(&cfg);
        let m = TechniqueMetrics::compare(&base, &r);
        println!("  {:14} EDP {:.3}", r.technique, relative_edp(&m));
    }
    let mut g = c.benchmark_group("ablation_edp");
    g.measurement_time(Duration::from_secs(5)).sample_size(10);
    g.bench_function("frontier_point", |b| {
        b.iter(|| {
            let mut cfg = base_cfg.clone();
            cfg.technique = Technique::SelectiveDecay { decay_cycles: 128 * 1024 };
            run_experiment(&cfg)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_decay_granularity,
    bench_sensitivity,
    bench_adaptive_vs_fixed,
    bench_moesi_vs_mesi,
    bench_edp_frontier
);
criterion_main!(benches);
