//! Property-based tests of the core timing model: for arbitrary
//! workloads and port behaviours, the model must dispatch exactly its
//! budget, never exceed its structural limits, and always drain.

use cmpleak_cpu::{CoreConfig, CoreModel, CorePort, ReplayWorkload, TraceOp};
use proptest::prelude::*;

/// A port that accepts requests according to a scripted pattern and
/// completes loads after a fixed delay.
struct ScriptedPort {
    accept_pattern: Vec<bool>,
    i: usize,
    inflight: Vec<(u64, u64)>, // (id, complete_at)
    now: u64,
    latency: u64,
}

impl ScriptedPort {
    fn new(pattern: Vec<bool>, latency: u64) -> Self {
        Self { accept_pattern: pattern, i: 0, inflight: vec![], now: 0, latency }
    }

    fn accept(&mut self) -> bool {
        let a = self.accept_pattern[self.i % self.accept_pattern.len()];
        self.i += 1;
        a
    }

    fn tick(&mut self, core: &mut CoreModel) {
        self.now += 1;
        let now = self.now;
        let (done, rest): (Vec<_>, Vec<_>) = self.inflight.drain(..).partition(|&(_, t)| t <= now);
        self.inflight = rest;
        for (id, _) in done {
            core.on_load_complete(id);
        }
    }
}

impl CorePort for ScriptedPort {
    fn try_load(&mut self, _addr: u64, id: u64) -> bool {
        if self.accept() {
            self.inflight.push((id, self.now + self.latency));
            true
        } else {
            false
        }
    }
    fn try_store(&mut self, _addr: u64) -> bool {
        self.accept()
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<TraceOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1u32..12).prop_map(TraceOp::Exec),
            (0u64..1024).prop_map(|a| TraceOp::Load(a * 8)),
            (0u64..1024).prop_map(|a| TraceOp::Store(a * 8)),
        ],
        1..40,
    )
}

proptest! {
    /// Whatever the workload and acceptance pattern, the core dispatches
    /// exactly `budget` instructions and drains.
    #[test]
    fn budget_is_exact_and_model_drains(
        ops in arb_ops(),
        pattern in proptest::collection::vec(any::<bool>(), 1..8),
        budget in 1u64..3000,
        width in 1u32..8,
        window in 1u64..128,
        latency in 1u64..50,
    ) {
        // Guarantee progress: at least one accepting slot in the pattern.
        let mut pattern = pattern;
        pattern.push(true);
        let cfg = CoreConfig { width, window, max_outstanding_loads: 4 };
        let mut core = CoreModel::new(cfg, budget);
        let mut wl = ReplayWorkload::cycle(ops);
        let mut port = ScriptedPort::new(pattern, latency);
        let mut guard = 0u64;
        while !core.drained() {
            port.tick(&mut core);
            core.tick(&mut wl, &mut port);
            guard += 1;
            prop_assert!(guard < 2_000_000, "model failed to drain");
        }
        prop_assert_eq!(core.stats().instructions, budget);
        prop_assert_eq!(core.outstanding_loads(), 0);
    }

    /// IPC never exceeds the dispatch width, and per-cycle dispatch is
    /// bounded by it too.
    #[test]
    fn dispatch_bounded_by_width(
        ops in arb_ops(),
        width in 1u32..8,
    ) {
        let cfg = CoreConfig { width, window: 64, max_outstanding_loads: 8 };
        let mut core = CoreModel::new(cfg, 2000);
        let mut wl = ReplayWorkload::cycle(ops);
        let mut port = ScriptedPort::new(vec![true], 3);
        let mut cycles = 0u64;
        while !core.drained() && cycles < 1_000_000 {
            port.tick(&mut core);
            let d = core.tick(&mut wl, &mut port);
            prop_assert!(d <= width);
            cycles += 1;
        }
        let ipc = core.stats().instructions as f64 / cycles as f64;
        prop_assert!(ipc <= width as f64 + 1e-9);
    }

    /// `progress_state()` honours its contract with `tick()`: whenever
    /// it reports a blocked state, the next tick must change exactly the
    /// statistics `charge_stall_cycles` would charge (and dispatch
    /// nothing); `Idle` ticks must change nothing at all.
    #[test]
    fn progress_state_predicts_tick_deltas(
        ops in arb_ops(),
        pattern in proptest::collection::vec(any::<bool>(), 1..8),
        budget in 1u64..2000,
        width in 1u32..8,
        window in 1u64..64,
        latency in 1u64..60,
    ) {
        use cmpleak_cpu::ProgressState;
        let mut pattern = pattern;
        pattern.push(true);
        let cfg = CoreConfig { width, window, max_outstanding_loads: 3 };
        let mut core = CoreModel::new(cfg, budget);
        let mut wl = ReplayWorkload::cycle(ops);
        let mut port = ScriptedPort::new(pattern, latency);
        let mut guard = 0u64;
        loop {
            port.tick(&mut core);
            let state = core.progress_state();
            let before = core.stats();
            let dispatched = core.tick(&mut wl, &mut port);
            let after = core.stats();
            match state {
                ProgressState::Idle => {
                    prop_assert_eq!(dispatched, 0);
                    prop_assert_eq!(before, after, "idle ticks must be strict no-ops");
                }
                ProgressState::WindowBlocked => {
                    prop_assert_eq!(dispatched, 0);
                    prop_assert_eq!(after.instructions, before.instructions);
                    prop_assert_eq!(after.active_cycles, before.active_cycles + 1);
                    prop_assert_eq!(after.window_stall_cycles, before.window_stall_cycles + 1);
                    prop_assert_eq!(after.reject_stall_cycles, before.reject_stall_cycles);
                }
                ProgressState::RetryLoad(_) => {
                    // The port may accept this time; only when it keeps
                    // refusing is the core truly blocked, and then the
                    // delta is one active + one reject-stall cycle.
                    if dispatched == 0 && after.loads == before.loads {
                        prop_assert_eq!(after.active_cycles, before.active_cycles + 1);
                        prop_assert_eq!(
                            after.reject_stall_cycles, before.reject_stall_cycles + 1
                        );
                        prop_assert_eq!(after.window_stall_cycles, before.window_stall_cycles);
                    }
                }
                ProgressState::RetryStore(_) => {
                    // Same contract as a retried load: while the port
                    // keeps refusing, one active + one reject-stall.
                    if dispatched == 0 && after.stores == before.stores {
                        prop_assert_eq!(after.active_cycles, before.active_cycles + 1);
                        prop_assert_eq!(
                            after.reject_stall_cycles, before.reject_stall_cycles + 1
                        );
                        prop_assert_eq!(after.window_stall_cycles, before.window_stall_cycles);
                    }
                }
                ProgressState::Ready => {}
            }
            if core.drained() {
                break;
            }
            guard += 1;
            prop_assert!(guard < 2_000_000, "model failed to drain");
        }
    }

    /// The outstanding-load count never exceeds the configured queue.
    #[test]
    fn load_queue_respected(
        ops in arb_ops(),
        maxq in 1usize..6,
        latency in 5u64..80,
    ) {
        let cfg = CoreConfig { width: 4, window: 256, max_outstanding_loads: maxq };
        let mut core = CoreModel::new(cfg, 1500);
        let mut wl = ReplayWorkload::cycle(ops);
        let mut port = ScriptedPort::new(vec![true], latency);
        let mut guard = 0u64;
        while !core.drained() && guard < 1_000_000 {
            port.tick(&mut core);
            core.tick(&mut wl, &mut port);
            prop_assert!(core.outstanding_loads() <= maxq);
            guard += 1;
        }
    }
}
