//! Property-based differentials for the [`OpSource`] boundary.
//!
//! The sweep planner's shared-stream optimization rests on one claim:
//! an op prefix recorded into a `MemTrace` and served back through
//! per-core cursors is **op-for-op identical** to the [`LiveGen`]
//! stream it was recorded from, for any workload spec, seed, core
//! count and instruction budget. These properties pin that claim at the
//! source boundary itself (the end-to-end `SimStats` differential lives
//! in `tests/stream_sharing.rs` at the workspace root), plus the
//! encode/decode round-trip of the in-memory CMPT streams against both
//! the cursor path and the file tooling.

use cmpleak_cpu::{LiveGen, OpSource, ReplayWorkload, TraceOp, Workload};
use cmpleak_mem::BankArena;
use cmpleak_trace::{MemTrace, TraceFile};
use cmpleak_workloads::{GenerationalWorkload, WorkloadSpec};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (0..WorkloadSpec::extended_suite().len()).prop_map(|i| WorkloadSpec::extended_suite()[i])
}

fn arb_ops() -> impl Strategy<Value = Vec<TraceOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..40).prop_map(TraceOp::Exec),
            (0u64..1 << 20).prop_map(|a| TraceOp::Load(a * 8)),
            (0u64..1 << 20).prop_map(|a| TraceOp::Store(a * 8)),
        ],
        1..60,
    )
}

proptest! {
    /// Any op prefix served via `MemTrace` cursors equals the `LiveGen`
    /// stream op-for-op — over every workload spec, random seeds, core
    /// counts and budgets — and the recording covers at least the
    /// budget on every core.
    #[test]
    fn mem_trace_cursors_match_live_gen_streams(
        spec in arb_spec(),
        seed in 0u64..10_000,
        budget in 500u64..20_000,
        n_cores in 1usize..5,
    ) {
        let gens = || -> Vec<Box<dyn Workload>> {
            (0..n_cores)
                .map(|c| {
                    Box::new(GenerationalWorkload::new(spec, c, n_cores, seed))
                        as Box<dyn Workload>
                })
                .collect()
        };
        let mut to_record = gens();
        let mut arena = BankArena::default();
        let trace = Arc::new(MemTrace::record(
            spec.name, seed, &mut to_record, budget, &mut arena,
        ));
        prop_assert!(trace.min_core_instructions() >= budget, "recording must cover the budget");

        let live: Vec<LiveGen> = gens().into_iter().map(LiveGen::new).collect();
        for (core, mut live) in live.into_iter().enumerate() {
            let mut cursor = trace.cursor(core);
            prop_assert_eq!(OpSource::name(&live), Workload::name(&cursor), "core {}", core);
            for i in 0..cursor.total_ops() {
                let recorded = Workload::next_op(&mut cursor);
                let generated = live.next_op();
                prop_assert_eq!(recorded, generated, "core {} op {}", core, i);
            }
            // The budget cursors agree: the recorded prefix is exactly
            // the live prefix whose instruction count first covers the
            // budget.
            prop_assert_eq!(live.instructions_served(), cursor.total_instructions());
            prop_assert_eq!(live.ops_served(), cursor.total_ops());
            prop_assert!(live.instructions_served() >= budget);
        }
    }

    /// `MemTrace` encode/decode round-trip: arbitrary op sequences come
    /// back bit-identically through a cursor, through rewind, and
    /// through the CMPT file image read back by the file tooling.
    #[test]
    fn mem_trace_roundtrips_arbitrary_ops(
        ops in arb_ops(),
        seed in 0u64..1000,
    ) {
        // The replay workload cycles; record a prefix covering a few
        // full cycles so wrap-around delta state is exercised too.
        let cycle_instr: u64 = ops.iter().map(|o| o.instructions()).sum::<u64>().max(1);
        let budget = cycle_instr * 3;
        let mut wl: Vec<Box<dyn Workload>> =
            vec![Box::new(ReplayWorkload::named("rt", ops.clone()))];
        let mut arena = BankArena::default();
        let trace = Arc::new(MemTrace::record("rt", seed, &mut wl, budget, &mut arena));

        let mut cursor = trace.cursor(0);
        let mut reference = ReplayWorkload::named("rt", ops);
        let total = cursor.total_ops();
        let decoded: Vec<TraceOp> =
            (0..total).map(|_| Workload::next_op(&mut cursor)).collect();
        let expected: Vec<TraceOp> =
            (0..total).map(|_| Workload::next_op(&mut reference)).collect();
        prop_assert_eq!(&decoded, &expected, "cursor decode diverged from the encoded ops");
        prop_assert!(cursor.try_next_op().is_none(), "cursor must end exactly at the prefix");

        // Seekable: rewinding replays the identical stream.
        cursor.rewind();
        let again: Vec<TraceOp> = (0..total).map(|_| Workload::next_op(&mut cursor)).collect();
        prop_assert_eq!(&again, &decoded);

        // The in-memory streams are CMPT v1: the file image replays the
        // same ops through the file reader.
        let tf = TraceFile::from_bytes(trace.to_file_bytes()).expect("valid CMPT image");
        let mut file_replay = tf.core_workload(0).expect("core 0 readable");
        let from_file: Vec<TraceOp> =
            (0..total).map(|_| Workload::next_op(&mut file_replay)).collect();
        prop_assert_eq!(&from_file, &decoded, "file image diverged from the in-memory streams");
    }
}
