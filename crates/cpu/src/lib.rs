//! Core timing model and workload abstractions.
//!
//! The paper simulates Alpha-21264-class out-of-order cores (SESC). For
//! the reproduction we use an *interval-style* superscalar model
//! ([`CoreModel`]): instructions dispatch at a configurable width, loads
//! proceed in parallel up to an out-of-order tolerance window, and the
//! core stalls when the window fills behind an incomplete load. This
//! captures exactly what the paper's IPC-loss figures measure — the
//! sensitivity of the pipeline to the extra memory latency injected by
//! decay-induced misses and inclusion back-invalidations — without
//! modelling rename or branch prediction (see DESIGN.md, substitution
//! table).
//!
//! Workloads are infinite instruction streams ([`Workload`]) of
//! [`TraceOp`]s; the simulator runs each core for a fixed instruction
//! budget so that every technique executes the same work, matching the
//! paper's fixed-workload comparisons. The core consumes ops through the
//! weaker [`OpSource`] delivery contract (see [`source`]), which live
//! generators satisfy automatically and finite trace backends implement
//! directly.

#![forbid(unsafe_code)]

pub mod lane;
pub mod model;
pub mod source;
pub mod trace;

pub use lane::{fetch_margin, OpWindow, WindowCursor};
pub use model::{CoreConfig, CoreModel, CorePort, CoreStats, ProgressState, StallKind};
pub use source::{LiveGen, OpSource};
pub use trace::{ReplayWorkload, TraceOp, Workload};
