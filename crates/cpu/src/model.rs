//! The interval-style superscalar core model.
//!
//! # Timing semantics
//!
//! * Up to [`CoreConfig::width`] instructions dispatch per cycle.
//! * `Exec(n)` ops dispatch `width` instructions per cycle and never
//!   touch memory.
//! * A **load** is handed to the memory hierarchy through [`CorePort`];
//!   the core keeps dispatching younger instructions while the load is
//!   outstanding, up to [`CoreConfig::window`] instructions past the
//!   *oldest* incomplete load (the re-order buffer fills), and at most
//!   [`CoreConfig::max_outstanding_loads`] loads may be in flight (the
//!   load queue fills). Either limit stalls dispatch — this is the
//!   OoO-latency-tolerance abstraction.
//! * A **store** is handed to the port (the L1 is write-through with a
//!   write buffer, so stores retire immediately unless the hierarchy
//!   refuses them, e.g. the write buffer is full).
//! * A refused load/store is retried every cycle until accepted.
//!
//! The model is passive: `cmpleak-system` calls [`CoreModel::tick`] once
//! per cycle with the core's workload and an adapter implementing
//! [`CorePort`], and reports completions via
//! [`CoreModel::on_load_complete`].

use crate::source::OpSource;
use crate::trace::TraceOp;
use std::collections::VecDeque;

/// Static configuration of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Dispatch width (instructions/cycle). The paper's 21264-class core
    /// is 4-wide.
    pub width: u32,
    /// How many instructions may dispatch past the oldest incomplete
    /// load before the core stalls (ROB-size abstraction).
    pub window: u64,
    /// Maximum loads in flight (load-queue / core-MSHR abstraction).
    pub max_outstanding_loads: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self { width: 4, window: 64, max_outstanding_loads: 8 }
    }
}

/// The memory hierarchy as seen by one core for one cycle.
///
/// Implementations may refuse a request (return `false`/`None`) when a
/// structural resource is exhausted; the core retries next cycle.
pub trait CorePort {
    /// Issue a load for `addr` tagged with `id`; completion arrives later
    /// via [`CoreModel::on_load_complete`]. Returns `false` to refuse.
    fn try_load(&mut self, addr: u64, id: u64) -> bool;
    /// Issue a (write-through) store for `addr`. Returns `false` to
    /// refuse.
    fn try_store(&mut self, addr: u64) -> bool;
}

/// What a core can do on its next tick — the quiescence-skipping kernel
/// classifies cores with this to find spans where no core can dispatch.
///
/// The contract with [`CoreModel::tick`]: for every variant except
/// `Ready`, a tick performs **no** workload or port call and mutates
/// exactly the statistics that [`CoreModel::charge_stall_cycles`]
/// charges, so `k` stalled ticks can be replaced by one bulk charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressState {
    /// Budget exhausted and no retry pending: a tick is a strict no-op
    /// (loads may still be outstanding; their completion is event-driven).
    Idle,
    /// Dispatch is blocked behind the oldest incomplete load (ROB window
    /// full, or the load queue is full with a load waiting to issue).
    /// Each tick charges one active + one window-stall cycle; only a
    /// load completion can unblock it.
    WindowBlocked,
    /// A load to this address was refused by the hierarchy and will be
    /// re-presented every tick. Whether the core is truly blocked
    /// depends on hierarchy state the core cannot see; the caller must
    /// check that the port would keep refusing. While it does, each
    /// tick charges one active + one reject-stall cycle.
    RetryLoad(u64),
    /// A store to this address was refused (write buffer full) and will
    /// be re-presented every tick. As with `RetryLoad`, the caller must
    /// check that the hierarchy would keep refusing; while it does, each
    /// tick charges one active + one reject-stall cycle (plus one
    /// write-buffer full-stall on the refused push, which the caller
    /// bulk-charges alongside).
    RetryStore(u64),
    /// The core can dispatch (or must attempt a workload fetch whose
    /// outcome the core cannot predict): it must be ticked.
    Ready,
}

/// Which stall statistic a bulk-charged span accrues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// Window/load-queue stall (`window_stall_cycles`).
    Window,
    /// Hierarchy-reject stall (`reject_stall_cycles`).
    Reject,
}

/// Runtime statistics of one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions dispatched (= retired at drain; the model does not
    /// speculate).
    pub instructions: u64,
    /// Cycles ticked while the instruction budget was not yet reached.
    pub active_cycles: u64,
    /// Cycles in which nothing dispatched because the window was full
    /// behind an incomplete load.
    pub window_stall_cycles: u64,
    /// Cycles in which a memory op was refused by the hierarchy.
    pub reject_stall_cycles: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
}

/// One simulated core.
#[derive(Debug)]
pub struct CoreModel {
    cfg: CoreConfig,
    stats: CoreStats,
    /// Remaining ALU instructions of the `Exec` op being dispatched.
    pending_exec: u32,
    /// A memory op that was refused and must retry.
    retry: Option<TraceOp>,
    /// Instruction indices at which outstanding loads were dispatched,
    /// oldest first, keyed by load id.
    outstanding: VecDeque<(u64, u64)>,
    next_load_id: u64,
    /// Instruction budget; the core stops fetching once reached.
    budget: u64,
}

impl CoreModel {
    /// A core that will dispatch `budget` instructions and then idle.
    pub fn new(cfg: CoreConfig, budget: u64) -> Self {
        assert!(cfg.width >= 1 && cfg.window >= 1 && cfg.max_outstanding_loads >= 1);
        Self {
            cfg,
            stats: CoreStats::default(),
            pending_exec: 0,
            retry: None,
            outstanding: VecDeque::new(),
            next_load_id: 0,
            budget,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// The configured instruction budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Whether a future tick may still fetch from this core's op source.
    /// Dispatch is strictly in order, so a pending retry implies the
    /// instruction count is below the budget; once the budget is reached
    /// the core never calls `next_op` again (the budget-cursor
    /// contract). The lane engine uses this to decide which cores still
    /// constrain the shared op window.
    #[inline]
    pub fn may_fetch(&self) -> bool {
        self.stats.instructions < self.budget
    }

    /// All budgeted instructions dispatched and no load in flight.
    pub fn drained(&self) -> bool {
        self.stats.instructions >= self.budget
            && self.outstanding.is_empty()
            && self.retry.is_none()
    }

    /// Unique id for the next load (exposed for the system's bookkeeping).
    pub fn peek_next_load_id(&self) -> u64 {
        self.next_load_id
    }

    /// A load issued earlier completed.
    pub fn on_load_complete(&mut self, id: u64) {
        if let Some(pos) = self.outstanding.iter().position(|&(lid, _)| lid == id) {
            self.outstanding.remove(pos);
        }
    }

    /// Loads currently in flight.
    pub fn outstanding_loads(&self) -> usize {
        self.outstanding.len()
    }

    /// Classify what the next [`CoreModel::tick`] would do, mirroring its
    /// dispatch gates exactly (budget/retry, window, load queue, retry
    /// class) without mutating anything. See [`ProgressState`].
    pub fn progress_state(&self) -> ProgressState {
        if self.stats.instructions >= self.budget && self.retry.is_none() {
            return ProgressState::Idle;
        }
        if self.window_full() {
            return ProgressState::WindowBlocked;
        }
        match self.retry {
            Some(TraceOp::Load(addr)) => {
                // The tick would re-present this load. A full load queue
                // blocks it before the port is consulted (counted as a
                // window stall, exactly as `tick` does).
                if self.outstanding.len() >= self.cfg.max_outstanding_loads {
                    return ProgressState::WindowBlocked;
                }
                ProgressState::RetryLoad(addr)
            }
            Some(TraceOp::Store(addr)) => ProgressState::RetryStore(addr),
            _ => ProgressState::Ready,
        }
    }

    /// Account `cycles` ticks spent in a stall state in one step: the
    /// exact statistics `cycles` calls to [`CoreModel::tick`] would have
    /// accrued in a state where dispatch cannot progress.
    pub fn charge_stall_cycles(&mut self, kind: StallKind, cycles: u64) {
        self.stats.active_cycles += cycles;
        match kind {
            StallKind::Window => self.stats.window_stall_cycles += cycles,
            StallKind::Reject => self.stats.reject_stall_cycles += cycles,
        }
    }

    #[inline]
    fn window_full(&self) -> bool {
        match self.outstanding.front() {
            Some(&(_, dispatched_at)) => {
                self.stats.instructions.saturating_sub(dispatched_at) >= self.cfg.window
            }
            None => false,
        }
    }

    /// Advance one cycle: dispatch up to `width` instructions, fetching
    /// ops from `src` as dispatch consumes them.
    ///
    /// The fetch discipline is the budget-cursor contract every
    /// [`OpSource`] backend relies on: `src.next_op()` is called only
    /// while `instructions < budget` (a refused op is re-presented from
    /// the retry slot, never re-fetched), so a finite source covering
    /// the budget covers the whole run.
    ///
    /// Returns the number of instructions dispatched this cycle (0 when
    /// stalled or finished).
    ///
    /// Generic over the source so the lane engine's window cursors
    /// monomorphize the fetch path; `&mut dyn OpSource` callers resolve
    /// to the dynamic instantiation unchanged.
    pub fn tick<S: OpSource + ?Sized>(&mut self, src: &mut S, port: &mut dyn CorePort) -> u32 {
        if self.stats.instructions >= self.budget && self.retry.is_none() {
            return 0;
        }
        self.stats.active_cycles += 1;

        let mut dispatched = 0u32;
        // Dispatch is strictly in order, so a pending retry implies the
        // instruction count has not reached the budget yet.
        while dispatched < self.cfg.width
            && (self.stats.instructions < self.budget || self.retry.is_some())
        {
            // Window stall applies to every instruction class: dispatch
            // is in order even though loads complete out of order.
            if self.window_full() {
                if dispatched == 0 {
                    self.stats.window_stall_cycles += 1;
                }
                break;
            }
            // Continue a partially dispatched Exec op first, clamped to
            // the budget so every run dispatches exactly `budget`
            // instructions (fixed-work comparisons depend on it).
            if self.pending_exec > 0 {
                let room = (self.budget - self.stats.instructions).min(u32::MAX as u64) as u32;
                let n = self.pending_exec.min(self.cfg.width - dispatched).min(room);
                if n == 0 {
                    self.pending_exec = 0; // budget cut mid-burst: drop the tail
                    break;
                }
                self.pending_exec -= n;
                dispatched += n;
                self.stats.instructions += n as u64;
                continue;
            }
            let op = match self.retry.take() {
                Some(op) => op,
                None => src.next_op(),
            };
            match op {
                TraceOp::Exec(n) => {
                    self.pending_exec = n;
                    if n == 0 {
                        continue; // tolerate empty exec bursts
                    }
                }
                TraceOp::Load(addr) => {
                    if self.outstanding.len() >= self.cfg.max_outstanding_loads {
                        self.retry = Some(op);
                        if dispatched == 0 {
                            self.stats.window_stall_cycles += 1;
                        }
                        break;
                    }
                    let id = self.next_load_id;
                    if !port.try_load(addr, id) {
                        self.retry = Some(op);
                        if dispatched == 0 {
                            self.stats.reject_stall_cycles += 1;
                        }
                        break;
                    }
                    self.next_load_id += 1;
                    self.outstanding.push_back((id, self.stats.instructions));
                    self.stats.instructions += 1;
                    self.stats.loads += 1;
                    dispatched += 1;
                }
                TraceOp::Store(addr) => {
                    if !port.try_store(addr) {
                        self.retry = Some(op);
                        if dispatched == 0 {
                            self.stats.reject_stall_cycles += 1;
                        }
                        break;
                    }
                    self.stats.instructions += 1;
                    self.stats.stores += 1;
                    dispatched += 1;
                }
            }
        }
        dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ReplayWorkload, TraceOp};

    /// A port with configurable acceptance and scripted load latencies.
    struct TestPort {
        accept_loads: bool,
        accept_stores: bool,
        issued_loads: Vec<(u64, u64)>,
        issued_stores: Vec<u64>,
    }

    impl TestPort {
        fn open() -> Self {
            Self {
                accept_loads: true,
                accept_stores: true,
                issued_loads: vec![],
                issued_stores: vec![],
            }
        }
    }

    impl CorePort for TestPort {
        fn try_load(&mut self, addr: u64, id: u64) -> bool {
            if self.accept_loads {
                self.issued_loads.push((addr, id));
            }
            self.accept_loads
        }
        fn try_store(&mut self, addr: u64) -> bool {
            if self.accept_stores {
                self.issued_stores.push(addr);
            }
            self.accept_stores
        }
    }

    #[test]
    fn exec_ops_dispatch_at_width() {
        let mut core =
            CoreModel::new(CoreConfig { width: 4, window: 64, max_outstanding_loads: 8 }, 16);
        let mut wl = ReplayWorkload::cycle(vec![TraceOp::Exec(16)]);
        let mut port = TestPort::open();
        let mut cycles = 0;
        while !core.drained() {
            core.tick(&mut wl, &mut port);
            cycles += 1;
            assert!(cycles < 100);
        }
        assert_eq!(cycles, 4, "16 instructions at width 4");
        assert_eq!(core.stats().instructions, 16);
    }

    #[test]
    fn loads_overlap_within_the_window() {
        let mut core =
            CoreModel::new(CoreConfig { width: 1, window: 100, max_outstanding_loads: 8 }, 4);
        let mut wl = ReplayWorkload::cycle(vec![TraceOp::Load(0)]);
        let mut port = TestPort::open();
        core.tick(&mut wl, &mut port);
        core.tick(&mut wl, &mut port);
        core.tick(&mut wl, &mut port);
        assert_eq!(core.outstanding_loads(), 3, "window permits overlap");
    }

    #[test]
    fn window_fills_behind_oldest_incomplete_load() {
        let mut core =
            CoreModel::new(CoreConfig { width: 4, window: 8, max_outstanding_loads: 8 }, 1000);
        let mut wl = ReplayWorkload::cycle(vec![TraceOp::Load(0), TraceOp::Exec(100)]);
        let mut port = TestPort::open();
        // First cycle: load + 3 exec dispatch.
        core.tick(&mut wl, &mut port);
        // Keep ticking without completing the load: dispatch must stop at
        // window=8 instructions past the load.
        for _ in 0..10 {
            core.tick(&mut wl, &mut port);
        }
        assert!(core.stats().instructions <= 1 + 8);
        assert!(core.stats().window_stall_cycles > 0);
        // Completing the load reopens the window.
        let before = core.stats().instructions;
        core.on_load_complete(0);
        core.tick(&mut wl, &mut port);
        assert!(core.stats().instructions > before);
    }

    #[test]
    fn load_queue_capacity_limits_flight() {
        let mut core =
            CoreModel::new(CoreConfig { width: 4, window: 1000, max_outstanding_loads: 2 }, 1000);
        let mut wl = ReplayWorkload::cycle(vec![TraceOp::Load(0)]);
        let mut port = TestPort::open();
        for _ in 0..5 {
            core.tick(&mut wl, &mut port);
        }
        assert_eq!(core.outstanding_loads(), 2);
    }

    #[test]
    fn refused_ops_retry_and_count_stalls() {
        let mut core = CoreModel::new(CoreConfig::default(), 10);
        let mut wl = ReplayWorkload::cycle(vec![TraceOp::Store(64)]);
        let mut port = TestPort::open();
        port.accept_stores = false;
        core.tick(&mut wl, &mut port);
        core.tick(&mut wl, &mut port);
        assert_eq!(core.stats().stores, 0);
        assert_eq!(core.stats().reject_stall_cycles, 2);
        port.accept_stores = true;
        core.tick(&mut wl, &mut port);
        assert!(core.stats().stores > 0, "retried store must eventually issue");
        // The op was consumed from the workload exactly once.
        assert_eq!(port.issued_stores.len() as u64, core.stats().stores);
    }

    #[test]
    fn budget_stops_dispatch_and_drain_waits_for_loads() {
        let mut core =
            CoreModel::new(CoreConfig { width: 1, window: 64, max_outstanding_loads: 8 }, 1);
        let mut wl = ReplayWorkload::cycle(vec![TraceOp::Load(0)]);
        let mut port = TestPort::open();
        core.tick(&mut wl, &mut port);
        assert_eq!(core.stats().instructions, 1);
        assert!(!core.drained(), "load still outstanding");
        for _ in 0..3 {
            core.tick(&mut wl, &mut port);
        }
        assert_eq!(core.stats().instructions, 1, "budget respected");
        core.on_load_complete(0);
        assert!(core.drained());
    }

    #[test]
    fn ipc_of_pure_exec_equals_width() {
        let cfg = CoreConfig { width: 4, window: 64, max_outstanding_loads: 8 };
        let mut core = CoreModel::new(cfg, 4000);
        let mut wl = ReplayWorkload::cycle(vec![TraceOp::Exec(1000)]);
        let mut port = TestPort::open();
        let mut cycles = 0u64;
        while !core.drained() {
            core.tick(&mut wl, &mut port);
            cycles += 1;
        }
        let ipc = core.stats().instructions as f64 / cycles as f64;
        assert!((ipc - 4.0).abs() < 1e-9);
    }
}
