//! Instruction-trace vocabulary and the workload contract.

/// One unit of work in a core's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// `n` non-memory instructions (ALU/branch); they dispatch at the
    /// core's issue width and never touch the cache hierarchy.
    Exec(u32),
    /// A load from the given byte address (1 instruction).
    Load(u64),
    /// A store to the given byte address (1 instruction).
    Store(u64),
}

impl TraceOp {
    /// Number of instructions this op retires.
    #[inline]
    pub fn instructions(self) -> u64 {
        match self {
            TraceOp::Exec(n) => n as u64,
            TraceOp::Load(_) | TraceOp::Store(_) => 1,
        }
    }

    /// Whether this op accesses memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        !matches!(self, TraceOp::Exec(_))
    }
}

/// A per-core instruction stream.
///
/// Workloads are *infinite*: the simulator imposes the instruction
/// budget, so `next_op` must always produce an op. Implementations must
/// be deterministic for a given construction seed (the whole simulator is
/// bit-reproducible).
pub trait Workload {
    /// Produce the next op of the stream.
    fn next_op(&mut self) -> TraceOp;

    /// A short name for reports.
    fn name(&self) -> &str {
        "workload"
    }

    /// How many ops this stream can still produce — `None` for the
    /// common case of a generator (unbounded). Finite replay backends
    /// report their remaining recorded ops so batch consumers (the lane
    /// engine's shared op windows) can stop prefetching at end of stream
    /// instead of tripping the past-the-recording panic that guards
    /// demand-driven replay.
    fn ops_remaining(&self) -> Option<u64> {
        None
    }

    /// Append up to `max` ops to `out`, returning how many were appended
    /// — short only when a finite stream ran dry. The default loops
    /// [`Workload::next_op`] (clamped to [`Workload::ops_remaining`]);
    /// replay backends override it to decode whole batches straight into
    /// `out`.
    fn fill_ops(&mut self, out: &mut Vec<TraceOp>, max: usize) -> usize {
        let n = match self.ops_remaining() {
            Some(left) => max.min(usize::try_from(left).unwrap_or(max)),
            None => max,
        };
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_op());
        }
        n
    }
}

/// Replays a fixed op sequence in a loop — the workhorse of unit and
/// integration tests, and of the `coherence_trace` example.
#[derive(Debug, Clone)]
pub struct ReplayWorkload {
    ops: Vec<TraceOp>,
    pos: usize,
    name: String,
}

impl ReplayWorkload {
    /// Cycle through `ops` forever.
    ///
    /// # Panics
    /// Panics if `ops` is empty.
    pub fn cycle(ops: Vec<TraceOp>) -> Self {
        assert!(!ops.is_empty(), "replay workload needs at least one op");
        Self { ops, pos: 0, name: "replay".into() }
    }

    /// Same, with a custom report name.
    pub fn named(name: impl Into<String>, ops: Vec<TraceOp>) -> Self {
        let mut w = Self::cycle(ops);
        w.name = name.into();
        w
    }
}

impl Workload for ReplayWorkload {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_instruction_counts() {
        assert_eq!(TraceOp::Exec(7).instructions(), 7);
        assert_eq!(TraceOp::Load(0x40).instructions(), 1);
        assert_eq!(TraceOp::Store(0x40).instructions(), 1);
    }

    #[test]
    fn mem_classification() {
        assert!(!TraceOp::Exec(1).is_mem());
        assert!(TraceOp::Load(0).is_mem());
        assert!(TraceOp::Store(0).is_mem());
    }

    #[test]
    fn replay_cycles_forever() {
        let mut w = ReplayWorkload::cycle(vec![TraceOp::Exec(1), TraceOp::Load(64)]);
        assert_eq!(w.next_op(), TraceOp::Exec(1));
        assert_eq!(w.next_op(), TraceOp::Load(64));
        assert_eq!(w.next_op(), TraceOp::Exec(1));
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn replay_rejects_empty() {
        ReplayWorkload::cycle(vec![]);
    }
}
