//! The lane engine's op feed: one decoded window, many consumers.
//!
//! A sweep group's cells all consume the *same* per-core op sequence
//! (the budget-cursor contract of [`OpSource`]); only the technique
//! differs. The sequential planner pays the op-delivery cost — decode
//! for replay backends, generation for live ones — once **per cell**.
//! The lane engine pays it once **per group**: an [`OpWindow`] pulls
//! each core's ops from the group's sources exactly once into a shared
//! decoded buffer, and every lane walks the buffer through a
//! [`WindowCursor`] — a bounds-checked slice read, no decode, no
//! generator arithmetic, no per-lane stream state.
//!
//! # The window contract
//!
//! Positions are absolute op indices into the (conceptually infinite)
//! per-core stream. The window holds ops `[base, end)` per core and
//! guarantees, after [`OpWindow::advance`]`(min, max, target)`:
//!
//! * no op below `min[c]` is retained (lanes at `min` anchor the
//!   window; memory stays O(window), not O(stream));
//! * `end(c) ≥ max[c] + target` for every core whose source still has
//!   ops — so the furthest-ahead lane can run at least `target` ops on
//!   every core before starving, and trailing lanes strictly more;
//! * a core whose finite source ran dry is marked
//!   [`finished`](OpWindow::finished); its lanes consume the remaining
//!   buffered ops and must reach their budget within them (a recorded
//!   stream covers the budget by construction).
//!
//! `Exec(0)` ops are filtered out at fill time: [`CoreModel`] consumes
//! them with no statistic or timing effect (an empty exec burst neither
//! dispatches nor costs a fetch slot), so removing them is
//! result-neutral — and it makes the per-tick fetch count provably
//! bounded ([`fetch_margin`]), which is what lets a lane pause *before*
//! a tick that could overrun the window instead of discovering the
//! overrun mid-tick.
//!
//! [`CoreModel`]: crate::CoreModel

use crate::source::OpSource;
use crate::trace::TraceOp;

/// Worst-case ops one [`CoreModel::tick`](crate::CoreModel::tick) can
/// fetch from a source that never yields `Exec(0)` (the window filters
/// those): each of the ≤ `width` dispatch-loop iterations fetches at
/// most one op, and one trailing fetch may end in a refusal that breaks
/// the loop — `width + 1` in all. A lane whose every fetching core has
/// at least this many buffered ops can always run one more tick without
/// overrunning the window.
pub const fn fetch_margin(width: u32) -> u64 {
    width as u64 + 1
}

#[derive(Debug)]
struct CoreWindow {
    name: String,
    /// Buffered ops; `ops[0]` is absolute op index `base`.
    ops: Vec<TraceOp>,
    base: u64,
    /// The source ran dry (finite stream fully decoded). Never set for
    /// live generators.
    finished: bool,
}

/// The shared decoded op window of one lane group. Owns the group's
/// per-core sources and pulls each op from them exactly once.
pub struct OpWindow {
    sources: Vec<Box<dyn OpSource>>,
    cores: Vec<CoreWindow>,
}

impl std::fmt::Debug for OpWindow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpWindow").field("cores", &self.cores).finish_non_exhaustive()
    }
}

impl OpWindow {
    /// Wrap the group's per-core sources. Nothing is fetched until the
    /// first [`OpWindow::advance`].
    pub fn new(sources: Vec<Box<dyn OpSource>>) -> Self {
        let cores = sources
            .iter()
            .map(|s| CoreWindow {
                name: s.name().to_string(),
                ops: Vec::new(),
                base: 0,
                finished: false,
            })
            .collect();
        Self { sources, cores }
    }

    /// Number of per-core streams.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// The source name of `core` (for per-core statistics, identical to
    /// what the sequential path reports).
    pub fn name(&self, core: usize) -> &str {
        &self.cores[core].name
    }

    /// Ops buffered at or past absolute position `pos` on `core`.
    #[inline]
    pub fn available(&self, core: usize, pos: u64) -> u64 {
        let w = &self.cores[core];
        (w.base + w.ops.len() as u64).saturating_sub(pos)
    }

    /// Absolute index one past the last buffered op of `core`.
    pub fn end(&self, core: usize) -> u64 {
        let w = &self.cores[core];
        w.base + w.ops.len() as u64
    }

    /// Whether `core`'s source ran dry: every op of its finite stream is
    /// at or below [`end`](Self::end), and lanes must complete their
    /// budget within the buffered suffix.
    #[inline]
    pub fn finished(&self, core: usize) -> bool {
        self.cores[core].finished
    }

    /// Slide and refill: drop ops below `min_pos[c]`, then fetch until
    /// every unfinished core buffers at least `target` ops past
    /// `max_pos[c]`. `min_pos`/`max_pos` are the per-core minimum and
    /// maximum positions over the group's live lanes (`min ≤ max`).
    pub fn advance(&mut self, min_pos: &[u64], max_pos: &[u64], target: u64) {
        assert_eq!(min_pos.len(), self.cores.len());
        assert_eq!(max_pos.len(), self.cores.len());
        for (c, win) in self.cores.iter_mut().enumerate() {
            debug_assert!(min_pos[c] >= win.base, "a lane fell below the window base");
            let drop = (min_pos[c] - win.base).min(win.ops.len() as u64) as usize;
            if drop > 0 {
                win.ops.copy_within(drop.., 0);
                win.ops.truncate(win.ops.len() - drop);
                win.base += drop as u64;
            }
            let want_end = max_pos[c] + target;
            while !win.finished && win.base + (win.ops.len() as u64) < want_end {
                let need = (want_end - win.base - win.ops.len() as u64) as usize;
                let before = win.ops.len();
                let got = self.sources[c].fill_ops(&mut win.ops, need);
                // Filter Exec(0) out of the appended region (see the
                // module docs: result-neutral, and required for the
                // fetch-margin bound). A pathological source emitting
                // *only* Exec(0) forever would spin here — but it could
                // never cover an instruction budget either, so the
                // sequential path would spin on it too.
                let mut w = before;
                for r in before..win.ops.len() {
                    if win.ops[r] != TraceOp::Exec(0) {
                        win.ops[w] = win.ops[r];
                        w += 1;
                    }
                }
                win.ops.truncate(w);
                if got < need {
                    win.finished = true;
                }
            }
        }
    }

    /// A lane's view of `core`'s buffered ops, reading from `*pos` and
    /// advancing it. Borrows the window immutably, so every lane of a
    /// group can hold cursors over the same buffers.
    pub fn cursor<'a>(&'a self, core: usize, pos: &'a mut u64) -> WindowCursor<'a> {
        let w = &self.cores[core];
        WindowCursor { ops: &w.ops, base: w.base, pos, name: &w.name }
    }
}

/// A lane's per-core read head over an [`OpWindow`]: the op source the
/// lane's core model fetches from. `next_op` is one bounds-checked
/// slice read.
#[derive(Debug)]
pub struct WindowCursor<'a> {
    ops: &'a [TraceOp],
    base: u64,
    pos: &'a mut u64,
    name: &'a str,
}

impl OpSource for WindowCursor<'_> {
    #[inline]
    fn next_op(&mut self) -> TraceOp {
        let op = self
            .pos
            .checked_sub(self.base)
            .and_then(|i| self.ops.get(usize::try_from(i).ok()?))
            .copied()
            .unwrap_or_else(|| {
                // A read outside [base, end) breaks the window contract
                // (the scheduler paused too late or slid too early);
                // fabricating an op would silently diverge from the
                // sequential arm, so abort loudly.
                // audit:allow(unwrap-in-lib, window-contract violation: fabricating an op would silently diverge from the sequential arm)
                panic!(
                    "lane overran its op window on '{}': position {} outside [{}, {})",
                    self.name,
                    self.pos,
                    self.base,
                    self.base + self.ops.len() as u64
                )
            });
        *self.pos += 1;
        op
    }

    fn name(&self) -> &str {
        self.name
    }

    fn ops_remaining(&self) -> Option<u64> {
        Some((self.base + self.ops.len() as u64).saturating_sub(*self.pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::LiveGen;
    use crate::trace::ReplayWorkload;

    fn looping_source() -> Box<dyn OpSource> {
        LiveGen::boxed(Box::new(ReplayWorkload::cycle(vec![
            TraceOp::Exec(3),
            TraceOp::Load(0x40),
            TraceOp::Store(0x80),
        ])))
    }

    #[test]
    fn window_serves_the_source_stream_through_cursors() {
        let mut win = OpWindow::new(vec![looping_source()]);
        win.advance(&[0], &[0], 8);
        assert!(win.available(0, 0) >= 8);
        let mut pos = 0u64;
        let mut cur = win.cursor(0, &mut pos);
        assert_eq!(cur.next_op(), TraceOp::Exec(3));
        assert_eq!(cur.next_op(), TraceOp::Load(0x40));
        assert_eq!(cur.next_op(), TraceOp::Store(0x80));
        assert_eq!(cur.next_op(), TraceOp::Exec(3));
        assert_eq!(pos, 4);
        assert_eq!(win.name(0), "replay");
    }

    #[test]
    fn two_cursors_replay_the_same_ops() {
        let mut win = OpWindow::new(vec![looping_source()]);
        win.advance(&[0], &[0], 12);
        let (mut a, mut b) = (0u64, 0u64);
        let first: Vec<TraceOp> = {
            let mut cur = win.cursor(0, &mut a);
            (0..12).map(|_| cur.next_op()).collect()
        };
        let second: Vec<TraceOp> = {
            let mut cur = win.cursor(0, &mut b);
            (0..12).map(|_| cur.next_op()).collect()
        };
        assert_eq!(first, second, "lanes see the identical stream");
    }

    #[test]
    fn advance_slides_the_base_and_keeps_the_lead_lane_fed() {
        let mut win = OpWindow::new(vec![looping_source()]);
        win.advance(&[0], &[0], 4);
        // A lead lane at 100, a trailing lane at 40.
        win.advance(&[40], &[100], 16);
        assert!(win.available(0, 100) >= 16, "lead lane has the full target ahead");
        assert!(win.available(0, 40) >= 76, "trailing lane sees everything up to the lead");
        assert_eq!(win.end(0) - win.available(0, 40), 40, "ops below the trailing lane dropped");
    }

    #[test]
    fn exec_zero_is_filtered_out_of_the_window() {
        let src = LiveGen::boxed(Box::new(ReplayWorkload::cycle(vec![
            TraceOp::Exec(0),
            TraceOp::Exec(5),
            TraceOp::Exec(0),
            TraceOp::Load(0x100),
        ])));
        let mut win = OpWindow::new(vec![src]);
        win.advance(&[0], &[0], 6);
        let mut pos = 0u64;
        let mut cur = win.cursor(0, &mut pos);
        for _ in 0..6 {
            assert_ne!(cur.next_op(), TraceOp::Exec(0));
        }
    }

    #[test]
    fn finite_sources_mark_the_window_finished() {
        let trace = ReplayWorkload::named("t", vec![TraceOp::Exec(2), TraceOp::Load(0x40)]);
        // A finite adapter: 5 ops then dry.
        struct Finite {
            inner: ReplayWorkload,
            left: u64,
        }
        impl OpSource for Finite {
            fn next_op(&mut self) -> TraceOp {
                assert!(self.left > 0, "driven past the end");
                self.left -= 1;
                crate::trace::Workload::next_op(&mut self.inner)
            }
            fn ops_remaining(&self) -> Option<u64> {
                Some(self.left)
            }
        }
        let mut win = OpWindow::new(vec![Box::new(Finite { inner: trace, left: 5 })]);
        win.advance(&[0], &[0], 64);
        assert!(win.finished(0));
        assert_eq!(win.available(0, 0), 5, "exactly the recorded ops are buffered");
        assert_eq!(win.end(0), 5);
    }

    #[test]
    #[should_panic(expected = "overran its op window")]
    fn cursor_overrun_panics_with_a_diagnostic() {
        let mut win = OpWindow::new(vec![looping_source()]);
        win.advance(&[0], &[0], 2);
        let end = win.end(0);
        let mut pos = end; // start at the edge: the first read overruns
        let _ = win.cursor(0, &mut pos).next_op();
    }
}
