//! The op-delivery boundary of the core model.
//!
//! [`CoreModel`](crate::CoreModel) used to speak directly to a
//! [`Workload`] — the *generation* contract (infinite, deterministic
//! streams). Every other way of feeding a core — file trace replay,
//! in-memory trace cursors shared across a sweep — had to masquerade as
//! a generator. [`OpSource`] names the delivery contract the core
//! actually relies on, which is weaker than `Workload` in one direction
//! and stronger in another:
//!
//! * a source need not be infinite — it must only cover every op the
//!   core will fetch, and the core fetches ops **only while its
//!   dispatched-instruction count is below its budget** (the budget
//!   cursor; a refused op is re-presented from the core's own retry
//!   slot, never re-fetched). A source covering the budget therefore
//!   covers the run, independent of technique, cache size or timing —
//!   the property the trace subsystem's bit-identical replay rests on;
//! * a source must be *consumable exactly once, in order*: there is no
//!   rewind at this boundary (cursors over shared traces are created
//!   per run instead).
//!
//! Every [`Workload`] is an `OpSource` (blanket impl). [`LiveGen`]
//! adapts a boxed generator and additionally tracks the budget cursor —
//! ops and instructions served — which the recording and differential
//! test layers use to compare live generation against trace replay
//! op-for-op.

use crate::trace::{TraceOp, Workload};

/// A per-core op delivery channel.
///
/// See the module docs for the contract; the short form: `next_op` is
/// called only while the consuming core's instruction budget is not yet
/// covered, so finite backends sized to the budget never run dry.
pub trait OpSource {
    /// Produce the next op of the stream.
    ///
    /// # Panics
    /// Finite backends panic (with a diagnostic) when driven past the
    /// budget they cover — silently looping or fabricating ops would
    /// diverge from the stream they stand in for.
    fn next_op(&mut self) -> TraceOp;

    /// A short name for per-core statistics and reports.
    fn name(&self) -> &str {
        "ops"
    }

    /// How many ops this source can still produce, `None` if unbounded.
    /// See [`Workload::ops_remaining`]; the lane engine's op windows use
    /// it to prefetch ahead of core demand without driving a finite
    /// backend past its recording.
    fn ops_remaining(&self) -> Option<u64> {
        None
    }

    /// Append up to `max` ops to `out`, returning how many were appended
    /// (short only when a finite source ran dry). Batch consumers refill
    /// through this so replay backends can decode whole batches in one
    /// call; op-for-op it is identical to repeated
    /// [`OpSource::next_op`].
    fn fill_ops(&mut self, out: &mut Vec<TraceOp>, max: usize) -> usize {
        let n = match self.ops_remaining() {
            Some(left) => max.min(usize::try_from(left).unwrap_or(max)),
            None => max,
        };
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_op());
        }
        n
    }
}

/// Every workload generator is an op source (live generation).
impl<W: Workload> OpSource for W {
    #[inline]
    fn next_op(&mut self) -> TraceOp {
        Workload::next_op(self)
    }

    fn name(&self) -> &str {
        Workload::name(self)
    }

    fn ops_remaining(&self) -> Option<u64> {
        Workload::ops_remaining(self)
    }

    fn fill_ops(&mut self, out: &mut Vec<TraceOp>, max: usize) -> usize {
        Workload::fill_ops(self, out, max)
    }
}

/// Live-generation backend over a boxed [`Workload`], with a budget
/// cursor.
///
/// The cursor (ops and instructions served so far) is what the trace
/// layer's differentials compare against: a recorded stream replayed
/// through a cursor must match the `LiveGen` stream op-for-op up to any
/// instruction budget the recording covers.
pub struct LiveGen {
    inner: Box<dyn Workload>,
    ops_served: u64,
    instructions_served: u64,
}

impl std::fmt::Debug for LiveGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveGen")
            .field("name", &self.inner.name())
            .field("ops_served", &self.ops_served)
            .field("instructions_served", &self.instructions_served)
            .finish()
    }
}

impl LiveGen {
    /// Wrap a boxed generator.
    pub fn new(inner: Box<dyn Workload>) -> Self {
        Self { inner, ops_served: 0, instructions_served: 0 }
    }

    /// Wrap and box in one step (the shape the simulator consumes).
    pub fn boxed(inner: Box<dyn Workload>) -> Box<dyn OpSource> {
        Box::new(Self::new(inner))
    }

    /// Ops served so far.
    pub fn ops_served(&self) -> u64 {
        self.ops_served
    }

    /// Σ `op.instructions()` over the served prefix — the budget cursor:
    /// once this reaches a core's instruction budget, that core will
    /// never fetch again.
    pub fn instructions_served(&self) -> u64 {
        self.instructions_served
    }
}

impl OpSource for LiveGen {
    #[inline]
    fn next_op(&mut self) -> TraceOp {
        let op = self.inner.next_op();
        self.ops_served += 1;
        self.instructions_served += op.instructions();
        op
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn ops_remaining(&self) -> Option<u64> {
        self.inner.ops_remaining()
    }

    fn fill_ops(&mut self, out: &mut Vec<TraceOp>, max: usize) -> usize {
        let before = out.len();
        let n = self.inner.fill_ops(out, max);
        self.ops_served += n as u64;
        self.instructions_served += out[before..].iter().map(|op| op.instructions()).sum::<u64>();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ReplayWorkload;

    #[test]
    fn workloads_are_op_sources() {
        let mut w = ReplayWorkload::named("n", vec![TraceOp::Exec(2), TraceOp::Load(64)]);
        let src: &mut dyn OpSource = &mut w;
        assert_eq!(src.next_op(), TraceOp::Exec(2));
        assert_eq!(src.name(), "n");
    }

    #[test]
    fn live_gen_tracks_the_budget_cursor() {
        let wl = ReplayWorkload::cycle(vec![TraceOp::Exec(3), TraceOp::Store(8)]);
        let mut src = LiveGen::new(Box::new(wl));
        assert_eq!(src.name(), "replay");
        assert_eq!(src.next_op(), TraceOp::Exec(3));
        assert_eq!(src.next_op(), TraceOp::Store(8));
        assert_eq!(src.ops_served(), 2);
        assert_eq!(src.instructions_served(), 4, "3 exec + 1 store");
    }
}
