//! The generational reference generator.
//!
//! Produces a per-core instruction stream according to a
//! [`WorkloadSpec`]. The stream interleaves three traffic classes:
//!
//! * **private bursts** — a small set of *hot* regions receives bursts of
//!   spatially local, word-granular accesses; after a configurable number
//!   of bursts a region *retires* (its generation ends — the lines go
//!   dead) and the next region from the pool activates. Revisiting specs
//!   wrap the pool cursor, so retired regions come back after a full pool
//!   rotation — a reuse distance far beyond the decay interval, which is
//!   what makes decay expensive for scientific codes. Streaming specs
//!   never wrap: dead lines stay dead, and decay is almost free.
//! * **shared bursts** — regions in a global shared segment are written
//!   by a per-epoch *producer* core and read by the others. The producer
//!   changes deterministically every epoch ([`WorkloadSpec::share_epoch_ops`]),
//!   so ownership migrates and the previous producer's lines get
//!   invalidated — the traffic the *Protocol* technique harvests.
//! * **exec gaps** — ALU instructions between memory ops set the memory
//!   intensity.
//!
//! Addresses: core `c`'s private pool lives at `(c+1) << 36`; the shared
//! segment lives at `1 << 44`. Both are far apart so no false sharing of
//! regions occurs between segments.

use crate::rng::{mix64, Xoshiro256pp};
use crate::spec::WorkloadSpec;
use cmpleak_cpu::{TraceOp, Workload};
use std::collections::VecDeque;

/// Cache line size assumed by the generators (matches the simulated
/// hierarchy's 64-byte lines).
pub const LINE_BYTES: u64 = 64;

/// Base of the shared segment.
const SHARED_BASE: u64 = 1 << 44;

#[derive(Debug, Clone, Copy)]
struct HotRegion {
    /// Pool index (may exceed `pool_regions` for streaming specs).
    region: u64,
    bursts_left: u32,
}

/// A deterministic, infinite, generational reference stream for one core.
#[derive(Debug, Clone)]
pub struct GenerationalWorkload {
    spec: WorkloadSpec,
    core: usize,
    n_cores: usize,
    seed: u64,
    rng: Xoshiro256pp,
    hot: Vec<HotRegion>,
    cursor: u64,
    queue: VecDeque<TraceOp>,
    mem_ops: u64,
}

impl GenerationalWorkload {
    /// Build the stream for `core` of `n_cores` under `spec`, seeded by
    /// `seed`. The same triple always yields the same stream.
    pub fn new(spec: WorkloadSpec, core: usize, n_cores: usize, seed: u64) -> Self {
        assert!(core < n_cores);
        let mut name_hash = 0u64;
        for b in spec.name.bytes() {
            name_hash = mix64(name_hash ^ b as u64);
        }
        let rng = Xoshiro256pp::seeded(mix64(seed ^ name_hash).wrapping_add(core as u64 * 0x9E37));
        let hot: Vec<HotRegion> = (0..spec.hot_regions as u64)
            .map(|r| HotRegion { region: r, bursts_left: spec.generation_bursts })
            .collect();
        Self {
            cursor: spec.hot_regions as u64,
            spec,
            core,
            n_cores,
            seed,
            rng,
            hot,
            queue: VecDeque::with_capacity(1024),
            mem_ops: 0,
        }
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Memory operations generated so far (drives sharing epochs).
    pub fn mem_ops_generated(&self) -> u64 {
        self.mem_ops
    }

    #[inline]
    fn private_base(&self, region: u64) -> u64 {
        ((self.core as u64 + 1) << 36) + region * self.spec.region_bytes as u64
    }

    #[inline]
    fn shared_base(&self, region: u64) -> u64 {
        SHARED_BASE + region * self.spec.region_bytes as u64
    }

    /// The producer core of `region` during `epoch` — identical on every
    /// core, so all streams agree on who writes without any runtime
    /// coordination. Public so the property suite can check the rotation
    /// schedule directly.
    pub fn producer(&self, region: u64, epoch: u64) -> usize {
        (mix64(
            self.seed
                ^ region.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ epoch.wrapping_mul(0x9FB2_1C65_1E98_DF25),
        ) % self.n_cores as u64) as usize
    }

    /// Accesses a scan line receives per burst (single pass over the
    /// data, a handful of words).
    const SCAN_ACCESSES: u32 = 4;
    /// Exec gap inside tight accumulator store loops.
    const ACC_GAP: (u64, u64) = (1, 3);

    /// Emit one two-phase burst against the region at `base`:
    ///
    /// 1. **accumulator phase** — the region's *fixed* leading
    ///    `store_lines × burst_lines` lines receive `accesses_per_line`
    ///    accesses each, stores with probability `write_fraction`
    ///    (tight update loops: every store reaches the L2 through the
    ///    write-through L1, making L2 traffic store-dominated and the
    ///    baseline miss rate low);
    /// 2. **scan phase** — the remaining burst lines come from a random
    ///    window of the region and are read a few times each (these are
    ///    the clean, decayable lines).
    fn emit_burst(&mut self, base: u64, write_fraction: f64) {
        let region_lines = (self.spec.region_bytes as u64) / LINE_BYTES;
        let span = self.spec.burst_lines as u64;
        let acc_lines = ((span as f64 * self.spec.store_lines).ceil() as u64).min(span);
        let scan_lines = span - acc_lines;
        // Accumulator phase: fixed lines at the region start.
        for l in 0..acc_lines {
            let line_base = base + l * LINE_BYTES;
            for _ in 0..self.spec.accesses_per_line {
                let gap = self.rng.range_inclusive(Self::ACC_GAP.0, Self::ACC_GAP.1) as u32;
                self.queue.push_back(TraceOp::Exec(gap));
                let addr = line_base + self.rng.below(LINE_BYTES / 8) * 8;
                let op = if self.rng.chance(write_fraction) {
                    TraceOp::Store(addr)
                } else {
                    TraceOp::Load(addr)
                };
                self.queue.push_back(op);
                self.mem_ops += 1;
            }
        }
        // Scan phase: a random window past the accumulator lines.
        if scan_lines > 0 && region_lines > acc_lines {
            let window = region_lines - acc_lines;
            let start = acc_lines
                + if window > scan_lines { self.rng.below(window - scan_lines) } else { 0 };
            for l in 0..scan_lines.min(window) {
                let line_base = base + (start + l) * LINE_BYTES;
                for _ in 0..Self::SCAN_ACCESSES {
                    let (lo, hi) = self.spec.exec_gap;
                    let gap = self.rng.range_inclusive(lo as u64, hi as u64) as u32;
                    self.queue.push_back(TraceOp::Exec(gap));
                    let addr = line_base + self.rng.below(LINE_BYTES / 8) * 8;
                    self.queue.push_back(TraceOp::Load(addr));
                    self.mem_ops += 1;
                }
            }
        }
    }

    fn private_burst(&mut self) {
        let slot = self.rng.below(self.hot.len() as u64) as usize;
        let region = self.hot[slot].region;
        let base = self.private_base(region);
        self.emit_burst(base, self.spec.write_fraction);
        self.hot[slot].bursts_left -= 1;
        if self.hot[slot].bursts_left == 0 {
            // Retire the generation; activate the next pool region.
            let next = if self.spec.revisit {
                let r = self.cursor % self.spec.pool_regions as u64;
                self.cursor += 1;
                r
            } else {
                let r = self.cursor;
                self.cursor += 1;
                r
            };
            self.hot[slot] = HotRegion { region: next, bursts_left: self.spec.generation_bursts };
        }
    }

    fn shared_burst(&mut self) {
        let region = self.rng.below(self.spec.shared_regions as u64);
        let epoch = self.mem_ops / self.spec.share_epoch_ops;
        let base = self.shared_base(region);
        if self.producer(region, epoch) == self.core {
            // Producer phase: mostly stores (fills the region with fresh
            // data the consumers will pull, migrating ownership here).
            self.emit_burst(base, 0.8);
        } else {
            // Consumer phase: read-only.
            self.emit_burst(base, 0.0);
        }
    }

    fn refill(&mut self) {
        if self.rng.chance(self.spec.shared_fraction) {
            self.shared_burst();
        } else {
            self.private_burst();
        }
    }
}

impl Workload for GenerationalWorkload {
    fn next_op(&mut self) -> TraceOp {
        loop {
            if let Some(op) = self.queue.pop_front() {
                return op;
            }
            self.refill();
        }
    }

    fn name(&self) -> &str {
        self.spec.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn take_ops(w: &mut GenerationalWorkload, n: usize) -> Vec<TraceOp> {
        (0..n).map(|_| w.next_op()).collect()
    }

    fn mem_addrs(ops: &[TraceOp]) -> Vec<u64> {
        ops.iter()
            .filter_map(|op| match op {
                TraceOp::Load(a) | TraceOp::Store(a) => Some(*a),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn deterministic_per_triple() {
        let spec = WorkloadSpec::fmm();
        let mut a = GenerationalWorkload::new(spec, 1, 4, 99);
        let mut b = GenerationalWorkload::new(spec, 1, 4, 99);
        assert_eq!(take_ops(&mut a, 5000), take_ops(&mut b, 5000));
    }

    #[test]
    fn different_cores_have_disjoint_private_segments() {
        let spec = WorkloadSpec::water_ns();
        let mut w0 = GenerationalWorkload::new(spec, 0, 4, 7);
        let mut w1 = GenerationalWorkload::new(spec, 1, 4, 7);
        let a0 = mem_addrs(&take_ops(&mut w0, 20_000));
        let a1 = mem_addrs(&take_ops(&mut w1, 20_000));
        let priv0: Vec<u64> = a0.iter().copied().filter(|&a| a < SHARED_BASE).collect();
        let priv1: Vec<u64> = a1.iter().copied().filter(|&a| a < SHARED_BASE).collect();
        assert!(!priv0.is_empty() && !priv1.is_empty());
        assert!(priv0.iter().all(|&a| (a >> 36) == 1));
        assert!(priv1.iter().all(|&a| (a >> 36) == 2));
    }

    #[test]
    fn shared_traffic_exists_and_lands_in_shared_segment() {
        let spec = WorkloadSpec::mpeg2dec();
        let mut w = GenerationalWorkload::new(spec, 2, 4, 3);
        let addrs = mem_addrs(&take_ops(&mut w, 100_000));
        let shared: Vec<u64> = addrs.iter().copied().filter(|&a| a >= SHARED_BASE).collect();
        assert!(!shared.is_empty(), "mpeg2dec must produce shared traffic");
        let max_shared = SHARED_BASE + (spec.shared_regions * spec.region_bytes) as u64;
        assert!(shared.iter().all(|&a| a < max_shared));
    }

    #[test]
    fn store_share_is_high_and_concentrated() {
        let spec = WorkloadSpec::fmm();
        let mut w = GenerationalWorkload::new(spec, 0, 4, 5);
        let ops = take_ops(&mut w, 400_000);
        let (mut loads, mut stores) = (0u64, 0u64);
        let mut store_lines = std::collections::BTreeSet::new();
        let mut load_lines = std::collections::BTreeSet::new();
        for op in &ops {
            match op {
                TraceOp::Load(a) if *a < SHARED_BASE => {
                    loads += 1;
                    load_lines.insert(a / 64);
                }
                TraceOp::Store(a) if *a < SHARED_BASE => {
                    stores += 1;
                    store_lines.insert(a / 64);
                }
                _ => {}
            }
        }
        let wf = stores as f64 / (loads + stores) as f64;
        // Accumulator structure: most accesses are stores (write-through
        // L2 traffic is store-dominated, as the paper observes)...
        assert!(wf > 0.5 && wf < 0.95, "observed store share {wf}");
        // ...but stores touch far fewer distinct lines than loads do
        // (clean scan lines are the Selective Decay fodder).
        assert!(
            store_lines.len() * 2 < load_lines.len() + store_lines.len(),
            "stores {} lines, loads {} lines",
            store_lines.len(),
            load_lines.len()
        );
    }

    #[test]
    fn revisiting_spec_stays_within_footprint() {
        let spec = WorkloadSpec::volrend();
        let mut w = GenerationalWorkload::new(spec, 0, 4, 11);
        let addrs = mem_addrs(&take_ops(&mut w, 400_000));
        let base = 1u64 << 36;
        let limit = base + spec.footprint_bytes() as u64;
        for &a in addrs.iter().filter(|&&a| a < SHARED_BASE) {
            assert!(a >= base && a < limit, "address {a:#x} outside footprint");
        }
    }

    #[test]
    fn streaming_spec_keeps_allocating_fresh_regions() {
        let spec = WorkloadSpec::mpeg2enc();
        let mut w = GenerationalWorkload::new(spec, 0, 4, 11);
        // Consume enough ops to retire many generations.
        let addrs = mem_addrs(&take_ops(&mut w, 2_000_000));
        let distinct_regions: std::collections::BTreeSet<u64> = addrs
            .iter()
            .filter(|&&a| a < SHARED_BASE)
            .map(|&a| (a - (1u64 << 36)) / spec.region_bytes as u64)
            .collect();
        assert!(
            distinct_regions.len() > spec.hot_regions * 4,
            "streaming footprint must keep growing, saw {} regions",
            distinct_regions.len()
        );
    }

    #[test]
    fn producers_rotate_across_epochs() {
        let spec = WorkloadSpec::mpeg2dec();
        let w = GenerationalWorkload::new(spec, 0, 4, 42);
        let producers: std::collections::BTreeSet<usize> =
            (0..50).map(|e| w.producer(3, e)).collect();
        assert!(producers.len() > 1, "ownership must migrate across epochs");
    }

    #[test]
    fn all_cores_agree_on_the_producer() {
        let spec = WorkloadSpec::water_ns();
        let ws: Vec<GenerationalWorkload> =
            (0..4).map(|c| GenerationalWorkload::new(spec, c, 4, 123)).collect();
        for epoch in 0..20 {
            for region in 0..4 {
                let p0 = ws[0].producer(region, epoch);
                for w in &ws[1..] {
                    assert_eq!(w.producer(region, epoch), p0);
                }
            }
        }
    }

    #[test]
    fn exec_gaps_set_memory_intensity() {
        let spec = WorkloadSpec::facerec();
        let mut w = GenerationalWorkload::new(spec, 0, 4, 8);
        let ops = take_ops(&mut w, 100_000);
        let instr: u64 = ops.iter().map(|o| o.instructions()).sum();
        let mem: u64 = ops.iter().filter(|o| o.is_mem()).count() as u64;
        let intensity = mem as f64 / instr as f64;
        // Mixture of tight accumulator loops (gap 1-3) and scan gaps.
        assert!(intensity > 0.15 && intensity < 0.45, "intensity {intensity}");
    }
}
