//! Heterogeneous multiprogrammed scenarios.
//!
//! The paper evaluates homogeneous runs (every core executes the same
//! benchmark); real CMP workloads are multiprogrammed mixes whose cores
//! stress the leakage techniques differently — a streaming core leaves
//! dead lines everywhere while its revisiting neighbour pays for every
//! premature turn-off. A [`ScenarioSpec`] assigns one [`WorkloadSpec`]
//! per core (wrapping modulo the assignment list for larger systems) and
//! builds the per-core generator set.
//!
//! Three curated mixes ship with the crate ([`ScenarioSpec::paper_mixes`]):
//!
//! * [`mix_stream_revisit`](ScenarioSpec::stream_revisit) — streaming
//!   multimedia (mpeg2enc) interleaved with revisiting scientific
//!   (WATER-NS): decay-friendly and decay-hostile cores side by side;
//! * [`mix_producer_share`](ScenarioSpec::producer_sharing) — two
//!   producer-exchange kernels against mpeg2dec and FMM: maximal
//!   ownership migration, the Protocol technique's best case;
//! * [`mix_bursty_idle`](ScenarioSpec::bursty_idle) — revisiting
//!   scientific cores next to nearly idle bursty cores whose banks are
//!   mostly dead capacity.

use crate::generator::GenerationalWorkload;
use crate::spec::WorkloadSpec;
use cmpleak_cpu::{LiveGen, OpSource, Workload};

/// A named per-core benchmark assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario label, used wherever benchmark names appear (sweep
    /// cells, figures, trace headers).
    pub name: String,
    /// Per-core specs; core `c` runs `assignments[c % len]`.
    pub assignments: Vec<WorkloadSpec>,
}

impl ScenarioSpec {
    /// A scenario running `assignments[c % len]` on core `c`.
    ///
    /// # Panics
    /// Panics if `assignments` is empty.
    pub fn new(name: impl Into<String>, assignments: Vec<WorkloadSpec>) -> Self {
        assert!(!assignments.is_empty(), "a scenario needs at least one assignment");
        Self { name: name.into(), assignments }
    }

    /// The spec core `core` runs.
    pub fn spec_for_core(&self, core: usize) -> WorkloadSpec {
        self.assignments[core % self.assignments.len()]
    }

    /// Build one generator per core. Deterministic in `(self, n_cores,
    /// seed)` like the homogeneous constructors.
    pub fn build_workloads(&self, n_cores: usize, seed: u64) -> Vec<Box<dyn Workload>> {
        (0..n_cores)
            .map(|c| {
                Box::new(GenerationalWorkload::new(self.spec_for_core(c), c, n_cores, seed))
                    as Box<dyn Workload>
            })
            .collect()
    }

    /// Build one live-generation [`OpSource`] per core: the generators
    /// of [`ScenarioSpec::build_workloads`], each wrapped in a
    /// [`LiveGen`] budget-cursor adapter — the stream-delivery shape the
    /// simulator consumes. Op-for-op identical to the raw generators.
    pub fn build_sources(&self, n_cores: usize, seed: u64) -> Vec<Box<dyn OpSource>> {
        self.build_workloads(n_cores, seed).into_iter().map(LiveGen::boxed).collect()
    }

    /// Streaming + revisiting mix: mpeg2enc / WATER-NS alternating.
    pub fn stream_revisit() -> ScenarioSpec {
        Self::new(
            "mix_stream_revisit",
            vec![
                WorkloadSpec::mpeg2enc(),
                WorkloadSpec::water_ns(),
                WorkloadSpec::mpeg2enc(),
                WorkloadSpec::water_ns(),
            ],
        )
    }

    /// Producer-heavy sharing mix: two producer-exchange kernels plus
    /// mpeg2dec and FMM consumers.
    pub fn producer_sharing() -> ScenarioSpec {
        Self::new(
            "mix_producer_share",
            vec![
                WorkloadSpec::producer_exchange(),
                WorkloadSpec::producer_exchange(),
                WorkloadSpec::mpeg2dec(),
                WorkloadSpec::fmm(),
            ],
        )
    }

    /// Busy scientific cores next to nearly idle bursty cores.
    pub fn bursty_idle() -> ScenarioSpec {
        Self::new(
            "mix_bursty_idle",
            vec![
                WorkloadSpec::water_ns(),
                WorkloadSpec::idle_bursty(),
                WorkloadSpec::volrend(),
                WorkloadSpec::idle_bursty(),
            ],
        )
    }

    /// The three curated heterogeneous mixes.
    pub fn paper_mixes() -> Vec<ScenarioSpec> {
        vec![Self::stream_revisit(), Self::producer_sharing(), Self::bursty_idle()]
    }

    /// Look a curated mix up by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<ScenarioSpec> {
        Self::paper_mixes().into_iter().find(|s| s.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpleak_cpu::TraceOp;

    #[test]
    fn mixes_are_named_and_heterogeneous() {
        let mixes = ScenarioSpec::paper_mixes();
        assert_eq!(mixes.len(), 3);
        for m in &mixes {
            assert!(m.name.starts_with("mix_"));
            let names: std::collections::BTreeSet<&str> =
                m.assignments.iter().map(|s| s.name).collect();
            assert!(names.len() >= 2, "{} must mix at least two specs", m.name);
        }
    }

    #[test]
    fn assignment_wraps_modulo() {
        let s = ScenarioSpec::stream_revisit();
        assert_eq!(s.spec_for_core(0).name, "mpeg2enc");
        assert_eq!(s.spec_for_core(1).name, "WATER-NS");
        assert_eq!(s.spec_for_core(4).name, "mpeg2enc");
        assert_eq!(s.spec_for_core(7).name, "WATER-NS");
    }

    #[test]
    fn build_is_deterministic_and_per_core_labelled() {
        let s = ScenarioSpec::producer_sharing();
        let mut a = s.build_workloads(4, 42);
        let mut b = s.build_workloads(4, 42);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            assert_eq!(x.name(), y.name());
            for _ in 0..2000 {
                assert_eq!(x.next_op(), y.next_op());
            }
        }
        assert_eq!(a[0].name(), "producer");
        assert_eq!(a[2].name(), "mpeg2dec");
        assert_eq!(a[3].name(), "FMM");
    }

    #[test]
    fn bursty_core_is_memory_light() {
        let s = ScenarioSpec::bursty_idle();
        let mut busy = s.build_workloads(4, 7).remove(0);
        let mut idle = s.build_workloads(4, 7).remove(1);
        let intensity = |w: &mut Box<dyn Workload>| {
            let mut instr = 0u64;
            let mut mem = 0u64;
            for _ in 0..50_000 {
                let op = w.next_op();
                instr += op.instructions();
                if op.is_mem() {
                    mem += 1;
                }
            }
            mem as f64 / instr as f64
        };
        let busy_i = intensity(&mut busy);
        let idle_i = intensity(&mut idle);
        assert!(
            idle_i * 3.0 < busy_i,
            "bursty core must be far less memory-intensive: busy {busy_i:.3}, idle {idle_i:.3}"
        );
    }

    #[test]
    fn by_name_finds_mixes() {
        assert!(ScenarioSpec::by_name("MIX_BURSTY_IDLE").is_some());
        assert!(ScenarioSpec::by_name("nonesuch").is_none());
    }

    #[test]
    #[should_panic(expected = "at least one assignment")]
    fn empty_assignment_rejected() {
        ScenarioSpec::new("empty", vec![]);
    }

    #[test]
    fn shared_segment_is_common_across_specs() {
        // Heterogeneous cores still meet in the shared segment: the mix
        // produces cross-spec coherence traffic.
        let s = ScenarioSpec::producer_sharing();
        let mut wls = s.build_workloads(4, 11);
        let shared_base = 1u64 << 44;
        let mut sharers = 0;
        for w in wls.iter_mut() {
            let mut touches_shared = false;
            for _ in 0..100_000 {
                match w.next_op() {
                    TraceOp::Load(a) | TraceOp::Store(a) if a >= shared_base => {
                        touches_shared = true;
                        break;
                    }
                    _ => {}
                }
            }
            sharers += usize::from(touches_shared);
        }
        assert!(sharers >= 3, "most cores must touch the shared segment, saw {sharers}");
    }
}
