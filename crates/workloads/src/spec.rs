//! Benchmark specifications.
//!
//! Each [`WorkloadSpec`] parameterises the generational generator to
//! mimic one of the paper's six benchmarks. The constants are calibrated
//! against the qualitative characterisations in the paper's §VI (and the
//! published characterisations of SPLASH-2 / ALPbench): scientific codes
//! have large working sets that they *revisit* after long gaps and suffer
//! visibly under decay; multimedia codes stream frame data with little
//! long-range reuse and tolerate decay almost for free. Exact values are
//! recorded per experiment in EXPERIMENTS.md.

/// The two benchmark families of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchClass {
    /// SPLASH-2-style scientific code (WATER-NS, FMM, VOLREND).
    Scientific,
    /// ALPbench-style multimedia code (mpeg2enc, mpeg2dec, facerec).
    Multimedia,
}

/// Parameters of one synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// Family (drives reporting groups, not behaviour — behaviour comes
    /// from the numeric knobs).
    pub class: BenchClass,
    /// Private region pool per core; `pool_regions * region_bytes` is the
    /// per-core footprint for revisiting workloads.
    pub pool_regions: usize,
    /// Bytes per region (a power of two multiple of the line size).
    pub region_bytes: usize,
    /// Simultaneously live private regions.
    pub hot_regions: usize,
    /// Bursts a region stays live before retiring (generation length).
    pub generation_bursts: u32,
    /// Consecutive lines touched per burst.
    pub burst_lines: u32,
    /// Word-level accesses per touched line (temporal locality within the
    /// line; with a write-through L1 the stores among them all reach L2).
    pub accesses_per_line: u32,
    /// ALU instructions between memory accesses, inclusive range.
    pub exec_gap: (u32, u32),
    /// Fraction of each burst's lines that receive stores (accumulator
    /// lines). The remaining lines are read-only — they stay clean
    /// (Exclusive/Shared) in the L2, which is exactly the population
    /// Selective Decay is allowed to decay.
    pub store_lines: f64,
    /// Store probability per access *within* the store-eligible lines.
    /// Overall store share of private traffic ≈ `store_lines ×
    /// write_fraction` (write-through: every store reaches the L2, so
    /// this also sets the L2's write dominance).
    pub write_fraction: f64,
    /// Probability that a burst targets the shared address space.
    pub shared_fraction: f64,
    /// Number of shared regions (whole-system, not per core).
    pub shared_regions: usize,
    /// Memory ops per sharing epoch: each epoch deterministically picks a
    /// new producer core per shared region, generating the migration and
    /// invalidation traffic the Protocol technique feeds on.
    pub share_epoch_ops: u64,
    /// Whether the region cursor wraps around the pool (revisiting,
    /// scientific) or allocates fresh addresses forever (streaming,
    /// multimedia).
    pub revisit: bool,
}

impl WorkloadSpec {
    /// Per-core private footprint in bytes (for revisiting workloads this
    /// is exact; streaming workloads keep growing past it).
    pub fn footprint_bytes(&self) -> usize {
        self.pool_regions * self.region_bytes
    }

    /// The six benchmarks of the paper, in its figure order.
    pub fn paper_suite() -> Vec<WorkloadSpec> {
        vec![
            Self::mpeg2enc(),
            Self::mpeg2dec(),
            Self::facerec(),
            Self::water_ns(),
            Self::fmm(),
            Self::volrend(),
        ]
    }

    /// The paper suite plus the beyond-paper specs used by the
    /// heterogeneous scenario mixes.
    pub fn extended_suite() -> Vec<WorkloadSpec> {
        let mut v = Self::paper_suite();
        v.push(Self::producer_exchange());
        v.push(Self::idle_bursty());
        v
    }

    /// Look a benchmark up by its paper name (extended-suite specs
    /// included).
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        Self::extended_suite().into_iter().find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// MPEG-2 encoder (ALPbench): streaming frame input, store-heavy
    /// output macroblocks, moderate sharing on reference frames.
    pub fn mpeg2enc() -> WorkloadSpec {
        WorkloadSpec {
            name: "mpeg2enc",
            class: BenchClass::Multimedia,
            pool_regions: 4096, // streaming: never wraps within a run
            region_bytes: 8192,
            hot_regions: 6,
            generation_bursts: 12,
            burst_lines: 10,
            accesses_per_line: 96,
            exec_gap: (2, 6),
            store_lines: 0.50,
            write_fraction: 0.90,
            shared_fraction: 0.05,
            shared_regions: 16,
            share_epoch_ops: 40_000,
            revisit: false,
        }
    }

    /// MPEG-2 decoder (ALPbench): streaming, very store-heavy (decoded
    /// frames), frequent producer hand-off on the picture buffers — the
    /// benchmark for which the paper finds Protocol nearly as good as
    /// Decay.
    pub fn mpeg2dec() -> WorkloadSpec {
        WorkloadSpec {
            name: "mpeg2dec",
            class: BenchClass::Multimedia,
            pool_regions: 4096,
            region_bytes: 8192,
            hot_regions: 4,
            generation_bursts: 10,
            burst_lines: 8,
            accesses_per_line: 80,
            exec_gap: (2, 5),
            store_lines: 0.50,
            write_fraction: 0.90,
            shared_fraction: 0.15,
            shared_regions: 24,
            share_epoch_ops: 15_000,
            revisit: false,
        }
    }

    /// Face recognition (ALPbench): streams a gallery of images with a
    /// modest revisited model working set; read-dominated.
    pub fn facerec() -> WorkloadSpec {
        WorkloadSpec {
            name: "facerec",
            class: BenchClass::Multimedia,
            pool_regions: 208, // ~1.6 MB model revisited across images
            region_bytes: 8192,
            hot_regions: 6,
            generation_bursts: 16,
            burst_lines: 10,
            accesses_per_line: 64,
            exec_gap: (3, 8),
            store_lines: 0.15,
            write_fraction: 0.80,
            shared_fraction: 0.05,
            shared_regions: 8,
            share_epoch_ops: 60_000,
            revisit: true,
        }
    }

    /// WATER-NS (SPLASH-2): O(n²) molecular dynamics; revisits the whole
    /// molecule array every timestep with substantial inter-core
    /// read-sharing of positions and per-core force accumulation.
    pub fn water_ns() -> WorkloadSpec {
        WorkloadSpec {
            name: "WATER-NS",
            class: BenchClass::Scientific,
            pool_regions: 224, // 1.75 MB/core
            region_bytes: 8192,
            hot_regions: 6,
            generation_bursts: 10,
            burst_lines: 12,
            accesses_per_line: 96,
            exec_gap: (3, 8),
            store_lines: 0.34,
            write_fraction: 0.90,
            shared_fraction: 0.10,
            shared_regions: 24,
            share_epoch_ops: 30_000,
            revisit: true,
        }
    }

    /// FMM (SPLASH-2): adaptive fast multipole; large irregular working
    /// set, store-heavy multipole updates (the benchmark where Selective
    /// Decay gives up the most energy relative to Decay — many Modified
    /// lines sit disarmed).
    pub fn fmm() -> WorkloadSpec {
        WorkloadSpec {
            name: "FMM",
            class: BenchClass::Scientific,
            pool_regions: 288, // 2.25 MB/core
            region_bytes: 8192,
            hot_regions: 8,
            generation_bursts: 8,
            burst_lines: 14,
            accesses_per_line: 80,
            exec_gap: (2, 7),
            store_lines: 0.45,
            write_fraction: 0.90,
            shared_fraction: 0.12,
            shared_regions: 32,
            share_epoch_ops: 25_000,
            revisit: true,
        }
    }

    /// VOLREND (SPLASH-2): volume rendering; ray-cast read traffic over a
    /// shared volume with per-core image tiles; most decay-sensitive IPC
    /// in the paper.
    pub fn volrend() -> WorkloadSpec {
        WorkloadSpec {
            name: "VOLREND",
            class: BenchClass::Scientific,
            pool_regions: 176, // 1.4 MB/core
            region_bytes: 8192,
            hot_regions: 4,
            generation_bursts: 6,
            burst_lines: 10,
            accesses_per_line: 72,
            exec_gap: (3, 9),
            store_lines: 0.20,
            write_fraction: 0.85,
            shared_fraction: 0.14,
            shared_regions: 24,
            share_epoch_ops: 20_000,
            revisit: true,
        }
    }

    /// Producer-heavy sharing kernel (beyond the paper): a large slice
    /// of the traffic targets the shared segment and the producer role
    /// rotates every few thousand ops, maximising ownership migration
    /// and the invalidation traffic the Protocol technique feeds on.
    /// Built for the `mix_producer_share` heterogeneous scenario.
    pub fn producer_exchange() -> WorkloadSpec {
        WorkloadSpec {
            name: "producer",
            class: BenchClass::Multimedia,
            pool_regions: 512,
            region_bytes: 8192,
            hot_regions: 4,
            generation_bursts: 8,
            burst_lines: 8,
            accesses_per_line: 64,
            exec_gap: (2, 6),
            store_lines: 0.50,
            write_fraction: 0.90,
            shared_fraction: 0.40,
            shared_regions: 32,
            share_epoch_ops: 5_000,
            revisit: true,
        }
    }

    /// Idle/bursty core (beyond the paper): short memory bursts
    /// separated by long ALU phases — the low-occupancy neighbour of the
    /// `mix_bursty_idle` scenario, whose mostly-dead bank is where the
    /// leakage techniques should shine without any IPC to lose.
    pub fn idle_bursty() -> WorkloadSpec {
        WorkloadSpec {
            name: "bursty",
            class: BenchClass::Scientific,
            pool_regions: 32,
            region_bytes: 8192,
            hot_regions: 2,
            generation_bursts: 4,
            burst_lines: 4,
            accesses_per_line: 8,
            exec_gap: (40, 120),
            store_lines: 0.25,
            write_fraction: 0.80,
            shared_fraction: 0.02,
            shared_regions: 8,
            share_epoch_ops: 50_000,
            revisit: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_unique_benchmarks() {
        let suite = WorkloadSpec::paper_suite();
        assert_eq!(suite.len(), 6);
        let mut names: Vec<&str> = suite.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn class_split_matches_the_paper() {
        let suite = WorkloadSpec::paper_suite();
        let sci = suite.iter().filter(|s| s.class == BenchClass::Scientific).count();
        let mm = suite.iter().filter(|s| s.class == BenchClass::Multimedia).count();
        assert_eq!((sci, mm), (3, 3));
    }

    #[test]
    fn scientific_codes_revisit_multimedia_streams() {
        for s in WorkloadSpec::paper_suite() {
            match s.class {
                BenchClass::Scientific => assert!(s.revisit, "{}", s.name),
                // facerec revisits its model set; the MPEG codecs stream.
                BenchClass::Multimedia if s.name.starts_with("mpeg") => {
                    assert!(!s.revisit, "{}", s.name)
                }
                BenchClass::Multimedia => {}
            }
        }
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(WorkloadSpec::by_name("fmm").unwrap().name, "FMM");
        assert_eq!(WorkloadSpec::by_name("MPEG2DEC").unwrap().name, "mpeg2dec");
        assert!(WorkloadSpec::by_name("nonesuch").is_none());
    }

    #[test]
    fn geometry_constraints_hold() {
        for s in WorkloadSpec::paper_suite() {
            assert!(s.region_bytes % 64 == 0, "{}: regions are whole lines", s.name);
            assert!(s.burst_lines as usize * 64 <= s.region_bytes, "{}", s.name);
            assert!(s.hot_regions <= s.pool_regions, "{}", s.name);
            assert!(s.write_fraction >= 0.0 && s.write_fraction <= 1.0);
            assert!(s.shared_fraction >= 0.0 && s.shared_fraction < 0.5);
        }
    }
}
