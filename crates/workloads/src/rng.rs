//! Small, fast, deterministic PRNG for trace generation.
//!
//! xoshiro256++ seeded through SplitMix64 (the reference seeding
//! procedure). A local implementation keeps the hot generation loop free
//! of trait-object indirection and keeps streams stable across toolchain
//! and dependency upgrades — important because the experiment tables in
//! EXPERIMENTS.md must be regenerable bit-for-bit. (The `rand` crate is
//! still used in tests for convenience.)

/// SplitMix64: expands a single `u64` seed into a well-mixed stream; used
/// only to seed xoshiro.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 by Blackman & Vigna (public domain reference
/// algorithm).
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64; any `u64` (including 0) is a valid seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift reduction
    /// (bias is negligible for the bounds used here and the reduction is
    /// branch-free — this is a trace generator, not a crypto source).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

/// Stateless 64-bit mixer (SplitMix64 finaliser) for deriving pseudo
/// random but reproducible values from composite keys, e.g. the writer
/// core of a shared region in a given epoch.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Xoshiro256pp::seeded(42);
        let mut b = Xoshiro256pp::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::seeded(1);
        let mut b = Xoshiro256pp::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Xoshiro256pp::seeded(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = Xoshiro256pp::seeded(11);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            match r.range_inclusive(3, 5) {
                3 => seen_lo = true,
                5 => seen_hi = true,
                4 => {}
                x => panic!("out of range: {x}"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Xoshiro256pp::seeded(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn mix64_spreads_consecutive_keys() {
        // Adjacent keys must not map to adjacent outputs.
        let a = mix64(1000);
        let b = mix64(1001);
        assert!(a.abs_diff(b) > 1 << 32);
    }
}
