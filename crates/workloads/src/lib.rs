//! Synthetic multi-threaded reference generators.
//!
//! The paper drives its simulator with three SPLASH-2 scientific
//! applications (WATER-NS, FMM, VOLREND) and three ALPbench multimedia
//! applications (mpeg2enc, mpeg2dec, facerec). Those binaries and their
//! traces are not available here, so — per the substitution rule recorded
//! in DESIGN.md — this crate generates *synthetic* per-core reference
//! streams exposing exactly the properties the paper's techniques exploit
//! and suffer from:
//!
//! * **generational line behaviour** (Kaxiras): lines are accessed in
//!   live bursts, then sit dead until eviction — the fuel of cache decay;
//! * **reuse distance structure**: scientific codes revisit their working
//!   set after long gaps (longer than the decay interval → decay-induced
//!   misses → IPC loss), multimedia codes stream and rarely revisit;
//! * **sharing & migration**: epochs of producer–consumer traffic on
//!   shared regions generate the coherence invalidations that the
//!   *Protocol* technique converts into leakage savings;
//! * **write intensity**: the write-through L1 makes the L2 access stream
//!   store-dominated (§VI of the paper), and stores create the Modified
//!   lines whose decay is costly (write-back + upper-level invalidation).
//!
//! Streams are deterministic functions of `(benchmark, core, seed)` —
//! the whole simulator is bit-reproducible.

#![forbid(unsafe_code)]

pub mod generator;
pub mod rng;
pub mod scenario;
pub mod spec;

pub use generator::GenerationalWorkload;
pub use rng::Xoshiro256pp;
pub use scenario::ScenarioSpec;
pub use spec::{BenchClass, WorkloadSpec};
