//! Property tests over the whole benchmark suite: determinism, address
//! partitioning and structural invariants must hold for every preset,
//! core id and seed.

use cmpleak_cpu::{TraceOp, Workload};
use cmpleak_workloads::{GenerationalWorkload, WorkloadSpec};
use proptest::prelude::*;

const SHARED_BASE: u64 = 1 << 44;

fn suite_index() -> impl Strategy<Value = usize> {
    0usize..6
}

fn take(spec: WorkloadSpec, core: usize, seed: u64, n: usize) -> Vec<TraceOp> {
    let mut w = GenerationalWorkload::new(spec, core, 4, seed);
    (0..n).map(|_| w.next_op()).collect()
}

proptest! {
    /// Identical (spec, core, seed) triples produce identical streams;
    /// changing any component changes the stream.
    #[test]
    fn streams_are_deterministic_and_distinct(
        idx in suite_index(),
        core in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let spec = WorkloadSpec::paper_suite()[idx];
        let a = take(spec, core, seed, 2000);
        let b = take(spec, core, seed, 2000);
        prop_assert_eq!(&a, &b);
        let other_core = take(spec, (core + 1) % 4, seed, 2000);
        prop_assert_ne!(&a, &other_core, "cores must diverge");
        let other_seed = take(spec, core, seed ^ 0xDEAD_BEEF, 2000);
        prop_assert_ne!(&a, &other_seed, "seeds must diverge");
    }

    /// Private addresses live in the issuing core's segment; shared
    /// addresses live in the shared segment within the configured number
    /// of regions. Every op is well-formed.
    #[test]
    fn address_partitioning_holds(
        idx in suite_index(),
        core in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let spec = WorkloadSpec::paper_suite()[idx];
        let ops = take(spec, core, seed, 20_000);
        let shared_limit = SHARED_BASE + (spec.shared_regions * spec.region_bytes) as u64;
        let mut mem_ops = 0u64;
        for op in &ops {
            match op {
                TraceOp::Exec(n) => prop_assert!(*n >= 1 && *n <= 16),
                TraceOp::Load(a) | TraceOp::Store(a) => {
                    mem_ops += 1;
                    prop_assert_eq!(a % 8, 0, "word aligned");
                    if *a >= SHARED_BASE {
                        prop_assert!(*a < shared_limit, "shared segment bound");
                    } else {
                        prop_assert_eq!(a >> 36, core as u64 + 1, "private segment owner");
                    }
                }
            }
        }
        prop_assert!(mem_ops > 0, "stream must contain memory traffic");
    }

    /// Shared stores only come from the epoch's producer: replaying the
    /// same window on two cores, stores to a shared region never appear
    /// on both within the same epoch window.
    #[test]
    fn shared_writes_are_single_producer_per_window(
        idx in suite_index(),
        seed in 0u64..10_000,
    ) {
        let spec = WorkloadSpec::paper_suite()[idx];
        // Collect shared-store region sets per core over a window small
        // enough to stay within one epoch (epochs are >= 15_000 mem ops).
        let mut writers_per_region: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        for core in 0..4 {
            let mut w = GenerationalWorkload::new(spec, core, 4, seed);
            let mut seen_mem = 0u64;
            while seen_mem < 4000 {
                match w.next_op() {
                    TraceOp::Store(a) if a >= SHARED_BASE => {
                        let region = (a - SHARED_BASE) / spec.region_bytes as u64;
                        writers_per_region.entry(region).or_default().insert(core);
                        seen_mem += 1;
                    }
                    TraceOp::Load(_) => seen_mem += 1,
                    TraceOp::Store(_) => seen_mem += 1,
                    TraceOp::Exec(_) => {}
                }
            }
        }
        for (region, writers) in writers_per_region {
            prop_assert!(
                writers.len() <= 1,
                "region {region} written by {writers:?} within one epoch window"
            );
        }
    }
}
