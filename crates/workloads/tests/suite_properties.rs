//! Property tests over the whole benchmark suite: determinism, address
//! partitioning and structural invariants must hold for every preset,
//! core id and seed.

use cmpleak_cpu::{CoreConfig, CoreModel, CorePort, TraceOp, Workload};
use cmpleak_workloads::{GenerationalWorkload, ScenarioSpec, WorkloadSpec};
use proptest::prelude::*;

const SHARED_BASE: u64 = 1 << 44;

fn suite_index() -> impl Strategy<Value = usize> {
    0usize..6
}

fn take(spec: WorkloadSpec, core: usize, seed: u64, n: usize) -> Vec<TraceOp> {
    let mut w = GenerationalWorkload::new(spec, core, 4, seed);
    (0..n).map(|_| w.next_op()).collect()
}

proptest! {
    /// Identical (spec, core, seed) triples produce identical streams;
    /// changing any component changes the stream.
    #[test]
    fn streams_are_deterministic_and_distinct(
        idx in suite_index(),
        core in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let spec = WorkloadSpec::paper_suite()[idx];
        let a = take(spec, core, seed, 2000);
        let b = take(spec, core, seed, 2000);
        prop_assert_eq!(&a, &b);
        let other_core = take(spec, (core + 1) % 4, seed, 2000);
        prop_assert_ne!(&a, &other_core, "cores must diverge");
        let other_seed = take(spec, core, seed ^ 0xDEAD_BEEF, 2000);
        prop_assert_ne!(&a, &other_seed, "seeds must diverge");
    }

    /// Private addresses live in the issuing core's segment; shared
    /// addresses live in the shared segment within the configured number
    /// of regions. Every op is well-formed.
    #[test]
    fn address_partitioning_holds(
        idx in suite_index(),
        core in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let spec = WorkloadSpec::paper_suite()[idx];
        let ops = take(spec, core, seed, 20_000);
        let shared_limit = SHARED_BASE + (spec.shared_regions * spec.region_bytes) as u64;
        let mut mem_ops = 0u64;
        for op in &ops {
            match op {
                TraceOp::Exec(n) => prop_assert!(*n >= 1 && *n <= 16),
                TraceOp::Load(a) | TraceOp::Store(a) => {
                    mem_ops += 1;
                    prop_assert_eq!(a % 8, 0, "word aligned");
                    if *a >= SHARED_BASE {
                        prop_assert!(*a < shared_limit, "shared segment bound");
                    } else {
                        prop_assert_eq!(a >> 36, core as u64 + 1, "private segment owner");
                    }
                }
            }
        }
        prop_assert!(mem_ops > 0, "stream must contain memory traffic");
    }

    /// Shared stores only come from the epoch's producer: replaying the
    /// same window on two cores, stores to a shared region never appear
    /// on both within the same epoch window.
    #[test]
    fn shared_writes_are_single_producer_per_window(
        idx in suite_index(),
        seed in 0u64..10_000,
    ) {
        let spec = WorkloadSpec::paper_suite()[idx];
        // Collect shared-store region sets per core over a window small
        // enough to stay within one epoch (epochs are >= 15_000 mem ops).
        let mut writers_per_region: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        for core in 0..4 {
            let mut w = GenerationalWorkload::new(spec, core, 4, seed);
            let mut seen_mem = 0u64;
            while seen_mem < 4000 {
                match w.next_op() {
                    TraceOp::Store(a) if a >= SHARED_BASE => {
                        let region = (a - SHARED_BASE) / spec.region_bytes as u64;
                        writers_per_region.entry(region).or_default().insert(core);
                        seen_mem += 1;
                    }
                    TraceOp::Load(_) => seen_mem += 1,
                    TraceOp::Store(_) => seen_mem += 1,
                    TraceOp::Exec(_) => {}
                }
            }
        }
        for (region, writers) in writers_per_region {
            prop_assert!(
                writers.len() <= 1,
                "region {region} written by {writers:?} within one epoch window"
            );
        }
    }

    /// Driving any suite stream through the core model retires *exactly*
    /// the advertised instruction budget — the fixed-work contract every
    /// cross-technique comparison (and the trace replay oracle) rests
    /// on.
    #[test]
    fn streams_retire_exactly_the_advertised_budget(
        idx in 0usize..8,
        seed in 0u64..10_000,
        budget in 5_000u64..20_000,
    ) {
        let spec = WorkloadSpec::extended_suite()[idx];
        let mut wl = GenerationalWorkload::new(spec, 0, 4, seed);
        let mut core = CoreModel::new(CoreConfig::default(), budget);
        let mut port = InstantPort::default();
        let mut guard = 0u64;
        while !core.drained() {
            core.tick(&mut wl, &mut port);
            for id in port.pending.drain(..) {
                core.on_load_complete(id);
            }
            guard += 1;
            prop_assert!(guard < budget * 4 + 10_000, "{}: core wedged", spec.name);
        }
        prop_assert_eq!(core.stats().instructions, budget, "{}", spec.name);
    }

    /// Private address footprints are pairwise disjoint across cores —
    /// including *heterogeneous* assignments where every core runs a
    /// different spec (the scenario-mix guarantee).
    #[test]
    fn private_addresses_never_collide_across_cores(
        seed in 0u64..10_000,
        rot in 0usize..8,
    ) {
        let mut specs = WorkloadSpec::extended_suite();
        specs.rotate_left(rot);
        specs.truncate(4);
        let mix = ScenarioSpec::new("prop_mix", specs);
        let mut wls = mix.build_workloads(4, seed);
        let mut private_lines: Vec<std::collections::HashSet<u64>> = vec![Default::default(); 4];
        for (core, w) in wls.iter_mut().enumerate() {
            for _ in 0..20_000 {
                match w.next_op() {
                    TraceOp::Load(a) | TraceOp::Store(a) if a < SHARED_BASE => {
                        private_lines[core].insert(a / 64);
                    }
                    _ => {}
                }
            }
            prop_assert!(!private_lines[core].is_empty(), "core {} has private traffic", core);
        }
        for a in 0..4 {
            for b in (a + 1)..4 {
                prop_assert!(
                    private_lines[a].is_disjoint(&private_lines[b]),
                    "cores {a} and {b} collide on private lines"
                );
            }
        }
    }

    /// The shared-segment producer changes across epochs (ownership
    /// migrates every `share_epoch_ops`) and every core agrees on who it
    /// is without coordination.
    #[test]
    fn producers_rotate_across_epochs_and_cores_agree(
        idx in suite_index(),
        seed in 0u64..10_000,
        region in 0u64..8,
    ) {
        let spec = WorkloadSpec::paper_suite()[idx];
        let ws: Vec<GenerationalWorkload> =
            (0..4).map(|c| GenerationalWorkload::new(spec, c, 4, seed)).collect();
        let mut producers = std::collections::HashSet::new();
        let mut changes = 0u32;
        let mut prev = None;
        for epoch in 0..40u64 {
            let p = ws[0].producer(region, epoch);
            prop_assert!(p < 4, "producer must be a real core");
            for w in &ws[1..] {
                prop_assert_eq!(w.producer(region, epoch), p, "cores disagree at epoch {}", epoch);
            }
            if prev.is_some_and(|q: usize| q != p) {
                changes += 1;
            }
            prev = Some(p);
            producers.insert(p);
        }
        prop_assert!(producers.len() > 1, "ownership never migrated in 40 epochs");
        prop_assert!(changes >= 10, "rotation too rare: {} changes in 40 epochs", changes);
    }
}

/// Port that accepts everything and completes loads at the next tick.
#[derive(Default)]
struct InstantPort {
    pending: Vec<u64>,
}

impl CorePort for InstantPort {
    fn try_load(&mut self, _addr: u64, id: u64) -> bool {
        self.pending.push(id);
        true
    }
    fn try_store(&mut self, _addr: u64) -> bool {
        true
    }
}
