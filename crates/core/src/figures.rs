//! Builders regenerating the paper's figures from sweep results.
//!
//! Every figure of §VI is a table here: rows are the seven technique
//! configurations, columns are total cache sizes (Figs. 3–5, averaged
//! over the benchmark suite) or benchmarks (Fig. 6, at 4 MB). Rendering
//! is plain text so `repro` output can be diffed into EXPERIMENTS.md.

use crate::metrics::TechniqueMetrics;
use crate::sweep::SweepResults;
use serde::Serialize;

/// Value formatting for a figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Unit {
    /// Render as a percentage (occupation, increases, reductions, loss).
    Percent,
    /// Render as a raw rate with 4 decimals (miss rates).
    Rate,
}

/// One reproduced figure as a labelled table.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Paper figure id, e.g. `"fig3a"`.
    pub id: &'static str,
    /// Human title matching the paper caption.
    pub title: &'static str,
    /// Row labels (techniques).
    pub rows: Vec<String>,
    /// Column labels (sizes or benchmarks).
    pub cols: Vec<String>,
    /// `values[row][col]`.
    pub values: Vec<Vec<f64>>,
    /// Formatting.
    pub unit: Unit,
}

impl Figure {
    /// Value lookup by labels.
    pub fn value(&self, row: &str, col: &str) -> Option<f64> {
        let r = self.rows.iter().position(|x| x == row)?;
        let c = self.cols.iter().position(|x| x == col)?;
        Some(self.values[r][c])
    }
}

impl std::fmt::Display for Figure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} — {}", self.id, self.title)?;
        let w = 14usize;
        write!(f, "{:16}", "")?;
        for c in &self.cols {
            write!(f, "{c:>w$}")?;
        }
        writeln!(f)?;
        for (r, row) in self.rows.iter().enumerate() {
            write!(f, "{row:16}")?;
            for v in &self.values[r] {
                match self.unit {
                    Unit::Percent => write!(f, "{:>w$}", format!("{:.1}%", v * 100.0))?,
                    Unit::Rate => write!(f, "{:>w$}", format!("{v:.4}"))?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// All figures derived from one sweep.
#[derive(Debug, Clone)]
pub struct FigureSet<'a> {
    results: &'a SweepResults,
    /// Technique labels in paper order (derived from the sweep).
    techniques: Vec<String>,
    sizes: Vec<usize>,
}

impl<'a> FigureSet<'a> {
    /// Wrap sweep results.
    pub fn new(results: &'a SweepResults) -> Self {
        let mut techniques: Vec<String> = Vec::new();
        let mut sizes: Vec<usize> = Vec::new();
        for c in &results.cells {
            if c.technique != "baseline" && !techniques.contains(&c.technique) {
                techniques.push(c.technique.clone());
            }
            if !sizes.contains(&c.size_mb) {
                sizes.push(c.size_mb);
            }
        }
        sizes.sort_unstable();
        Self { results, techniques, sizes }
    }

    fn by_size(
        &self,
        id: &'static str,
        title: &'static str,
        unit: Unit,
        get: impl Fn(&TechniqueMetrics) -> f64,
    ) -> Figure {
        let mut values = Vec::new();
        for t in &self.techniques {
            let mut row = Vec::new();
            for &s in &self.sizes {
                let m = self
                    .results
                    .mean_over_benchmarks(t, s)
                    // audit:allow(unwrap-in-lib, FigureSet is built from a grid sweep whose planner emits every (technique,size) cell)
                    .expect("sweep covers every (technique,size)");
                row.push(get(&m));
            }
            values.push(row);
        }
        Figure {
            id,
            title,
            rows: self.techniques.clone(),
            cols: self.sizes.iter().map(|s| format!("{s}MB")).collect(),
            values,
            unit,
        }
    }

    fn by_benchmark(
        &self,
        id: &'static str,
        title: &'static str,
        size_mb: usize,
        unit: Unit,
        get: impl Fn(&TechniqueMetrics) -> f64,
    ) -> Figure {
        let benches = self.results.benchmarks();
        let mut values = Vec::new();
        for t in &self.techniques {
            let mut row = Vec::new();
            for b in &benches {
                let cell = self
                    .results
                    .cell(b, t, size_mb)
                    // audit:allow(unwrap-in-lib, FigureSet is built from a grid sweep whose planner emits every (benchmark,technique) cell)
                    .expect("sweep covers every (benchmark,technique) at this size");
                row.push(get(&cell.metrics));
            }
            values.push(row);
        }
        Figure { id, title, rows: self.techniques.clone(), cols: benches, values, unit }
    }

    /// Fig. 3(a): L2 occupation rate.
    pub fn fig3a(&self) -> Figure {
        self.by_size("fig3a", "L2 occupation rate", Unit::Percent, |m| m.occupation)
    }

    /// Fig. 3(b): aggregate L2 miss rate.
    pub fn fig3b(&self) -> Figure {
        self.by_size("fig3b", "L2 miss rate", Unit::Rate, |m| m.l2_miss_rate)
    }

    /// Fig. 4(a): memory bandwidth increase vs. baseline.
    pub fn fig4a(&self) -> Figure {
        self.by_size("fig4a", "Memory bandwidth increase", Unit::Percent, |m| m.bandwidth_increase)
    }

    /// Fig. 4(b): AMAT increase vs. baseline.
    pub fn fig4b(&self) -> Figure {
        self.by_size("fig4b", "AMAT increase", Unit::Percent, |m| m.amat_increase)
    }

    /// Fig. 5(a): system energy reduction vs. baseline.
    pub fn fig5a(&self) -> Figure {
        self.by_size("fig5a", "Energy reduction", Unit::Percent, |m| m.energy_reduction)
    }

    /// Fig. 5(b): IPC loss vs. baseline.
    pub fn fig5b(&self) -> Figure {
        self.by_size("fig5b", "IPC loss", Unit::Percent, |m| m.ipc_loss)
    }

    /// Fig. 6(a): per-benchmark energy reduction at `size_mb` (paper: 4).
    pub fn fig6a(&self, size_mb: usize) -> Figure {
        self.by_benchmark("fig6a", "Energy reduction by benchmark", size_mb, Unit::Percent, |m| {
            m.energy_reduction
        })
    }

    /// Fig. 6(b): per-benchmark IPC loss at `size_mb` (paper: 4).
    pub fn fig6b(&self, size_mb: usize) -> Figure {
        self.by_benchmark("fig6b", "IPC loss by benchmark", size_mb, Unit::Percent, |m| m.ipc_loss)
    }

    /// The paper's headline comparison at one size: Protocol / Decay /
    /// Selective Decay (decay families averaged over decay times),
    /// reporting (energy reduction, IPC loss).
    pub fn headline(&self, size_mb: usize) -> Vec<(String, f64, f64)> {
        type FamilyPred = Box<dyn Fn(&str) -> bool>;
        let families: [(&str, FamilyPred); 3] = [
            ("Protocol", Box::new(|t: &str| t == "protocol")),
            ("Decay", Box::new(|t: &str| t.starts_with("decay"))),
            ("Selective Decay", Box::new(|t: &str| t.starts_with("sel_decay"))),
        ];
        families
            .iter()
            .map(|(name, pred)| {
                let samples: Vec<TechniqueMetrics> = self
                    .techniques
                    .iter()
                    .filter(|t| pred(t))
                    .filter_map(|t| self.results.mean_over_benchmarks(t, size_mb))
                    .collect();
                let m = TechniqueMetrics::mean(&samples);
                (name.to_string(), m.energy_reduction, m.ipc_loss)
            })
            .collect()
    }

    /// Every by-size figure, for `repro all`.
    pub fn all_by_size(&self) -> Vec<Figure> {
        vec![self.fig3a(), self.fig3b(), self.fig4a(), self.fig4b(), self.fig5a(), self.fig5b()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_sweep, SweepConfig};
    use cmpleak_coherence::Technique;
    use cmpleak_workloads::WorkloadSpec;

    fn small_results() -> SweepResults {
        run_sweep(&SweepConfig {
            scenarios: vec![
                crate::scenario::Scenario::Homogeneous(WorkloadSpec::mpeg2enc()),
                crate::scenario::Scenario::Homogeneous(WorkloadSpec::water_ns()),
            ],
            sizes_mb: vec![1, 2],
            techniques: vec![
                Technique::Protocol,
                Technique::Decay { decay_cycles: 16 * 1024 },
                Technique::SelectiveDecay { decay_cycles: 16 * 1024 },
            ],
            instructions_per_core: 30_000,
            seed: 3,
            n_cores: 2,
            threads: 0,
            store: None,
        })
    }

    #[test]
    fn figures_have_full_shape() {
        let res = small_results();
        let figs = FigureSet::new(&res);
        for fig in figs.all_by_size() {
            assert_eq!(fig.rows.len(), 3, "{}", fig.id);
            assert_eq!(fig.cols, vec!["1MB", "2MB"], "{}", fig.id);
            for row in &fig.values {
                assert_eq!(row.len(), 2);
                for v in row {
                    assert!(v.is_finite());
                }
            }
        }
        let f6 = figs.fig6a(1);
        assert_eq!(f6.cols.len(), 2, "one column per benchmark");
    }

    #[test]
    fn occupation_orders_decay_below_protocol() {
        let res = small_results();
        let figs = FigureSet::new(&res);
        let occ = figs.fig3a();
        let protocol = occ.value("protocol", "1MB").unwrap();
        let decay = occ.value("decay16K", "1MB").unwrap();
        assert!(decay < protocol, "decay {decay} must undercut protocol {protocol}");
    }

    #[test]
    fn headline_reports_three_families() {
        let res = small_results();
        let figs = FigureSet::new(&res);
        let h = figs.headline(1);
        assert_eq!(h.len(), 3);
        assert_eq!(h[0].0, "Protocol");
        assert!(h.iter().all(|(_, er, loss)| er.is_finite() && loss.is_finite()));
    }

    #[test]
    fn rendering_contains_labels_and_percents() {
        let res = small_results();
        let figs = FigureSet::new(&res);
        let s = figs.fig5a().to_string();
        assert!(s.contains("fig5a"));
        assert!(s.contains("protocol"));
        assert!(s.contains('%'));
    }
}
