//! What runs on the cores of one experiment.
//!
//! A [`Scenario`] names the workload side of an experiment cell and
//! knows how to build the per-core [`Workload`] drivers:
//!
//! * [`Scenario::Homogeneous`] — the paper's configuration: every core
//!   runs the same [`WorkloadSpec`];
//! * [`Scenario::Mix`] — a heterogeneous multiprogrammed
//!   [`ScenarioSpec`], one spec per core;
//! * [`Scenario::TraceReplay`] — replay a recorded trace file
//!   (`cmpleak-trace`), bit-identical to the live run it captured.

use cmpleak_cpu::Workload;
use cmpleak_trace::{record_workloads, TraceFile, TraceRecorder};
use cmpleak_workloads::{ScenarioSpec, WorkloadSpec};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The workload half of an experiment configuration.
#[derive(Debug, Clone)]
pub enum Scenario {
    /// Every core runs `spec` (the paper's homogeneous setup).
    Homogeneous(WorkloadSpec),
    /// Heterogeneous multiprogrammed mix.
    Mix(ScenarioSpec),
    /// Replay the per-core streams of a recorded trace file.
    TraceReplay {
        /// Trace file path (diagnostics only; the image is cached).
        path: PathBuf,
        /// Label from the trace header (cached at construction so
        /// labelling never needs IO).
        label: String,
        /// The preloaded trace image, shared across clones — a sweep
        /// replaying one trace over many cells reads the file once, and
        /// worker threads slice the same cached bytes.
        file: Arc<TraceFile>,
    },
}

impl Scenario {
    /// Wrap a trace file: parse the header, pull the image into memory
    /// once, and share it across every clone of this scenario.
    pub fn from_trace(path: impl AsRef<Path>) -> io::Result<Scenario> {
        let mut tf = TraceFile::open(path.as_ref())?;
        tf.preload()?;
        Ok(Scenario::TraceReplay {
            path: path.as_ref().to_path_buf(),
            label: format!("{}@trace", tf.label()),
            file: Arc::new(tf),
        })
    }

    /// Resolve a benchmark or curated-mix name (`FMM`, `mpeg2dec`,
    /// `mix_bursty_idle`, …).
    pub fn by_name(name: &str) -> Option<Scenario> {
        WorkloadSpec::by_name(name)
            .map(Scenario::Homogeneous)
            .or_else(|| ScenarioSpec::by_name(name).map(Scenario::Mix))
    }

    /// Every name [`Scenario::by_name`] resolves, for CLI help.
    pub fn known_names() -> Vec<String> {
        WorkloadSpec::extended_suite()
            .iter()
            .map(|s| s.name.to_string())
            .chain(ScenarioSpec::paper_mixes().into_iter().map(|m| m.name))
            .collect()
    }

    /// The label used for sweep cells, figures and trace headers.
    pub fn label(&self) -> String {
        match self {
            Scenario::Homogeneous(spec) => spec.name.to_string(),
            Scenario::Mix(mix) => mix.name.clone(),
            Scenario::TraceReplay { label, .. } => label.clone(),
        }
    }

    /// Build the per-core workload drivers.
    ///
    /// # Panics
    /// For [`Scenario::TraceReplay`], panics if the file cannot be read,
    /// records a different core count, or covers fewer instructions per
    /// core than `instructions_per_core` — replaying past the recorded
    /// budget would silently diverge from the live run, so it is
    /// rejected up front.
    pub fn build_workloads(
        &self,
        n_cores: usize,
        seed: u64,
        instructions_per_core: u64,
    ) -> Vec<Box<dyn Workload>> {
        match self {
            Scenario::Homogeneous(spec) => {
                ScenarioSpec::new(spec.name, vec![*spec]).build_workloads(n_cores, seed)
            }
            Scenario::Mix(mix) => mix.build_workloads(n_cores, seed),
            Scenario::TraceReplay { path, file: tf, .. } => {
                assert_eq!(
                    tf.n_cores(),
                    n_cores,
                    "trace {} records {} cores, experiment wants {n_cores}",
                    path.display(),
                    tf.n_cores()
                );
                assert!(
                    tf.min_core_instructions() >= instructions_per_core,
                    "trace {} covers {} instructions/core, experiment wants {}",
                    path.display(),
                    tf.min_core_instructions(),
                    instructions_per_core
                );
                (0..n_cores)
                    .map(|c| {
                        Box::new(tf.core_workload(c).unwrap_or_else(|e| {
                            panic!("cannot read core {c} of {}: {e}", path.display())
                        })) as Box<dyn Workload>
                    })
                    .collect()
            }
        }
    }

    /// Record this scenario's live streams into a [`TraceRecorder`]
    /// covering `instructions_per_core` per core. (Recording a
    /// `TraceReplay` scenario re-encodes the replayed streams.)
    pub fn record(&self, n_cores: usize, seed: u64, instructions_per_core: u64) -> TraceRecorder {
        let mut wls = self.build_workloads(n_cores, seed, instructions_per_core);
        record_workloads(self.label(), seed, &mut wls, instructions_per_core)
    }
}

impl From<WorkloadSpec> for Scenario {
    fn from(spec: WorkloadSpec) -> Self {
        Scenario::Homogeneous(spec)
    }
}

impl From<ScenarioSpec> for Scenario {
    fn from(mix: ScenarioSpec) -> Self {
        Scenario::Mix(mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpleak_trace::TraceFile;

    #[test]
    fn labels_and_lookup() {
        assert_eq!(Scenario::Homogeneous(WorkloadSpec::fmm()).label(), "FMM");
        assert_eq!(Scenario::Mix(ScenarioSpec::bursty_idle()).label(), "mix_bursty_idle");
        assert!(Scenario::by_name("water-ns").is_some());
        assert!(Scenario::by_name("mix_producer_share").is_some());
        assert!(Scenario::by_name("nonesuch").is_none());
        assert!(Scenario::known_names().len() >= 9);
    }

    #[test]
    fn homogeneous_build_matches_direct_generators() {
        use cmpleak_workloads::GenerationalWorkload;
        let spec = WorkloadSpec::volrend();
        let mut built = Scenario::Homogeneous(spec).build_workloads(2, 5, 1000);
        let mut direct = GenerationalWorkload::new(spec, 1, 2, 5);
        for _ in 0..2000 {
            assert_eq!(built[1].next_op(), direct.next_op());
        }
    }

    #[test]
    fn record_then_replay_streams_are_identical() {
        let scenario = Scenario::Mix(ScenarioSpec::stream_revisit());
        let rec = scenario.record(4, 42, 5_000);
        let path = std::env::temp_dir().join("cmpleak_core_scenario_test.cmpt");
        rec.save(&path).unwrap();

        let replay = Scenario::from_trace(&path).unwrap();
        assert_eq!(replay.label(), "mix_stream_revisit@trace");
        let mut replayed = replay.build_workloads(4, 42, 5_000);
        let mut live = scenario.build_workloads(4, 42, 5_000);
        let tf = TraceFile::open(&path).unwrap();
        for core in 0..4 {
            assert_eq!(replayed[core].name(), live[core].name());
            for _ in 0..tf.header().cores[core].ops {
                assert_eq!(replayed[core].next_op(), live[core].next_op(), "core {core}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "instructions/core")]
    fn oversized_budget_is_rejected_up_front() {
        let scenario = Scenario::Homogeneous(WorkloadSpec::facerec());
        let rec = scenario.record(2, 1, 1_000);
        let path = std::env::temp_dir().join("cmpleak_core_scenario_small.cmpt");
        rec.save(&path).unwrap();
        let replay = Scenario::from_trace(&path).unwrap();
        let _ = replay.build_workloads(2, 1, 100_000);
    }
}
