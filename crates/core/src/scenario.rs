//! What runs on the cores of one experiment.
//!
//! A [`Scenario`] names the workload side of an experiment cell and
//! knows how to build the per-core [`Workload`] drivers:
//!
//! * [`Scenario::Homogeneous`] — the paper's configuration: every core
//!   runs the same [`WorkloadSpec`];
//! * [`Scenario::Mix`] — a heterogeneous multiprogrammed
//!   [`ScenarioSpec`], one spec per core;
//! * [`Scenario::TraceReplay`] — replay a recorded trace file
//!   (`cmpleak-trace`), bit-identical to the live run it captured;
//! * [`Scenario::SharedStream`] — replay an in-memory [`MemTrace`]
//!   recorded from another scenario, shared (via `Arc`) across every
//!   experiment cell that consumes the same (scenario, seed, budget)
//!   stream — the sweep planner's record-once/replay-everywhere
//!   substrate.
//!
//! Experiments consume a scenario through [`Scenario::build_sources`]
//! (per-core [`OpSource`] delivery channels); the parallel
//! [`Scenario::build_workloads`] view exists for recording and
//! differential tooling.

use cmpleak_cpu::{LiveGen, OpSource, Workload};
use cmpleak_mem::BankArena;
use cmpleak_system::CoreSource;
use cmpleak_trace::{record_workloads, MemTrace, TraceFile, TraceRecorder};
use cmpleak_workloads::{ScenarioSpec, WorkloadSpec};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The workload half of an experiment configuration.
#[derive(Debug, Clone)]
pub enum Scenario {
    /// Every core runs `spec` (the paper's homogeneous setup).
    Homogeneous(WorkloadSpec),
    /// Heterogeneous multiprogrammed mix.
    Mix(ScenarioSpec),
    /// Replay the per-core streams of a recorded trace file.
    TraceReplay {
        /// Trace file path (diagnostics only; the image is cached).
        path: PathBuf,
        /// Label from the trace header (cached at construction so
        /// labelling never needs IO).
        label: String,
        /// The preloaded trace image, shared across clones — a sweep
        /// replaying one trace over many cells reads the file once, and
        /// worker threads slice the same cached bytes.
        file: Arc<TraceFile>,
    },
    /// Replay the per-core streams of an in-memory recording. The label
    /// is the *recorded* scenario's label, so a shared-stream cell is
    /// indistinguishable (in reports, sweep cells and golden snapshots)
    /// from the live-generation cell it stands in for — which is the
    /// point: record once, replay across every cell of the group,
    /// bit-identically.
    SharedStream {
        /// The shared recording; clones and cursors alias one buffer.
        trace: Arc<MemTrace>,
    },
}

impl Scenario {
    /// Wrap a trace file: parse the header, pull the image into memory
    /// once, and share it across every clone of this scenario.
    pub fn from_trace(path: impl AsRef<Path>) -> io::Result<Scenario> {
        let mut tf = TraceFile::open(path.as_ref())?;
        tf.preload()?;
        Ok(Scenario::TraceReplay {
            path: path.as_ref().to_path_buf(),
            label: format!("{}@trace", tf.label()),
            file: Arc::new(tf),
        })
    }

    /// Resolve a benchmark or curated-mix name (`FMM`, `mpeg2dec`,
    /// `mix_bursty_idle`, …).
    pub fn by_name(name: &str) -> Option<Scenario> {
        WorkloadSpec::by_name(name)
            .map(Scenario::Homogeneous)
            .or_else(|| ScenarioSpec::by_name(name).map(Scenario::Mix))
    }

    /// Every name [`Scenario::by_name`] resolves, for CLI help.
    pub fn known_names() -> Vec<String> {
        WorkloadSpec::extended_suite()
            .iter()
            .map(|s| s.name.to_string())
            .chain(ScenarioSpec::paper_mixes().into_iter().map(|m| m.name))
            .collect()
    }

    /// The label used for sweep cells, figures and trace headers.
    pub fn label(&self) -> String {
        match self {
            Scenario::Homogeneous(spec) => spec.name.to_string(),
            Scenario::Mix(mix) => mix.name.clone(),
            Scenario::TraceReplay { label, .. } => label.clone(),
            Scenario::SharedStream { trace } => trace.label().to_string(),
        }
    }

    /// Whether this scenario generates its streams live — i.e. whether a
    /// sweep gains anything from recording it once into a shared stream
    /// (replay scenarios already share one buffer across cells).
    pub fn generates_live(&self) -> bool {
        matches!(self, Scenario::Homogeneous(_) | Scenario::Mix(_))
    }

    /// Record this scenario's streams once into an in-memory trace and
    /// wrap it as a [`Scenario::SharedStream`], with stream buffers
    /// checked out of `arena`. Every experiment run from the returned
    /// scenario with the same `(n_cores, seed)` and a budget
    /// `≤ instructions_per_core` is bit-identical to running `self`
    /// live — the contract pinned by `tests/stream_sharing.rs`.
    pub fn record_shared(
        &self,
        n_cores: usize,
        seed: u64,
        instructions_per_core: u64,
        arena: &mut BankArena,
    ) -> Scenario {
        let mut wls = self.build_workloads(n_cores, seed, instructions_per_core);
        let trace = MemTrace::record(self.label(), seed, &mut wls, instructions_per_core, arena);
        Scenario::SharedStream { trace: Arc::new(trace) }
    }

    /// [`record_shared`](Self::record_shared) into caller-provided
    /// stream buffers, one per core (each cleared before use). This is
    /// the sweep pool's in-pool recording path: the recording worker
    /// checks `n_cores` buffers out of the shared pool under one brief
    /// lock, then records here without further synchronization. The
    /// produced scenario is bit-identical to `record_shared`'s.
    ///
    /// # Panics
    /// Panics if `buffers.len() != n_cores`.
    pub fn record_shared_in(
        &self,
        n_cores: usize,
        seed: u64,
        instructions_per_core: u64,
        buffers: Vec<Vec<u8>>,
    ) -> Scenario {
        assert_eq!(buffers.len(), n_cores, "one recording buffer per core");
        let mut wls = self.build_workloads(n_cores, seed, instructions_per_core);
        let mut trace = MemTrace::new(self.label(), seed);
        for (wl, buf) in wls.iter_mut().zip(buffers) {
            trace.record_core_in(wl.as_mut(), instructions_per_core, buf);
        }
        Scenario::SharedStream { trace: Arc::new(trace) }
    }

    /// Canonical byte encoding of everything about this scenario that
    /// determines simulation results — the scenario half of a result
    /// store content address ([`crate::store_key`]). Every field is
    /// length- or width-delimited, so distinct scenarios cannot alias.
    ///
    /// For [`Scenario::TraceReplay`] the encoding covers the exact
    /// cached file image when one is present (always the case for
    /// scenarios built via [`Scenario::from_trace`], which preloads);
    /// otherwise it falls back to the parsed header, which still pins
    /// label, seed and every per-core stream's op/instruction/byte
    /// counts.
    pub fn canonical_bytes(&self, out: &mut Vec<u8>) {
        fn put_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn put_str(out: &mut Vec<u8>, s: &str) {
            put_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        fn put_spec(out: &mut Vec<u8>, spec: &WorkloadSpec) {
            put_str(out, spec.name);
            out.push(match spec.class {
                cmpleak_workloads::BenchClass::Scientific => 0,
                cmpleak_workloads::BenchClass::Multimedia => 1,
            });
            put_u64(out, spec.pool_regions as u64);
            put_u64(out, spec.region_bytes as u64);
            put_u64(out, spec.hot_regions as u64);
            put_u64(out, u64::from(spec.generation_bursts));
            put_u64(out, u64::from(spec.burst_lines));
            put_u64(out, u64::from(spec.accesses_per_line));
            put_u64(out, u64::from(spec.exec_gap.0));
            put_u64(out, u64::from(spec.exec_gap.1));
            put_u64(out, spec.store_lines.to_bits());
            put_u64(out, spec.write_fraction.to_bits());
            put_u64(out, spec.shared_fraction.to_bits());
            put_u64(out, spec.shared_regions as u64);
            put_u64(out, spec.share_epoch_ops);
            out.push(u8::from(spec.revisit));
        }
        match self {
            Scenario::Homogeneous(spec) => {
                out.push(1);
                put_spec(out, spec);
            }
            Scenario::Mix(mix) => {
                out.push(2);
                put_str(out, &mix.name);
                put_u64(out, mix.assignments.len() as u64);
                for spec in &mix.assignments {
                    put_spec(out, spec);
                }
            }
            Scenario::TraceReplay { label, file, .. } => {
                out.push(3);
                put_str(out, label);
                match file.cached_image() {
                    Some(image) => {
                        out.push(1);
                        put_u64(out, image.len() as u64);
                        out.extend_from_slice(image);
                    }
                    None => {
                        out.push(0);
                        let bytes = file.header().encode();
                        put_u64(out, bytes.len() as u64);
                        out.extend_from_slice(&bytes);
                    }
                }
            }
            Scenario::SharedStream { trace } => {
                out.push(4);
                put_str(out, trace.label());
                put_u64(out, trace.seed());
                put_u64(out, trace.n_cores() as u64);
                for core in 0..trace.n_cores() {
                    let info = trace.core_info(core);
                    put_str(out, &info.name);
                    put_u64(out, info.ops);
                    put_u64(out, info.instructions);
                    let stream = trace.stream(core);
                    put_u64(out, stream.len() as u64);
                    out.extend_from_slice(stream);
                }
            }
        }
    }

    /// Build the per-core workload drivers.
    ///
    /// # Panics
    /// For [`Scenario::TraceReplay`] and [`Scenario::SharedStream`],
    /// panics if the recording covers a different core count or fewer
    /// instructions per core than `instructions_per_core` (replaying
    /// past the recorded budget would silently diverge from the live
    /// run), or — for a shared stream — was recorded under a different
    /// seed than requested.
    pub fn build_workloads(
        &self,
        n_cores: usize,
        seed: u64,
        instructions_per_core: u64,
    ) -> Vec<Box<dyn Workload>> {
        match self {
            Scenario::Homogeneous(spec) => {
                ScenarioSpec::new(spec.name, vec![*spec]).build_workloads(n_cores, seed)
            }
            Scenario::Mix(mix) => mix.build_workloads(n_cores, seed),
            Scenario::TraceReplay { path, file: tf, .. } => {
                assert_eq!(
                    tf.n_cores(),
                    n_cores,
                    "trace {} records {} cores, experiment wants {n_cores}",
                    path.display(),
                    tf.n_cores()
                );
                assert!(
                    tf.min_core_instructions() >= instructions_per_core,
                    "trace {} covers {} instructions/core, experiment wants {}",
                    path.display(),
                    tf.min_core_instructions(),
                    instructions_per_core
                );
                (0..n_cores)
                    .map(|c| {
                        Box::new(tf.core_workload(c).unwrap_or_else(|e| {
                            // audit:allow(unwrap-in-lib, config-load failure at scenario build time, before any simulation state exists; the trace path was validated by the header read above)
                            panic!("cannot read core {c} of {}: {e}", path.display())
                        })) as Box<dyn Workload>
                    })
                    .collect()
            }
            Scenario::SharedStream { trace } => {
                Self::check_shared(trace, n_cores, seed, instructions_per_core);
                (0..n_cores).map(|c| Box::new(trace.cursor(c)) as Box<dyn Workload>).collect()
            }
        }
    }

    /// Build the per-core [`OpSource`] delivery channels the simulator
    /// consumes: live generators behind budget-cursor adapters, or
    /// replay cursors over the recorded streams. Op-for-op identical to
    /// [`Scenario::build_workloads`] (pinned by the op-source proptests
    /// in `crates/cpu/tests/`).
    ///
    /// # Panics
    /// As [`Scenario::build_workloads`].
    pub fn build_sources(
        &self,
        n_cores: usize,
        seed: u64,
        instructions_per_core: u64,
    ) -> Vec<Box<dyn OpSource>> {
        match self {
            Scenario::Homogeneous(spec) => {
                ScenarioSpec::new(spec.name, vec![*spec]).build_sources(n_cores, seed)
            }
            Scenario::Mix(mix) => mix.build_sources(n_cores, seed),
            Scenario::TraceReplay { .. } => self
                .build_workloads(n_cores, seed, instructions_per_core)
                .into_iter()
                .map(LiveGen::boxed)
                .collect(),
            Scenario::SharedStream { trace } => {
                Self::check_shared(trace, n_cores, seed, instructions_per_core);
                (0..n_cores).map(|c| Box::new(trace.cursor(c)) as Box<dyn OpSource>).collect()
            }
        }
    }

    /// Build the per-core feeds for the simulator's devirtualized hot
    /// path: the same delivery channels as [`Scenario::build_sources`],
    /// but wrapped in [`CoreSource`] so `CoreModel::tick` dispatches by
    /// enum match instead of vtable — live generators ride in
    /// [`CoreSource::Live`], shared-stream replay cursors in
    /// [`CoreSource::Trace`]. Op-for-op identical to `build_sources`
    /// (both reduce to the same workloads/cursors; the simulated results
    /// are pinned equal by `feeds_match_boxed_sources_bit_for_bit` in
    /// `cmpleak-system` and the golden sweep snapshot).
    ///
    /// # Panics
    /// As [`Scenario::build_workloads`].
    pub fn build_feeds(
        &self,
        n_cores: usize,
        seed: u64,
        instructions_per_core: u64,
    ) -> Vec<CoreSource> {
        match self {
            Scenario::SharedStream { trace } => {
                Self::check_shared(trace, n_cores, seed, instructions_per_core);
                (0..n_cores).map(|c| CoreSource::Trace(trace.cursor(c))).collect()
            }
            _ => self
                .build_workloads(n_cores, seed, instructions_per_core)
                .into_iter()
                .map(|w| CoreSource::Live(LiveGen::new(w)))
                .collect(),
        }
    }

    /// Reject mismatched shared-stream replays up front: a wrong seed or
    /// an uncovered budget would silently diverge from live generation.
    fn check_shared(trace: &MemTrace, n_cores: usize, seed: u64, instructions_per_core: u64) {
        assert_eq!(
            trace.n_cores(),
            n_cores,
            "shared stream '{}' records {} cores, experiment wants {n_cores}",
            trace.label(),
            trace.n_cores()
        );
        assert_eq!(
            trace.seed(),
            seed,
            "shared stream '{}' was recorded under seed {}, experiment wants {seed}",
            trace.label(),
            trace.seed()
        );
        assert!(
            trace.min_core_instructions() >= instructions_per_core,
            "shared stream '{}' covers {} instructions/core, experiment wants {}",
            trace.label(),
            trace.min_core_instructions(),
            instructions_per_core
        );
    }

    /// Record this scenario's live streams into a [`TraceRecorder`]
    /// covering `instructions_per_core` per core. (Recording a
    /// `TraceReplay` scenario re-encodes the replayed streams.)
    pub fn record(&self, n_cores: usize, seed: u64, instructions_per_core: u64) -> TraceRecorder {
        let mut wls = self.build_workloads(n_cores, seed, instructions_per_core);
        record_workloads(self.label(), seed, &mut wls, instructions_per_core)
    }
}

impl From<WorkloadSpec> for Scenario {
    fn from(spec: WorkloadSpec) -> Self {
        Scenario::Homogeneous(spec)
    }
}

impl From<ScenarioSpec> for Scenario {
    fn from(mix: ScenarioSpec) -> Self {
        Scenario::Mix(mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpleak_trace::TraceFile;

    #[test]
    fn labels_and_lookup() {
        assert_eq!(Scenario::Homogeneous(WorkloadSpec::fmm()).label(), "FMM");
        assert_eq!(Scenario::Mix(ScenarioSpec::bursty_idle()).label(), "mix_bursty_idle");
        assert!(Scenario::by_name("water-ns").is_some());
        assert!(Scenario::by_name("mix_producer_share").is_some());
        assert!(Scenario::by_name("nonesuch").is_none());
        assert!(Scenario::known_names().len() >= 9);
    }

    #[test]
    fn homogeneous_build_matches_direct_generators() {
        use cmpleak_workloads::GenerationalWorkload;
        let spec = WorkloadSpec::volrend();
        let mut built = Scenario::Homogeneous(spec).build_workloads(2, 5, 1000);
        let mut direct = GenerationalWorkload::new(spec, 1, 2, 5);
        for _ in 0..2000 {
            assert_eq!(built[1].next_op(), Workload::next_op(&mut direct));
        }
    }

    #[test]
    fn record_then_replay_streams_are_identical() {
        let scenario = Scenario::Mix(ScenarioSpec::stream_revisit());
        let rec = scenario.record(4, 42, 5_000);
        let path = std::env::temp_dir().join("cmpleak_core_scenario_test.cmpt");
        rec.save(&path).unwrap();

        let replay = Scenario::from_trace(&path).unwrap();
        assert_eq!(replay.label(), "mix_stream_revisit@trace");
        let mut replayed = replay.build_workloads(4, 42, 5_000);
        let mut live = scenario.build_workloads(4, 42, 5_000);
        let tf = TraceFile::open(&path).unwrap();
        for core in 0..4 {
            assert_eq!(replayed[core].name(), live[core].name());
            for _ in 0..tf.header().cores[core].ops {
                assert_eq!(replayed[core].next_op(), live[core].next_op(), "core {core}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_stream_replays_bit_identically_to_live_generation() {
        use cmpleak_mem::BankArena;
        let live = Scenario::Mix(ScenarioSpec::producer_sharing());
        let mut arena = BankArena::default();
        let shared = live.record_shared(4, 42, 5_000, &mut arena);
        assert_eq!(shared.label(), live.label(), "shared cells keep the scenario label");
        assert!(!shared.generates_live());
        let mut a = live.build_sources(4, 42, 5_000);
        let mut b = shared.build_sources(4, 42, 5_000);
        for core in 0..4 {
            assert_eq!(a[core].name(), b[core].name());
            let Scenario::SharedStream { trace } = &shared else { unreachable!() };
            for _ in 0..trace.core_info(core).ops {
                assert_eq!(a[core].next_op(), b[core].next_op(), "core {core}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "seed")]
    fn shared_stream_rejects_a_mismatched_seed() {
        use cmpleak_mem::BankArena;
        let live = Scenario::Homogeneous(WorkloadSpec::fmm());
        let shared = live.record_shared(2, 7, 1_000, &mut BankArena::default());
        let _ = shared.build_sources(2, 8, 1_000);
    }

    #[test]
    #[should_panic(expected = "instructions/core")]
    fn oversized_budget_is_rejected_up_front() {
        let scenario = Scenario::Homogeneous(WorkloadSpec::facerec());
        let rec = scenario.record(2, 1, 1_000);
        let path = std::env::temp_dir().join("cmpleak_core_scenario_small.cmpt");
        rec.save(&path).unwrap();
        let replay = Scenario::from_trace(&path).unwrap();
        let _ = replay.build_workloads(2, 1, 100_000);
    }
}
