//! Beyond-the-paper extensions: adaptive decay-interval selection.
//!
//! §II of the paper surveys adaptive alternatives to its fixed-interval
//! decay: Kaxiras et al.'s per-line adaptive interval and Zhou et al.'s
//! Adaptive Mode Control (a global interval steered by miss-rate
//! sampling). The paper deliberately sticks to fixed intervals; as an
//! extension we quantify what adaptivity could buy on top:
//!
//! * [`oracle_pick`] — the *per-benchmark oracle*: for every benchmark
//!   (and size), pick the fixed decay interval that minimises relative
//!   energy-delay product. This upper-bounds any global adaptive scheme
//!   (AMC converges toward this choice at best);
//! * [`relative_edp`] — the selection metric, also used by the
//!   `adaptive_vs_fixed` bench.

use crate::metrics::TechniqueMetrics;
use crate::sweep::SweepResults;

/// Energy-delay product of a technique relative to the baseline.
///
/// With fixed work, delay ratio = 1/(1−IPC loss), energy ratio =
/// 1−energy reduction, so relative EDP = (1−ER)/(1−loss). Values below
/// 1.0 beat the baseline on energy-delay.
pub fn relative_edp(m: &TechniqueMetrics) -> f64 {
    let energy_ratio = 1.0 - m.energy_reduction;
    let delay_ratio = 1.0 / (1.0 - m.ipc_loss).max(1e-9);
    energy_ratio * delay_ratio
}

/// The oracle's choice for one benchmark/size.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleChoice {
    /// Scenario label.
    pub benchmark: String,
    /// Total L2 MB.
    pub size_mb: usize,
    /// Winning technique label.
    pub technique: String,
    /// Its relative EDP.
    pub edp: f64,
    /// Best fixed (single technique for all benchmarks) EDP at this
    /// size, for comparison.
    pub best_fixed_edp: f64,
}

/// For each (benchmark, size) in `results`, pick the candidate technique
/// (matched by `prefix`, e.g. `"decay"` or `"sel_decay"`) with the best
/// relative EDP, and compare it with the best *single* choice across
/// benchmarks.
pub fn oracle_pick(results: &SweepResults, prefix: &str) -> Vec<OracleChoice> {
    let mut sizes: Vec<usize> = results.cells.iter().map(|c| c.size_mb).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let candidates: Vec<String> = {
        let mut v: Vec<String> = results
            .cells
            .iter()
            .map(|c| c.technique.clone())
            .filter(|t| t.starts_with(prefix) && !t.starts_with("sel_") || t.starts_with(prefix))
            .collect();
        v.sort();
        v.dedup();
        v.retain(|t| t.starts_with(prefix));
        v
    };
    let mut out = Vec::new();
    for &size in &sizes {
        // Best single fixed technique at this size: minimise the mean of
        // the per-benchmark EDPs (the quantity the oracle also averages,
        // so oracle_advantage is guaranteed non-negative).
        let best_fixed_edp = candidates
            .iter()
            .filter_map(|t| {
                let edps: Vec<f64> = results
                    .benchmarks()
                    .iter()
                    .filter_map(|b| results.cell(b, t, size))
                    .map(|c| relative_edp(&c.metrics))
                    .collect();
                (!edps.is_empty()).then(|| edps.iter().sum::<f64>() / edps.len() as f64)
            })
            .fold(f64::INFINITY, f64::min);
        for bench in results.benchmarks() {
            let mut best: Option<(String, f64)> = None;
            for t in &candidates {
                if let Some(cell) = results.cell(&bench, t, size) {
                    let edp = relative_edp(&cell.metrics);
                    if best.as_ref().map(|(_, e)| edp < *e).unwrap_or(true) {
                        best = Some((t.clone(), edp));
                    }
                }
            }
            if let Some((technique, edp)) = best {
                out.push(OracleChoice {
                    benchmark: bench,
                    size_mb: size,
                    technique,
                    edp,
                    best_fixed_edp,
                });
            }
        }
    }
    out
}

/// Mean oracle-vs-fixed EDP advantage (how much a perfect per-benchmark
/// adaptive scheme would gain over the best global fixed interval).
pub fn oracle_advantage(choices: &[OracleChoice]) -> f64 {
    if choices.is_empty() {
        return 0.0;
    }
    let n = choices.len() as f64;
    choices.iter().map(|c| c.best_fixed_edp - c.edp).sum::<f64>() / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_sweep, SweepConfig};
    use cmpleak_coherence::Technique;
    use cmpleak_workloads::WorkloadSpec;

    #[test]
    fn edp_identities() {
        let m = TechniqueMetrics {
            occupation: 0.5,
            l2_miss_rate: 0.01,
            induced_miss_rate: 0.0,
            bandwidth_increase: 0.0,
            amat_increase: 0.0,
            energy_reduction: 0.0,
            ipc_loss: 0.0,
        };
        assert!((relative_edp(&m) - 1.0).abs() < 1e-12, "baseline EDP is 1");
        let better = TechniqueMetrics { energy_reduction: 0.3, ..m };
        assert!((relative_edp(&better) - 0.7).abs() < 1e-12);
        let slower = TechniqueMetrics { ipc_loss: 0.5, ..m };
        assert!((relative_edp(&slower) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_picks_per_benchmark_winners() {
        let res = run_sweep(&SweepConfig {
            scenarios: vec![
                crate::scenario::Scenario::Homogeneous(WorkloadSpec::mpeg2enc()),
                crate::scenario::Scenario::Homogeneous(WorkloadSpec::volrend()),
            ],
            sizes_mb: vec![1],
            techniques: vec![
                Technique::Decay { decay_cycles: 16 * 1024 },
                Technique::Decay { decay_cycles: 64 * 1024 },
            ],
            instructions_per_core: 30_000,
            seed: 9,
            n_cores: 2,
            threads: 0,
        });
        let choices = oracle_pick(&res, "decay");
        assert_eq!(choices.len(), 2, "one choice per benchmark");
        for c in &choices {
            assert!(c.technique.starts_with("decay"));
        }
        // In aggregate the oracle can never lose to the best single
        // fixed interval (it can match or beat it per construction).
        assert!(oracle_advantage(&choices) >= -1e-12);
    }
}
