//! Beyond-the-paper extensions: adaptive decay-interval selection.
//!
//! §II of the paper surveys adaptive alternatives to its fixed-interval
//! decay: Kaxiras et al.'s per-line adaptive interval and Zhou et al.'s
//! Adaptive Mode Control (a global interval steered by miss-rate
//! sampling). The paper deliberately sticks to fixed intervals; as an
//! extension we quantify what adaptivity could buy on top:
//!
//! * [`oracle_pick`] — the *per-benchmark oracle*: for every benchmark
//!   (and size), pick the fixed decay interval that minimises relative
//!   energy-delay product. This upper-bounds any global adaptive scheme
//!   (AMC converges toward this choice at best);
//! * [`relative_edp`] — the selection metric, also used by the
//!   `adaptive_vs_fixed` bench.

use crate::metrics::TechniqueMetrics;
use crate::sweep::SweepResults;

/// Energy-delay product of a technique relative to the baseline.
///
/// With fixed work, delay ratio = 1/(1−IPC loss), energy ratio =
/// 1−energy reduction, so relative EDP = (1−ER)/(1−loss). Values below
/// 1.0 beat the baseline on energy-delay.
pub fn relative_edp(m: &TechniqueMetrics) -> f64 {
    let energy_ratio = 1.0 - m.energy_reduction;
    let delay_ratio = 1.0 / (1.0 - m.ipc_loss).max(1e-9);
    energy_ratio * delay_ratio
}

/// The oracle's choice for one benchmark/size.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleChoice {
    /// Scenario label.
    pub benchmark: String,
    /// Total L2 MB.
    pub size_mb: usize,
    /// Winning technique label.
    pub technique: String,
    /// Its relative EDP.
    pub edp: f64,
    /// Best fixed (single technique for all benchmarks) EDP at this
    /// size, for comparison. Only candidates with a cell at *every*
    /// benchmark of this size compete here — a technique that cannot run
    /// everywhere is not a valid fixed choice — so on a ragged grid with
    /// no complete candidate this is `f64::INFINITY`.
    pub best_fixed_edp: f64,
}

/// For each (benchmark, size) in `results`, pick the candidate technique
/// (matched by `prefix`, e.g. `"decay"` or `"sel_decay"`) with the best
/// relative EDP, and compare it with the best *single* choice across
/// benchmarks.
pub fn oracle_pick(results: &SweepResults, prefix: &str) -> Vec<OracleChoice> {
    let mut sizes: Vec<usize> = results.cells.iter().map(|c| c.size_mb).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let candidates: Vec<String> = {
        let mut v: Vec<String> = results
            .cells
            .iter()
            .map(|c| c.technique.clone())
            // A candidate must match the prefix, and — unless the prefix
            // itself names a `sel_` family — `sel_`-prefixed labels are
            // excluded, so `"decay"` can never admit `sel_decay*` even
            // if a label scheme makes the families share a prefix. (The
            // previous `a && b || a` reduced to the bare prefix test by
            // `&&`/`||` precedence, leaving the exclusion dead.)
            .filter(|t| {
                t.starts_with(prefix) && (prefix.starts_with("sel_") || !t.starts_with("sel_"))
            })
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let mut out = Vec::new();
    for &size in &sizes {
        // Best single fixed technique at this size: minimise the mean of
        // the per-benchmark EDPs over the benchmarks that have any
        // candidate cell at this size, considering only *complete*
        // candidates (those with a cell at every such benchmark). On a
        // ragged grid an incomplete candidate's mean would be taken over
        // a different — possibly friendlier — benchmark subset than the
        // oracle's, which could make oracle_advantage negative; a fixed
        // scheme that cannot run everywhere is not a valid fixed choice.
        // If no candidate is complete, best_fixed_edp is +∞ (documented
        // on [`OracleChoice`]).
        let benches_at_size: Vec<String> = results
            .benchmarks()
            .into_iter()
            .filter(|b| candidates.iter().any(|t| results.cell(b, t, size).is_some()))
            .collect();
        let best_fixed_edp = candidates
            .iter()
            .filter_map(|t| {
                let cells: Option<Vec<_>> =
                    benches_at_size.iter().map(|b| results.cell(b, t, size)).collect();
                let edps: Vec<f64> = cells?.iter().map(|c| relative_edp(&c.metrics)).collect();
                (!edps.is_empty()).then(|| edps.iter().sum::<f64>() / edps.len() as f64)
            })
            .fold(f64::INFINITY, f64::min);
        for bench in results.benchmarks() {
            let mut best: Option<(String, f64)> = None;
            for t in &candidates {
                if let Some(cell) = results.cell(&bench, t, size) {
                    let edp = relative_edp(&cell.metrics);
                    if best.as_ref().map(|(_, e)| edp < *e).unwrap_or(true) {
                        best = Some((t.clone(), edp));
                    }
                }
            }
            if let Some((technique, edp)) = best {
                out.push(OracleChoice {
                    benchmark: bench,
                    size_mb: size,
                    technique,
                    edp,
                    best_fixed_edp,
                });
            }
        }
    }
    out
}

/// Mean oracle-vs-fixed EDP advantage (how much a perfect per-benchmark
/// adaptive scheme would gain over the best global fixed interval).
///
/// Guaranteed non-negative: within each size, the fixed mean is taken
/// over exactly the benchmarks the oracle also chose over, and only
/// complete candidates compete for it, so the oracle (which may pick the
/// fixed winner per benchmark) can match it at worst.
pub fn oracle_advantage(choices: &[OracleChoice]) -> f64 {
    if choices.is_empty() {
        return 0.0;
    }
    let n = choices.len() as f64;
    choices.iter().map(|c| c.best_fixed_edp - c.edp).sum::<f64>() / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_sweep, SweepCell, SweepConfig, SweepResults};
    use cmpleak_coherence::Technique;
    use cmpleak_workloads::WorkloadSpec;

    /// A handcrafted cell whose relative EDP is `(1 - er) / (1 - loss)`.
    fn cell(benchmark: &str, technique: &str, size_mb: usize, er: f64, loss: f64) -> SweepCell {
        SweepCell {
            benchmark: benchmark.into(),
            technique: technique.into(),
            size_mb,
            metrics: TechniqueMetrics {
                occupation: 0.5,
                l2_miss_rate: 0.01,
                induced_miss_rate: 0.0,
                bandwidth_increase: 0.0,
                amat_increase: 0.0,
                energy_reduction: er,
                ipc_loss: loss,
            },
            cycles: 1,
            mem_bytes: 0,
            energy_pj: 1.0,
            avg_l2_temp_c: 45.0,
        }
    }

    #[test]
    fn edp_identities() {
        let m = TechniqueMetrics {
            occupation: 0.5,
            l2_miss_rate: 0.01,
            induced_miss_rate: 0.0,
            bandwidth_increase: 0.0,
            amat_increase: 0.0,
            energy_reduction: 0.0,
            ipc_loss: 0.0,
        };
        assert!((relative_edp(&m) - 1.0).abs() < 1e-12, "baseline EDP is 1");
        let better = TechniqueMetrics { energy_reduction: 0.3, ..m };
        assert!((relative_edp(&better) - 0.7).abs() < 1e-12);
        let slower = TechniqueMetrics { ipc_loss: 0.5, ..m };
        assert!((relative_edp(&slower) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_picks_per_benchmark_winners() {
        let res = run_sweep(&SweepConfig {
            scenarios: vec![
                crate::scenario::Scenario::Homogeneous(WorkloadSpec::mpeg2enc()),
                crate::scenario::Scenario::Homogeneous(WorkloadSpec::volrend()),
            ],
            sizes_mb: vec![1],
            techniques: vec![
                Technique::Decay { decay_cycles: 16 * 1024 },
                Technique::Decay { decay_cycles: 64 * 1024 },
            ],
            instructions_per_core: 30_000,
            seed: 9,
            n_cores: 2,
            threads: 0,
            store: None,
        });
        let choices = oracle_pick(&res, "decay");
        assert_eq!(choices.len(), 2, "one choice per benchmark");
        for c in &choices {
            assert!(c.technique.starts_with("decay"));
        }
        // In aggregate the oracle can never lose to the best single
        // fixed interval (it can match or beat it per construction).
        assert!(oracle_advantage(&choices) >= -1e-12);
    }

    #[test]
    fn candidate_filter_keeps_families_apart() {
        // sel_decay64K has by far the best EDP (0.1); if the `sel_`
        // exclusion regressed to the bare prefix test and a label scheme
        // let the families overlap, it would win every benchmark.
        let res = SweepResults {
            cells: vec![
                cell("A", "decay16K", 1, 0.2, 0.01),
                cell("A", "decay64K", 1, 0.3, 0.01),
                cell("A", "sel_decay64K", 1, 0.9, 0.0),
                cell("B", "decay16K", 1, 0.25, 0.02),
                cell("B", "decay64K", 1, 0.1, 0.02),
                cell("B", "sel_decay64K", 1, 0.9, 0.0),
            ],
        };
        let decay = oracle_pick(&res, "decay");
        assert_eq!(decay.len(), 2);
        for c in &decay {
            assert!(
                c.technique.starts_with("decay") && !c.technique.starts_with("sel_"),
                "prefix \"decay\" must never admit {}",
                c.technique
            );
        }
        assert_eq!(decay[0].technique, "decay64K", "A's best plain-decay candidate");
        assert_eq!(decay[1].technique, "decay16K", "B's best plain-decay candidate");
        // The sel_ family is still selectable under its own prefix.
        let sel = oracle_pick(&res, "sel_decay");
        assert_eq!(sel.len(), 2);
        for c in &sel {
            assert_eq!(c.technique, "sel_decay64K");
            assert!((c.edp - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn ragged_grid_keeps_oracle_advantage_non_negative() {
        // decay64K only ran on benchmark A, where it is stellar
        // (EDP 0.2). Averaging each candidate over its own benchmark set
        // used to hand it best_fixed_edp = 0.2, making the aggregate
        // advantage negative: B's oracle pick (decay16K, 0.9) then
        // "lost" 0.7 against a fixed choice that cannot run on B at all.
        let res = SweepResults {
            cells: vec![
                cell("A", "decay16K", 1, 0.1, 0.0),
                cell("A", "decay64K", 1, 0.8, 0.0),
                cell("B", "decay16K", 1, 0.1, 0.0),
            ],
        };
        let choices = oracle_pick(&res, "decay");
        assert_eq!(choices.len(), 2);
        assert_eq!(choices[0].technique, "decay64K", "A still picks its local winner");
        assert_eq!(choices[1].technique, "decay16K");
        for c in &choices {
            assert!(
                (c.best_fixed_edp - 0.9).abs() < 1e-12,
                "only the complete candidate (decay16K, mean EDP 0.9) competes as a fixed \
                 choice; got {}",
                c.best_fixed_edp
            );
        }
        assert!(oracle_advantage(&choices) >= -1e-12);
    }

    #[test]
    fn grid_with_no_complete_candidate_has_infinite_fixed_edp() {
        // No single technique covers both benchmarks, so no fixed scheme
        // exists: the documented sentinel is +∞ (and the advantage is
        // trivially non-negative).
        let res = SweepResults {
            cells: vec![cell("A", "decay16K", 1, 0.1, 0.0), cell("B", "decay64K", 1, 0.2, 0.0)],
        };
        let choices = oracle_pick(&res, "decay");
        assert_eq!(choices.len(), 2);
        for c in &choices {
            assert!(c.best_fixed_edp.is_infinite());
        }
        assert!(oracle_advantage(&choices) >= 0.0);
    }
}
