//! `cmpleak-core` — the paper's contribution as a library.
//!
//! Reproduction of *Monchiero, Canal, González: "Using Coherence
//! Information and Decay Techniques to Optimize L2 Cache Leakage in
//! CMPs"* (ICPP 2009) on top of the workspace's substrates
//! (`cmpleak-system` simulator, `cmpleak-power` energy/thermal models,
//! `cmpleak-workloads` synthetic benchmarks).
//!
//! * [`experiment`] — one simulation + power evaluation
//!   ([`run_experiment`]);
//! * [`metrics`] — the paper's derived quantities (occupation rate, L2
//!   miss rate, memory-bandwidth/AMAT increase, energy reduction, IPC
//!   loss), always relative to the always-on baseline;
//! * [`scenario`] — what runs on the cores: homogeneous benchmarks,
//!   heterogeneous multiprogrammed mixes, or recorded trace replays
//!   (`cmpleak-trace`);
//! * [`sweep`] — the full evaluation grid (scenarios × cache sizes ×
//!   techniques), farmed over worker threads, deterministic regardless
//!   of thread count;
//! * [`figures`] — builders that regenerate every figure of the paper's
//!   §VI from sweep results, as printable tables;
//! * [`adaptive`] — beyond-the-paper extensions: Kaxiras-style adaptive
//!   per-line decay and AMC-style global adaptive decay, for the
//!   ablation benches.
//!
//! The seven technique configurations of the paper are
//! [`Technique::paper_set`]; the six benchmarks are
//! [`WorkloadSpec::paper_suite`].

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod experiment;
pub mod figures;
pub mod metrics;
pub mod scenario;
pub mod sweep;

pub use adaptive::{oracle_advantage, oracle_pick, relative_edp, OracleChoice};
pub use cmpleak_coherence::Technique;
pub use cmpleak_workloads::{BenchClass, ScenarioSpec, WorkloadSpec};
pub use experiment::{
    result_from_stored, run_experiment, run_experiment_lanes, run_experiment_with_scratch,
    ExperimentConfig, ExperimentResult, ExperimentScratch,
};
pub use figures::{Figure, FigureSet};
pub use metrics::TechniqueMetrics;
pub use scenario::Scenario;
pub use sweep::{
    run_sweep, run_sweep_reference, run_sweep_sequential, run_sweep_uncached, run_sweep_unshared,
    run_sweep_with_scratch, run_sweep_with_telemetry, SweepCell, SweepConfig, SweepResults,
    SweepTelemetry,
};
