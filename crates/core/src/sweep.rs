//! The full evaluation grid, run in parallel.
//!
//! A sweep executes every (scenario × cache size × technique) cell plus
//! the per-(scenario, size) baselines. Each simulation is
//! single-threaded and deterministic; the sweep farms them over a worker
//! pool (scoped threads + an atomic job cursor — the share-nothing
//! pattern from the workspace's hpc-parallel guides) and reassembles
//! results by index, so the output is identical for any thread count
//! (pinned by the golden regression test in `tests/golden_sweep.rs`).
//!
//! Three sweep-level optimizations are on by default in [`run_sweep`],
//! all bit-identity-preserving: the baseline of each (scenario, size)
//! group is *derived* from its timing-identical Protocol twin instead of
//! simulated; each (scenario, seed, budget) group's op stream is
//! *recorded once* into a shared in-memory trace that every cell of the
//! group replays instead of regenerating live (the grid runs 1 + sizes
//! × techniques cells per scenario off one recording); and within each
//! (scenario, size) group the technique cells run as **lockstep lanes**
//! ([`run_experiment_lanes`]) — the stream is decoded once into a
//! shared op window and every technique steps through it with plain
//! slice reads. See `tests/sweep_memoization.rs`,
//! `tests/stream_sharing.rs` and `tests/lane_differential.rs` for the
//! differentials that pin all three.

use crate::experiment::{
    derive_baseline_cell, run_experiment_lanes, run_experiment_with_scratch, ExperimentConfig,
    ExperimentResult, ExperimentScratch,
};
use crate::metrics::TechniqueMetrics;
use crate::scenario::Scenario;
use cmpleak_coherence::Technique;
use cmpleak_power::PowerParams;
use cmpleak_workloads::{ScenarioSpec, WorkloadSpec};
use serde::Serialize;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Scenarios to run (paper: the six homogeneous benchmarks; mixes
    /// and trace replays slot in the same axis).
    pub scenarios: Vec<Scenario>,
    /// Total L2 sizes in MB (paper: 1, 2, 4, 8).
    pub sizes_mb: Vec<usize>,
    /// Techniques (paper: protocol + decay/sel_decay at 512K/128K/64K).
    /// The baseline is always run implicitly.
    pub techniques: Vec<Technique>,
    /// Instructions per core per run.
    pub instructions_per_core: u64,
    /// Workload seed.
    pub seed: u64,
    /// Number of cores simulated.
    pub n_cores: usize,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
}

impl SweepConfig {
    /// The paper's full grid at a given scale.
    pub fn paper(instructions_per_core: u64) -> Self {
        Self {
            scenarios: WorkloadSpec::paper_suite().into_iter().map(Scenario::Homogeneous).collect(),
            sizes_mb: vec![1, 2, 4, 8],
            techniques: Technique::paper_set(),
            instructions_per_core,
            seed: 42,
            n_cores: 4,
            threads: 0,
        }
    }

    /// A reduced grid for quick runs and benches.
    pub fn smoke(instructions_per_core: u64) -> Self {
        let mut cfg = Self::paper(instructions_per_core);
        cfg.sizes_mb = vec![1];
        cfg.scenarios.truncate(2);
        cfg
    }

    /// The heterogeneous-mix grid: the three curated multiprogrammed
    /// scenarios over the paper's technique set at one size.
    pub fn mixes(instructions_per_core: u64) -> Self {
        let mut cfg = Self::paper(instructions_per_core);
        cfg.scenarios = ScenarioSpec::paper_mixes().into_iter().map(Scenario::Mix).collect();
        cfg.sizes_mb = vec![4];
        cfg
    }
}

/// One evaluated cell of the grid.
#[derive(Debug, Clone, Serialize)]
pub struct SweepCell {
    /// Scenario label (`baseline` rows are included).
    pub benchmark: String,
    /// Technique paper label.
    pub technique: String,
    /// Total L2 MB.
    pub size_mb: usize,
    /// Metrics relative to this cell's baseline.
    pub metrics: TechniqueMetrics,
    /// Raw cycle count (IPC bookkeeping / debugging).
    pub cycles: u64,
    /// Raw memory traffic in bytes.
    pub mem_bytes: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Average L2 temperature, °C.
    pub avg_l2_temp_c: f64,
}

/// All cells of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepResults {
    /// Evaluated cells, ordered (scenario, size, technique) with the
    /// baseline first within each (scenario, size) group.
    pub cells: Vec<SweepCell>,
}

impl SweepResults {
    /// Find one cell.
    pub fn cell(&self, benchmark: &str, technique: &str, size_mb: usize) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.benchmark == benchmark && c.technique == technique && c.size_mb == size_mb)
    }

    /// Mean metrics of `technique` at `size_mb` across all scenarios
    /// (the aggregation of Figures 3–5).
    pub fn mean_over_benchmarks(
        &self,
        technique: &str,
        size_mb: usize,
    ) -> Option<TechniqueMetrics> {
        let samples: Vec<TechniqueMetrics> = self
            .cells
            .iter()
            .filter(|c| c.technique == technique && c.size_mb == size_mb)
            .map(|c| c.metrics)
            .collect();
        (!samples.is_empty()).then(|| TechniqueMetrics::mean(&samples))
    }

    /// Distinct scenario labels present, in first-seen order.
    pub fn benchmarks(&self) -> Vec<String> {
        let mut v: Vec<String> = Vec::new();
        for c in &self.cells {
            if !v.contains(&c.benchmark) {
                v.push(c.benchmark.clone());
            }
        }
        v
    }
}

fn summarize(result: &ExperimentResult, metrics: TechniqueMetrics) -> SweepCell {
    SweepCell {
        benchmark: result.benchmark.clone(),
        technique: result.technique.clone(),
        size_mb: result.total_l2_mb,
        metrics,
        cycles: result.stats.cycles,
        mem_bytes: result.stats.mem_bytes,
        energy_pj: result.power.energy.total_pj(),
        avg_l2_temp_c: result.power.avg_l2_temp_c,
    }
}

/// Run the sweep with both sweep-level optimizations on: baseline
/// memoization against the timing-identical technique twin, and shared
/// op streams.
///
/// **Memoization** — within every (scenario, size) group, the baseline
/// and a [`Technique::timing_identical_to_baseline`] technique
/// (Protocol) produce cycle-for-cycle identical simulations that differ
/// only in power bookkeeping. When the technique list contains such a
/// twin, the baseline cell is **derived** from the twin's result
/// ([`derive_baseline_cell`] re-runs only the power accounting) instead
/// of being simulated — one full simulation saved per group.
///
/// **Shared streams** — every cell of a (scenario, seed, instruction
/// budget) group consumes the *same* op stream: the live generators
/// recompute it per cell, although trace replay is bit-identical to
/// generation (PR 2's contract). The planner therefore records each
/// live-generating scenario once into an in-memory trace
/// ([`Scenario::record_shared`]) and hands every cell of the group a
/// cheap replay cursor over the shared buffer, amortizing the generator
/// work to one recording per group.
///
/// **Lanes** — within each (scenario, size) group, the simulated cells
/// all consume the same op sequence; the lane engine
/// ([`run_experiment_lanes`]) decodes it once into a shared op window
/// and steps every technique through it side by side, so per-cell op
/// delivery collapses to bounds-checked slice reads.
///
/// The output is byte-identical to [`run_sweep_reference`] (pinned
/// cell-for-cell by `tests/sweep_memoization.rs`,
/// `tests/stream_sharing.rs` and `tests/lane_differential.rs`, and by
/// the golden snapshot, which passes unchanged with all three
/// optimizations on).
pub fn run_sweep(cfg: &SweepConfig) -> SweepResults {
    run_sweep_with_scratch(cfg, &mut ExperimentScratch::default())
}

/// [`run_sweep`] reusing `scratch`'s pools across calls — in particular
/// the shared-stream buffer arena, so repeated sweeps (benchmark reps,
/// parameter studies) re-record their streams into the same
/// allocations. The result is identical.
pub fn run_sweep_with_scratch(cfg: &SweepConfig, scratch: &mut ExperimentScratch) -> SweepResults {
    run_sweep_inner(cfg, true, true, true, scratch).0
}

/// [`run_sweep`] with every optimization disabled: every cell, baseline
/// included, is fully simulated from live generators, one at a time.
/// The differential reference for the optimized paths.
pub fn run_sweep_reference(cfg: &SweepConfig) -> SweepResults {
    run_sweep_inner(cfg, false, false, false, &mut ExperimentScratch::default()).0
}

/// [`run_sweep`] with stream sharing and lanes disabled (baseline
/// memoization stays on): every simulated cell regenerates its streams
/// live. The comparison arm the `sweep` bench uses to isolate what
/// sharing buys.
pub fn run_sweep_unshared(cfg: &SweepConfig) -> SweepResults {
    run_sweep_inner(cfg, true, false, false, &mut ExperimentScratch::default()).0
}

/// [`run_sweep`] with the lane engine disabled (memoization and stream
/// sharing stay on): cells run one at a time off the shared recordings
/// — the planner exactly as it stood before lanes. The escape hatch if
/// a lane-engine defect is suspected, and the comparison arm of the
/// `lanes` bench and `tests/lane_differential.rs`.
pub fn run_sweep_sequential(cfg: &SweepConfig) -> SweepResults {
    run_sweep_inner(cfg, true, true, false, &mut ExperimentScratch::default()).0
}

/// Returns the results plus the number of derived (unsimulated) cells
/// and the number of recorded shared-stream groups.
fn run_sweep_inner(
    cfg: &SweepConfig,
    memoize: bool,
    share_streams: bool,
    lanes: bool,
    scratch: &mut ExperimentScratch,
) -> (SweepResults, usize, usize) {
    // The technique whose run can stand in for the baseline simulation,
    // if any: the first timing-identical one in the configured list.
    let donor_offset = cfg
        .techniques
        .iter()
        .position(|t| t.timing_identical_to_baseline())
        .filter(|_| memoize)
        .map(|i| i + 1); // +1: the baseline occupies slot 0 of each group

    // Recording pass: each (scenario, seed, budget) group — one per
    // live-generating scenario entry, since seed and budget are
    // sweep-wide — is recorded once into a shared in-memory trace;
    // every cell of the group replays a cursor over it. Replay-backed
    // scenarios already share one buffer and pass through unchanged.
    // Recording pays off only when a group simulates ≥ 2 cells (the
    // recording costs one generator pass); a degenerate single-cell
    // group stays on the live path.
    let simulated_per_group = cfg.sizes_mb.len() * (1 + cfg.techniques.len())
        - if donor_offset.is_some() { cfg.sizes_mb.len() } else { 0 };
    let share_streams = share_streams && simulated_per_group > 1;
    let mut recorded = 0usize;
    let scenarios: Vec<Scenario> = cfg
        .scenarios
        .iter()
        .map(|s| {
            if share_streams && s.generates_live() {
                recorded += 1;
                s.record_shared(
                    cfg.n_cores,
                    cfg.seed,
                    cfg.instructions_per_core,
                    scratch.stream_arena(),
                )
            } else {
                s.clone()
            }
        })
        .collect();

    // Job list: for each (scenario, size): baseline + each technique.
    // `simulate` is false for baseline cells that will be derived.
    let mut jobs: Vec<(ExperimentConfig, bool)> = Vec::new();
    for scenario in &scenarios {
        for &size in &cfg.sizes_mb {
            let mut techs = vec![Technique::Baseline];
            techs.extend(cfg.techniques.iter().copied());
            for (k, tech) in techs.into_iter().enumerate() {
                let simulate = !(k == 0 && donor_offset.is_some());
                jobs.push((
                    ExperimentConfig {
                        scenario: scenario.clone(),
                        technique: tech,
                        total_l2_mb: size,
                        instructions_per_core: cfg.instructions_per_core,
                        seed: cfg.seed,
                        n_cores: cfg.n_cores,
                        power: PowerParams::default(),
                        kernel: Default::default(),
                        engine: Default::default(),
                    },
                    simulate,
                ));
            }
        }
    }

    // The pool's work unit: one cell when running sequentially, one
    // whole (scenario, size) group when the lane engine is on — a
    // group's lanes share a decoded op window and must live on one
    // worker.
    let group_len = 1 + cfg.techniques.len();
    let work_units = if lanes { jobs.len() / group_len } else { jobs.len() };

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cfg.threads
    }
    .min(work_units.max(1));

    let mut results: Vec<Option<ExperimentResult>> = (0..jobs.len()).map(|_| None).collect();
    {
        // Share-nothing worker pool on std primitives: an atomic cursor
        // hands out work-unit indices, an mpsc channel collects results,
        // and reassembly by index keeps the output identical for any
        // thread count.
        let next_unit = std::sync::atomic::AtomicUsize::new(0);
        let (res_tx, res_rx) = std::sync::mpsc::channel::<(usize, ExperimentResult)>();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let next_unit = &next_unit;
                let jobs = &jobs;
                let res_tx = res_tx.clone();
                s.spawn(move || {
                    // Per-worker scratch: queue/event-ring/per-line-bank
                    // allocations are recycled across this worker's jobs.
                    let mut scratch = ExperimentScratch::default();
                    loop {
                        let u = next_unit.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if u >= work_units {
                            return;
                        }
                        if lanes {
                            // One lane group: the group's simulated
                            // cells (the baseline slot is absent when it
                            // will be derived) stepped through one
                            // shared op window.
                            let base = u * group_len;
                            let idx: Vec<usize> =
                                (base..base + group_len).filter(|&i| jobs[i].1).collect();
                            let cfgs: Vec<ExperimentConfig> =
                                idx.iter().map(|&i| jobs[i].0.clone()).collect();
                            let rs = run_experiment_lanes(&cfgs, &mut scratch);
                            for (i, r) in idx.into_iter().zip(rs) {
                                if res_tx.send((i, r)).is_err() {
                                    return;
                                }
                            }
                        } else {
                            let (job, simulate) = &jobs[u];
                            if !simulate {
                                continue; // derived after the pool finishes
                            }
                            let r = run_experiment_with_scratch(job, &mut scratch);
                            if res_tx.send((u, r)).is_err() {
                                return;
                            }
                        }
                    }
                });
            }
            drop(res_tx);
            for (i, r) in res_rx.iter() {
                results[i] = Some(r);
            }
        });
    }

    // Derive the skipped baseline cells from their donors (a pure
    // bookkeeping pass, deterministic for any thread count).
    let mut derived = 0usize;
    if let Some(offset) = donor_offset {
        for base_idx in (0..jobs.len()).step_by(group_len) {
            // audit:allow(unwrap-in-lib, the worker pool joined above; every job slot was filled before the barrier released)
            let donor = results[base_idx + offset].as_ref().expect("donor simulated");
            results[base_idx] = Some(derive_baseline_cell(&jobs[base_idx].0, donor));
            derived += 1;
        }
    }
    let results: Vec<ExperimentResult> =
        // audit:allow(unwrap-in-lib, the worker pool joined above and baseline derivation filled the remaining slots)
        results.into_iter().map(|r| r.expect("all jobs completed")).collect();

    // Retire the shared recordings: with the jobs (and their cursor
    // factories) gone, each trace has one handle left, and its encoded
    // stream buffers go back to the scratch pool for the next sweep.
    drop(jobs);
    for scenario in scenarios {
        if let Scenario::SharedStream { trace } = scenario {
            if let Some(mut t) = std::sync::Arc::into_inner(trace) {
                t.release_into(scratch.stream_arena());
            }
        }
    }

    // Group per (scenario, size): first entry is the baseline.
    let mut cells = Vec::with_capacity(results.len());
    for chunk in results.chunks(group_len) {
        let base = &chunk[0];
        cells.push(summarize(base, TechniqueMetrics::baseline_identity(base)));
        for tech in &chunk[1..] {
            cells.push(summarize(tech, TechniqueMetrics::compare(base, tech)));
        }
    }
    (SweepResults { cells }, derived, recorded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            scenarios: vec![
                Scenario::Homogeneous(WorkloadSpec::mpeg2dec()),
                Scenario::Homogeneous(WorkloadSpec::volrend()),
            ],
            sizes_mb: vec![1],
            techniques: vec![Technique::Protocol, Technique::Decay { decay_cycles: 16 * 1024 }],
            instructions_per_core: 40_000,
            seed: 7,
            n_cores: 2,
            threads: 4,
        }
    }

    #[test]
    fn sweep_produces_all_cells_in_order() {
        let res = run_sweep(&tiny());
        // 2 scenarios x 1 size x (baseline + 2 techniques).
        assert_eq!(res.cells.len(), 6);
        assert_eq!(res.cells[0].technique, "baseline");
        assert_eq!(res.cells[1].technique, "protocol");
        assert_eq!(res.cells[2].technique, "decay16K");
        assert_eq!(res.benchmarks(), vec!["mpeg2dec", "VOLREND"]);
    }

    #[test]
    fn memoized_sweep_equals_reference_and_actually_derives() {
        let cfg = tiny(); // includes Protocol: one derived baseline per group
        let mut scratch = ExperimentScratch::default();
        let (memo, derived, recorded) = run_sweep_inner(&cfg, true, true, true, &mut scratch);
        let (full, none, unrecorded) =
            run_sweep_inner(&cfg, false, false, false, &mut ExperimentScratch::default());
        assert_eq!(derived, 2, "one baseline derived per (scenario, size) group");
        assert_eq!(recorded, 2, "one shared stream recorded per scenario");
        assert_eq!((none, unrecorded), (0, 0));
        for (a, b) in memo.cells.iter().zip(&full.cells) {
            assert_eq!(a.cycles, b.cycles, "{}:{}", a.benchmark, a.technique);
            assert_eq!(a.mem_bytes, b.mem_bytes);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.energy_pj, b.energy_pj);
            assert_eq!(a.avg_l2_temp_c, b.avg_l2_temp_c);
        }
    }

    #[test]
    fn sweep_without_a_timing_twin_simulates_every_cell() {
        let mut cfg = tiny();
        cfg.techniques = vec![Technique::Decay { decay_cycles: 16 * 1024 }];
        let (res, derived, _) =
            run_sweep_inner(&cfg, true, true, true, &mut ExperimentScratch::default());
        assert_eq!(derived, 0, "no timing-identical technique, nothing to derive");
        assert_eq!(res.cells.len(), 4);
    }

    #[test]
    fn shared_streams_release_their_buffers_and_repool_across_sweeps() {
        let cfg = tiny();
        let mut scratch = ExperimentScratch::default();
        run_sweep_with_scratch(&cfg, &mut scratch);
        let first = scratch.stream_arena_stats();
        assert_eq!(first.checkouts, 4, "one stream buffer per core per recorded scenario");
        assert_eq!(first.returns, first.checkouts, "retired recordings repool their buffers");
        run_sweep_with_scratch(&cfg, &mut scratch);
        let second = scratch.stream_arena_stats();
        assert_eq!(
            second.fresh_allocations, first.fresh_allocations,
            "the second sweep records into the pooled buffers"
        );
    }

    #[test]
    fn unshared_sweep_matches_shared_byte_for_byte() {
        // The full differential (SimStats + PowerReport over every
        // technique) lives in tests/stream_sharing.rs; this pins the
        // sweep-level surface cheaply.
        let cfg = tiny();
        let shared = run_sweep(&cfg);
        let live = run_sweep_unshared(&cfg);
        for (a, b) in shared.cells.iter().zip(&live.cells) {
            assert_eq!(a.cycles, b.cycles, "{}:{}", a.benchmark, a.technique);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.energy_pj, b.energy_pj);
        }
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let mut one = tiny();
        one.threads = 1;
        let a = run_sweep(&one);
        let b = run_sweep(&tiny());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.cycles, y.cycles, "{}:{}", x.benchmark, x.technique);
            assert_eq!(x.mem_bytes, y.mem_bytes);
        }
    }

    #[test]
    fn mean_over_benchmarks_aggregates() {
        let res = run_sweep(&tiny());
        let m = res.mean_over_benchmarks("protocol", 1).unwrap();
        assert!(m.occupation > 0.0 && m.occupation <= 1.0);
        assert!(res.mean_over_benchmarks("nonesuch", 1).is_none());
    }

    #[test]
    fn cell_lookup() {
        let res = run_sweep(&tiny());
        assert!(res.cell("VOLREND", "protocol", 1).is_some());
        assert!(res.cell("VOLREND", "protocol", 8).is_none());
    }

    #[test]
    fn heterogeneous_scenarios_sweep_end_to_end() {
        let mut cfg = SweepConfig::mixes(30_000);
        cfg.sizes_mb = vec![1];
        cfg.techniques = vec![Technique::Protocol];
        cfg.threads = 2;
        let res = run_sweep(&cfg);
        assert_eq!(res.cells.len(), 3 * 2, "3 mixes × (baseline + protocol)");
        assert_eq!(
            res.benchmarks(),
            vec!["mix_stream_revisit", "mix_producer_share", "mix_bursty_idle"]
        );
        for mix in res.benchmarks() {
            let cell = res.cell(&mix, "protocol", 1).unwrap();
            assert!(cell.metrics.occupation < 1.0, "{mix}: protocol gates something");
            assert!(cell.cycles > 0);
        }
    }
}
