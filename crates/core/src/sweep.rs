//! The full evaluation grid, run in parallel.
//!
//! A sweep executes every (scenario × cache size × technique) cell plus
//! the per-(scenario, size) baselines. Each simulation is
//! single-threaded and deterministic; the sweep farms them over a worker
//! pool (scoped threads + an atomic job cursor — the share-nothing
//! pattern from the workspace's hpc-parallel guides) and reassembles
//! results by index, so the output is identical for any thread count
//! (pinned by the golden regression test in `tests/golden_sweep.rs`).
//!
//! Three sweep-level optimizations are on by default in [`run_sweep`],
//! all bit-identity-preserving: the baseline of each (scenario, size)
//! group is *derived* from its timing-identical Protocol twin instead of
//! simulated; each (scenario, seed, budget) group's op stream is
//! *recorded once* into a shared in-memory trace that every cell of the
//! group replays instead of regenerating live (the grid runs 1 + sizes
//! × techniques cells per scenario off one recording); and within each
//! (scenario, size) group the technique cells run as **lockstep lanes**
//! ([`run_experiment_lanes`]) — the stream is decoded once into a
//! shared op window and every technique steps through it with plain
//! slice reads. See `tests/sweep_memoization.rs`,
//! `tests/stream_sharing.rs` and `tests/lane_differential.rs` for the
//! differentials that pin all three.

use crate::experiment::{
    derive_baseline_cell, result_from_stored, run_experiment_lanes, run_experiment_with_scratch,
    ExperimentConfig, ExperimentResult, ExperimentScratch,
};
use crate::metrics::TechniqueMetrics;
use crate::scenario::Scenario;
use cmpleak_coherence::Technique;
use cmpleak_mem::BankArena;
use cmpleak_power::PowerParams;
use cmpleak_store::{CellKey, ResultStore};
use cmpleak_trace::MemTrace;
use cmpleak_workloads::{ScenarioSpec, WorkloadSpec};
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Scenarios to run (paper: the six homogeneous benchmarks; mixes
    /// and trace replays slot in the same axis).
    pub scenarios: Vec<Scenario>,
    /// Total L2 sizes in MB (paper: 1, 2, 4, 8).
    pub sizes_mb: Vec<usize>,
    /// Techniques (paper: protocol + decay/sel_decay at 512K/128K/64K).
    /// The baseline is always run implicitly.
    pub techniques: Vec<Technique>,
    /// Instructions per core per run.
    pub instructions_per_core: u64,
    /// Workload seed.
    pub seed: u64,
    /// Number of cores simulated.
    pub n_cores: usize,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Persistent result store: cells whose content address is already
    /// present are loaded instead of simulated, and freshly simulated
    /// cells are published back. `None` (the default of every
    /// constructor) simulates everything. The store may only ever
    /// change latency, never results — pinned by
    /// `tests/store_differential.rs`. Ignored by
    /// [`run_sweep_uncached`] and the differential arms.
    pub store: Option<Arc<ResultStore>>,
}

impl SweepConfig {
    /// The paper's full grid at a given scale.
    pub fn paper(instructions_per_core: u64) -> Self {
        Self {
            scenarios: WorkloadSpec::paper_suite().into_iter().map(Scenario::Homogeneous).collect(),
            sizes_mb: vec![1, 2, 4, 8],
            techniques: Technique::paper_set(),
            instructions_per_core,
            seed: 42,
            n_cores: 4,
            threads: 0,
            store: None,
        }
    }

    /// A reduced grid for quick runs and benches.
    pub fn smoke(instructions_per_core: u64) -> Self {
        let mut cfg = Self::paper(instructions_per_core);
        cfg.sizes_mb = vec![1];
        cfg.scenarios.truncate(2);
        cfg
    }

    /// The heterogeneous-mix grid: the three curated multiprogrammed
    /// scenarios over the paper's technique set at one size.
    pub fn mixes(instructions_per_core: u64) -> Self {
        let mut cfg = Self::paper(instructions_per_core);
        cfg.scenarios = ScenarioSpec::paper_mixes().into_iter().map(Scenario::Mix).collect();
        cfg.sizes_mb = vec![4];
        cfg
    }
}

/// One evaluated cell of the grid.
#[derive(Debug, Clone, Serialize)]
pub struct SweepCell {
    /// Scenario label (`baseline` rows are included).
    pub benchmark: String,
    /// Technique paper label.
    pub technique: String,
    /// Total L2 MB.
    pub size_mb: usize,
    /// Metrics relative to this cell's baseline.
    pub metrics: TechniqueMetrics,
    /// Raw cycle count (IPC bookkeeping / debugging).
    pub cycles: u64,
    /// Raw memory traffic in bytes.
    pub mem_bytes: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Average L2 temperature, °C.
    pub avg_l2_temp_c: f64,
}

/// All cells of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepResults {
    /// Evaluated cells, ordered (scenario, size, technique) with the
    /// baseline first within each (scenario, size) group.
    pub cells: Vec<SweepCell>,
}

impl SweepResults {
    /// Find one cell.
    pub fn cell(&self, benchmark: &str, technique: &str, size_mb: usize) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.benchmark == benchmark && c.technique == technique && c.size_mb == size_mb)
    }

    /// Mean metrics of `technique` at `size_mb` across all scenarios
    /// (the aggregation of Figures 3–5).
    pub fn mean_over_benchmarks(
        &self,
        technique: &str,
        size_mb: usize,
    ) -> Option<TechniqueMetrics> {
        let samples: Vec<TechniqueMetrics> = self
            .cells
            .iter()
            .filter(|c| c.technique == technique && c.size_mb == size_mb)
            .map(|c| c.metrics)
            .collect();
        (!samples.is_empty()).then(|| TechniqueMetrics::mean(&samples))
    }

    /// Distinct scenario labels present, in first-seen order.
    pub fn benchmarks(&self) -> Vec<String> {
        let mut v: Vec<String> = Vec::new();
        for c in &self.cells {
            if !v.contains(&c.benchmark) {
                v.push(c.benchmark.clone());
            }
        }
        v
    }
}

fn summarize(result: &ExperimentResult, metrics: TechniqueMetrics) -> SweepCell {
    SweepCell {
        benchmark: result.benchmark.clone(),
        technique: result.technique.clone(),
        size_mb: result.total_l2_mb,
        metrics,
        cycles: result.stats.cycles,
        mem_bytes: result.stats.mem_bytes,
        energy_pj: result.power.energy.total_pj(),
        avg_l2_temp_c: result.power.avg_l2_temp_c,
    }
}

/// Run the sweep with both sweep-level optimizations on: baseline
/// memoization against the timing-identical technique twin, and shared
/// op streams.
///
/// **Memoization** — within every (scenario, size) group, the baseline
/// and a [`Technique::timing_identical_to_baseline`] technique
/// (Protocol) produce cycle-for-cycle identical simulations that differ
/// only in power bookkeeping. When the technique list contains such a
/// twin, the baseline cell is **derived** from the twin's result
/// ([`derive_baseline_cell`] re-runs only the power accounting) instead
/// of being simulated — one full simulation saved per group.
///
/// **Shared streams** — every cell of a (scenario, seed, instruction
/// budget) group consumes the *same* op stream: the live generators
/// recompute it per cell, although trace replay is bit-identical to
/// generation (PR 2's contract). The planner therefore records each
/// live-generating scenario once into an in-memory trace
/// ([`Scenario::record_shared_in`]) and hands every cell of the group a
/// cheap replay cursor over the shared buffer, amortizing the generator
/// work to one recording per group. The recording happens **inside the
/// worker pool** — the first worker to touch a group records it while
/// other workers proceed to other groups and block only on that group —
/// so grid latency scales with cores even on recording-heavy sweeps.
///
/// **Persistent store** — when [`SweepConfig::store`] is set, each
/// cell's content address ([`ExperimentConfig::store_key`]) is probed
/// first: hits are loaded (bit-identical to fresh simulation, pinned by
/// `tests/store_differential.rs`), misses are simulated as usual and
/// published back. A fully warm grid simulates — and records — nothing.
///
/// **Lanes** — within each (scenario, size) group, the simulated cells
/// all consume the same op sequence; the lane engine
/// ([`run_experiment_lanes`]) decodes it once into a shared op window
/// and steps every technique through it side by side, so per-cell op
/// delivery collapses to bounds-checked slice reads.
///
/// The output is byte-identical to [`run_sweep_reference`] (pinned
/// cell-for-cell by `tests/sweep_memoization.rs`,
/// `tests/stream_sharing.rs` and `tests/lane_differential.rs`, and by
/// the golden snapshot, which passes unchanged with all three
/// optimizations on).
pub fn run_sweep(cfg: &SweepConfig) -> SweepResults {
    run_sweep_with_scratch(cfg, &mut ExperimentScratch::default())
}

/// [`run_sweep`] reusing `scratch`'s pools across calls — in particular
/// the shared-stream buffer arena, so repeated sweeps (benchmark reps,
/// parameter studies) re-record their streams into the same
/// allocations. The result is identical.
pub fn run_sweep_with_scratch(cfg: &SweepConfig, scratch: &mut ExperimentScratch) -> SweepResults {
    run_sweep_inner(cfg, PlannerArms::FULL, scratch).0
}

/// [`run_sweep`] returning the planner's work counters alongside the
/// results: how many cells were derived, how many stream groups were
/// recorded in-pool, and how the persistent store split the grid into
/// hits and misses. The results are identical to [`run_sweep`]'s.
pub fn run_sweep_with_telemetry(
    cfg: &SweepConfig,
    scratch: &mut ExperimentScratch,
) -> (SweepResults, SweepTelemetry) {
    run_sweep_inner(cfg, PlannerArms::FULL, scratch)
}

/// [`run_sweep`] ignoring [`SweepConfig::store`]: every cell is
/// simulated (under the full optimization stack) regardless of what the
/// store holds, and nothing is published. The arm that keeps benches
/// and differentials meaningful when a store is configured.
pub fn run_sweep_uncached(cfg: &SweepConfig) -> SweepResults {
    run_sweep_inner(cfg, PlannerArms::FULL.without_store(), &mut ExperimentScratch::default()).0
}

/// [`run_sweep`] with every optimization disabled: every cell, baseline
/// included, is fully simulated from live generators, one at a time,
/// with no store involvement. The differential reference for the
/// optimized paths.
pub fn run_sweep_reference(cfg: &SweepConfig) -> SweepResults {
    run_sweep_inner(cfg, PlannerArms::REFERENCE, &mut ExperimentScratch::default()).0
}

/// [`run_sweep`] with stream sharing and lanes disabled (baseline
/// memoization stays on): every simulated cell regenerates its streams
/// live. The comparison arm the `sweep` bench uses to isolate what
/// sharing buys.
pub fn run_sweep_unshared(cfg: &SweepConfig) -> SweepResults {
    run_sweep_inner(
        cfg,
        PlannerArms { memoize: true, ..PlannerArms::REFERENCE },
        &mut ExperimentScratch::default(),
    )
    .0
}

/// [`run_sweep`] with the lane engine disabled (memoization and stream
/// sharing stay on): cells run one at a time off the shared recordings
/// — the planner exactly as it stood before lanes. The escape hatch if
/// a lane-engine defect is suspected, and the comparison arm of the
/// `lanes` bench and `tests/lane_differential.rs`.
pub fn run_sweep_sequential(cfg: &SweepConfig) -> SweepResults {
    run_sweep_inner(
        cfg,
        PlannerArms { memoize: true, share_streams: true, ..PlannerArms::REFERENCE },
        &mut ExperimentScratch::default(),
    )
    .0
}

/// How a sweep's work actually broke down — all counters deterministic
/// for a given configuration and store state, except that `recorded`
/// can only shrink when store hits make whole groups skip simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepTelemetry {
    /// Baseline cells derived from a timing-identical donor instead of
    /// simulated.
    pub derived: usize,
    /// Shared-stream groups recorded (by the pool's first toucher).
    pub recorded: usize,
    /// Cells answered from the persistent store.
    pub store_hits: usize,
    /// Cells simulated and published to the store.
    pub store_misses: usize,
}

/// One grid cell's work order: the experiment configuration (carrying
/// the **original** scenario — content addresses and recordings both
/// key off it), whether it is simulated at all (derived baselines are
/// not), and which scenario's stream slot it consumes.
#[derive(Debug)]
struct Job {
    cfg: ExperimentConfig,
    simulate: bool,
    scenario_idx: usize,
}

/// Lifecycle of one scenario's shared op stream inside the pool.
#[derive(Debug)]
enum SlotState {
    /// Not recorded yet — the next toucher becomes the recorder.
    Pending,
    /// A worker is recording; wait on the slot's condvar.
    Recording,
    /// The scenario every cell of this group simulates from (a shared
    /// recording, or the original scenario when recording is off or
    /// unprofitable).
    Ready(Scenario),
    /// The recording worker panicked; waiters must abort, not hang.
    Failed,
}

/// First-toucher-records coordination for one scenario: workers needing
/// the stream either find it [`SlotState::Ready`], record it
/// themselves, or wait for the in-flight recording — so recording load
/// spreads across the pool instead of running as a serial pre-pass,
/// while every thread count still simulates identical streams.
#[derive(Debug)]
struct StreamSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

/// Marks `slot` [`SlotState::Failed`] if the recording worker unwinds,
/// so waiters abort with a diagnostic instead of deadlocking under the
/// scoped-thread join.
#[derive(Debug)]
struct FailGuard<'a> {
    slot: &'a StreamSlot,
    armed: bool,
}

impl Drop for FailGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            *self.slot.state.lock().unwrap_or_else(|e| e.into_inner()) = SlotState::Failed;
            self.slot.ready.notify_all();
        }
    }
}

/// Resolve the scenario a group's cells should simulate from,
/// recording it first if this worker is the group's first toucher. The
/// recording itself runs lock-free: buffers come out of the shared
/// pool under one brief lock, the slot is only held long enough to
/// flip states.
fn resolve_stream(
    slot: &StreamSlot,
    original: &Scenario,
    cfg: &SweepConfig,
    rec_pool: &Mutex<BankArena>,
    recorded: &AtomicUsize,
) -> Scenario {
    let mut st = slot.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        match &*st {
            SlotState::Ready(s) => return s.clone(),
            SlotState::Failed => {
                // audit:allow(unwrap-in-lib, the recorder already panicked on its own thread; waiters must join the abort rather than simulate a stream that does not exist)
                panic!("shared-stream recording of '{}' failed on another worker", original.label())
            }
            SlotState::Recording => {
                st = slot.ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            SlotState::Pending => {
                *st = SlotState::Recording;
                drop(st);
                let mut guard = FailGuard { slot, armed: true };
                let buffers: Vec<Vec<u8>> = {
                    let mut pool = rec_pool.lock().unwrap_or_else(|e| e.into_inner());
                    let hint = MemTrace::stream_capacity_hint(cfg.instructions_per_core);
                    (0..cfg.n_cores).map(|_| pool.take_u8_empty(hint)).collect()
                };
                let rec = original.record_shared_in(
                    cfg.n_cores,
                    cfg.seed,
                    cfg.instructions_per_core,
                    buffers,
                );
                recorded.fetch_add(1, Ordering::Relaxed);
                *slot.state.lock().unwrap_or_else(|e| e.into_inner()) =
                    SlotState::Ready(rec.clone());
                guard.armed = false;
                slot.ready.notify_all();
                return rec;
            }
        }
    }
}

/// Which planner optimizations a sweep arm runs with. Each public
/// `run_sweep*` entry point is one named combination; the differential
/// suites compare them pairwise.
#[derive(Clone, Copy)]
struct PlannerArms {
    memoize: bool,
    share_streams: bool,
    lanes: bool,
    use_store: bool,
}

impl PlannerArms {
    /// Everything on — the production path.
    const FULL: Self = Self { memoize: true, share_streams: true, lanes: true, use_store: true };
    /// Everything off — the differential reference.
    const REFERENCE: Self =
        Self { memoize: false, share_streams: false, lanes: false, use_store: false };

    const fn without_store(mut self) -> Self {
        self.use_store = false;
        self
    }
}

/// Returns the results plus the sweep's work telemetry.
fn run_sweep_inner(
    cfg: &SweepConfig,
    arms: PlannerArms,
    scratch: &mut ExperimentScratch,
) -> (SweepResults, SweepTelemetry) {
    let PlannerArms { memoize, share_streams, lanes, use_store } = arms;
    // The technique whose run can stand in for the baseline simulation,
    // if any: the first timing-identical one in the configured list.
    let donor_offset = cfg
        .techniques
        .iter()
        .position(|t| t.timing_identical_to_baseline())
        .filter(|_| memoize)
        .map(|i| i + 1); // +1: the baseline occupies slot 0 of each group

    // Stream sharing: each (scenario, seed, budget) group — one per
    // live-generating scenario entry, since seed and budget are
    // sweep-wide — is recorded once into a shared in-memory trace;
    // every cell of the group replays a cursor over it. Replay-backed
    // scenarios already share one buffer and pass through unchanged.
    // Recording pays off only when a group simulates ≥ 2 cells (the
    // recording costs one generator pass); a degenerate single-cell
    // group stays on the live path. The recording itself happens
    // *inside* the worker pool — the first worker to need a group's
    // stream records it while others proceed to other groups
    // ([`resolve_stream`]) — so grid latency scales with cores even on
    // recording-heavy sweeps, and a fully-warm store run records
    // nothing at all.
    let simulated_per_group = cfg.sizes_mb.len() * (1 + cfg.techniques.len())
        - if donor_offset.is_some() { cfg.sizes_mb.len() } else { 0 };
    let share_streams = share_streams && simulated_per_group > 1;

    // Job list: for each (scenario, size): baseline + each technique,
    // each carrying the original scenario. `simulate` is false for
    // baseline cells that will be derived.
    let mut jobs: Vec<Job> = Vec::new();
    for (scenario_idx, scenario) in cfg.scenarios.iter().enumerate() {
        for &size in &cfg.sizes_mb {
            let mut techs = vec![Technique::Baseline];
            techs.extend(cfg.techniques.iter().copied());
            for (k, tech) in techs.into_iter().enumerate() {
                let simulate = !(k == 0 && donor_offset.is_some());
                jobs.push(Job {
                    cfg: ExperimentConfig {
                        scenario: scenario.clone(),
                        technique: tech,
                        total_l2_mb: size,
                        instructions_per_core: cfg.instructions_per_core,
                        seed: cfg.seed,
                        n_cores: cfg.n_cores,
                        power: PowerParams::default(),
                        kernel: Default::default(),
                        engine: Default::default(),
                    },
                    simulate,
                    scenario_idx,
                });
            }
        }
    }

    // Content addresses, one per job, computed up front so workers
    // never re-encode a scenario: each scenario's canonical bytes are
    // produced once and every cell of its groups keys off that buffer.
    // Keys are derived from the *original* scenarios, so a warm store
    // hits across processes (a shared recording would encode
    // identically anyway, but the original needs no recording first).
    let store = if use_store { cfg.store.clone() } else { None };
    let keys: Vec<Option<CellKey>> = if store.is_some() {
        let scenario_bytes: Vec<Vec<u8>> = cfg
            .scenarios
            .iter()
            .map(|s| {
                let mut b = Vec::new();
                s.canonical_bytes(&mut b);
                b
            })
            .collect();
        jobs.iter()
            .map(|j| Some(j.cfg.store_key_with_scenario_bytes(&scenario_bytes[j.scenario_idx])))
            .collect()
    } else {
        jobs.iter().map(|_| None).collect()
    };

    // One stream slot per scenario: replay-backed (or single-cell)
    // groups are Ready immediately with the original scenario; live
    // groups start Pending and are recorded by their first toucher.
    let slots: Vec<StreamSlot> = cfg
        .scenarios
        .iter()
        .map(|s| {
            let state = if share_streams && s.generates_live() {
                SlotState::Pending
            } else {
                SlotState::Ready(s.clone())
            };
            StreamSlot { state: Mutex::new(state), ready: Condvar::new() }
        })
        .collect();

    let recorded = AtomicUsize::new(0);
    let store_hits = AtomicUsize::new(0);
    let store_misses = AtomicUsize::new(0);
    // The shared-stream buffer pool, lent to the pool's recorders for
    // the duration of the sweep and restored to `scratch` after.
    let rec_pool = Mutex::new(std::mem::take(scratch.stream_arena()));

    // The pool's work unit: one cell when running sequentially, one
    // whole (scenario, size) group when the lane engine is on — a
    // group's lanes share a decoded op window and must live on one
    // worker.
    let group_len = 1 + cfg.techniques.len();
    let work_units = if lanes { jobs.len() / group_len } else { jobs.len() };

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cfg.threads
    }
    .min(work_units.max(1));

    let mut results: Vec<Option<ExperimentResult>> = (0..jobs.len()).map(|_| None).collect();
    {
        // Share-nothing worker pool on std primitives: an atomic cursor
        // hands out work-unit indices, an mpsc channel collects results,
        // and reassembly by index keeps the output identical for any
        // thread count.
        let next_unit = AtomicUsize::new(0);
        let (res_tx, res_rx) = std::sync::mpsc::channel::<(usize, ExperimentResult)>();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let next_unit = &next_unit;
                let jobs = &jobs;
                let keys = &keys;
                let slots = &slots;
                let store = &store;
                let rec_pool = &rec_pool;
                let recorded = &recorded;
                let store_hits = &store_hits;
                let store_misses = &store_misses;
                let res_tx = res_tx.clone();
                s.spawn(move || {
                    // Per-worker scratch: queue/event-ring/per-line-bank
                    // allocations are recycled across this worker's jobs.
                    let mut scratch = ExperimentScratch::default();
                    loop {
                        let u = next_unit.fetch_add(1, Ordering::Relaxed);
                        if u >= work_units {
                            return;
                        }
                        if lanes {
                            // One lane group: the group's simulated
                            // cells (the baseline slot is absent when it
                            // will be derived) stepped through one
                            // shared op window. Store hits leave the
                            // group first; only the remainder touches
                            // the stream slot and the simulator.
                            let base = u * group_len;
                            let mut miss_idx: Vec<usize> = Vec::new();
                            for i in (base..base + group_len).filter(|&i| jobs[i].simulate) {
                                let hit = match (store.as_deref(), &keys[i]) {
                                    (Some(st), Some(key)) => st.load(key),
                                    _ => None,
                                };
                                match hit {
                                    Some(cell) => {
                                        store_hits.fetch_add(1, Ordering::Relaxed);
                                        let r = result_from_stored(&jobs[i].cfg, cell);
                                        if res_tx.send((i, r)).is_err() {
                                            return;
                                        }
                                    }
                                    None => miss_idx.push(i),
                                }
                            }
                            if miss_idx.is_empty() {
                                continue;
                            }
                            let scenario = resolve_stream(
                                &slots[jobs[base].scenario_idx],
                                &jobs[base].cfg.scenario,
                                cfg,
                                rec_pool,
                                recorded,
                            );
                            let cfgs: Vec<ExperimentConfig> = miss_idx
                                .iter()
                                .map(|&i| {
                                    let mut c = jobs[i].cfg.clone();
                                    c.scenario = scenario.clone();
                                    c
                                })
                                .collect();
                            let rs = run_experiment_lanes(&cfgs, &mut scratch);
                            for (i, r) in miss_idx.into_iter().zip(rs) {
                                if let (Some(st), Some(key)) = (store.as_deref(), &keys[i]) {
                                    store_misses.fetch_add(1, Ordering::Relaxed);
                                    st.publish(key, &r.stats, &r.power).ok();
                                }
                                if res_tx.send((i, r)).is_err() {
                                    return;
                                }
                            }
                        } else {
                            let job = &jobs[u];
                            if !job.simulate {
                                continue; // derived after the pool finishes
                            }
                            if let (Some(st), Some(key)) = (store.as_deref(), &keys[u]) {
                                if let Some(cell) = st.load(key) {
                                    store_hits.fetch_add(1, Ordering::Relaxed);
                                    let r = result_from_stored(&job.cfg, cell);
                                    if res_tx.send((u, r)).is_err() {
                                        return;
                                    }
                                    continue;
                                }
                            }
                            let scenario = resolve_stream(
                                &slots[job.scenario_idx],
                                &job.cfg.scenario,
                                cfg,
                                rec_pool,
                                recorded,
                            );
                            let mut run_cfg = job.cfg.clone();
                            run_cfg.scenario = scenario;
                            let r = run_experiment_with_scratch(&run_cfg, &mut scratch);
                            if let (Some(st), Some(key)) = (store.as_deref(), &keys[u]) {
                                store_misses.fetch_add(1, Ordering::Relaxed);
                                st.publish(key, &r.stats, &r.power).ok();
                            }
                            if res_tx.send((u, r)).is_err() {
                                return;
                            }
                        }
                    }
                });
            }
            drop(res_tx);
            for (i, r) in res_rx.iter() {
                results[i] = Some(r);
            }
        });
    }

    // Reclaim the stream-buffer pool before retiring recordings into it.
    *scratch.stream_arena() = rec_pool.into_inner().unwrap_or_else(|e| e.into_inner());

    // Derive the skipped baseline cells from their donors (a pure
    // bookkeeping pass, deterministic for any thread count). Derived
    // cells are published too — if-absent, so warm sweeps stay
    // write-free — letting later serve-mode batches answer baseline
    // requests straight from the store.
    let mut derived = 0usize;
    if let Some(offset) = donor_offset {
        for base_idx in (0..jobs.len()).step_by(group_len) {
            // audit:allow(unwrap-in-lib, the worker pool joined above; every job slot was filled before the barrier released)
            let donor = results[base_idx + offset].as_ref().expect("donor simulated");
            let cell = derive_baseline_cell(&jobs[base_idx].cfg, donor);
            if let (Some(st), Some(key)) = (store.as_deref(), &keys[base_idx]) {
                st.publish_if_absent(key, &cell.stats, &cell.power).ok();
            }
            results[base_idx] = Some(cell);
            derived += 1;
        }
    }
    let results: Vec<ExperimentResult> =
        // audit:allow(unwrap-in-lib, the worker pool joined above and baseline derivation filled the remaining slots)
        results.into_iter().map(|r| r.expect("all jobs completed")).collect();

    // Retire the shared recordings: with the jobs (and their cursor
    // factories) gone, each recorded trace has one handle left — in its
    // slot — and its encoded stream buffers go back to the scratch pool
    // for the next sweep. Scenarios that were Ready with a caller-owned
    // SharedStream keep their outside handles and are left alone.
    drop(jobs);
    for slot in slots {
        let state = slot.state.into_inner().unwrap_or_else(|e| e.into_inner());
        if let SlotState::Ready(Scenario::SharedStream { trace }) = state {
            if let Some(mut t) = Arc::into_inner(trace) {
                t.release_into(scratch.stream_arena());
            }
        }
    }

    // Group per (scenario, size): first entry is the baseline.
    let mut cells = Vec::with_capacity(results.len());
    for chunk in results.chunks(group_len) {
        let base = &chunk[0];
        cells.push(summarize(base, TechniqueMetrics::baseline_identity(base)));
        for tech in &chunk[1..] {
            cells.push(summarize(tech, TechniqueMetrics::compare(base, tech)));
        }
    }
    let telemetry = SweepTelemetry {
        derived,
        recorded: recorded.load(Ordering::Relaxed),
        store_hits: store_hits.load(Ordering::Relaxed),
        store_misses: store_misses.load(Ordering::Relaxed),
    };
    (SweepResults { cells }, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            scenarios: vec![
                Scenario::Homogeneous(WorkloadSpec::mpeg2dec()),
                Scenario::Homogeneous(WorkloadSpec::volrend()),
            ],
            sizes_mb: vec![1],
            techniques: vec![Technique::Protocol, Technique::Decay { decay_cycles: 16 * 1024 }],
            instructions_per_core: 40_000,
            seed: 7,
            n_cores: 2,
            threads: 4,
            store: None,
        }
    }

    #[test]
    fn sweep_produces_all_cells_in_order() {
        let res = run_sweep(&tiny());
        // 2 scenarios x 1 size x (baseline + 2 techniques).
        assert_eq!(res.cells.len(), 6);
        assert_eq!(res.cells[0].technique, "baseline");
        assert_eq!(res.cells[1].technique, "protocol");
        assert_eq!(res.cells[2].technique, "decay16K");
        assert_eq!(res.benchmarks(), vec!["mpeg2dec", "VOLREND"]);
    }

    #[test]
    fn memoized_sweep_equals_reference_and_actually_derives() {
        let cfg = tiny(); // includes Protocol: one derived baseline per group
        let mut scratch = ExperimentScratch::default();
        let (memo, t) = run_sweep_inner(&cfg, PlannerArms::FULL, &mut scratch);
        let (full, t_ref) =
            run_sweep_inner(&cfg, PlannerArms::REFERENCE, &mut ExperimentScratch::default());
        assert_eq!(t.derived, 2, "one baseline derived per (scenario, size) group");
        assert_eq!(t.recorded, 2, "one shared stream recorded per scenario");
        assert_eq!((t_ref.derived, t_ref.recorded), (0, 0));
        assert_eq!((t.store_hits, t.store_misses), (0, 0), "no store configured");
        for (a, b) in memo.cells.iter().zip(&full.cells) {
            assert_eq!(a.cycles, b.cycles, "{}:{}", a.benchmark, a.technique);
            assert_eq!(a.mem_bytes, b.mem_bytes);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.energy_pj, b.energy_pj);
            assert_eq!(a.avg_l2_temp_c, b.avg_l2_temp_c);
        }
    }

    #[test]
    fn sweep_without_a_timing_twin_simulates_every_cell() {
        let mut cfg = tiny();
        cfg.techniques = vec![Technique::Decay { decay_cycles: 16 * 1024 }];
        let (res, t) = run_sweep_inner(
            &cfg,
            PlannerArms::FULL.without_store(),
            &mut ExperimentScratch::default(),
        );
        assert_eq!(t.derived, 0, "no timing-identical technique, nothing to derive");
        assert_eq!(res.cells.len(), 4);
    }

    #[test]
    fn shared_streams_release_their_buffers_and_repool_across_sweeps() {
        let cfg = tiny();
        let mut scratch = ExperimentScratch::default();
        run_sweep_with_scratch(&cfg, &mut scratch);
        let first = scratch.stream_arena_stats();
        assert_eq!(first.checkouts, 4, "one stream buffer per core per recorded scenario");
        assert_eq!(first.returns, first.checkouts, "retired recordings repool their buffers");
        run_sweep_with_scratch(&cfg, &mut scratch);
        let second = scratch.stream_arena_stats();
        assert_eq!(
            second.fresh_allocations, first.fresh_allocations,
            "the second sweep records into the pooled buffers"
        );
    }

    #[test]
    fn unshared_sweep_matches_shared_byte_for_byte() {
        // The full differential (SimStats + PowerReport over every
        // technique) lives in tests/stream_sharing.rs; this pins the
        // sweep-level surface cheaply.
        let cfg = tiny();
        let shared = run_sweep(&cfg);
        let live = run_sweep_unshared(&cfg);
        for (a, b) in shared.cells.iter().zip(&live.cells) {
            assert_eq!(a.cycles, b.cycles, "{}:{}", a.benchmark, a.technique);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.energy_pj, b.energy_pj);
        }
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let mut one = tiny();
        one.threads = 1;
        let a = run_sweep(&one);
        let b = run_sweep(&tiny());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.cycles, y.cycles, "{}:{}", x.benchmark, x.technique);
            assert_eq!(x.mem_bytes, y.mem_bytes);
        }
    }

    #[test]
    fn mean_over_benchmarks_aggregates() {
        let res = run_sweep(&tiny());
        let m = res.mean_over_benchmarks("protocol", 1).unwrap();
        assert!(m.occupation > 0.0 && m.occupation <= 1.0);
        assert!(res.mean_over_benchmarks("nonesuch", 1).is_none());
    }

    #[test]
    fn cell_lookup() {
        let res = run_sweep(&tiny());
        assert!(res.cell("VOLREND", "protocol", 1).is_some());
        assert!(res.cell("VOLREND", "protocol", 8).is_none());
    }

    #[test]
    fn heterogeneous_scenarios_sweep_end_to_end() {
        let mut cfg = SweepConfig::mixes(30_000);
        cfg.sizes_mb = vec![1];
        cfg.techniques = vec![Technique::Protocol];
        cfg.threads = 2;
        let res = run_sweep(&cfg);
        assert_eq!(res.cells.len(), 3 * 2, "3 mixes × (baseline + protocol)");
        assert_eq!(
            res.benchmarks(),
            vec!["mix_stream_revisit", "mix_producer_share", "mix_bursty_idle"]
        );
        for mix in res.benchmarks() {
            let cell = res.cell(&mix, "protocol", 1).unwrap();
            assert!(cell.metrics.occupation < 1.0, "{mix}: protocol gates something");
            assert!(cell.cycles > 0);
        }
    }
}
