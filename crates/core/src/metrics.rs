//! The paper's derived metrics, always relative to the always-on
//! baseline run of the same (benchmark, cache size).

use crate::experiment::ExperimentResult;
use serde::Serialize;

/// One technique's metrics against its baseline — the quantities plotted
/// in Figures 3–6 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TechniqueMetrics {
    /// L2 occupation rate (Fig. 3a): average fraction of time a line is
    /// powered. Baseline ≡ 1.0.
    pub occupation: f64,
    /// Aggregate L2 miss rate (Fig. 3b).
    pub l2_miss_rate: f64,
    /// Technique-induced fraction of L2 accesses that miss (shadow-tag
    /// decomposition; not a paper figure, used for analysis/tests).
    pub induced_miss_rate: f64,
    /// External-memory traffic increase vs. baseline (Fig. 4a),
    /// as a fraction (0.5 = +50%).
    pub bandwidth_increase: f64,
    /// AMAT increase vs. baseline (Fig. 4b), as a fraction.
    pub amat_increase: f64,
    /// System energy reduction vs. baseline (Fig. 5a/6a), as a fraction
    /// (negative = the technique *costs* energy).
    pub energy_reduction: f64,
    /// IPC loss vs. baseline (Fig. 5b/6b), as a fraction.
    pub ipc_loss: f64,
}

impl TechniqueMetrics {
    /// Derive all metrics for `tech` against `base`.
    ///
    /// # Panics
    /// Panics if the two results are not the same benchmark and cache
    /// size (comparing across cells is a bug).
    pub fn compare(base: &ExperimentResult, tech: &ExperimentResult) -> Self {
        assert_eq!(base.benchmark, tech.benchmark, "baseline mismatch");
        assert_eq!(base.total_l2_mb, tech.total_l2_mb, "baseline mismatch");
        assert_eq!(
            base.stats.instructions, tech.stats.instructions,
            "fixed-work comparison requires identical instruction counts"
        );
        let base_bytes = base.stats.mem_bytes.max(1) as f64;
        let base_amat = base.stats.amat().max(1e-9);
        let base_ipc = base.stats.ipc().max(1e-12);
        let base_energy = base.power.energy.total_pj().max(1e-9);
        Self {
            occupation: tech.stats.occupation_rate(),
            l2_miss_rate: tech.stats.l2_miss_rate(),
            induced_miss_rate: tech.stats.l2_induced_miss_rate(),
            bandwidth_increase: tech.stats.mem_bytes as f64 / base_bytes - 1.0,
            amat_increase: tech.stats.amat() / base_amat - 1.0,
            energy_reduction: 1.0 - tech.power.energy.total_pj() / base_energy,
            ipc_loss: 1.0 - tech.stats.ipc() / base_ipc,
        }
    }

    /// Baseline-vs-itself metrics (identity row in figures).
    pub fn baseline_identity(base: &ExperimentResult) -> Self {
        Self {
            occupation: 1.0,
            l2_miss_rate: base.stats.l2_miss_rate(),
            induced_miss_rate: 0.0,
            bandwidth_increase: 0.0,
            amat_increase: 0.0,
            energy_reduction: 0.0,
            ipc_loss: 0.0,
        }
    }

    /// Element-wise arithmetic mean (used to average over benchmarks,
    /// as the paper's aggregate figures do).
    pub fn mean(samples: &[TechniqueMetrics]) -> TechniqueMetrics {
        assert!(!samples.is_empty());
        let n = samples.len() as f64;
        let mut acc = TechniqueMetrics {
            occupation: 0.0,
            l2_miss_rate: 0.0,
            induced_miss_rate: 0.0,
            bandwidth_increase: 0.0,
            amat_increase: 0.0,
            energy_reduction: 0.0,
            ipc_loss: 0.0,
        };
        for s in samples {
            acc.occupation += s.occupation;
            acc.l2_miss_rate += s.l2_miss_rate;
            acc.induced_miss_rate += s.induced_miss_rate;
            acc.bandwidth_increase += s.bandwidth_increase;
            acc.amat_increase += s.amat_increase;
            acc.energy_reduction += s.energy_reduction;
            acc.ipc_loss += s.ipc_loss;
        }
        acc.occupation /= n;
        acc.l2_miss_rate /= n;
        acc.induced_miss_rate /= n;
        acc.bandwidth_increase /= n;
        acc.amat_increase /= n;
        acc.energy_reduction /= n;
        acc.ipc_loss /= n;
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment, ExperimentConfig};
    use cmpleak_coherence::Technique;
    use cmpleak_workloads::WorkloadSpec;

    fn pair(technique: Technique) -> (ExperimentResult, ExperimentResult) {
        let mut cfg = ExperimentConfig::paper(WorkloadSpec::facerec(), Technique::Baseline, 1);
        cfg.instructions_per_core = 50_000;
        let base = run_experiment(&cfg);
        cfg.technique = technique;
        let tech = run_experiment(&cfg);
        (base, tech)
    }

    #[test]
    fn protocol_metrics_are_free_lunch_shaped() {
        let (base, tech) = pair(Technique::Protocol);
        let m = TechniqueMetrics::compare(&base, &tech);
        assert!(m.occupation < 1.0);
        assert!(m.ipc_loss.abs() < 0.02, "protocol IPC loss ≈ 0, got {}", m.ipc_loss);
        assert!(
            m.bandwidth_increase.abs() < 0.02,
            "no extra traffic, got {}",
            m.bandwidth_increase
        );
        assert!(m.induced_miss_rate < 1e-4, "protocol induces no misses");
    }

    #[test]
    fn identity_metrics_for_baseline() {
        let (base, _) = pair(Technique::Protocol);
        let m = TechniqueMetrics::baseline_identity(&base);
        assert_eq!(m.occupation, 1.0);
        assert_eq!(m.energy_reduction, 0.0);
        assert_eq!(m.ipc_loss, 0.0);
    }

    #[test]
    fn mean_averages_elementwise() {
        let a = TechniqueMetrics {
            occupation: 0.2,
            l2_miss_rate: 0.01,
            induced_miss_rate: 0.0,
            bandwidth_increase: 0.5,
            amat_increase: 0.1,
            energy_reduction: 0.3,
            ipc_loss: 0.05,
        };
        let b = TechniqueMetrics { occupation: 0.4, energy_reduction: 0.1, ..a };
        let m = TechniqueMetrics::mean(&[a, b]);
        assert!((m.occupation - 0.3).abs() < 1e-12);
        assert!((m.energy_reduction - 0.2).abs() < 1e-12);
        assert!((m.bandwidth_increase - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "baseline mismatch")]
    fn comparing_across_cells_is_rejected() {
        let mut cfg = ExperimentConfig::paper(WorkloadSpec::facerec(), Technique::Baseline, 1);
        cfg.instructions_per_core = 20_000;
        let base = run_experiment(&cfg);
        let mut cfg2 = cfg;
        cfg2.scenario = crate::scenario::Scenario::Homogeneous(WorkloadSpec::fmm());
        let other = run_experiment(&cfg2);
        TechniqueMetrics::compare(&base, &other);
    }
}
