//! Run one (benchmark, technique, cache size) experiment.

use cmpleak_coherence::Technique;
use cmpleak_cpu::Workload;
use cmpleak_power::{evaluate_energy, PowerParams, PowerReport};
use cmpleak_system::{run_simulation, CmpConfig, SimStats};
use cmpleak_workloads::{GenerationalWorkload, WorkloadSpec};

/// Configuration of a single experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Synthetic benchmark to run on every core.
    pub benchmark: WorkloadSpec,
    /// Leakage technique under test.
    pub technique: Technique,
    /// Total L2 capacity (MB) across the private caches (the paper's
    /// 1/2/4/8 axis).
    pub total_l2_mb: usize,
    /// Instructions per core (fixed work across techniques).
    pub instructions_per_core: u64,
    /// Workload seed (whole run is deterministic in this).
    pub seed: u64,
    /// Number of cores (4 in the paper).
    pub n_cores: usize,
    /// Power-model parameters.
    pub power: PowerParams,
}

impl ExperimentConfig {
    /// Paper defaults: 4 cores, 6M instructions per core, seed 42.
    pub fn paper(benchmark: WorkloadSpec, technique: Technique, total_l2_mb: usize) -> Self {
        Self {
            benchmark,
            technique,
            total_l2_mb,
            instructions_per_core: 6_000_000,
            seed: 42,
            n_cores: 4,
            power: PowerParams::default(),
        }
    }

    /// Derive the simulator configuration.
    pub fn cmp_config(&self) -> CmpConfig {
        let mut cfg = CmpConfig::paper_system(self.total_l2_mb, self.technique);
        cfg.n_cores = self.n_cores;
        cfg.l2.size_bytes = self.total_l2_mb * 1024 * 1024 / self.n_cores;
        cfg.instructions_per_core = self.instructions_per_core;
        cfg
    }
}

/// Everything measured for one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Technique name (paper label).
    pub technique: String,
    /// Total L2 in MB.
    pub total_l2_mb: usize,
    /// Raw simulator statistics.
    pub stats: SimStats,
    /// Energy/thermal evaluation.
    pub power: PowerReport,
}

/// Run the experiment: build per-core workloads, simulate, integrate
/// energy.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    let cmp = cfg.cmp_config();
    let workloads: Vec<Box<dyn Workload>> = (0..cfg.n_cores)
        .map(|c| {
            Box::new(GenerationalWorkload::new(cfg.benchmark, c, cfg.n_cores, cfg.seed))
                as Box<dyn Workload>
        })
        .collect();
    let bank_bytes = cmp.l2.size_bytes;
    let stats = run_simulation(cmp, workloads);
    let power = evaluate_energy(cfg.power, cfg.technique, cfg.n_cores, bank_bytes, &stats);
    ExperimentResult {
        benchmark: cfg.benchmark.name,
        technique: cfg.technique.name(),
        total_l2_mb: cfg.total_l2_mb,
        stats,
        power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(technique: Technique) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper(WorkloadSpec::mpeg2dec(), technique, 1);
        cfg.instructions_per_core = 60_000;
        cfg
    }

    #[test]
    fn experiment_runs_and_labels_itself() {
        let r = run_experiment(&quick(Technique::Protocol));
        assert_eq!(r.benchmark, "mpeg2dec");
        assert_eq!(r.technique, "protocol");
        assert_eq!(r.total_l2_mb, 1);
        assert_eq!(r.stats.instructions, 4 * 60_000);
        assert!(r.power.energy.total_pj() > 0.0);
    }

    #[test]
    fn baseline_occupation_is_one_and_protocol_below() {
        let base = run_experiment(&quick(Technique::Baseline));
        let prot = run_experiment(&quick(Technique::Protocol));
        assert!((base.stats.occupation_rate() - 1.0).abs() < 1e-12);
        assert!(prot.stats.occupation_rate() < 1.0);
    }

    #[test]
    fn cmp_config_splits_capacity() {
        let cfg = quick(Technique::Baseline).cmp_config();
        assert_eq!(cfg.l2.size_bytes * 4, 1024 * 1024);
    }

    #[test]
    fn experiments_are_deterministic() {
        let a = run_experiment(&quick(Technique::Decay { decay_cycles: 64 * 1024 }));
        let b = run_experiment(&quick(Technique::Decay { decay_cycles: 64 * 1024 }));
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.l2_on_line_cycles, b.stats.l2_on_line_cycles);
        assert_eq!(a.stats.mem_bytes, b.stats.mem_bytes);
    }
}
