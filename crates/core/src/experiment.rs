//! Run one (scenario, technique, cache size) experiment.

use crate::scenario::Scenario;
use cmpleak_coherence::Technique;
use cmpleak_mem::BankArena;
use cmpleak_power::{evaluate_energy, PowerParams, PowerReport};
use cmpleak_store::{CellKey, KeyHasher, StoredCell};
use cmpleak_system::{
    run_feeds_with_scratch, run_lane_group, CmpConfig, CycleEngine, LaneScratch, SimKernel,
    SimScratch, SimStats,
};
use cmpleak_workloads::WorkloadSpec;

/// Configuration of a single experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// What runs on the cores: a homogeneous benchmark (the paper's
    /// setup), a heterogeneous mix, or a recorded trace.
    pub scenario: Scenario,
    /// Leakage technique under test.
    pub technique: Technique,
    /// Total L2 capacity (MB) across the private caches (the paper's
    /// 1/2/4/8 axis).
    pub total_l2_mb: usize,
    /// Instructions per core (fixed work across techniques).
    pub instructions_per_core: u64,
    /// Workload seed (whole run is deterministic in this).
    pub seed: u64,
    /// Number of cores (4 in the paper).
    pub n_cores: usize,
    /// Power-model parameters.
    pub power: PowerParams,
    /// Cycle kernel (both produce bit-identical results; the default
    /// quiescence-skipping kernel is simply faster).
    pub kernel: SimKernel,
    /// Per-cycle engine (both produce bit-identical results; the default
    /// worklist engine is simply faster).
    pub engine: CycleEngine,
}

impl ExperimentConfig {
    /// Paper defaults: 4 cores, 6M instructions per core, seed 42,
    /// every core running `benchmark`.
    pub fn paper(benchmark: WorkloadSpec, technique: Technique, total_l2_mb: usize) -> Self {
        Self::paper_scenario(Scenario::Homogeneous(benchmark), technique, total_l2_mb)
    }

    /// Paper defaults around an arbitrary [`Scenario`].
    pub fn paper_scenario(scenario: Scenario, technique: Technique, total_l2_mb: usize) -> Self {
        Self {
            scenario,
            technique,
            total_l2_mb,
            instructions_per_core: 6_000_000,
            seed: 42,
            n_cores: 4,
            power: PowerParams::default(),
            kernel: SimKernel::default(),
            engine: CycleEngine::default(),
        }
    }

    /// The content address of this experiment cell in a persistent
    /// result store: a hash over the canonical encoding of everything
    /// that determines the result — the scenario bytes
    /// ([`Scenario::canonical_bytes`]), technique, cache size,
    /// instruction budget, seed, core count, kernel/engine choice and
    /// every power parameter — on top of the store's schema version and
    /// code fingerprint (seeded by [`KeyHasher::new`]).
    pub fn store_key(&self) -> CellKey {
        let mut bytes = Vec::new();
        self.scenario.canonical_bytes(&mut bytes);
        self.store_key_with_scenario_bytes(&bytes)
    }

    /// [`store_key`](Self::store_key) with the scenario's canonical
    /// bytes precomputed — a sweep encodes each scenario once and keys
    /// every cell of its groups from the same buffer.
    pub fn store_key_with_scenario_bytes(&self, scenario_bytes: &[u8]) -> CellKey {
        let mut h = KeyHasher::new();
        h.write_bytes(scenario_bytes);
        h.write_str(&self.technique.name());
        h.write_u64(self.total_l2_mb as u64);
        h.write_u64(self.instructions_per_core);
        h.write_u64(self.seed);
        h.write_u64(self.n_cores as u64);
        h.write_u64(match self.kernel {
            SimKernel::QuiescenceSkip => 0,
            SimKernel::PerCycle => 1,
        });
        h.write_u64(match self.engine {
            CycleEngine::Worklist => 0,
            CycleEngine::FullScan => 1,
        });
        for v in [
            self.power.clock_ghz,
            self.power.core_epi_pj,
            self.power.l1_access_pj,
            self.power.l2_access_1mb_pj,
            self.power.bus_pj_per_byte,
            self.power.bus_pj_per_txn,
            self.power.l2_leak_per_line_pj,
            self.power.other_leak_pj_per_cycle,
            self.power.t0_celsius,
            self.power.leak_temp_beta,
            self.power.gated_vdd_area_overhead,
            self.power.decay_counter_leak_fraction,
            self.power.decay_counter_event_pj,
            self.power.ambient_celsius,
            self.power.block_r_to_ambient,
            self.power.block_r_lateral,
            self.power.block_capacitance,
        ] {
            h.write_f64(v);
        }
        h.finish(format!(
            "{}/{}@{}MB i{} s{} c{}",
            self.scenario.label(),
            self.technique.name(),
            self.total_l2_mb,
            self.instructions_per_core,
            self.seed,
            self.n_cores
        ))
    }

    /// Derive the simulator configuration.
    pub fn cmp_config(&self) -> CmpConfig {
        let mut cfg = CmpConfig::paper_system(self.total_l2_mb, self.technique);
        cfg.n_cores = self.n_cores;
        cfg.l2.size_bytes = self.total_l2_mb * 1024 * 1024 / self.n_cores;
        cfg.instructions_per_core = self.instructions_per_core;
        cfg.kernel = self.kernel;
        cfg.engine = self.engine;
        cfg
    }
}

/// Everything measured for one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Scenario label (benchmark name, mix name, or `…@trace`).
    pub benchmark: String,
    /// Technique name (paper label).
    pub technique: String,
    /// Total L2 in MB.
    pub total_l2_mb: usize,
    /// Raw simulator statistics.
    pub stats: SimStats,
    /// Energy/thermal evaluation.
    pub power: PowerReport,
}

/// Reusable allocation pools for back-to-back experiments (one per
/// sweep worker thread): wraps the simulator's [`SimScratch`] so queue
/// and event-ring capacities — and, via the bank arena, the multi-MB
/// per-line columns of every cache — stay warm across grid cells. The
/// separate `streams` arena pools the encoded op-stream buffers of
/// shared-stream recordings ([`Scenario::record_shared`]), so repeated
/// sweeps on one scratch re-record into the same allocations.
#[derive(Debug, Default)]
pub struct ExperimentScratch {
    sim: SimScratch,
    streams: BankArena,
    lanes: LaneScratch,
}

impl ExperimentScratch {
    /// Allocation counters of the per-line-state arena.
    pub fn arena_stats(&self) -> cmpleak_system::ArenaStats {
        self.sim.arena_stats()
    }

    /// Allocation counters of the shared-stream buffer pool.
    pub fn stream_arena_stats(&self) -> cmpleak_system::ArenaStats {
        self.streams.stats()
    }

    /// The shared-stream buffer pool (recording checks encoded-stream
    /// buffers out of it; releasing a retired recording returns them).
    pub fn stream_arena(&mut self) -> &mut BankArena {
        &mut self.streams
    }

    /// Event-queue occupancy counters from the most recent run.
    pub fn event_queue_stats(&self) -> cmpleak_system::EventQueueStats {
        self.sim.event_queue_stats()
    }
}

/// Run the experiment: build per-core workloads, simulate, integrate
/// energy.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    run_experiment_with_scratch(cfg, &mut ExperimentScratch::default())
}

/// [`run_experiment`] reusing `scratch`'s allocation pools. The result
/// is identical — scratch only recycles emptied buffers.
pub fn run_experiment_with_scratch(
    cfg: &ExperimentConfig,
    scratch: &mut ExperimentScratch,
) -> ExperimentResult {
    let cmp = cfg.cmp_config();
    let feeds = cfg.scenario.build_feeds(cfg.n_cores, cfg.seed, cfg.instructions_per_core);
    let bank_bytes = cmp.l2.size_bytes;
    let stats = run_feeds_with_scratch(cmp, feeds, &mut scratch.sim);
    let power = evaluate_energy(cfg.power, cfg.technique, cfg.n_cores, bank_bytes, &stats);
    ExperimentResult {
        benchmark: cfg.scenario.label(),
        technique: cfg.technique.name(),
        total_l2_mb: cfg.total_l2_mb,
        stats,
        power,
    }
}

/// Run several experiments over **one op stream** as lockstep lanes
/// (the lane engine, [`cmpleak_system::lanes`]): the group's sources
/// are built once, decoded once into a shared op window, and every
/// configuration steps through it with its own simulator state. Results
/// come back in `cfgs` order, each bit-identical to
/// [`run_experiment_with_scratch`] on the same configuration (pinned by
/// `tests/lane_differential.rs`).
///
/// # Panics
/// Panics if `cfgs` is empty or its entries disagree on the scenario,
/// seed, instruction budget or core count — lanes share one stream by
/// construction.
pub fn run_experiment_lanes(
    cfgs: &[ExperimentConfig],
    scratch: &mut ExperimentScratch,
) -> Vec<ExperimentResult> {
    // audit:allow(unwrap-in-lib, caller contract: lane groups are built non-empty by the planner)
    let first = cfgs.first().expect("a lane group needs at least one experiment");
    for c in cfgs {
        assert_eq!(c.scenario.label(), first.scenario.label(), "lanes share one scenario");
        assert_eq!(c.seed, first.seed, "lanes share one seed");
        assert_eq!(
            c.instructions_per_core, first.instructions_per_core,
            "lanes share one instruction budget"
        );
        assert_eq!(c.n_cores, first.n_cores, "lanes share one core count");
    }
    let sources =
        first.scenario.build_sources(first.n_cores, first.seed, first.instructions_per_core);
    let cmps: Vec<CmpConfig> = cfgs.iter().map(ExperimentConfig::cmp_config).collect();
    let all_stats = run_lane_group(&cmps, sources, &mut scratch.lanes);
    cfgs.iter()
        .zip(&cmps)
        .zip(all_stats)
        .map(|((cfg, cmp), stats)| {
            let power =
                evaluate_energy(cfg.power, cfg.technique, cfg.n_cores, cmp.l2.size_bytes, &stats);
            ExperimentResult {
                benchmark: cfg.scenario.label(),
                technique: cfg.technique.name(),
                total_l2_mb: cfg.total_l2_mb,
                stats,
                power,
            }
        })
        .collect()
}

/// Rehydrate a store-loaded cell into the [`ExperimentResult`] a fresh
/// simulation of `cfg` would have produced. The labels come from `cfg`
/// (the stored payload carries only `SimStats` + `PowerReport`); the
/// byte-identity of the payload itself is the store's contract, pinned
/// by `tests/store_differential.rs`.
pub fn result_from_stored(cfg: &ExperimentConfig, cell: StoredCell) -> ExperimentResult {
    ExperimentResult {
        benchmark: cfg.scenario.label(),
        technique: cfg.technique.name(),
        total_l2_mb: cfg.total_l2_mb,
        stats: cell.stats,
        power: cell.power,
    }
}

/// Derive the **baseline** cell of `cfg` (whose `technique` must be
/// `Baseline`) from a completed run of a timing-identical technique —
/// re-running only the power bookkeeping instead of the simulation.
///
/// A [`Technique::timing_identical_to_baseline`] run (Protocol) differs
/// from the baseline run of the same (scenario, size, seed) in exactly
/// three places, all pure power accounting: the powered-line integrals
/// (baseline: every line powered the whole run), the per-interval
/// powered-line trace (baseline: the full capacity), and the turn-off
/// counters (baseline: zero). Every timing-borne statistic —
/// cycles, per-core stalls, hits/misses, induced misses, bus and memory
/// traffic, AMAT inputs — is byte-identical and carried over. The
/// energy/thermal report is then re-evaluated under the baseline
/// technique, exactly as a full run would have.
///
/// The equality of the derived cell with a fully simulated baseline is
/// pinned by `tests/sweep_memoization.rs` (cell-for-cell against the
/// unmemoized sweep) and by the golden snapshot.
pub fn derive_baseline_cell(cfg: &ExperimentConfig, donor: &ExperimentResult) -> ExperimentResult {
    assert!(matches!(cfg.technique, Technique::Baseline), "derivation targets the baseline cell");
    assert_eq!(donor.benchmark, cfg.scenario.label(), "donor must be the same scenario");
    assert_eq!(donor.total_l2_mb, cfg.total_l2_mb, "donor must be the same cache size");
    let mut stats = donor.stats.clone();
    // Re-run the power bookkeeping under "never gate anything":
    stats.l2_on_line_cycles = stats.l2_line_cycle_capacity;
    for l2 in &mut stats.l2 {
        l2.turnoffs_protocol = 0;
        l2.turnoffs_decay = 0;
        l2.dirty_decay_turnoffs = 0;
    }
    for iv in &mut stats.trace {
        iv.l2_powered_line_cycles = iv.l2_total_line_cycles;
    }
    let bank_bytes = cfg.cmp_config().l2.size_bytes;
    let power = evaluate_energy(cfg.power, Technique::Baseline, cfg.n_cores, bank_bytes, &stats);
    ExperimentResult {
        benchmark: donor.benchmark.clone(),
        technique: Technique::Baseline.name(),
        total_l2_mb: donor.total_l2_mb,
        stats,
        power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpleak_workloads::ScenarioSpec;

    fn quick(technique: Technique) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper(WorkloadSpec::mpeg2dec(), technique, 1);
        cfg.instructions_per_core = 60_000;
        cfg
    }

    #[test]
    fn experiment_runs_and_labels_itself() {
        let r = run_experiment(&quick(Technique::Protocol));
        assert_eq!(r.benchmark, "mpeg2dec");
        assert_eq!(r.technique, "protocol");
        assert_eq!(r.total_l2_mb, 1);
        assert_eq!(r.stats.instructions, 4 * 60_000);
        assert!(r.power.energy.total_pj() > 0.0);
    }

    #[test]
    fn baseline_occupation_is_one_and_protocol_below() {
        let base = run_experiment(&quick(Technique::Baseline));
        let prot = run_experiment(&quick(Technique::Protocol));
        assert!((base.stats.occupation_rate() - 1.0).abs() < 1e-12);
        assert!(prot.stats.occupation_rate() < 1.0);
    }

    #[test]
    fn cmp_config_splits_capacity() {
        let cfg = quick(Technique::Baseline).cmp_config();
        assert_eq!(cfg.l2.size_bytes * 4, 1024 * 1024);
    }

    #[test]
    fn experiments_are_deterministic() {
        let a = run_experiment(&quick(Technique::Decay { decay_cycles: 64 * 1024 }));
        let b = run_experiment(&quick(Technique::Decay { decay_cycles: 64 * 1024 }));
        assert_eq!(a.stats, b.stats, "whole-stats bit-identity");
        assert_eq!(a.power, b.power);
    }

    #[test]
    fn derived_baseline_is_bit_identical_to_a_simulated_one() {
        let donor = run_experiment(&quick(Technique::Protocol));
        let simulated = run_experiment(&quick(Technique::Baseline));
        let derived = derive_baseline_cell(&quick(Technique::Baseline), &donor);
        assert_eq!(derived.stats, simulated.stats, "whole-SimStats bit-identity");
        assert_eq!(derived.power, simulated.power);
        assert_eq!(derived.technique, "baseline");
    }

    #[test]
    fn lane_group_experiments_match_solo_runs() {
        let cfgs: Vec<ExperimentConfig> = [
            Technique::Protocol,
            Technique::Decay { decay_cycles: 64 * 1024 },
            Technique::SelectiveDecay { decay_cycles: 64 * 1024 },
        ]
        .into_iter()
        .map(quick)
        .collect();
        let mut scratch = ExperimentScratch::default();
        let laned = run_experiment_lanes(&cfgs, &mut scratch);
        for (cfg, lane) in cfgs.iter().zip(&laned) {
            let solo = run_experiment(cfg);
            assert_eq!(lane.stats, solo.stats, "{}: whole-SimStats bit-identity", lane.technique);
            assert_eq!(lane.power, solo.power);
        }
    }

    #[test]
    fn heterogeneous_mix_runs_with_per_core_breakdown() {
        let mut cfg = ExperimentConfig::paper_scenario(
            Scenario::Mix(ScenarioSpec::bursty_idle()),
            Technique::Protocol,
            1,
        );
        cfg.instructions_per_core = 40_000;
        let r = run_experiment(&cfg);
        assert_eq!(r.benchmark, "mix_bursty_idle");
        assert_eq!(
            r.stats.core_workloads,
            vec!["WATER-NS", "bursty", "VOLREND", "bursty"],
            "per-core breakdown labels the mix"
        );
        assert_eq!(r.stats.instructions, 4 * 40_000);
        for c in 0..4 {
            assert_eq!(r.stats.cores[c].instructions, 40_000, "fixed work per core");
        }
        // The bursty cores do far fewer memory ops for the same budget.
        let busy_mem = r.stats.cores[0].loads + r.stats.cores[0].stores;
        let idle_mem = r.stats.cores[1].loads + r.stats.cores[1].stores;
        assert!(
            idle_mem * 3 < busy_mem,
            "bursty core must be memory-light: busy {busy_mem}, idle {idle_mem}"
        );
    }
}
