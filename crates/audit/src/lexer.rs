//! A minimal hand-rolled Rust lexer.
//!
//! Just enough of the language to walk a source file token by token
//! without being fooled by the constructs that defeat naive grepping:
//! line and (nested) block comments, string/char/byte/raw-string
//! literals, lifetimes, and raw identifiers. The rule engine only ever
//! looks at identifier and punctuation tokens, so everything else is
//! lexed solely to be skipped *correctly* — a `HashMap` inside a string
//! literal or a doc comment must never fire a determinism lint.
//!
//! Precedent for hand-rolling rather than pulling in `syn`: the build
//! environment is offline, and the workspace already hand-rolls its
//! serde-derive proc macro for the same reason.

/// What a token is. Comments are kept as tokens (not skipped) because
/// `// audit:allow(...)` escape hatches live inside them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// `// ...` including doc comments `///` and `//!`.
    LineComment,
    /// `/* ... */`, nesting handled.
    BlockComment,
    /// `"..."` or `b"..."` with escapes.
    Str,
    /// `r"..."` / `r#"..."#` / `br#"..."#` with any number of hashes.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'static`, `'a` — distinguished from char literals.
    Lifetime,
    /// Numeric literal (integer part only; `1.5` lexes as Num Punct Num).
    Num,
    /// Any single other character.
    Punct,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
}

impl Tok<'_> {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex `src` into a token stream. Whitespace is dropped; everything
/// else, comments included, becomes a token. The lexer is total: any
/// byte sequence produces *some* stream (unterminated literals run to
/// end of file), because the audit must degrade gracefully on files it
/// half-understands rather than crash the CI gate.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Count newlines inside `src[from..to]` and advance the line counter.
    let count_lines = |from: usize, to: usize, line: &mut u32| {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count() as u32;
    };

    while i < b.len() {
        let c = b[i];
        let start = i;
        let start_line = line;

        // Whitespace.
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if c == b'/' && i + 1 < b.len() {
            match b[i + 1] {
                b'/' => {
                    while i < b.len() && b[i] != b'\n' {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::LineComment,
                        text: &src[start..i],
                        line: start_line,
                    });
                    continue;
                }
                b'*' => {
                    i += 2;
                    let mut depth = 1usize;
                    while i < b.len() && depth > 0 {
                        if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                            depth += 1;
                            i += 2;
                        } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    count_lines(start, i, &mut line);
                    toks.push(Tok {
                        kind: TokKind::BlockComment,
                        text: &src[start..i],
                        line: start_line,
                    });
                    continue;
                }
                _ => {}
            }
        }

        // Raw strings and raw identifiers: r"..."  r#"..."#  br#"..."#
        // cr"..."  r#ident. Look ahead past an optional b/c prefix.
        if c == b'r' || ((c == b'b' || c == b'c') && i + 1 < b.len() && b[i + 1] == b'r') {
            let mut j = i + if c == b'r' { 1 } else { 2 };
            let mut hashes = 0usize;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == b'"' {
                // Raw string: scan for `"` followed by `hashes` hashes.
                j += 1;
                'scan: while j < b.len() {
                    if b[j] == b'"' {
                        let mut k = 0usize;
                        while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'scan;
                        }
                    }
                    j += 1;
                }
                count_lines(start, j, &mut line);
                toks.push(Tok { kind: TokKind::RawStr, text: &src[start..j], line: start_line });
                i = j;
                continue;
            }
            if c == b'r' && hashes == 1 && j < b.len() && is_ident_start(b[j]) {
                // Raw identifier r#type: lex as an Ident with the prefix
                // stripped so rules match on the real name.
                let id_start = j;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                toks.push(Tok { kind: TokKind::Ident, text: &src[id_start..j], line: start_line });
                i = j;
                continue;
            }
            // Fall through: plain identifier starting with r/b/c.
        }

        // Byte strings / byte chars: b"..." b'x'.
        if c == b'b' && i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'\'') {
            i += 1;
            // Re-enter the loop logic below by treating the quote here.
            let quote = b[i];
            let (kind, end) = lex_quoted(b, i, quote);
            count_lines(start, end, &mut line);
            toks.push(Tok { kind, text: &src[start..end], line: start_line });
            i = end;
            continue;
        }

        // Strings.
        if c == b'"' {
            let (kind, end) = lex_quoted(b, i, b'"');
            count_lines(start, end, &mut line);
            toks.push(Tok { kind, text: &src[start..end], line: start_line });
            i = end;
            continue;
        }

        // Char literal or lifetime.
        if c == b'\'' {
            // `'\...'` is always a char; `'x'` is a char; `'ident` with no
            // closing quote right after one ident char is a lifetime.
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                let (_, end) = lex_quoted(b, i, b'\'');
                count_lines(start, end, &mut line);
                toks.push(Tok { kind: TokKind::Char, text: &src[start..end], line: start_line });
                i = end;
                continue;
            }
            if i + 2 < b.len() && b[i + 2] == b'\'' {
                i += 3;
                toks.push(Tok { kind: TokKind::Char, text: &src[start..i], line: start_line });
                continue;
            }
            if i + 1 < b.len() && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                toks.push(Tok { kind: TokKind::Lifetime, text: &src[start..j], line: start_line });
                i = j;
                continue;
            }
            // Lone quote (malformed): emit as punct and move on.
            i += 1;
            toks.push(Tok { kind: TokKind::Punct, text: &src[start..i], line: start_line });
            continue;
        }

        // Identifiers and keywords.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < b.len() && is_ident_cont(b[j]) {
                j += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, text: &src[i..j], line: start_line });
            i = j;
            continue;
        }

        // Numbers (integer prefix; enough to keep `0x1f` one token).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < b.len() && (is_ident_cont(b[j])) {
                j += 1;
            }
            toks.push(Tok { kind: TokKind::Num, text: &src[i..j], line: start_line });
            i = j;
            continue;
        }

        // Everything else: one punctuation character.
        i += c_len(b, i);
        toks.push(Tok { kind: TokKind::Punct, text: &src[start..i], line: start_line });
    }
    toks
}

/// Length in bytes of the (possibly multi-byte UTF-8) char at `i`.
fn c_len(b: &[u8], i: usize) -> usize {
    let c = b[i];
    if c < 0x80 {
        1
    } else if c >= 0xF0 {
        4
    } else if c >= 0xE0 {
        3
    } else {
        2
    }
}

/// Scan a quoted literal starting at the opening quote `b[i] == quote`,
/// honouring backslash escapes. Returns (kind, end index past the
/// closing quote). Unterminated literals run to end of input.
fn lex_quoted(b: &[u8], i: usize, quote: u8) -> (TokKind, usize) {
    let kind = if quote == b'"' { TokKind::Str } else { TokKind::Char };
    let mut j = i + 1;
    while j < b.len() {
        if b[j] == b'\\' {
            j += 2;
            continue;
        }
        if b[j] == quote {
            return (kind, j + 1);
        }
        j += 1;
    }
    (kind, b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("let x = y.z();");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "x"),
                (TokKind::Punct, "="),
                (TokKind::Ident, "y"),
                (TokKind::Punct, "."),
                (TokKind::Ident, "z"),
                (TokKind::Punct, "("),
                (TokKind::Punct, ")"),
                (TokKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let t = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], (TokKind::Ident, "a"));
        assert_eq!(t[1].0, TokKind::BlockComment);
        assert!(t[1].1.contains("inner"));
        assert_eq!(t[2], (TokKind::Ident, "b"));
    }

    #[test]
    fn string_containing_line_comment_marker() {
        let t = kinds(r#"let url = "https://example.com"; x"#);
        assert!(t.iter().any(|(k, s)| *k == TokKind::Str && s.contains("//")));
        // The `//` inside the string must not have eaten the rest.
        assert_eq!(*t.last().unwrap(), (TokKind::Ident, "x"));
    }

    #[test]
    fn string_containing_hashmap_is_a_string_token() {
        let t = kinds(r#"println!("uses HashMap here");"#);
        assert!(!t.iter().any(|(k, s)| *k == TokKind::Ident && *s == "HashMap"));
    }

    #[test]
    fn raw_strings_with_hashes_and_embedded_quotes() {
        let src = r###"let s = r#"raw " quote // not a comment"#; y"###;
        let t = kinds(src);
        assert!(t.iter().any(|(k, s)| *k == TokKind::RawStr && s.contains("not a comment")));
        assert_eq!(*t.last().unwrap(), (TokKind::Ident, "y"));
    }

    #[test]
    fn raw_string_zero_hashes_and_byte_raw_string() {
        let t = kinds("let a = r\"plain\"; let b = br#\"bytes\"#; z");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::RawStr).count(), 2);
        assert_eq!(*t.last().unwrap(), (TokKind::Ident, "z"));
    }

    #[test]
    fn raw_identifier_lexes_as_plain_ident() {
        let t = kinds("let r#type = 1;");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && *s == "type"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn escaped_quote_in_string() {
        let t = kinds(r#"let s = "a \" b"; tail"#);
        assert_eq!(*t.last().unwrap(), (TokKind::Ident, "tail"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nline string\"\n/* block\ncomment */\nb";
        let toks = lex(src);
        let a = toks.iter().find(|t| t.is_ident("a")).unwrap();
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 6);
    }

    #[test]
    fn doc_comments_are_line_comments() {
        let t = kinds("/// uses HashMap in prose\nfn f() {}");
        assert_eq!(t[0].0, TokKind::LineComment);
        assert!(!t.iter().any(|(k, s)| *k == TokKind::Ident && *s == "HashMap"));
    }

    #[test]
    fn unterminated_string_reaches_eof_without_panic() {
        let t = kinds("let s = \"never closed");
        assert_eq!(t.last().unwrap().0, TokKind::Str);
    }
}
