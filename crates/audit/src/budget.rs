//! Per-rule `audit:allow` suppression budgets.
//!
//! Every escape hatch is individually justified, but the *population*
//! of escape hatches still drifts upward one reasonable-sounding allow
//! at a time — nobody reviews the 24th `unwrap-in-lib` against the
//! other 23. `AUDIT_BUDGET.toml` at the workspace root pins the
//! per-rule ceiling: the audit fails when the live suppression count
//! exceeds a rule's budget (or when a rule with suppressions has no
//! entry at all), and warns when the budget has unspent slack, so the
//! ceiling ratchets down as allows are removed. Raising a ceiling is a
//! deliberate, reviewable diff to the committed file.
//!
//! The file format is deliberately trivial — `rule = N` lines with `#`
//! comments — so the checker stays dependency-free like the rest of the
//! audit. A workspace without the file skips the check entirely: the
//! budget is opt-in by committing one.

use crate::rules::{Finding, Warning, ALLOW_BUDGET, RULE_DOCS};

/// Budget file name, resolved against the workspace root.
pub const BUDGET_FILE: &str = "AUDIT_BUDGET.toml";

/// One `rule = ceiling` line.
struct Entry {
    rule: String,
    ceiling: u32,
    line: u32,
}

/// Parse the budget file. Malformed lines, unknown rules, and duplicate
/// entries become findings — a typo'd budget must not silently grant
/// unlimited suppressions.
fn parse(path: &str, text: &str, findings: &mut Vec<Finding>) -> Vec<Entry> {
    let mut entries: Vec<Entry> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i as u32 + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let parsed = body
            .split_once('=')
            .and_then(|(k, v)| v.trim().parse::<u32>().ok().map(|n| (k.trim().to_string(), n)));
        let Some((rule, ceiling)) = parsed else {
            findings.push(Finding {
                rule: ALLOW_BUDGET,
                file: path.to_string(),
                line,
                message: format!("malformed budget line `{body}`: expected `<rule> = <count>`"),
            });
            continue;
        };
        if !RULE_DOCS.iter().any(|(id, _)| *id == rule) {
            findings.push(Finding {
                rule: ALLOW_BUDGET,
                file: path.to_string(),
                line,
                message: format!("budget entry `{rule}` names an unknown rule"),
            });
            continue;
        }
        if entries.iter().any(|e| e.rule == rule) {
            findings.push(Finding {
                rule: ALLOW_BUDGET,
                file: path.to_string(),
                line,
                message: format!("duplicate budget entry for `{rule}`"),
            });
            continue;
        }
        entries.push(Entry { rule, ceiling, line });
    }
    entries
}

/// Check live suppression counts against the committed budget.
///
/// `counts` is the per-rule number of *used, reasoned* allows — the
/// ones that actually suppressed a finding this run (stale and
/// reasonless allows are already reported separately and do not spend
/// budget). Over-budget rules and rules suppressing with no entry are
/// findings; unspent slack is a warning so `--deny-warnings` CI keeps
/// the ceiling tight.
pub fn check_budget(
    path: &str,
    text: &str,
    counts: &[(String, u32)],
) -> (Vec<Finding>, Vec<Warning>) {
    let mut findings = Vec::new();
    let mut warnings = Vec::new();
    let entries = parse(path, text, &mut findings);

    for (rule, count) in counts {
        match entries.iter().find(|e| &e.rule == rule) {
            Some(e) if *count > e.ceiling => findings.push(Finding {
                rule: ALLOW_BUDGET,
                file: path.to_string(),
                line: e.line,
                message: format!(
                    "{count} audit:allow({rule}) suppression(s) exceed the budget of {} — \
                     remove a suppression or raise the ceiling in a reviewed diff",
                    e.ceiling
                ),
            }),
            Some(_) => {}
            None => findings.push(Finding {
                rule: ALLOW_BUDGET,
                file: path.to_string(),
                line: 0,
                message: format!(
                    "{count} audit:allow({rule}) suppression(s) but no `{rule} = N` budget \
                     entry — every suppressing rule needs a committed ceiling"
                ),
            }),
        }
    }
    for e in &entries {
        let live = counts.iter().find(|(r, _)| r == &e.rule).map_or(0, |(_, n)| *n);
        if e.ceiling > live {
            warnings.push(Warning {
                file: path.to_string(),
                line: e.line,
                message: format!(
                    "budget `{} = {}` has {} unspent slot(s) ({live} live suppression(s)) — \
                     ratchet the ceiling down",
                    e.rule,
                    e.ceiling,
                    e.ceiling - live
                ),
            });
        }
    }
    (findings, warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, u32)]) -> Vec<(String, u32)> {
        pairs.iter().map(|(r, n)| (r.to_string(), *n)).collect()
    }

    #[test]
    fn exact_budget_is_clean() {
        let (f, w) =
            check_budget("B.toml", "unwrap-in-lib = 3\n", &counts(&[("unwrap-in-lib", 3)]));
        assert!(f.is_empty(), "{f:?}");
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn over_budget_fires_on_the_entry_line() {
        let (f, _) = check_budget(
            "B.toml",
            "# ceilings\nunwrap-in-lib = 2\n",
            &counts(&[("unwrap-in-lib", 3)]),
        );
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), (ALLOW_BUDGET, 2));
        assert!(f[0].message.contains("exceed the budget of 2"), "{}", f[0].message);
    }

    #[test]
    fn suppressions_without_an_entry_fire() {
        let (f, _) = check_budget("B.toml", "", &counts(&[("hash-iter", 1)]));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no `hash-iter = N` budget entry"), "{}", f[0].message);
    }

    #[test]
    fn slack_is_a_warning_not_a_finding() {
        let (f, w) =
            check_budget("B.toml", "unwrap-in-lib = 5\n", &counts(&[("unwrap-in-lib", 3)]));
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(w.len(), 1);
        assert!(w[0].message.contains("2 unspent slot(s)"), "{}", w[0].message);
    }

    #[test]
    fn unknown_rules_and_malformed_lines_fire() {
        let (f, _) = check_budget("B.toml", "no-such-rule = 1\nbroken line\n", &[]);
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("unknown rule"));
        assert!(f[1].message.contains("malformed"));
    }

    #[test]
    fn duplicate_entries_fire_and_first_wins() {
        let (f, w) = check_budget(
            "B.toml",
            "unwrap-in-lib = 3\nunwrap-in-lib = 9\n",
            &counts(&[("unwrap-in-lib", 3)]),
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("duplicate"), "{}", f[0].message);
        assert!(w.is_empty(), "the first (tight) ceiling is the one enforced: {w:?}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let (f, w) = check_budget(
            "B.toml",
            "# per-rule allow ceilings\n\nunwrap-in-lib = 1  # trace reader contract\n",
            &counts(&[("unwrap-in-lib", 1)]),
        );
        assert!(f.is_empty(), "{f:?}");
        assert!(w.is_empty(), "{w:?}");
    }
}
