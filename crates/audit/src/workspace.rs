//! Workspace discovery and the top-level audit driver.
//!
//! Finds the workspace root, enumerates member crates from the root
//! `Cargo.toml`, classifies each into a role (which decides its rule
//! set), walks its library sources, and runs the determinism rules plus
//! the layering checker. Integration tests, benches, examples, and
//! `src/bin/*` are exempt from the determinism rules by construction:
//! they are operator-facing code, not simulation state.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::api::{check_api, ApiSurface};
use crate::arch::{check_layering, parse_manifest, CrateInfo};
use crate::budget::{check_budget, BUDGET_FILE};
use crate::rules::{audit_source, FileAudit, Finding, RuleSet, Warning, API_COMPLETENESS};

/// Everything one audit run produced.
#[derive(Debug, Default)]
pub struct AuditReport {
    pub findings: Vec<Finding>,
    pub warnings: Vec<Warning>,
    pub files_scanned: usize,
    pub crates_checked: usize,
    /// Used, reasoned `audit:allow` counts per rule, sorted by rule —
    /// the population charged against `AUDIT_BUDGET.toml`.
    pub suppressions: Vec<(String, u32)>,
}

impl AuditReport {
    /// Exit-code semantics: findings always fail; warnings fail only
    /// under `--deny-warnings`.
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.findings.is_empty() && (!deny_warnings || self.warnings.is_empty())
    }
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table appears.
pub fn find_root(start: &Path) -> io::Result<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)?;
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no workspace Cargo.toml above the current directory",
            ));
        }
    }
}

/// Parse the `members = [...]` list out of the root manifest.
fn workspace_members(root_toml: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_workspace = false;
    let mut in_members = false;
    for raw in root_toml.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_workspace = line == "[workspace]";
            in_members = false;
        }
        if !in_workspace && !in_members {
            continue;
        }
        let body = if let Some(rest) = line.strip_prefix("members") {
            in_members = true;
            rest.trim_start_matches(['=', ' ', '\t'])
        } else if in_members {
            line
        } else {
            continue;
        };
        for part in body.split(',') {
            let p = part.trim().trim_matches(['[', ']', '"', ' ']);
            if !p.is_empty() {
                members.push(p.to_string());
            }
        }
        if body.contains(']') {
            in_members = false;
        }
    }
    members
}

/// Which rule set a member crate's library sources are audited under.
fn rule_set_for(name: &str) -> Option<RuleSet> {
    match name {
        // Simulation-state crates: full determinism contract.
        "cmpleak-mem" | "cmpleak-coherence" | "cmpleak-cpu" | "cmpleak-workloads"
        | "cmpleak-trace" | "cmpleak-system" | "cmpleak-power" | "cmpleak-store"
        | "cmpleak-core" | "cmp-leakage" => Some(RuleSet::SIM_STATE),
        // The audit tool holds itself to the same bar.
        "cmpleak-audit" => Some(RuleSet::SIM_STATE),
        // Benchmark harness: timing is its job; panics are operator-facing.
        "cmpleak-bench" => Some(RuleSet::HARNESS),
        // Vendor stand-ins: third-party API surface, exempt from source
        // rules (the layering checker still constrains them).
        _ => None,
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for stable
/// report order. `skip_bins` drops any path containing a `bin`
/// directory component.
fn collect_rs(dir: &Path, skip_bins: bool, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if skip_bins && path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs(&path, skip_bins, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the full audit over the workspace rooted at `root`.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let root_toml = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut members = workspace_members(&root_toml);
    // The facade package lives in the root manifest itself.
    members.push(".".to_string());

    let mut report = AuditReport::default();
    let mut crates: Vec<CrateInfo> = Vec::new();
    let mut surfaces: Vec<ApiSurface> = Vec::new();
    let mut suppressions: BTreeMap<String, u32> = BTreeMap::new();

    for member in &members {
        let crate_dir = root.join(member);
        let manifest_path = crate_dir.join("Cargo.toml");
        let rel_manifest = display_rel(root, &manifest_path);
        let toml = fs::read_to_string(&manifest_path)?;
        let info = parse_manifest(&rel_manifest, &toml);
        let name = info.name.clone();
        let deps: Vec<String> = info.deps.iter().map(|(d, _)| d.clone()).collect();
        crates.push(info);
        report.crates_checked += 1;

        let Some(rules) = rule_set_for(&name) else { continue };
        // Crate roots feed the API-completeness pass as well.
        let root_file = crate_dir.join("src").join("lib.rs");
        if let Ok(src) = fs::read_to_string(&root_file) {
            surfaces.push(ApiSurface {
                crate_name: name.clone(),
                root_path: display_rel(root, &root_file),
                src,
                deps,
            });
        }
        let mut files = Vec::new();
        collect_rs(&crate_dir.join("src"), true, &mut files)?;
        for file in files {
            let src = fs::read_to_string(&file)?;
            let rel = display_rel(root, &file);
            let FileAudit { findings, warnings, suppressions: used } =
                audit_source(&rel, &src, rules);
            report.findings.extend(findings);
            report.warnings.extend(warnings);
            for (rule, _line) in used {
                *suppressions.entry(rule).or_insert(0) += 1;
            }
            report.files_scanned += 1;
        }
    }

    report.findings.extend(check_layering(&crates));
    let (api_findings, api_warnings, api_suppressed) = check_api(&surfaces);
    report.findings.extend(api_findings);
    report.warnings.extend(api_warnings);
    if api_suppressed > 0 {
        *suppressions.entry(API_COMPLETENESS.to_string()).or_insert(0) += api_suppressed;
    }
    report.suppressions = suppressions.into_iter().collect();
    // Suppression budget: opt-in by committing the budget file at the
    // workspace root; without one the ceiling check is skipped.
    if let Ok(text) = fs::read_to_string(root.join(BUDGET_FILE)) {
        let (findings, warnings) = check_budget(BUDGET_FILE, &text, &report.suppressions);
        report.findings.extend(findings);
        report.warnings.extend(warnings);
    }
    // Deterministic report order regardless of discovery order.
    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.warnings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Render `path` relative to `root` with forward slashes, for stable
/// finding labels across platforms.
fn display_rel(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}
