//! Report rendering: a human diff-style mode with `file:line` spans and
//! a machine-readable `--json` mode (hand-rolled emitter — the audit is
//! dependency-free by policy, see the layering checker).

use crate::workspace::AuditReport;

/// Human-readable report. Findings carry clickable `file:line:` spans;
/// the summary line makes the CI log self-explanatory.
pub fn render_human(report: &AuditReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!("{}:{}: deny({}): {}\n", f.file, f.line, f.rule, f.message));
    }
    for w in &report.warnings {
        out.push_str(&format!("{}:{}: warning: {}\n", w.file, w.line, w.message));
    }
    if !report.suppressions.is_empty() {
        let spent: Vec<String> =
            report.suppressions.iter().map(|(rule, n)| format!("{rule}={n}")).collect();
        out.push_str(&format!("suppressions in budget: {}\n", spent.join(", ")));
    }
    out.push_str(&format!(
        "audit: {} finding(s), {} warning(s) across {} file(s) in {} crate(s)\n",
        report.findings.len(),
        report.warnings.len(),
        report.files_scanned,
        report.crates_checked,
    ));
    out
}

/// JSON report:
/// `{"findings": [...], "warnings": [...], "suppressions": {...}, "summary": {...}}`.
pub fn render_json(report: &AuditReport) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            esc(f.rule),
            esc(&f.file),
            f.line,
            esc(&f.message)
        ));
    }
    out.push_str("\n  ],\n  \"warnings\": [");
    for (i, w) in report.warnings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            esc(&w.file),
            w.line,
            esc(&w.message)
        ));
    }
    out.push_str("\n  ],\n  \"suppressions\": {");
    for (i, (rule, n)) in report.suppressions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\": {}", esc(rule), n));
    }
    out.push_str(&format!(
        "}},\n  \"summary\": {{\"findings\": {}, \"warnings\": {}, \"files_scanned\": {}, \"crates_checked\": {}}}\n}}\n",
        report.findings.len(),
        report.warnings.len(),
        report.files_scanned,
        report.crates_checked,
    ));
    out
}

/// Minimal JSON string escape.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
