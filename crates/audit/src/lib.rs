//! `cmpleak-audit` — workspace determinism & architecture static
//! analysis.
//!
//! The reproduction's correctness contract is bit-identity: the golden
//! sweep snapshot, the kernel differentials, and the stream-sharing
//! tests all pin byte-identical results across kernels, thread counts,
//! and replay paths. This crate turns the implicit determinism rules
//! that contract relies on into machine-checked policy:
//!
//! * [`lexer`] — a minimal hand-rolled Rust lexer (comments, strings,
//!   raw strings, lifetimes) so rules see code, not prose;
//! * [`rules`] — determinism lints (hash-iteration order, wall-clock
//!   reads, ambient RNG, pointer-order casts, interior mutability,
//!   unwrap-in-library), with `// audit:allow(rule, reason)` escape
//!   hatches that must carry a reason;
//! * [`budget`] — per-rule suppression ceilings against the committed
//!   `AUDIT_BUDGET.toml`, so the allow population ratchets down, never
//!   silently up;
//! * [`arch`] — the crate layering DAG over every workspace
//!   `Cargo.toml`;
//! * [`api`] — public-API completeness: the facade re-exports every
//!   simulation-stack crate and each crate root re-exports every
//!   public module's surface;
//! * [`workspace`] / [`report`] — discovery, orchestration, and the
//!   human / `--json` report modes.
//!
//! Run it with `cargo run -p cmpleak-audit` (CI adds
//! `--deny-warnings`).

#![forbid(unsafe_code)]

pub mod api;
pub mod arch;
pub mod budget;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use api::{check_api, ApiSurface};
pub use arch::{check_layering, parse_manifest, CrateInfo, LAYERS};
pub use budget::{check_budget, BUDGET_FILE};
pub use lexer::{lex, Tok, TokKind};
pub use report::{render_human, render_json};
pub use rules::{audit_source, FileAudit, Finding, RuleSet, Warning, RULE_DOCS};
pub use workspace::{audit_workspace, find_root, AuditReport};
