//! Public-API completeness checker.
//!
//! The workspace's usability contract is that everything a downstream
//! consumer needs is reachable from crate roots: the facade re-exports
//! every simulation-stack crate, and each crate's root re-exports at
//! least one item from every public module it declares — so `use
//! cmp_leakage::core::run_sweep` works without spelunking module
//! trees. New modules and new facade dependencies silently rot that
//! contract; this pass makes the rot a finding.
//!
//! Two checks over crate-root sources (`src/lib.rs`):
//!
//! * **facade coverage** — every `cmpleak-*` dependency of the
//!   `cmp-leakage` facade appears as a `pub use cmpleak_x as ...;`
//!   re-export;
//! * **module coverage** — every root-level `pub mod x;` in an audited
//!   crate has at least one root-level `pub use x::...;` re-export.
//!
//! Escape hatch: the usual `// audit:allow(api-completeness, reason)`
//! on the `pub mod` line or the line above (counted against
//! `AUDIT_BUDGET.toml` like every other suppression).

use crate::rules::{Finding, Warning, API_COMPLETENESS};

/// One crate root to check, gathered by [`crate::workspace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiSurface {
    /// `package.name`.
    pub crate_name: String,
    /// Root source path, for finding labels (e.g. `src/lib.rs`).
    pub root_path: String,
    /// The root source text.
    pub src: String,
    /// `[dependencies]` names from the crate's manifest.
    pub deps: Vec<String>,
}

/// An `audit:allow(api-completeness, ...)` annotation in a root source.
#[derive(Debug)]
struct Allow {
    line: u32,
    has_reason: bool,
    used: bool,
}

/// Line-level allow scan. The full lexer is overkill here: the marker
/// is searched in raw lines, so one inside a string literal would also
/// count — crate roots are declaration lists, and a false suppression
/// still needs the rule to fire on the exact next line to matter.
fn scan_allows(src: &str) -> Vec<Allow> {
    let marker = "audit:allow(api-completeness";
    let mut allows = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find(marker) else { continue };
        let rest = &line[pos + marker.len()..];
        let has_reason = rest
            .strip_prefix(',')
            .and_then(|r| r.split(')').next())
            .is_some_and(|r| !r.trim().is_empty());
        allows.push(Allow { line: idx as u32 + 1, has_reason, used: false });
    }
    allows
}

/// First path segment of a `pub use` target, skipping a leading
/// `crate::` / `self::`.
fn use_root(target: &str) -> Option<&str> {
    let mut t = target.trim_start();
    for skip in ["crate::", "self::"] {
        if let Some(rest) = t.strip_prefix(skip) {
            t = rest;
        }
    }
    let end = t.find(|c: char| !(c.is_alphanumeric() || c == '_')).unwrap_or(t.len());
    (end > 0).then(|| &t[..end])
}

/// Check every gathered crate root. Returns findings, warnings (stale
/// api allows), and the used-suppression count charged to the budget.
pub fn check_api(surfaces: &[ApiSurface]) -> (Vec<Finding>, Vec<Warning>, u32) {
    let mut findings = Vec::new();
    let mut warnings = Vec::new();
    let mut suppressed = 0u32;

    for s in surfaces {
        let mut allows = scan_allows(&s.src);
        // Root-level declarations: `pub mod x;` sites (line-numbered)
        // and the first path segment of every `pub use`.
        let mut pub_mods: Vec<(String, u32)> = Vec::new();
        let mut use_roots: Vec<String> = Vec::new();
        for (idx, raw) in s.src.lines().enumerate() {
            let line = raw.trim();
            if let Some(rest) = line.strip_prefix("pub mod ") {
                if let Some(name) = rest.strip_suffix(';') {
                    pub_mods.push((name.trim().to_string(), idx as u32 + 1));
                }
            } else if let Some(rest) = line.strip_prefix("pub use ") {
                if let Some(root) = use_root(rest) {
                    use_roots.push(root.to_string());
                }
            }
        }

        let mut raw_findings: Vec<Finding> = Vec::new();
        for (name, line) in &pub_mods {
            if !use_roots.iter().any(|r| r == name) {
                raw_findings.push(Finding {
                    rule: API_COMPLETENESS,
                    file: s.root_path.clone(),
                    line: *line,
                    message: format!(
                        "`pub mod {name}` has no root-level `pub use {name}::...` re-export: \
                         every public module's surface must be reachable from the crate root \
                         (re-export its items, or audit:allow with why the module is path-only)"
                    ),
                });
            }
        }

        // Facade coverage: every workspace dependency re-exported.
        if s.crate_name == "cmp-leakage" {
            for dep in &s.deps {
                let Some(_) = dep.strip_prefix("cmpleak-") else { continue };
                let underscored = dep.replace('-', "_");
                if !use_roots.contains(&underscored) {
                    raw_findings.push(Finding {
                        rule: API_COMPLETENESS,
                        file: s.root_path.clone(),
                        line: 1,
                        message: format!(
                            "facade does not re-export its dependency `{dep}`: \
                             add `pub use {underscored} as <module>;` (and the doc-table row)"
                        ),
                    });
                }
            }
        }

        // Allow matching: same-line or line-above, reason mandatory.
        for f in raw_findings {
            let mut is_suppressed = false;
            for a in allows.iter_mut() {
                if a.line == f.line || a.line + 1 == f.line {
                    a.used = true;
                    if a.has_reason {
                        is_suppressed = true;
                    }
                }
            }
            if is_suppressed {
                suppressed += 1;
            } else {
                findings.push(f);
            }
        }
        for a in &allows {
            if !a.used {
                warnings.push(Warning {
                    file: s.root_path.clone(),
                    line: a.line,
                    message: format!(
                        "stale audit:allow({API_COMPLETENESS}): nothing fires here any more — remove it"
                    ),
                });
            }
        }
    }
    (findings, warnings, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surface(name: &str, src: &str, deps: &[&str]) -> ApiSurface {
        ApiSurface {
            crate_name: name.to_string(),
            root_path: format!("crates/{name}/src/lib.rs"),
            src: src.to_string(),
            deps: deps.iter().map(|d| d.to_string()).collect(),
        }
    }

    #[test]
    fn covered_module_and_facade_pass() {
        let lib = surface("cmpleak-x", "pub mod a;\npub use a::Thing;\n", &[]);
        let facade = surface("cmp-leakage", "pub use cmpleak_x as x;\n", &["cmpleak-x", "serde"]);
        let (findings, warnings, used) = check_api(&[lib, facade]);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(warnings.is_empty());
        assert_eq!(used, 0);
    }

    #[test]
    fn uncovered_module_fires_at_its_line() {
        let lib = surface("cmpleak-x", "pub mod a;\npub mod b;\npub use a::Thing;\n", &[]);
        let (findings, _, _) = check_api(&[lib]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("pub mod b"));
    }

    #[test]
    fn missing_facade_reexport_fires_for_workspace_deps_only() {
        let facade = surface(
            "cmp-leakage",
            "pub use cmpleak_x as x;\n",
            &["cmpleak-x", "cmpleak-y", "serde"],
        );
        let (findings, _, _) = check_api(&[facade]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("cmpleak-y"));
    }

    #[test]
    fn reasoned_allow_suppresses_and_counts() {
        let lib = surface(
            "cmpleak-x",
            "// audit:allow(api-completeness, internal-only helpers)\npub mod a;\n",
            &[],
        );
        let (findings, warnings, used) = check_api(&[lib]);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(warnings.is_empty());
        assert_eq!(used, 1);
    }

    #[test]
    fn reasonless_allow_does_not_suppress_and_stale_allow_warns() {
        let reasonless =
            surface("cmpleak-x", "// audit:allow(api-completeness)\npub mod a;\n", &[]);
        let (findings, _, used) = check_api(&[reasonless]);
        assert_eq!(findings.len(), 1);
        assert_eq!(used, 0);

        let stale = surface(
            "cmpleak-x",
            "// audit:allow(api-completeness, nothing fires)\npub mod a;\npub use a::T;\n",
            &[],
        );
        let (findings, warnings, _) = check_api(&[stale]);
        assert!(findings.is_empty());
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].message.contains("stale"));
    }

    #[test]
    fn crate_prefixed_use_counts_as_coverage() {
        let lib = surface("cmpleak-x", "pub mod a;\npub use crate::a::Thing;\n", &[]);
        let (findings, _, _) = check_api(&[lib]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
