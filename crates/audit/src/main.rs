//! CLI for the workspace determinism & architecture audit.
//!
//! ```text
//! cargo run -p cmpleak-audit [--] [--json] [--deny-warnings] [--root DIR]
//! ```
//!
//! Exit code 0 when clean, 1 on findings (or warnings under
//! `--deny-warnings`), 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use cmpleak_audit::report::{render_human, render_json};
use cmpleak_audit::rules::RULE_DOCS;
use cmpleak_audit::workspace::{audit_workspace, find_root};

fn usage() -> String {
    let mut s = String::from(
        "cmpleak-audit: workspace determinism & architecture static analysis\n\n\
         USAGE: cmpleak-audit [--json] [--deny-warnings] [--root DIR]\n\n\
         RULES:\n",
    );
    for (id, doc) in RULE_DOCS {
        s.push_str(&format!("  {id:<14} {doc}\n"));
    }
    s.push_str(
        "\nEscape hatch: `// audit:allow(<rule>, <reason>)` on the offending line\n\
         or the line above. The reason is mandatory.\n",
    );
    s
}

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot read current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_root(&cwd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("cannot locate workspace root: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_human(&report));
    }

    if report.is_clean(deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
