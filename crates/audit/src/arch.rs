//! Workspace architecture checker: parses every member crate's
//! `Cargo.toml` and enforces the crate layering DAG.
//!
//! The policy is the [`LAYERS`] table. Lower layers must never depend
//! on higher ones; `vendor/*` stand-ins are leaf dependencies only and
//! must never depend on a `cmpleak-*` crate; the audit tool itself sits
//! outside the simulation stack and must stay dependency-free so it can
//! gate every other crate without a cycle. Dev-dependencies are exempt
//! from the downward-only rule (Cargo permits dev cycles and the
//! op-source differential suite uses one deliberately), but the vendor
//! leaf rule still applies to them.

use crate::rules::{Finding, LAYERING};

/// The layering policy. A crate may only have normal dependencies on
/// crates with a strictly smaller layer number.
///
/// ```text
///   0  vendor/* (serde, serde_derive, serde_json, proptest, criterion, rand)
///   1  cmpleak-mem   cmpleak-cpu   cmpleak-coherence     cmpleak-audit
///   2  cmpleak-workloads (cpu)     cmpleak-trace (cpu, mem)
///   3  cmpleak-system (mem, coherence, cpu, workloads)
///   4  cmpleak-power (coherence, system)
///   5  cmpleak-store (system, power)
///   6  cmpleak-core (everything below)
///   7  cmpleak-bench, cmp-leakage facade (everything)
/// ```
pub const LAYERS: &[(&str, u8)] = &[
    ("serde", 0),
    ("serde_derive", 0),
    ("serde_json", 0),
    ("proptest", 0),
    ("criterion", 0),
    ("rand", 0),
    ("cmpleak-mem", 1),
    ("cmpleak-cpu", 1),
    ("cmpleak-coherence", 1),
    ("cmpleak-audit", 1),
    ("cmpleak-workloads", 2),
    ("cmpleak-trace", 2),
    ("cmpleak-system", 3),
    ("cmpleak-power", 4),
    ("cmpleak-store", 5),
    ("cmpleak-core", 6),
    ("cmpleak-bench", 7),
    ("cmp-leakage", 7),
];

/// One parsed crate manifest (just the slice the checker needs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateInfo {
    /// `package.name`.
    pub name: String,
    /// Path of the manifest, for finding labels.
    pub manifest_path: String,
    /// Keys of `[dependencies]`, with their manifest line numbers.
    pub deps: Vec<(String, u32)>,
    /// Keys of `[dev-dependencies]`, with their manifest line numbers.
    pub dev_deps: Vec<(String, u32)>,
}

/// Minimal TOML section reader: enough for `[package] name = "..."` and
/// the keys of the dependency tables. Handles dotted keys
/// (`foo.workspace = true`) and inline tables (`foo = { path = ".." }`).
pub fn parse_manifest(manifest_path: &str, toml: &str) -> CrateInfo {
    let mut info = CrateInfo {
        name: String::new(),
        manifest_path: manifest_path.to_string(),
        deps: Vec::new(),
        dev_deps: Vec::new(),
    };
    let mut section = String::new();
    for (idx, raw) in toml.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        let value = value.trim();
        match section.as_str() {
            "package" if key == "name" => {
                info.name = value.trim_matches('"').to_string();
            }
            "dependencies" | "dev-dependencies" => {
                // `cmpleak-mem.workspace = true` → dep name `cmpleak-mem`;
                // `serde = { path = "..." }` → dep name `serde`.
                let dep = key.split('.').next().unwrap_or(key).trim_matches('"').to_string();
                if section == "dependencies" {
                    info.deps.push((dep, line_no));
                } else {
                    info.dev_deps.push((dep, line_no));
                }
            }
            _ => {}
        }
    }
    info
}

fn layer_of(name: &str) -> Option<u8> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|&(_, l)| l)
}

/// Check the layering DAG over a set of parsed manifests.
pub fn check_layering(crates: &[CrateInfo]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |file: &str, line: u32, message: String| {
        findings.push(Finding { rule: LAYERING, file: file.to_string(), line, message });
    };
    for c in crates {
        let Some(layer) = layer_of(&c.name) else {
            push(
                &c.manifest_path,
                1,
                format!(
                    "crate `{}` is not in the layering policy — add it to audit::arch::LAYERS with a deliberate layer",
                    c.name
                ),
            );
            continue;
        };
        let is_vendor = layer == 0;
        for (dep, line) in &c.deps {
            let Some(dep_layer) = layer_of(dep) else {
                push(
                    &c.manifest_path,
                    *line,
                    format!("`{}` depends on `{dep}`, which is not in the layering policy", c.name),
                );
                continue;
            };
            if is_vendor && dep_layer != 0 {
                push(
                    &c.manifest_path,
                    *line,
                    format!(
                        "vendor crate `{}` depends on `{dep}`: vendor stand-ins must stay leaf dependencies",
                        c.name
                    ),
                );
            } else if c.name == "cmpleak-audit" && dep_layer != 0 {
                push(
                    &c.manifest_path,
                    *line,
                    format!(
                        "`cmpleak-audit` depends on `{dep}`: the audit gate must stay outside the simulation stack"
                    ),
                );
            } else if dep_layer >= layer && !is_vendor {
                push(
                    &c.manifest_path,
                    *line,
                    format!(
                        "`{}` (layer {layer}) depends on `{dep}` (layer {dep_layer}): dependencies must point strictly downward",
                        c.name
                    ),
                );
            }
        }
        for (dep, line) in &c.dev_deps {
            // Dev-deps may point upward, but vendor crates must not
            // touch the workspace even for tests.
            if is_vendor && layer_of(dep).is_none_or(|l| l != 0) {
                push(
                    &c.manifest_path,
                    *line,
                    format!(
                        "vendor crate `{}` dev-depends on `{dep}`: vendor stand-ins must stay leaf dependencies",
                        c.name
                    ),
                );
            }
        }
    }
    findings
}
