//! Determinism lint rules over the token stream.
//!
//! Every rule here exists because the workspace's correctness story is
//! *bit-identity*: golden sweep snapshots, kernel differentials, and
//! stream-sharing tests all pin byte-identical output across kernels,
//! thread counts, and replay paths. The classic ways that contract rots
//! are hash-iteration order, wall-clock reads, ambient RNG, pointer
//! addresses leaking into ordering decisions, and hidden shared
//! mutability — none of which the compiler rejects. This module does.
//!
//! Escape hatch: `// audit:allow(<rule>, <reason>)` on the offending
//! line or the line directly above suppresses one rule there. The
//! reason is mandatory; an allow without one does not suppress, and an
//! allow nothing fires under is reported as stale (a warning, an error
//! under `--deny-warnings`).

use crate::lexer::{lex, Tok, TokKind};

/// Stable rule identifiers, used in reports and in `audit:allow(...)`.
pub const HASH_ITER: &str = "hash-iter";
pub const WALL_CLOCK: &str = "wall-clock";
pub const AMBIENT_RNG: &str = "ambient-rng";
pub const PTR_ORDER: &str = "ptr-order";
pub const INTERIOR_MUT: &str = "interior-mut";
pub const UNWRAP_IN_LIB: &str = "unwrap-in-lib";
pub const FLOAT_ORDER: &str = "float-order";
/// Architecture rule (fires from the layering checker, not from source).
pub const LAYERING: &str = "layering";
/// Public-API completeness rule (fires from [`crate::api`], not from
/// the token rules here).
pub const API_COMPLETENESS: &str = "api-completeness";
/// Meta rule: a malformed or unknown `audit:allow(...)` annotation.
pub const BAD_ALLOW: &str = "bad-allow";
/// Meta rule: per-rule suppression counts vs the committed budget file
/// (fires from [`crate::budget`], not from source).
pub const ALLOW_BUDGET: &str = "allow-budget";

/// Rule id → one-line description, for `--help` and the README table.
pub const RULE_DOCS: &[(&str, &str)] = &[
    (HASH_ITER, "HashMap/HashSet in simulation-state code: iteration order is nondeterministic; use BTreeMap/BTreeSet or a sorted Vec"),
    (WALL_CLOCK, "std::time::Instant/SystemTime in simulation-state code: wall-clock reads break replay determinism"),
    (AMBIENT_RNG, "thread_rng/OsRng/from_entropy/getrandom: ambient entropy; all randomness must flow from an explicit seed"),
    (PTR_ORDER, "pointer-address-as-usize cast: allocation addresses vary run to run and must never order or key anything"),
    (INTERIOR_MUT, "static mut/RefCell/Cell/UnsafeCell/OnceCell in simulation-state code: hidden shared mutability defeats the sweep workers' isolation"),
    (UNWRAP_IN_LIB, "unwrap/expect/panic!/unreachable!/todo!/unimplemented! in library hot paths: recoverable errors must not abort a sweep"),
    (FLOAT_ORDER, "f64/f32 reduction co-located with spawn/join/channel/par_iter: float addition is not associative; accumulate per-worker results in fixed index order, never completion order"),
    (LAYERING, "crate dependency violates the workspace layering DAG"),
    (API_COMPLETENESS, "a crate root's `pub mod` with no root re-export, or a facade dependency the facade does not re-export"),
    (ALLOW_BUDGET, "used audit:allow suppressions per rule exceed the ceiling committed in AUDIT_BUDGET.toml"),
];

/// Rules whose findings are produced by passes other than
/// [`audit_source`] but whose `audit:allow` annotations still live in
/// source files — the stale-allow warning here must not claim them
/// (their own pass reports staleness).
const EXTERNAL_SOURCE_RULES: &[&str] = &[API_COMPLETENESS];

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// Non-fatal report item (fatal under `--deny-warnings`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// Result of auditing one source file.
#[derive(Debug, Default)]
pub struct FileAudit {
    pub findings: Vec<Finding>,
    pub warnings: Vec<Warning>,
    /// `(rule, line)` for every allow that actually suppressed a
    /// finding here (used *and* reasoned) — the population the
    /// suppression budget ([`crate::budget`]) is charged against.
    pub suppressions: Vec<(String, u32)>,
}

/// Which rule set a file is audited under. Derived from its crate's
/// role in the workspace (see [`crate::workspace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    pub hash_iter: bool,
    pub wall_clock: bool,
    pub ambient_rng: bool,
    pub ptr_order: bool,
    pub interior_mut: bool,
    pub unwrap_in_lib: bool,
    pub float_order: bool,
}

impl RuleSet {
    /// Simulation-state crates: everything on.
    pub const SIM_STATE: RuleSet = RuleSet {
        hash_iter: true,
        wall_clock: true,
        ambient_rng: true,
        ptr_order: true,
        interior_mut: true,
        unwrap_in_lib: true,
        float_order: true,
    };
    /// The benchmark harness: timing and operator-facing panics are its
    /// job, but it still must not smuggle nondeterminism into results.
    pub const HARNESS: RuleSet =
        RuleSet { wall_clock: false, unwrap_in_lib: false, ..RuleSet::SIM_STATE };
}

/// An `audit:allow(rule, reason)` annotation found in a comment.
#[derive(Debug)]
struct Allow {
    line: u32,
    rule: String,
    reason: Option<String>,
    used: bool,
}

/// Parse every `audit:allow(...)` out of a comment token's text.
/// `start_line` is the comment's first line; annotations further down a
/// multi-line block comment get their true line number.
fn parse_allows(text: &str, start_line: u32, out: &mut Vec<Allow>) {
    let marker = "audit:allow(";
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(marker) {
        let abs = from + pos;
        let line = start_line + text[..abs].matches('\n').count() as u32;
        let body_start = abs + marker.len();
        let Some(close) = text[body_start..].find(')') else { break };
        let body = &text[body_start..body_start + close];
        let (rule, reason) = match body.split_once(',') {
            Some((r, why)) => {
                let why = why.trim();
                (r.trim(), (!why.is_empty()).then(|| why.to_string()))
            }
            None => (body.trim(), None),
        };
        out.push(Allow { line, rule: rule.to_string(), reason, used: false });
        from = body_start + close + 1;
    }
}

/// Byte-mask over the token stream marking tokens inside `#[cfg(test)]`
/// items (inline test modules, test-only fns/uses). Exempt from all
/// determinism rules: tests may hash, time, and unwrap freely.
fn test_exempt_mask(toks: &[Tok<'_>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut ci = 0usize;
    while ci < code.len() {
        if is_cfg_test_attr(toks, &code, ci) {
            // Skip to the end of the attribute's `]`.
            let mut cj = ci + 2; // at `cfg`
            let mut depth = 0i32;
            while cj < code.len() {
                let t = &toks[code[cj]];
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                cj += 1;
            }
            // `cj` sits on the closing `]`. Everything from the `#` through
            // the end of the *following item* is exempt. Skip over any
            // further attributes first.
            let mut ck = cj + 1;
            while ck + 1 < code.len()
                && toks[code[ck]].is_punct("#")
                && toks[code[ck + 1]].is_punct("[")
            {
                let mut d = 0i32;
                ck += 1;
                while ck < code.len() {
                    let t = &toks[code[ck]];
                    if t.is_punct("[") {
                        d += 1;
                    } else if t.is_punct("]") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    ck += 1;
                }
                ck += 1;
            }
            // Consume the item: either up to a `;` at depth 0 (use/type
            // declarations) or over one balanced `{...}` block.
            let mut d = 0i32;
            let mut entered_block = false;
            while ck < code.len() {
                let t = &toks[code[ck]];
                if t.is_punct("{") {
                    d += 1;
                    entered_block = true;
                } else if t.is_punct("}") {
                    d -= 1;
                    if entered_block && d == 0 {
                        break;
                    }
                } else if t.is_punct(";") && d == 0 {
                    break;
                }
                ck += 1;
            }
            let hi = code.get(ck).copied().unwrap_or(toks.len() - 1);
            for m in &mut mask[code[ci]..=hi] {
                *m = true;
            }
            ci = ck + 1;
        } else {
            ci += 1;
        }
    }
    mask
}

/// Does `code[ci]` start `#[cfg(test)]` (possibly with extra predicate
/// arguments, e.g. `#[cfg(all(test, feature = "x"))]`)?
fn is_cfg_test_attr(toks: &[Tok<'_>], code: &[usize], ci: usize) -> bool {
    let get = |k: usize| code.get(ci + k).map(|&i| &toks[i]);
    let (Some(hash), Some(open), Some(cfg)) = (get(0), get(1), get(2)) else {
        return false;
    };
    if !(hash.is_punct("#") && open.is_punct("[") && cfg.is_ident("cfg")) {
        return false;
    }
    // Scan the attribute body for a bare `test` ident.
    let mut k = 3;
    let mut depth = 0i32;
    while let Some(t) = get(k) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.is_punct("]") {
            return false;
        } else if t.is_ident("test") {
            return true;
        }
        k += 1;
    }
    false
}

/// Identifiers that mark a function as touching parallel execution:
/// worker spawns, result channels, rayon-style parallel iterators, and
/// handle joins. (`join` also matches `Path::join`; the rule only fires
/// when a float reduction sits in the *same* function, which is exactly
/// the co-location worth a human look — or an `audit:allow`.)
const THREAD_IDENTS: &[&str] = &[
    "spawn",
    "scope",
    "channel",
    "sync_channel",
    "par_iter",
    "into_par_iter",
    "par_bridge",
    "join",
];

/// Is `code[j]` a float reduction site? Recognized shapes:
/// `.sum::<f64>()` / `.product::<f32>()` turbofish reductions, and
/// `.fold(...)` / `.reduce(...)` whose first arguments contain a float
/// literal (`0.0`) or an `f64`/`f32` type ascription.
fn float_reduction_site(toks: &[Tok<'_>], code: &[usize], j: usize) -> Option<(u32, String)> {
    let t = &toks[code[j]];
    if t.kind != TokKind::Ident {
        return None;
    }
    let get = |k: usize| code.get(j + k).map(|&i| &toks[i]);
    let is_float_ident = |a: &Tok<'_>| a.is_ident("f64") || a.is_ident("f32");
    match t.text {
        "sum" | "product" => {
            let turbofish = get(1).is_some_and(|a| a.is_punct(":"))
                && get(2).is_some_and(|a| a.is_punct(":"))
                && get(3).is_some_and(|a| a.is_punct("<"))
                && get(4).is_some_and(is_float_ident);
            turbofish.then(|| (t.line, format!("float `.{}::<_>()` reduction", t.text)))
        }
        "fold" | "reduce" => {
            let is_call =
                j > 0 && toks[code[j - 1]].is_punct(".") && get(1).is_some_and(|a| a.is_punct("("));
            if !is_call {
                return None;
            }
            // Look a short window into the arguments for a float seed.
            for k in 2..14 {
                let a = get(k)?;
                if is_float_ident(a) {
                    return Some((t.line, format!("float-seeded `.{}(...)` reduction", t.text)));
                }
                if a.kind == TokKind::Num
                    && get(k + 1).is_some_and(|x| x.is_punct("."))
                    && get(k + 2).is_some_and(|x| x.kind == TokKind::Num)
                {
                    return Some((t.line, format!("float-seeded `.{}(...)` reduction", t.text)));
                }
            }
            None
        }
        _ => None,
    }
}

/// The float-order pass: walk every `fn` body; if it both touches
/// parallel execution (see [`THREAD_IDENTS`]) and reduces floats, flag
/// each reduction site. Float addition is not associative, so the only
/// way a parallel computation stays bit-deterministic is to collect
/// per-worker results into an indexed structure and reduce in fixed
/// index order — reducing in completion/merge order silently varies
/// run to run.
fn check_float_order(toks: &[Tok<'_>], code: &[usize], path: &str, raw: &mut Vec<Finding>) {
    let mut flagged: Vec<u32> = Vec::new();
    let mut ci = 0usize;
    while ci < code.len() {
        if !toks[code[ci]].is_ident("fn") {
            ci += 1;
            continue;
        }
        // Find the body's opening `{`; hitting `;` first means a
        // bodyless declaration (trait method, extern).
        let mut cj = ci + 1;
        let mut open = None;
        while cj < code.len() {
            let t = &toks[code[cj]];
            if t.is_punct("{") {
                open = Some(cj);
                break;
            }
            if t.is_punct(";") {
                break;
            }
            cj += 1;
        }
        let Some(lo) = open else {
            ci = cj + 1;
            continue;
        };
        let mut depth = 0i32;
        let mut hi = lo;
        while hi < code.len() {
            let t = &toks[code[hi]];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            hi += 1;
        }
        let threaded = (lo..hi).any(|j| {
            let t = &toks[code[j]];
            t.kind == TokKind::Ident && THREAD_IDENTS.contains(&t.text)
        });
        if threaded {
            for j in lo..hi {
                if let Some((line, what)) = float_reduction_site(toks, code, j) {
                    if !flagged.contains(&line) {
                        flagged.push(line);
                        raw.push(Finding {
                            rule: FLOAT_ORDER,
                            file: path.to_string(),
                            line,
                            message: format!(
                                "{what} in a function that spawns/joins parallel work: float addition is not associative — collect per-worker results and reduce in fixed index order, never completion order"
                            ),
                        });
                    }
                }
            }
        }
        // Step past the `fn` keyword only: nested fns get their own scan.
        ci += 1;
    }
}

/// Audit one source file under `rules`. `path` is only used to label
/// findings.
pub fn audit_source(path: &str, src: &str, rules: RuleSet) -> FileAudit {
    let toks = lex(src);
    let mut allows: Vec<Allow> = Vec::new();
    for t in &toks {
        // Plain comments only: doc comments (`///`, `//!`, `/**`, `/*!`)
        // are prose, and prose *about* audit:allow must not be an allow.
        let is_doc = t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!");
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) && !is_doc {
            parse_allows(t.text, t.line, &mut allows);
        }
    }
    let exempt = test_exempt_mask(&toks);

    // Raw findings before allow-matching.
    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |rule: &'static str, line: u32, message: String| {
        raw.push(Finding { rule, file: path.to_string(), line, message });
    };

    // Index of the most recent pointer-producing construct, for ptr-order.
    let mut last_ptr_cast: Option<usize> = None;

    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| {
            !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment) && !exempt[i]
        })
        .collect();

    for (ci, &ti) in code.iter().enumerate() {
        let t = &toks[ti];
        let next = |k: usize| code.get(ci + k).map(|&j| &toks[j]);
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text {
            "HashMap" | "HashSet" if rules.hash_iter => push(
                HASH_ITER,
                t.line,
                format!("`{}` in simulation-state code: iteration order is nondeterministic; use BTreeMap/BTreeSet or a sorted Vec", t.text),
            ),
            "Instant" | "SystemTime" if rules.wall_clock => push(
                WALL_CLOCK,
                t.line,
                format!("`{}` read in simulation-state code: simulated time must come from the cycle clock, never the wall clock", t.text),
            ),
            "thread_rng" | "ThreadRng" | "OsRng" | "from_entropy" | "getrandom"
                if rules.ambient_rng =>
            {
                push(
                    AMBIENT_RNG,
                    t.line,
                    format!("`{}`: ambient entropy source; all randomness must flow from an explicit per-scenario seed", t.text),
                )
            }
            "as_ptr" | "as_mut_ptr" => last_ptr_cast = Some(ci),
            "as" => {
                if let (Some(star), Some(cm)) = (next(1), next(2)) {
                    if star.is_punct("*") && (cm.is_ident("const") || cm.is_ident("mut")) {
                        last_ptr_cast = Some(ci);
                    }
                }
                if rules.ptr_order {
                    if let Some(u) = next(1) {
                        if u.is_ident("usize") {
                            if let Some(p) = last_ptr_cast {
                                if ci - p <= 8 {
                                    push(
                                        PTR_ORDER,
                                        t.line,
                                        "pointer address cast to usize: allocation addresses vary run to run and must never order or key anything".to_string(),
                                    );
                                }
                            }
                        }
                    }
                }
            }
            "RefCell" | "UnsafeCell" | "OnceCell" | "Cell" if rules.interior_mut => push(
                INTERIOR_MUT,
                t.line,
                format!("`{}` in simulation-state code: hidden shared mutability defeats sweep-worker isolation; thread state explicitly", t.text),
            ),
            "static" if rules.interior_mut && next(1).is_some_and(|n| n.is_ident("mut")) => push(
                INTERIOR_MUT,
                t.line,
                "`static mut`: global mutable state is both unsafe and nondeterministic under threaded sweeps".to_string(),
            ),
            "unwrap" | "expect" if rules.unwrap_in_lib => {
                let is_method_call = ci > 0
                    && toks[code[ci - 1]].is_punct(".")
                    && next(1).is_some_and(|n| n.is_punct("("));
                if is_method_call {
                    push(
                        UNWRAP_IN_LIB,
                        t.line,
                        format!("`.{}()` in library code: hot paths must not abort; return an error or prove the invariant and audit:allow it", t.text),
                    );
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if rules.unwrap_in_lib && next(1).is_some_and(|n| n.is_punct("!")) =>
            {
                push(
                    UNWRAP_IN_LIB,
                    t.line,
                    format!("`{}!` in library code: hot paths must not abort; return an error or prove the invariant and audit:allow it", t.text),
                )
            }
            _ => {}
        }
    }

    if rules.float_order {
        check_float_order(&toks, &code, path, &mut raw);
    }

    // Match findings against allows: an allow on the finding's line or
    // the line directly above suppresses it — but only with a reason.
    let mut audit = FileAudit::default();
    for f in raw {
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                a.used = true;
                if a.reason.is_some() {
                    suppressed = true;
                } else {
                    audit.findings.push(Finding {
                        rule: BAD_ALLOW,
                        file: f.file.clone(),
                        line: a.line,
                        message: format!(
                            "audit:allow({}) without a reason: escape hatches must justify themselves — write audit:allow({}, <why this is sound>)",
                            f.rule, f.rule
                        ),
                    });
                }
            }
        }
        if !suppressed {
            audit.findings.push(f);
        }
    }
    for a in &allows {
        if a.used && a.reason.is_some() {
            audit.suppressions.push((a.rule.clone(), a.line));
        }
        if !a.used {
            if EXTERNAL_SOURCE_RULES.contains(&a.rule.as_str()) {
                // Another pass owns this rule's allows; not stale here.
            } else if RULE_DOCS.iter().any(|(id, _)| *id == a.rule) {
                audit.warnings.push(Warning {
                    file: path.to_string(),
                    line: a.line,
                    message: format!(
                        "stale audit:allow({}): nothing fires here any more — remove it",
                        a.rule
                    ),
                });
            } else {
                audit.findings.push(Finding {
                    rule: BAD_ALLOW,
                    file: path.to_string(),
                    line: a.line,
                    message: format!("audit:allow({}) names an unknown rule", a.rule),
                });
            }
        }
    }
    audit
}
