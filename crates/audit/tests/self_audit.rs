//! The workspace must pass its own audit: zero findings, zero
//! warnings. This is the same invocation CI runs
//! (`cargo run -p cmpleak-audit -- --deny-warnings`), as a test so
//! `cargo test` alone also gates it.

use std::path::Path;

use cmpleak_audit::workspace::{audit_workspace, find_root};

#[test]
fn workspace_audits_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(here).expect("audit crate lives inside the workspace");
    let report = audit_workspace(&root).expect("workspace sources are readable");
    assert!(
        report.findings.is_empty(),
        "determinism/architecture findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {}:{}: deny({}): {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.warnings.is_empty(),
        "stale audit:allow annotations:\n{}",
        report
            .warnings
            .iter()
            .map(|w| format!("  {}:{}: {}", w.file, w.line, w.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walk must actually have covered the workspace: nine cmpleak
    // crates + facade + audit + six vendor stubs, and a healthy file
    // count. Guards against a discovery regression silently auditing
    // nothing.
    assert!(report.crates_checked >= 17, "only {} crates checked", report.crates_checked);
    assert!(report.files_scanned >= 50, "only {} files scanned", report.files_scanned);
}

#[test]
fn workspace_layering_matches_policy_exactly() {
    // The real manifests, parsed fresh: every cmpleak crate must be in
    // the LAYERS table (no drift between policy and workspace).
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(here).expect("workspace root");
    for (name, _) in cmpleak_audit::arch::LAYERS {
        if name.starts_with("cmpleak-") {
            let dir = name.trim_start_matches("cmpleak-");
            let manifest = root.join("crates").join(dir).join("Cargo.toml");
            assert!(manifest.is_file(), "policy names `{name}` but {manifest:?} does not exist");
        }
    }
}
