//! Suppression-budget fixtures: a throwaway workspace on disk, audited
//! end to end through `audit_workspace`, so the budget check is pinned
//! at the wiring level — file discovery, suppression counting, and the
//! opt-in-by-committed-file rule — not just the pure checker in
//! `budget::tests`.

use std::fs;
use std::path::PathBuf;

use cmpleak_audit::rules::ALLOW_BUDGET;
use cmpleak_audit::workspace::audit_workspace;

/// Lay down a minimal workspace: a facade root package plus one
/// simulation-state member whose lib carries `n_allows` reasoned,
/// firing `hash-iter` suppressions. `budget` is the budget file body,
/// or `None` to leave the file uncommitted.
fn scratch_workspace(tag: &str, n_allows: usize, budget: Option<&str>) -> PathBuf {
    let root = std::env::temp_dir().join(format!("cmpleak_budget_{}_{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/mem/src")).unwrap();
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/mem\"]\n\n[package]\nname = \"cmp-leakage\"\nversion = \"0.1.0\"\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/mem/Cargo.toml"),
        "[package]\nname = \"cmpleak-mem\"\nversion = \"0.1.0\"\n",
    )
    .unwrap();
    let mut lib = String::new();
    for i in 0..n_allows {
        lib.push_str(&format!(
            "// audit:allow(hash-iter, fixture {i}: membership only, never iterated)\npub type M{i} = HashMap<u32, u32>;\n"
        ));
    }
    fs::write(root.join("crates/mem/src/lib.rs"), lib).unwrap();
    if let Some(body) = budget {
        fs::write(root.join("AUDIT_BUDGET.toml"), body).unwrap();
    }
    root
}

#[test]
fn counts_within_budget_audit_clean() {
    let root = scratch_workspace("exact", 2, Some("hash-iter = 2\n"));
    let report = audit_workspace(&root).unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    assert_eq!(report.suppressions, vec![("hash-iter".to_string(), 2)]);
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn counts_over_budget_fail_the_audit() {
    let root = scratch_workspace("over", 3, Some("hash-iter = 2\n"));
    let report = audit_workspace(&root).unwrap();
    let budget_findings: Vec<_> =
        report.findings.iter().filter(|f| f.rule == ALLOW_BUDGET).collect();
    assert_eq!(budget_findings.len(), 1, "{:?}", report.findings);
    assert_eq!(budget_findings[0].file, "AUDIT_BUDGET.toml");
    assert!(budget_findings[0].message.contains("exceed the budget of 2"));
    assert!(!report.is_clean(false), "over-budget must fail even without --deny-warnings");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn suppressions_without_a_budget_entry_fail() {
    let root = scratch_workspace("noentry", 1, Some("# empty ceilings\n"));
    let report = audit_workspace(&root).unwrap();
    assert!(
        report.findings.iter().any(
            |f| f.rule == ALLOW_BUDGET && f.message.contains("no `hash-iter = N` budget entry")
        ),
        "{:?}",
        report.findings
    );
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn slack_warns_so_deny_warnings_ratchets() {
    let root = scratch_workspace("slack", 1, Some("hash-iter = 4\n"));
    let report = audit_workspace(&root).unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
    assert!(report.warnings[0].message.contains("3 unspent slot(s)"));
    assert!(report.is_clean(false), "slack alone passes a plain run");
    assert!(!report.is_clean(true), "but --deny-warnings forces the ratchet");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn missing_budget_file_skips_the_check() {
    let root = scratch_workspace("nofile", 2, None);
    let report = audit_workspace(&root).unwrap();
    assert!(
        !report.findings.iter().any(|f| f.rule == ALLOW_BUDGET),
        "the budget is opt-in by committing the file: {:?}",
        report.findings
    );
    assert_eq!(report.suppressions, vec![("hash-iter".to_string(), 2)], "counts still reported");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn stale_and_reasonless_allows_spend_no_budget() {
    // A stale allow (nothing fires) and a reasonless allow (does not
    // suppress) are reported through their own channels; neither counts
    // against the ceiling.
    let root = scratch_workspace("nonspend", 0, Some("hash-iter = 0\n"));
    fs::write(
        root.join("crates/mem/src/lib.rs"),
        "// audit:allow(hash-iter, stale: nothing fires below)\n\
         pub type Clean = u32;\n\
         // audit:allow(hash-iter)\n\
         pub type M = HashMap<u32, u32>;\n",
    )
    .unwrap();
    let report = audit_workspace(&root).unwrap();
    assert!(report.suppressions.is_empty(), "{:?}", report.suppressions);
    assert!(!report.findings.iter().any(|f| f.rule == ALLOW_BUDGET), "{:?}", report.findings);
    fs::remove_dir_all(&root).unwrap();
}
