//! Fixture tests: every rule must (a) fire on a seeded known-bad
//! snippet with the right span, (b) stay quiet on the equivalent clean
//! code, and (c) respect `audit:allow(rule, reason)` — but only with a
//! reason.

use cmpleak_audit::arch::{check_layering, parse_manifest, CrateInfo};
use cmpleak_audit::rules::{
    audit_source, FileAudit, RuleSet, AMBIENT_RNG, BAD_ALLOW, FLOAT_ORDER, HASH_ITER, INTERIOR_MUT,
    LAYERING, PTR_ORDER, UNWRAP_IN_LIB, WALL_CLOCK,
};

fn run(src: &str) -> FileAudit {
    audit_source("fixture.rs", src, RuleSet::SIM_STATE)
}

/// The rules (with line numbers) that fired.
fn fired(src: &str) -> Vec<(&'static str, u32)> {
    run(src).findings.into_iter().map(|f| (f.rule, f.line)).collect()
}

// ---------------------------------------------------------------- hash-iter

#[test]
fn hash_map_and_set_fire_with_spans() {
    let src = "use std::collections::HashMap;\n\
               fn f() {\n\
               let m: HashMap<u32, u32> = HashMap::new();\n\
               let s = std::collections::HashSet::<u64>::new();\n\
               }\n";
    let got = fired(src);
    assert_eq!(
        got,
        vec![(HASH_ITER, 1), (HASH_ITER, 3), (HASH_ITER, 3), (HASH_ITER, 4)],
        "every HashMap/HashSet mention must fire on its own line"
    );
}

#[test]
fn btree_collections_are_clean() {
    let src = "use std::collections::{BTreeMap, BTreeSet};\nfn f() { let m = BTreeMap::<u32, u32>::new(); }\n";
    assert!(fired(src).is_empty());
}

#[test]
fn hash_in_string_comment_and_raw_string_is_clean() {
    let src = "fn f() -> &'static str {\n\
               // a HashMap would be wrong here\n\
               /* HashSet too */\n\
               let _r = r#\"HashMap in raw string\"#;\n\
               \"HashMap in a string\"\n\
               }\n";
    assert!(fired(src).is_empty());
}

#[test]
fn hash_in_cfg_test_module_is_exempt() {
    let src = "pub fn lib_code() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               use std::collections::HashMap;\n\
               #[test]\n\
               fn t() { let _m: HashMap<u32, u32> = HashMap::new(); }\n\
               }\n";
    assert!(fired(src).is_empty(), "test modules may hash freely");
}

#[test]
fn hash_after_test_module_still_fires() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
               fn t() {}\n\
               }\n\
               use std::collections::HashMap;\n";
    assert_eq!(fired(src), vec![(HASH_ITER, 5)], "exemption must end with the test module");
}

#[test]
fn rule_is_off_when_disabled() {
    let off = RuleSet { hash_iter: false, ..RuleSet::SIM_STATE };
    let audit = audit_source("fixture.rs", "use std::collections::HashMap;\n", off);
    assert!(audit.findings.is_empty());
}

// --------------------------------------------------------------- wall-clock

#[test]
fn instant_and_system_time_fire() {
    let src = "use std::time::Instant;\nfn f() { let _t = std::time::SystemTime::now(); }\n";
    let got = fired(src);
    assert_eq!(got, vec![(WALL_CLOCK, 1), (WALL_CLOCK, 2)]);
}

#[test]
fn harness_rule_set_permits_timing() {
    let audit = audit_source(
        "bench.rs",
        "use std::time::Instant;\nfn t() -> Instant { Instant::now() }\n",
        RuleSet::HARNESS,
    );
    assert!(audit.findings.is_empty(), "the bench harness may read the wall clock");
}

// -------------------------------------------------------------- ambient-rng

#[test]
fn ambient_rng_sources_fire() {
    let src = "fn f() {\n\
               let mut rng = rand::thread_rng();\n\
               let r2 = rand::rngs::OsRng;\n\
               let r3 = StdRng::from_entropy();\n\
               }\n";
    let got = fired(src);
    assert_eq!(got, vec![(AMBIENT_RNG, 2), (AMBIENT_RNG, 3), (AMBIENT_RNG, 4)]);
}

#[test]
fn seeded_rng_is_clean() {
    let src = "fn f(seed: u64) { let rng = SplitMix64::new(seed); }\n";
    assert!(fired(src).is_empty());
}

// ---------------------------------------------------------------- ptr-order

#[test]
fn pointer_to_usize_casts_fire() {
    let src = "fn f(x: &u32, v: &[u8]) {\n\
               let a = x as *const u32 as usize;\n\
               let b = v.as_ptr() as usize;\n\
               }\n";
    let got = fired(src);
    assert_eq!(got, vec![(PTR_ORDER, 2), (PTR_ORDER, 3)]);
}

#[test]
fn ordinary_usize_casts_are_clean() {
    let src = "fn f(x: u32) { let a = x as usize; let b = (x + 1) as usize; }\n";
    assert!(fired(src).is_empty());
}

// ------------------------------------------------------------- interior-mut

#[test]
fn interior_mutability_fires() {
    let src = "use std::cell::RefCell;\n\
               static mut COUNTER: u64 = 0;\n\
               struct S { c: Cell<u32> }\n";
    let got = fired(src);
    assert_eq!(got, vec![(INTERIOR_MUT, 1), (INTERIOR_MUT, 2), (INTERIOR_MUT, 3)]);
}

#[test]
fn plain_statics_and_atomics_are_clean() {
    let src = "static TABLE: [u8; 4] = [0; 4];\nuse std::sync::atomic::AtomicU64;\n";
    assert!(fired(src).is_empty(), "immutable statics and atomics are fine");
}

// ------------------------------------------------------------ unwrap-in-lib

#[test]
fn unwrap_expect_and_panic_family_fire() {
    let src = "fn f(o: Option<u32>) -> u32 {\n\
               let a = o.unwrap();\n\
               let b = o.expect(\"present\");\n\
               if a > b { panic!(\"impossible\") }\n\
               unreachable!()\n\
               }\n";
    let got = fired(src);
    assert_eq!(
        got,
        vec![(UNWRAP_IN_LIB, 2), (UNWRAP_IN_LIB, 3), (UNWRAP_IN_LIB, 4), (UNWRAP_IN_LIB, 5)]
    );
}

#[test]
fn unwrap_in_test_module_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n fn t() { Some(1).unwrap(); panic!(\"in test\"); }\n}\n";
    assert!(fired(src).is_empty());
}

#[test]
fn unwrap_or_else_and_expect_err_variants_are_clean() {
    // Only the aborting forms fire, not the recovering combinators.
    let src = "fn f(o: Option<u32>) -> u32 { o.unwrap_or_else(|| 3) }\n";
    assert!(fired(src).is_empty());
}

// -------------------------------------------------------------- float-order

#[test]
fn float_sum_next_to_spawned_workers_fires() {
    let src = "fn sweep(cells: Vec<Cell>) -> f64 {\n\
               let handles: Vec<_> = cells.into_iter().map(|c| spawn(move || run(c))).collect();\n\
               let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();\n\
               results.iter().sum::<f64>()\n\
               }\n";
    let got = fired(src);
    assert!(got.contains(&(FLOAT_ORDER, 4)), "the turbofish float sum must fire: {got:?}");
}

#[test]
fn float_seeded_fold_next_to_channel_fires() {
    let src = "fn collect(rx: Receiver<f64>) -> f64 {\n\
               let (tx, rx) = channel();\n\
               rx.iter().fold(0.0, |acc, x| acc + x)\n\
               }\n";
    let got = fired(src);
    assert!(got.contains(&(FLOAT_ORDER, 3)), "the float-seeded fold must fire: {got:?}");
}

#[test]
fn fixed_index_order_accumulation_is_the_clean_twin() {
    // Same parallel shape, but results land in an indexed Vec and the
    // reduction walks it by index — the pattern the rule demands.
    let src = "fn sweep(cells: Vec<Cell>) -> f64 {\n\
               let handles: Vec<_> = cells.into_iter().map(|c| spawn(move || run(c))).collect();\n\
               let mut results = vec![0.0f64; handles.len()];\n\
               for (i, h) in handles.into_iter().enumerate() {\n\
               results[i] = h.join().unwrap();\n\
               }\n\
               let mut total = 0.0;\n\
               for r in &results {\n\
               total += r;\n\
               }\n\
               total\n\
               }\n";
    let got = fired(src);
    assert!(
        !got.iter().any(|(r, _)| *r == FLOAT_ORDER),
        "an indexed loop accumulation is exactly the fix and must stay clean: {got:?}"
    );
}

#[test]
fn float_reduction_without_threading_is_clean() {
    let src = "fn total(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n\
               fn avg(xs: &[f64]) -> f64 { xs.iter().fold(0.0, |a, b| a + b) / xs.len() as f64 }\n";
    let got = fired(src);
    assert!(
        !got.iter().any(|(r, _)| *r == FLOAT_ORDER),
        "sequential reductions are deterministic and must not fire: {got:?}"
    );
}

#[test]
fn integer_reductions_next_to_spawn_are_clean() {
    let src = "fn count(cells: Vec<Cell>) -> u64 {\n\
               let handles: Vec<_> = cells.into_iter().map(|c| spawn(move || run(c))).collect();\n\
               handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()\n\
               }\n";
    let got = fired(src);
    assert!(
        !got.iter().any(|(r, _)| *r == FLOAT_ORDER),
        "integer addition is associative; only float reductions fire: {got:?}"
    );
}

#[test]
fn float_order_rule_can_be_disabled_and_allowed() {
    let src = "fn f() {\n\
               let h = spawn(|| 1.0f64);\n\
               let xs = [1.0f64];\n\
               let _t = xs.iter().sum::<f64>();\n\
               let _ = h.join();\n\
               }\n";
    let off = RuleSet { float_order: false, ..RuleSet::SIM_STATE };
    let audit = audit_source("fixture.rs", src, off);
    assert!(!audit.findings.iter().any(|f| f.rule == FLOAT_ORDER));

    let allowed = "fn f() {\n\
               let h = spawn(|| 1.0f64);\n\
               let xs = [1.0f64];\n\
               // audit:allow(float-order, single worker, order is trivially fixed)\n\
               let _t = xs.iter().sum::<f64>();\n\
               let _ = h.join();\n\
               }\n";
    let audit = run(allowed);
    assert!(
        !audit.findings.iter().any(|f| f.rule == FLOAT_ORDER),
        "a reasoned allow must suppress: {:?}",
        audit.findings
    );
}

// -------------------------------------------------------------- audit:allow

#[test]
fn allow_with_reason_suppresses_same_line() {
    let src =
        "use std::collections::HashMap; // audit:allow(hash-iter, membership only, never iterated)\n";
    let audit = run(src);
    assert!(audit.findings.is_empty());
    assert!(audit.warnings.is_empty(), "a used allow is not stale");
}

#[test]
fn allow_with_reason_suppresses_next_line() {
    let src = "// audit:allow(hash-iter, membership only, never iterated)\nuse std::collections::HashMap;\n";
    assert!(run(src).findings.is_empty());
}

#[test]
fn allow_without_reason_does_not_suppress() {
    let src = "// audit:allow(hash-iter)\nuse std::collections::HashMap;\n";
    let got = fired(src);
    assert!(got.contains(&(HASH_ITER, 2)), "the finding must survive: {got:?}");
    assert!(got.contains(&(BAD_ALLOW, 1)), "and the reasonless allow must be called out: {got:?}");
}

#[test]
fn allow_only_covers_its_own_rule() {
    let src = "// audit:allow(wall-clock, wrong rule)\nuse std::collections::HashMap;\n";
    let audit = run(src);
    assert!(
        audit.findings.iter().any(|f| f.rule == HASH_ITER),
        "mismatched allow must not suppress"
    );
    assert!(audit.warnings.iter().any(|w| w.message.contains("stale")), "and it reads as stale");
}

#[test]
fn stale_allow_is_a_warning() {
    let src = "// audit:allow(hash-iter, nothing here any more)\nfn clean() {}\n";
    let audit = run(src);
    assert!(audit.findings.is_empty());
    assert_eq!(audit.warnings.len(), 1);
    assert!(audit.warnings[0].message.contains("stale"));
}

#[test]
fn allow_naming_unknown_rule_is_flagged() {
    let src = "// audit:allow(no-such-rule, why)\nfn clean() {}\n";
    let got = fired(src);
    assert_eq!(got, vec![(BAD_ALLOW, 1)]);
}

#[test]
fn allow_in_doc_comment_is_prose_not_an_allow() {
    let src = "/// Write `// audit:allow(hash-iter, reason)` to suppress.\nfn doc() {}\n";
    let audit = run(src);
    assert!(audit.findings.is_empty());
    assert!(audit.warnings.is_empty(), "doc prose must not register as a stale allow");
}

// ----------------------------------------------------------------- layering

fn crate_info(name: &str, deps: &[&str]) -> CrateInfo {
    CrateInfo {
        name: name.to_string(),
        manifest_path: format!("crates/{name}/Cargo.toml"),
        deps: deps.iter().enumerate().map(|(i, d)| (d.to_string(), i as u32 + 1)).collect(),
        dev_deps: Vec::new(),
    }
}

#[test]
fn downward_dependencies_are_clean() {
    let crates = vec![
        crate_info("cmpleak-mem", &[]),
        crate_info("cmpleak-system", &["cmpleak-mem", "cmpleak-cpu", "cmpleak-coherence"]),
        crate_info("cmpleak-core", &["cmpleak-system", "serde"]),
    ];
    assert!(check_layering(&crates).is_empty());
}

#[test]
fn upward_dependency_fires() {
    let crates = vec![crate_info("cmpleak-mem", &["cmpleak-system"])];
    let findings = check_layering(&crates);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, LAYERING);
    assert!(findings[0].message.contains("strictly downward"), "{}", findings[0].message);
    assert_eq!(findings[0].file, "crates/cmpleak-mem/Cargo.toml");
}

#[test]
fn same_layer_dependency_fires() {
    let crates = vec![crate_info("cmpleak-workloads", &["cmpleak-trace"])];
    let findings = check_layering(&crates);
    assert_eq!(findings.len(), 1, "same-layer edges are also forbidden");
}

#[test]
fn vendor_crate_must_stay_leaf() {
    let crates = vec![crate_info("serde", &["cmpleak-mem"])];
    let findings = check_layering(&crates);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("leaf"), "{}", findings[0].message);
}

#[test]
fn audit_crate_must_stay_outside_the_stack() {
    let crates = vec![crate_info("cmpleak-audit", &["cmpleak-core"])];
    let findings = check_layering(&crates);
    assert_eq!(findings.len(), 1);
    assert!(
        findings[0].message.contains("outside the simulation stack"),
        "{}",
        findings[0].message
    );
}

#[test]
fn unknown_crate_is_flagged_not_ignored() {
    let crates = vec![crate_info("cmpleak-mystery", &[])];
    let findings = check_layering(&crates);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("layering policy"));
}

#[test]
fn dev_dependencies_may_point_upward() {
    let mut cpu = crate_info("cmpleak-cpu", &[]);
    cpu.dev_deps = vec![("cmpleak-workloads".to_string(), 10), ("cmpleak-trace".to_string(), 11)];
    assert!(
        check_layering(&[cpu]).is_empty(),
        "dev-dep cycles are Cargo-legal and used by the differential suites"
    );
}

#[test]
fn manifest_parser_reads_names_and_dep_tables() {
    let toml = "[package]\n\
                name = \"cmpleak-demo\"\n\
                version = \"0.1.0\"\n\
                \n\
                [dependencies]\n\
                cmpleak-mem.workspace = true\n\
                serde = { path = \"../vendor/serde\", features = [\"derive\"] }\n\
                \n\
                [dev-dependencies]\n\
                proptest.workspace = true\n";
    let info = parse_manifest("demo/Cargo.toml", toml);
    assert_eq!(info.name, "cmpleak-demo");
    assert_eq!(
        info.deps.iter().map(|(d, _)| d.as_str()).collect::<Vec<_>>(),
        vec!["cmpleak-mem", "serde"]
    );
    assert_eq!(info.dev_deps.iter().map(|(d, _)| d.as_str()).collect::<Vec<_>>(), vec!["proptest"]);
    assert_eq!(info.deps[0].1, 6, "dep findings must carry the manifest line");
}
