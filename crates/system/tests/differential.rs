//! Differential tests between techniques on identical workloads —
//! invariants strong enough to catch almost any bookkeeping bug:
//!
//! * **Protocol is timing-invisible**: gating cold/invalidated lines
//!   changes nothing architecturally, so a Protocol run must be
//!   *bit-identical* in every timing statistic to the Baseline run.
//! * **Baseline induces no misses**: the shadow directory replays
//!   baseline behaviour, so under the Baseline technique the induced
//!   miss count must be exactly zero; the same holds for Protocol.
//! * **Decay only adds**: a decay run can only add misses, traffic and
//!   cycles relative to baseline, never remove them.

use cmpleak_coherence::Technique;
use cmpleak_cpu::Workload;
use cmpleak_system::{run_simulation, CmpConfig, SimStats};
use cmpleak_workloads::{GenerationalWorkload, WorkloadSpec};

fn run(technique: Technique, spec: WorkloadSpec, instr: u64) -> SimStats {
    let mut cfg = CmpConfig::paper_system(1, technique);
    cfg.instructions_per_core = instr;
    let wls: Vec<Box<dyn Workload>> = (0..cfg.n_cores)
        .map(|c| Box::new(GenerationalWorkload::new(spec, c, cfg.n_cores, 7)) as Box<dyn Workload>)
        .collect();
    run_simulation(cfg, wls)
}

#[test]
fn protocol_is_timing_identical_to_baseline() {
    for spec in [WorkloadSpec::mpeg2dec(), WorkloadSpec::water_ns()] {
        let base = run(Technique::Baseline, spec, 150_000);
        let prot = run(Technique::Protocol, spec, 150_000);
        assert_eq!(base.cycles, prot.cycles, "{}", spec.name);
        assert_eq!(base.mem_bytes, prot.mem_bytes);
        assert_eq!(base.load_latency_sum, prot.load_latency_sum);
        assert_eq!(base.bus_transactions, prot.bus_transactions);
        for (b, p) in base.l2.iter().zip(&prot.l2) {
            assert_eq!(b.reads, p.reads);
            assert_eq!(b.writes, p.writes);
            assert_eq!(b.misses, p.misses);
            assert_eq!(b.writebacks, p.writebacks);
        }
        // Only the power bookkeeping may differ.
        assert!(prot.occupation_rate() < base.occupation_rate());
    }
}

#[test]
fn baseline_and_protocol_induce_zero_misses() {
    for technique in [Technique::Baseline, Technique::Protocol] {
        let stats = run(technique, WorkloadSpec::fmm(), 120_000);
        let induced: u64 = stats.l2.iter().map(|s| s.induced_misses).sum();
        assert_eq!(induced, 0, "{technique:?} must not induce misses");
    }
}

#[test]
fn decay_only_adds_costs() {
    let spec = WorkloadSpec::water_ns();
    let base = run(Technique::Baseline, spec, 200_000);
    let decay = run(Technique::Decay { decay_cycles: 16 * 1024 }, spec, 200_000);
    assert!(decay.cycles >= base.cycles, "decay can only slow things down");
    assert!(decay.mem_bytes >= base.mem_bytes, "decay can only add traffic");
    assert!(decay.amat() >= base.amat() - 1e-9);
    let (bm, dm): (u64, u64) =
        (base.l2.iter().map(|s| s.misses).sum(), decay.l2.iter().map(|s| s.misses).sum());
    assert!(dm >= bm, "decay can only add misses");
    let induced: u64 = decay.l2.iter().map(|s| s.induced_misses).sum();
    assert!(induced > 0, "aggressive decay on a revisiting workload must induce misses");
}

#[test]
fn selective_decay_between_protocol_and_decay() {
    let spec = WorkloadSpec::facerec();
    let decay = run(Technique::Decay { decay_cycles: 16 * 1024 }, spec, 200_000);
    let sel = run(Technique::SelectiveDecay { decay_cycles: 16 * 1024 }, spec, 200_000);
    assert!(sel.cycles <= decay.cycles, "SD never slower than Decay");
    assert!(sel.mem_bytes <= decay.mem_bytes, "SD never more traffic than Decay");
    assert!(sel.occupation_rate() >= decay.occupation_rate(), "SD gates at most as much as Decay");
    // SD's dirty decays are zero by construction.
    let dirty: u64 = sel.l2.iter().map(|s| s.dirty_decay_turnoffs).sum();
    assert_eq!(dirty, 0, "Selective Decay must never decay a Modified line");
}

#[test]
fn decay_interval_monotonicity() {
    let spec = WorkloadSpec::volrend();
    let slow = run(Technique::Decay { decay_cycles: 128 * 1024 }, spec, 200_000);
    let fast = run(Technique::Decay { decay_cycles: 8 * 1024 }, spec, 200_000);
    assert!(fast.occupation_rate() <= slow.occupation_rate(), "shorter interval gates more");
    assert!(fast.cycles >= slow.cycles, "shorter interval costs at least as much time");
    let (sf, ss): (u64, u64) = (
        fast.l2.iter().map(|s| s.turnoffs_decay).sum(),
        slow.l2.iter().map(|s| s.turnoffs_decay).sum(),
    );
    assert!(sf >= ss, "shorter interval fires more turn-offs");
}

#[test]
fn gated_vdd_access_penalty_is_visible() {
    // Decay caches pay +1 cycle per L2 hit; with an enormous interval no
    // line ever decays, so the only difference vs. baseline is the
    // access penalty — cycles may grow slightly, never shrink.
    let spec = WorkloadSpec::mpeg2enc();
    let base = run(Technique::Baseline, spec, 100_000);
    let decay = run(Technique::Decay { decay_cycles: u64::MAX / 8 }, spec, 100_000);
    let turnoffs: u64 = decay.l2.iter().map(|s| s.turnoffs_decay).sum();
    assert_eq!(turnoffs, 0, "interval too long to fire in this run");
    assert!(decay.cycles >= base.cycles);
    assert!(decay.amat() > base.amat(), "the +1 hit latency must show in AMAT");
}
