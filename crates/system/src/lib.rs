//! Cycle-level CMP simulator — the substrate replacing SESC in the
//! reproduction (see DESIGN.md).
//!
//! The modelled system is exactly Fig. 1 of the paper: `N` superscalar
//! cores, each with a private write-through L1 (with MSHR and a
//! coalescing write buffer) and a private, inclusive, snoopy-MESI L2
//! (with MSHR); the L2s cohere over a pipelined shared bus; an external
//! memory interface with fixed latency and finite service rate sits
//! behind it. Leakage techniques plug in via
//! [`cmpleak_coherence::Technique`]: they gate L2 lines through the
//! MESI+TC/TD turn-off mechanism and the hierarchical decay counters of
//! `cmpleak-mem`, while the simulator charges every architectural side
//! effect (write-backs, upper-level invalidations, extra misses, bus and
//! memory occupancy).
//!
//! The simulation is single-threaded and bit-deterministic; parallelism
//! belongs one level up (experiment sweeps in `cmpleak-core`).
//!
//! Entry point: [`CmpSystem::run`] (or the [`run_simulation`]
//! convenience), producing [`SimStats`] plus a 10K-cycle activity trace
//! for the power/thermal models.

#![forbid(unsafe_code)]

pub mod bus;
pub mod config;
pub mod l1;
pub mod l2;
pub mod lanes;
pub mod stats;
pub mod system;

pub use bus::{BusReq, BusReqKind, SharedBus};
pub use config::{BusConfig, CmpConfig, CycleEngine, L1Config, L2Config, MemConfig, SimKernel};
pub use l1::{L1Cache, L1LoadOutcome};
pub use l2::{L2Cache, L2ReadOutcome, L2Target, L2WriteOutcome};
pub use lanes::{run_lane_group, LaneScratch};
pub use stats::{IntervalActivity, L1Stats, L2Stats, SimStats};
pub use system::{
    run_feeds_with_scratch, run_simulation, run_simulation_with_scratch, run_sources_with_scratch,
    CmpSystem, CoreSource, CycleProfile, EventQueueStats, SimScratch,
};

// Re-exported so scratch-pool consumers can read arena counters without
// depending on `cmpleak-mem` directly.
pub use cmpleak_mem::ArenaStats;
// Re-exported so downstream consumers of SimStats (reports, the result
// store) can name the per-core rows without a `cmpleak-cpu` dependency.
pub use cmpleak_cpu::CoreStats;
