//! The CMP system orchestrator: the cycle kernel tying cores, L1s, write
//! buffers, L2s, the snoopy bus and memory together.
//!
//! # Cycle structure
//!
//! 1. fire due events (load completions, L2 responses, fills, TC/TD
//!    grants),
//! 2. grant at most one bus transaction (the bus serialises coherence),
//!    performing the snoop across all other L2s at grant time,
//! 3. per core: advance decay clocks, retry deferred turn-offs, serve the
//!    L2 ports (L1 read misses first, then write-buffer drains),
//! 4. tick the cores (dispatch instructions, issue loads/stores into the
//!    L1 / write buffer through [`CorePort`] adapters),
//! 5. sample the activity trace.
//!
//! Everything is deterministic: FIFO bus arbitration, fixed core order,
//! a FIFO-per-cycle event queue.
//!
//! # Kernels
//!
//! Two kernels drive the loop ([`SimKernel`]), producing **bit-identical**
//! statistics:
//!
//! * **per-cycle** — one [`step_cycle`](CmpSystem) per simulated cycle,
//!   the reference;
//! * **quiescence-skipping** (default) — before stepping, the kernel
//!   checks whether any component can make progress *this* cycle. A cycle
//!   is *quiet* when no event is due, the bus cannot grant, any pending
//!   L1 read miss and any pending write drain are provably stuck (the
//!   head of the read queue / retry queue / write buffer would be
//!   refused by the L2 — a state only an event or bus grant can change),
//!   no decay tick or
//!   deferred turn-off is due, and every core is blocked (drained,
//!   window-full behind an incomplete load, or spinning on a load/store
//!   the hierarchy provably keeps refusing). Quiet cycles change nothing
//!   except time, the powered-lines integral and constant per-cycle
//!   stall counters (core stalls, write-buffer full-stalls, the blocked
//!   read and write-drain heads' L2 retries) — all linear in the span —
//!   so the kernel
//!   advances `now` directly to the next wakeup: the earliest of (next
//!   event, bus grant/drain horizon, decay tick, sampling-interval
//!   boundary). The skipped span provably contains no activity, the
//!   leakage integral is advanced by `powered × span`, and the blocked
//!   components are bulk-charged — hence bit-identity, enforced by
//!   `tests/kernel_differential.rs` and the golden sweep snapshot.
//!
//! # Engines
//!
//! Orthogonally to the kernel, two *engines* execute a stepped cycle
//! ([`CycleEngine`]), again bit-identical:
//!
//! * **full scan** — phases 3 and 4 walk every core, the reference;
//! * **worklist** (default) — an awake-core bitmask limits both phases
//!   to cores that can make progress. A core leaves the active set at
//!   the end of a cycle when its own per-core slice of the quiescence
//!   conditions holds (drained, window-blocked, or spinning on a
//!   provably refused load/store; any L2 queue head provably retried;
//!   no deferred turn-off) — exactly the per-core conditions of
//!   [`CmpSystem::quiescent_wakeup`], which are frozen until a wake
//!   edge. It re-enters on its own events, on *any* bus grant (snoops
//!   and their side effects are the only cross-core mutation channel),
//!   at its next decay deadline, and at bulk-skip/finalize boundaries;
//!   on wake it is bulk-charged the per-cycle stall and retry
//!   statistics its skipped phases would have accrued (the same
//!   charges as [`CmpSystem::advance_quiet`]). Waking a core spuriously
//!   is always harmless — the reference runs every core's phases every
//!   cycle, and a blocked core's phases change nothing but those
//!   charges — so only a *missed* wake could break equivalence, and
//!   the edges above cover every channel that can unblock a core.
//!   The engine also integrates the powered-lines trace as
//!   value × span between *working* cycles (powered counts only flip
//!   on cycles that report work) instead of re-summing every cycle.
//!   Equivalence is enforced by `tests/cycle_engine_differential.rs`
//!   and the golden sweep snapshot.
//!
//! # Spine gating
//!
//! Even with sleeping cores skipped, phases 1–3 used to be consulted on
//! *every stepped cycle* — the residual "spine" cost. Each spine
//! component is instead gated behind a timestamped horizon that says
//! when it can next possibly act, and each horizon is re-derived only
//! at the mutation points that can move it:
//!
//! * **bus arbitration** (both engines) — skipped while
//!   `now < SharedBus::next_possible_grant()`: `u64::MAX` with an
//!   empty request queue, else the occupancy horizon of the holding
//!   transaction. The queue is FIFO with no per-request readiness and a
//!   NACK-retry re-enqueue is itself an occupancy-charged grant, so the
//!   horizon only moves at `push` and `try_grant` — both of which the
//!   cycle loop observes directly.
//! * **L2 port loops** (both engines) — an awake core's phase-3 walk is
//!   skipped while its `ports_idle` bit is set and `now` is before its
//!   cached decay deadline (`l2_decay_due`). The bit means "read queue,
//!   write-retry queue and write buffer are empty, and no deferred
//!   turn-offs are parked", a state only the core itself can leave; it
//!   is cleared at exactly the three enqueue points
//!   ([`PortAdapter`] `try_load` miss, `try_store` accept, and the
//!   write-probe retry push) and recomputed after every executed
//!   [`L2Cache::l2_cycle`] (the only place decay/deferred state moves).
//! * **working-span batching** (worklist engine) — when every awake
//!   core's ports are idle, the engine runs the awake set's phase-4
//!   ticks in lockstep in a tight loop up to the earliest spine
//!   horizon (next event, bus grant, sleeping cores' wake, earliest
//!   decay deadline in the set, sampling-interval close), re-checking
//!   nothing else. The ticks cannot interact: a bus request is pushed
//!   only when `l2_cycle` drains a port queue, and the batch requires
//!   those queues empty, so a tick at most *arms* a queue — which
//!   clears a `ports_idle` bit and exits the loop at the end of that
//!   cycle. Within the span only batched cores' own L1-hit events can
//!   fire (delivered exactly on time inside the loop), no grant or
//!   decay tick can occur, the powered-lines value is frozen so the
//!   lazy value × span integral charges the span exactly, and keeping
//!   a workless core ticking is stats-neutral by the same argument
//!   that makes spurious wakes harmless. The batch exits on the first
//!   globally workless cycle, on any port-idle invalidation, at the
//!   horizon, or when any batched core drains its budget (reproducing
//!   the reference `done()` stop cycle; a core already drained at
//!   entry blocks the batch so it can reach `try_sleep`).
//!
//! All three are pure skip-conditions: no statistic, event, or state
//! transition is deferred past its reference cycle, so bit-identity is
//! preserved and enforced by the same differential matrix.

use crate::bus::{BusReq, BusReqKind, SharedBus};
use crate::config::{CmpConfig, CycleEngine, MemConfig, SimKernel};
use crate::l1::{L1Cache, L1LoadOutcome, PendingLoad};
use crate::l2::{L2Cache, L2ReadOutcome, L2WriteOutcome, SideEffects, UpgradeResult};
use crate::stats::{IntervalActivity, SimStats};
use cmpleak_coherence::bus::SnoopKind;
use cmpleak_cpu::{
    fetch_margin, CoreModel, CorePort, LiveGen, OpSource, OpWindow, ProgressState, StallKind,
    TraceOp, Workload,
};
use cmpleak_mem::{ArenaStats, BankArena, Geometry, LineAddr, WriteBuffer};
use cmpleak_trace::MemTraceCursor;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    /// An L1 load hit completes.
    L1Hit { core: usize, id: u64, issued_at: u64 },
    /// An L2 read hit's response reaches the L1.
    L2ReadDone { core: usize, line: LineAddr },
    /// A miss's data arrives at the requesting L2.
    DataReady { core: usize, line: LineAddr, shared: bool },
    /// An upper-level invalidation acknowledges (TC/TD Grant).
    Grant { core: usize, slot: usize, line: LineAddr },
}

impl EvKind {
    /// The core whose state this event mutates — every event kind is
    /// addressed to exactly one core (the worklist engine's own-event
    /// wake edge relies on this).
    #[inline]
    fn core(&self) -> usize {
        match *self {
            EvKind::L1Hit { core, .. }
            | EvKind::L2ReadDone { core, .. }
            | EvKind::DataReady { core, .. }
            | EvKind::Grant { core, .. } => core,
        }
    }
}

/// A per-core op-delivery backend with enum dispatch: the hot
/// [`CoreModel::tick`] fetch monomorphizes over this type instead of
/// going through a `&mut dyn OpSource` vtable, so the two dominant
/// backends (live generation and shared in-memory trace replay) inline
/// their `next_op`. Anything else rides in the boxed fallback with the
/// old virtual-call cost.
//
// The size skew is deliberate: `MemTraceCursor` carries its decode
// batch inline, and there is exactly one `CoreSource` per core, so
// keeping the batch in-variant (rather than boxing it) saves a pointer
// chase per fetched op at the cost of a few KiB per core.
#[allow(clippy::large_enum_variant)]
pub enum CoreSource {
    /// A live workload generator (wrapped in [`LiveGen`]).
    Live(LiveGen),
    /// A shared in-memory trace cursor (the sweep planner's replay
    /// path).
    Trace(MemTraceCursor),
    /// Any other [`OpSource`] backend, boxed.
    Dyn(Box<dyn OpSource>),
}

impl std::fmt::Debug for CoreSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreSource::Live(s) => f.debug_tuple("Live").field(s).finish(),
            CoreSource::Trace(s) => f.debug_tuple("Trace").field(s).finish(),
            CoreSource::Dyn(s) => f.debug_tuple("Dyn").field(&s.name()).finish(),
        }
    }
}

impl OpSource for CoreSource {
    #[inline]
    fn next_op(&mut self) -> TraceOp {
        match self {
            CoreSource::Live(s) => s.next_op(),
            CoreSource::Trace(s) => cmpleak_cpu::Workload::next_op(s),
            CoreSource::Dyn(s) => s.next_op(),
        }
    }

    fn name(&self) -> &str {
        match self {
            CoreSource::Live(s) => s.name(),
            CoreSource::Trace(s) => cmpleak_cpu::Workload::name(s),
            CoreSource::Dyn(s) => s.name(),
        }
    }

    fn ops_remaining(&self) -> Option<u64> {
        match self {
            CoreSource::Live(s) => s.ops_remaining(),
            CoreSource::Trace(s) => cmpleak_cpu::Workload::ops_remaining(s),
            CoreSource::Dyn(s) => s.ops_remaining(),
        }
    }

    fn fill_ops(&mut self, out: &mut Vec<TraceOp>, max: usize) -> usize {
        match self {
            CoreSource::Live(s) => s.fill_ops(out, max),
            CoreSource::Trace(s) => cmpleak_cpu::Workload::fill_ops(s, out, max),
            CoreSource::Dyn(s) => s.fill_ops(out, max),
        }
    }
}

/// What a sleeping core's skipped per-cycle ticks would have charged —
/// fixed by its [`ProgressState`] at the moment it left the active set
/// (and provably constant while it sleeps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum SleepCharge {
    /// Drained: nothing accrues.
    #[default]
    Idle,
    /// Window-blocked behind an incomplete load: one window stall per
    /// cycle.
    Window,
    /// Spinning on a load the L1 provably keeps refusing: one reject
    /// stall per cycle.
    RejectLoad,
    /// Spinning on a store the write buffer provably keeps refusing:
    /// one reject stall and one write-buffer full-stall per cycle.
    RejectStore,
}

/// Deferred accounting for a core outside the active set. `since` is
/// the first cycle whose phases were skipped; on wake at cycle `w`, the
/// span `w - since` is bulk-charged exactly as
/// [`CmpSystem::advance_quiet`] would have charged it.
#[derive(Debug, Clone, Copy, Default)]
struct CoreSleep {
    since: u64,
    charge: SleepCharge,
    /// The L2 read queue head is present and provably retried: one L2
    /// retry per cycle.
    read_jam: bool,
    /// The write drain head (retry queue, then write buffer) is present
    /// and provably retried: one L2 retry per cycle.
    write_jam: bool,
    /// The L2's next decay deadline at sleep time (frozen while
    /// asleep): the core must be back in the active set by then so its
    /// decay ticks are processed on time.
    decay_at: Option<u64>,
}

/// Cached per-core slice of the interval [`Snapshot`], refreshed only
/// for cores whose counters may have moved since the last interval
/// close (`snap_dirty` accumulates the awake mask).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct CoreSnap {
    instructions: u64,
    l1_accesses: u64,
    l2_reads: u64,
    l2_writes: u64,
    decay_events: u64,
}

/// Cycle-cost attribution counters of one run. All recording is
/// compiled out unless the `cycle-profile` cargo feature is enabled, so
/// the default build pays nothing; with the feature on, the counters
/// say where the per-cycle budget went — cycles stepped vs skipped in
/// bulk, per-core phases (one core's L2 port loop + tick in one stepped
/// cycle) executed vs suppressed by the worklist, events popped and bus
/// grants. Diagnostic only: never part of [`SimStats`] or the
/// bit-identity contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleProfile {
    /// Cycles executed by `step_cycle`.
    pub cycles_stepped: u64,
    /// Cycles advanced in bulk by the quiescence-skip kernel.
    pub cycles_skipped: u64,
    /// Events delivered.
    pub events_popped: u64,
    /// Successful bus grants (including conflict NACK-retries).
    pub bus_grants: u64,
    /// Per-core phases executed in stepped cycles.
    pub core_phases_run: u64,
    /// Per-core phases suppressed by the worklist engine (the core was
    /// outside the active set).
    pub core_phases_suppressed: u64,
    /// Stepped cycles whose bus arbitration was skipped because the
    /// grant horizon ([`SharedBus::next_possible_grant`]) proved no
    /// grant possible this cycle.
    pub grant_checks_skipped: u64,
    /// Awake-core L2 port loops skipped because the per-core
    /// `ports_idle` bit proved the whole phase a no-op.
    pub port_loops_skipped: u64,
    /// Cycles executed inside a working-span batch (lockstep tick-only
    /// inner loop over the awake set; counted separately from
    /// `cycles_stepped`).
    pub cycles_batched: u64,
}

impl CycleProfile {
    #[inline]
    fn on_step(&mut self, run: u64, suppressed: u64) {
        #[cfg(feature = "cycle-profile")]
        {
            self.cycles_stepped += 1;
            self.core_phases_run += run;
            self.core_phases_suppressed += suppressed;
        }
        #[cfg(not(feature = "cycle-profile"))]
        let _ = (run, suppressed);
    }

    #[inline]
    fn on_skip(&mut self, span: u64) {
        #[cfg(feature = "cycle-profile")]
        {
            self.cycles_skipped += span;
        }
        #[cfg(not(feature = "cycle-profile"))]
        let _ = span;
    }

    #[inline]
    fn on_event(&mut self) {
        #[cfg(feature = "cycle-profile")]
        {
            self.events_popped += 1;
        }
    }

    #[inline]
    fn on_grant(&mut self) {
        #[cfg(feature = "cycle-profile")]
        {
            self.bus_grants += 1;
        }
    }

    #[inline]
    fn on_grant_skip(&mut self) {
        #[cfg(feature = "cycle-profile")]
        {
            self.grant_checks_skipped += 1;
        }
    }

    #[inline]
    fn on_ports_skip(&mut self) {
        #[cfg(feature = "cycle-profile")]
        {
            self.port_loops_skipped += 1;
        }
    }

    #[inline]
    fn on_batch(&mut self, span: u64) {
        #[cfg(feature = "cycle-profile")]
        {
            self.cycles_batched += span;
        }
        #[cfg(not(feature = "cycle-profile"))]
        let _ = span;
    }
}

/// Minimum (and default) bucket-ring window of the delayed event queue.
const MIN_EVENT_WINDOW: usize = 1024;

/// Cap on the adaptive window: bounds the ring at 16 K buckets even for
/// extreme memory latencies (everything farther uses the overflow heap).
const MAX_EVENT_WINDOW: usize = 16 * 1024;

/// Minimum profitable working-span batch: below this the entry checks
/// cost about as much as the per-cycle spine they replace.
const BATCH_MIN: u64 = 4;

/// Occupancy counters of the bucketed event queue, exposed for tuning
/// (ROADMAP "calendar-queue tuning"): how often events landed in the
/// ring vs. spilled to the overflow heap, and how many spilled events
/// had to migrate back as the window slid. Debug/diagnostic only — the
/// two kernels advance the cursor differently, so these counters are
/// *not* part of the bit-identity contract and never enter `SimStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventQueueStats {
    /// Bucket-ring window in cycles (sized from the memory latency).
    pub window: u64,
    /// Events pushed directly into a ring bucket.
    pub ring_pushes: u64,
    /// Events pushed beyond the window into the overflow heap.
    pub overflow_pushes: u64,
    /// Overflow events migrated into buckets as the cursor advanced.
    pub overflow_migrations: u64,
}

/// Bucketed delayed event queue (calendar-queue style).
///
/// The ring covers the window `[cursor, cursor + window)`; within it,
/// every pending event's cycle maps to a *unique* bucket, so a bucket
/// holds the events of exactly one cycle in push (FIFO) order and an
/// occupancy bitmap finds the earliest pending cycle in a few word
/// scans — O(1) push/pop against the reference `BinaryHeap`'s O(log n),
/// with no per-event ordering key. Events beyond the window go to a
/// sequence-numbered overflow heap and migrate into buckets when the
/// cursor advances, *before* any same-cycle direct push can happen, so
/// FIFO order per cycle is preserved end to end. Pop order is therefore
/// identical to the heap's `(cycle, push-sequence)` order — for *any*
/// window size, which is why the window can adapt per run: it is sized
/// at construction from the configured memory latency
/// ([`EventQueue::window_for`]) so the common `DataReady` horizon lands
/// in the ring instead of churning through the overflow heap.
#[derive(Debug)]
struct EventQueue {
    buckets: Vec<VecDeque<(u64, EvKind)>>,
    /// One bit per bucket: non-empty.
    occ: Vec<u64>,
    /// Events at `cycle >= cursor + window`, ordered by `(cycle, seq)`.
    overflow: BinaryHeap<Reverse<(u64, u64, EvKind)>>,
    /// Window base; no pending event is earlier. Advances monotonically.
    cursor: u64,
    seq: u64,
    in_buckets: usize,
    stats: EventQueueStats,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    fn new() -> Self {
        Self::with_window(MIN_EVENT_WINDOW)
    }

    fn with_window(window: usize) -> Self {
        assert!(window.is_power_of_two(), "bucket math relies on a power-of-two window");
        Self {
            buckets: vec![VecDeque::new(); window],
            occ: vec![0; window / 64],
            overflow: BinaryHeap::new(),
            cursor: 0,
            seq: 0,
            in_buckets: 0,
            stats: EventQueueStats { window: window as u64, ..Default::default() },
        }
    }

    /// Ring window covering the configured memory round-trip (latency +
    /// one channel service slot), so fills land in buckets even under a
    /// slow memory; clamped to `[MIN, MAX]_EVENT_WINDOW` and rounded to
    /// a power of two for the index mask.
    fn window_for(mem: &MemConfig) -> usize {
        (mem.latency + mem.service + 1)
            .next_power_of_two()
            .clamp(MIN_EVENT_WINDOW as u64, MAX_EVENT_WINDOW as u64) as usize
    }

    /// Empty the queue for reuse, keeping the ring's allocations when
    /// the window is unchanged (a different window resizes it).
    fn reset(&mut self, window: usize) {
        assert!(window.is_power_of_two());
        if window != self.buckets.len() {
            self.buckets.resize(window, VecDeque::new());
            self.occ.resize(window / 64, 0);
        }
        for b in &mut self.buckets {
            b.clear();
        }
        self.occ.fill(0);
        self.overflow.clear();
        self.cursor = 0;
        self.seq = 0;
        self.in_buckets = 0;
        self.stats = EventQueueStats { window: window as u64, ..Default::default() };
    }

    #[inline]
    fn window(&self) -> u64 {
        self.buckets.len() as u64
    }

    #[inline]
    fn bucket_index(&self, at: u64) -> usize {
        (at as usize) & (self.buckets.len() - 1)
    }

    /// Accumulated ring/overflow occupancy counters.
    fn stats(&self) -> EventQueueStats {
        self.stats
    }

    fn push(&mut self, at: u64, kind: EvKind) {
        debug_assert!(at >= self.cursor, "events are never scheduled in the past");
        self.seq += 1;
        if at < self.cursor + self.window() {
            let idx = self.bucket_index(at);
            debug_assert!(self.buckets[idx].back().is_none_or(|&(t, _)| t == at));
            self.buckets[idx].push_back((at, kind));
            self.occ[idx / 64] |= 1 << (idx % 64);
            self.in_buckets += 1;
            self.stats.ring_pushes += 1;
        } else {
            self.overflow.push(Reverse((at, self.seq, kind)));
            self.stats.overflow_pushes += 1;
        }
    }

    /// Move the window base forward and pull newly covered overflow
    /// events into their buckets (in `(cycle, seq)` order).
    fn advance_cursor(&mut self, to: u64) {
        if to <= self.cursor {
            return;
        }
        self.cursor = to;
        while let Some(&Reverse((at, _, _))) = self.overflow.peek() {
            if at >= self.cursor + self.window() {
                break;
            }
            // audit:allow(unwrap-in-lib, pop follows a successful peek on the same heap in the same loop iteration)
            let Reverse((at, _, kind)) = self.overflow.pop().expect("peeked");
            let idx = self.bucket_index(at);
            self.buckets[idx].push_back((at, kind));
            self.occ[idx / 64] |= 1 << (idx % 64);
            self.in_buckets += 1;
            self.stats.overflow_migrations += 1;
        }
    }

    /// Earliest cycle with a pending bucketed event: circular bitmap
    /// scan starting at the cursor's bucket (bucket→cycle is unique
    /// within the window, so the first set bit is the minimum).
    fn next_bucket_at(&self) -> Option<u64> {
        if self.in_buckets == 0 {
            return None;
        }
        let words = self.occ.len();
        let start = self.bucket_index(self.cursor);
        let (sw, sb) = (start / 64, start % 64);
        for i in 0..=words {
            let w = (sw + i) % words;
            let mut bits = self.occ[w];
            if i == 0 {
                bits &= !0u64 << sb;
            } else if i == words {
                bits &= !(!0u64 << sb);
            }
            if bits != 0 {
                let idx = w * 64 + bits.trailing_zeros() as usize;
                // audit:allow(unwrap-in-lib, the occupancy bitmap bit was set, so the bucket is non-empty)
                return Some(self.buckets[idx].front().expect("occupied bucket").0);
            }
        }
        // audit:allow(unwrap-in-lib, in_buckets and the occupancy bitmap are updated together on every push and pop)
        unreachable!("in_buckets > 0 but no occupied bucket")
    }

    /// Earliest pending event cycle (the skip kernel's event wakeup).
    fn next_at(&self) -> Option<u64> {
        let bucket = self.next_bucket_at();
        let over = self.overflow.peek().map(|&Reverse((at, _, _))| at);
        match (bucket, over) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn pop_due(&mut self, now: u64) -> Option<EvKind> {
        // After a long skip the earliest pending event may still sit in
        // the overflow heap (the window never slid over it): pull it in
        // first. Overflow times are always ≥ cursor + window > every
        // bucket time, so this can only matter when the ring is empty.
        if self.in_buckets == 0 {
            if let Some(&Reverse((at, _, _))) = self.overflow.peek() {
                if at <= now {
                    self.advance_cursor(at);
                }
            }
        }
        if let Some(t) = self.next_bucket_at() {
            if t <= now {
                let idx = self.bucket_index(t);
                // audit:allow(unwrap-in-lib, next_bucket_at returned this bucket, so its FIFO is non-empty)
                let (at, kind) = self.buckets[idx].pop_front().expect("occupied bucket");
                debug_assert_eq!(at, t);
                if self.buckets[idx].is_empty() {
                    self.occ[idx / 64] &= !(1 << (idx % 64));
                }
                self.in_buckets -= 1;
                self.advance_cursor(t);
                return Some(kind);
            }
        }
        // Nothing due: slide the window up to `now` (everything pending
        // is later, so the cursor invariant holds) to keep direct pushes
        // in the fast bucket path.
        self.advance_cursor(now);
        None
    }

    fn is_empty(&self) -> bool {
        self.in_buckets == 0 && self.overflow.is_empty()
    }

    /// Monotone push counter: comparing it across a span detects whether
    /// any event was scheduled in between (the working-span batch uses
    /// it to notice its own ticks arming a wakeup). Pops never move it.
    #[inline]
    fn push_seq(&self) -> u64 {
        self.seq
    }
}

/// The write-retry queue of one core: FIFO order plus an exact multiset
/// index so the decay machinery's membership test
/// ([`CmpSystem::try_turn_off`]'s pending-write check) is O(log n)
/// instead of a linear scan that degrades on deep retry queues. The
/// index is a `BTreeMap`, not a `HashMap`: nothing iterates it today,
/// but simulation state must never hold a structure whose iteration
/// order could silently leak into results (determinism audit policy).
#[derive(Debug, Default)]
struct RetryQueue {
    queue: VecDeque<LineAddr>,
    members: BTreeMap<LineAddr, u32>,
}

impl RetryQueue {
    fn push_back(&mut self, line: LineAddr) {
        *self.members.entry(line).or_insert(0) += 1;
        self.queue.push_back(line);
    }

    fn front(&self) -> Option<LineAddr> {
        self.queue.front().copied()
    }

    fn pop_front(&mut self) -> Option<LineAddr> {
        let line = self.queue.pop_front()?;
        match self.members.get_mut(&line) {
            Some(1) => {
                self.members.remove(&line);
            }
            Some(n) => *n -= 1,
            // audit:allow(unwrap-in-lib, push_back increments the index entry for every queued line, so pop_front always finds one)
            None => unreachable!("membership index tracks the queue exactly"),
        }
        Some(line)
    }

    fn contains(&self, line: LineAddr) -> bool {
        self.members.contains_key(&line)
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn clear(&mut self) {
        self.queue.clear();
        self.members.clear();
    }
}

/// How a batch of L2 side effects reached the system, deciding the
/// transport of write-backs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WbRoute {
    /// Snoop flush: the data phase rides the in-progress bus transaction;
    /// only the memory channel is charged.
    SnoopFlush,
    /// Victim eviction or turn-off: a separate bus transaction is queued.
    Queued,
}

/// Where a cycle's core ticks fetch their ops from: the system's own
/// per-core sources (the sequential path) or a shared [`OpWindow`] with
/// external per-core read positions (the lane engine). Carrying the
/// window by reference keeps the borrow disjoint from the system's own
/// fields, so the tick's [`PortAdapter`] splits off cleanly.
enum Feed<'w> {
    Own,
    Window { window: &'w OpWindow, pos: &'w mut [u64] },
}

/// Adapter giving one core a view of its L1 and write buffer for a cycle.
struct PortAdapter<'a> {
    now: u64,
    core: usize,
    geom: Geometry,
    l1_hit_latency: u64,
    l1: &'a mut L1Cache,
    wb: &'a mut WriteBuffer,
    read_queue: &'a mut VecDeque<LineAddr>,
    events: &'a mut EventQueue,
    /// The system's per-core ports-idle mask: feeding the read queue or
    /// the write buffer arms the core's L2 port loops, so the tick must
    /// clear the bit at exactly these enqueue points (the invalidation
    /// half of the `ports_idle` contract; see `refresh_ports_idle`).
    ports_idle: &'a mut u64,
}

impl CorePort for PortAdapter<'_> {
    fn try_load(&mut self, addr: u64, id: u64) -> bool {
        let line = self.geom.line_of(addr);
        match self.l1.access_load(line, PendingLoad { id, issued_at: self.now }) {
            L1LoadOutcome::Hit => {
                self.events.push(
                    self.now + self.l1_hit_latency,
                    EvKind::L1Hit { core: self.core, id, issued_at: self.now },
                );
                true
            }
            L1LoadOutcome::MissPrimary => {
                self.read_queue.push_back(line);
                *self.ports_idle &= !(1u64 << self.core);
                true
            }
            L1LoadOutcome::MissSecondary => true,
            L1LoadOutcome::Refused => false,
        }
    }

    fn try_store(&mut self, addr: u64) -> bool {
        let line = self.geom.line_of(addr);
        if !self.wb.push(line) {
            return false;
        }
        *self.ports_idle &= !(1u64 << self.core);
        self.l1.access_store(line);
        true
    }
}

/// Snapshot of cumulative counters for interval differencing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Snapshot {
    instructions: u64,
    l1_accesses: u64,
    l2_reads: u64,
    l2_writes: u64,
    bus_transactions: u64,
    bus_bytes: u64,
    mem_bytes: u64,
    decay_events: u64,
}

/// Reusable allocation pools for repeated simulations (e.g. one per
/// sweep worker): the event queue's bucket ring, the side-effect
/// buffers, the per-core queues *and* the multi-MB per-line columns
/// (tag arrays, line-state banks, shadow directories — via the
/// [`BankArena`]) survive across runs instead of being reallocated for
/// every grid cell. Pass to [`run_simulation_with_scratch`]; a
/// default-constructed scratch is simply empty pools.
#[derive(Debug, Default)]
pub struct SimScratch {
    events: EventQueue,
    fx: SideEffects,
    read_queues: Vec<VecDeque<LineAddr>>,
    write_retries: Vec<RetryQueue>,
    arena: BankArena,
    profile: CycleProfile,
}

impl SimScratch {
    /// Allocation counters of the per-line-state arena (how many column
    /// checkouts were served from the pool vs. freshly allocated).
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Ring/overflow occupancy counters of the event queue from the most
    /// recently *completed* run (the queue is handed back on reclaim and
    /// its counters reset when the next run starts).
    pub fn event_queue_stats(&self) -> EventQueueStats {
        self.events.stats()
    }

    /// Cycle-cost attribution counters of the most recently *completed*
    /// run (all zero unless the `cycle-profile` feature is enabled).
    pub fn cycle_profile(&self) -> CycleProfile {
        self.profile
    }
}

/// The simulated CMP.
pub struct CmpSystem {
    cfg: CmpConfig,
    now: u64,
    cores: Vec<CoreModel>,
    /// Per-core op delivery channels: live generators (wrapped in
    /// [`LiveGen`]), shared in-memory trace cursors, or any other
    /// [`OpSource`] backend boxed — enum-dispatched ([`CoreSource`]) so
    /// the hot fetch inlines. Empty for window-fed systems
    /// ([`CmpSystem::for_window`]), whose ops arrive through a shared
    /// [`OpWindow`] instead.
    sources: Vec<CoreSource>,
    /// Per-core workload names for the final statistics — captured at
    /// construction so window-fed systems (no owned sources) report the
    /// same `core_workloads` as the sequential path.
    core_names: Vec<String>,
    l1s: Vec<L1Cache>,
    wbs: Vec<WriteBuffer>,
    l2s: Vec<L2Cache>,
    bus: SharedBus,
    events: EventQueue,
    read_queues: Vec<VecDeque<LineAddr>>,
    write_retries: Vec<RetryQueue>,
    fx: SideEffects,
    /// Owns the caches' per-line columns between runs; adopted from the
    /// scratch at construction, handed back (with the columns released)
    /// at reclaim.
    arena: BankArena,
    // accounting
    loads_completed: u64,
    load_latency_sum: u64,
    c2c_transfers: u64,
    upper_invalidations: u64,
    trace: Vec<IntervalActivity>,
    last_snap: Snapshot,
    interval_powered: u64,
    interval_start: u64,
    /// Dirty bit over the *structural* half of [`CmpSystem::done`]
    /// (queues, cores, events — everything but the time-dependent bus
    /// horizons): recomputed only after a cycle that did work, so the
    /// per-cycle drain check stops rescanning every component on every
    /// quiet cycle.
    struct_dirty: bool,
    struct_quiet: bool,
    // ---- worklist engine state (see the module docs, "Engines") ----
    /// Effective engine: the configured [`CycleEngine::Worklist`] with
    /// the >64-core fallback to the full scan already applied.
    worklist: bool,
    /// One bit per core in the active set. Ground truth for sleep
    /// state; `sleep[c]` is meaningful only while bit `c` is clear.
    awake: u64,
    /// All `n_cores` bits set.
    all_mask: u64,
    /// Deferred accounting of sleeping cores.
    sleep: Vec<CoreSleep>,
    /// Earliest decay deadline over the sleeping cores (`u64::MAX` when
    /// none): reaching it triggers a due-deadline scan so decay ticks
    /// are processed exactly on time. May be stale-low after a wake —
    /// the scan then recomputes it.
    next_core_wake: u64,
    /// Σ `powered_lines()` over all L2s as of the last working cycle
    /// (powered counts only flip on cycles that report work).
    powered_cache: u64,
    /// First cycle not yet charged into `interval_powered`; cycles
    /// `[powered_synced_at, t)` are charged at `powered_cache` each by
    /// [`CmpSystem::sync_powered_to`].
    powered_synced_at: u64,
    /// Σ lines over all L2s, cached at construction (pure geometry).
    lines_total: u64,
    /// Per-core interval-snapshot cache + running aggregate, refreshed
    /// only for cores in `snap_dirty` at interval closes.
    core_snaps: Vec<CoreSnap>,
    snap_agg: Snapshot,
    snap_dirty: u64,
    /// Cycle-cost attribution (no-op unless the `cycle-profile` feature
    /// is on).
    profile: CycleProfile,
    // ---- spine gating (see the module docs, "Spine gating") ----
    /// One bit per core: set while that core's whole L2 port phase
    /// ([`CmpSystem::l2_cycle`]) is provably a no-op — read queue, write
    /// retry queue and write buffer all empty, no deferred turn-off
    /// pending — *except* for decay clock work, which is gated separately
    /// by `l2_decay_due`. Refreshed after every `l2_cycle` run; cleared
    /// at the only points that can arm the phase (tick enqueues through
    /// [`PortAdapter`], event-path write retries).
    ports_idle: u64,
    /// Per-core decay deadline cache (`u64::MAX` when the technique has
    /// no decay clock): `l2_cycle` must run at this cycle even with
    /// `ports_idle` set, so decay ticks are processed exactly on time.
    /// The deadline only moves inside `l2_cycle` (`take_decayed` →
    /// `advance_to`), so refreshing it there keeps the cache exact.
    l2_decay_due: Vec<u64>,
}

impl std::fmt::Debug for CmpSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Workloads are trait objects; summarize instead of deriving.
        f.debug_struct("CmpSystem")
            .field("now", &self.now)
            .field("n_cores", &self.cores.len())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl CmpSystem {
    /// Build a system running one live workload generator per core
    /// (each wrapped in a [`LiveGen`] op source).
    ///
    /// # Panics
    /// Panics unless exactly `cfg.n_cores` workloads are supplied, or if
    /// the configuration is invalid.
    pub fn new(cfg: CmpConfig, workloads: Vec<Box<dyn Workload>>) -> Self {
        Self::new_with_scratch(cfg, workloads, &mut SimScratch::default())
    }

    /// Like [`CmpSystem::new`], but adopts the reusable pools of
    /// `scratch` (emptied, allocations kept). Pair with
    /// [`run_simulation_with_scratch`], which returns them when the run
    /// finishes.
    ///
    /// # Panics
    /// As [`CmpSystem::new`].
    pub fn new_with_scratch(
        cfg: CmpConfig,
        workloads: Vec<Box<dyn Workload>>,
        scratch: &mut SimScratch,
    ) -> Self {
        Self::with_sources(cfg, workloads.into_iter().map(LiveGen::boxed).collect(), scratch)
    }

    /// Build a system over arbitrary per-core [`OpSource`] backends —
    /// the general constructor behind [`CmpSystem::new_with_scratch`],
    /// used directly when cores replay shared in-memory trace cursors.
    ///
    /// # Panics
    /// Panics unless exactly `cfg.n_cores` sources are supplied, or if
    /// the configuration is invalid.
    pub fn with_sources(
        cfg: CmpConfig,
        sources: Vec<Box<dyn OpSource>>,
        scratch: &mut SimScratch,
    ) -> Self {
        Self::with_feeds(cfg, sources.into_iter().map(CoreSource::Dyn).collect(), scratch)
    }

    /// Like [`CmpSystem::with_sources`], but over enum-dispatched
    /// [`CoreSource`] backends, so live-generation and shared-trace
    /// fetches inline into the core tick instead of paying a virtual
    /// call per op.
    ///
    /// # Panics
    /// Panics unless exactly `cfg.n_cores` feeds are supplied, or if
    /// the configuration is invalid.
    pub fn with_feeds(cfg: CmpConfig, sources: Vec<CoreSource>, scratch: &mut SimScratch) -> Self {
        assert_eq!(sources.len(), cfg.n_cores, "one op source per core");
        let core_names = sources.iter().map(|s| s.name().to_string()).collect();
        Self::build(cfg, sources, core_names, scratch)
    }

    /// Build a system whose cores are fed from a shared [`OpWindow`]
    /// through [`CmpSystem::run_segment`] instead of owned sources (the
    /// lane engine, see [`crate::lanes`]). `core_names` label the
    /// per-core statistics exactly as the window's sources would.
    ///
    /// # Panics
    /// Panics unless exactly `cfg.n_cores` names are supplied, or if the
    /// configuration is invalid.
    pub fn for_window(cfg: CmpConfig, core_names: Vec<String>, scratch: &mut SimScratch) -> Self {
        assert_eq!(core_names.len(), cfg.n_cores, "one workload name per core");
        Self::build(cfg, Vec::new(), core_names, scratch)
    }

    fn build(
        cfg: CmpConfig,
        sources: Vec<CoreSource>,
        core_names: Vec<String>,
        scratch: &mut SimScratch,
    ) -> Self {
        cfg.validate();
        let cores =
            (0..cfg.n_cores).map(|_| CoreModel::new(cfg.core, cfg.instructions_per_core)).collect();
        let mut arena = std::mem::take(&mut scratch.arena);
        let l1s = (0..cfg.n_cores).map(|_| L1Cache::new_in(&cfg.l1, &mut arena)).collect();
        let wbs = (0..cfg.n_cores).map(|_| WriteBuffer::new(cfg.l1.write_buffer)).collect();
        let l2s: Vec<L2Cache> = (0..cfg.n_cores)
            .map(|_| L2Cache::new_in(&cfg.l2, cfg.technique, cfg.shadow_tags, &mut arena))
            .collect();
        let bus = SharedBus::new(cfg.bus, cfg.mem, cfg.l2.line_bytes);
        // The worklist's active-set mask is one machine word; wider
        // systems fall back to the full scan (bit-identical anyway).
        let worklist = cfg.engine == CycleEngine::Worklist && cfg.n_cores <= 64;
        let all_mask = if cfg.n_cores >= 64 { !0u64 } else { (1u64 << cfg.n_cores) - 1 };
        let lines_total = l2s.iter().map(|l| l.geometry().lines() as u64).sum();
        let powered_cache = l2s.iter().map(|l| l.powered_lines()).sum();
        // All ports-idle bits start clear: the first cycle runs every
        // core's L2 phase once and the refresh takes over from there.
        let l2_decay_due =
            l2s.iter().map(|l| l.next_decay_deadline().unwrap_or(u64::MAX)).collect();
        let mut events = std::mem::take(&mut scratch.events);
        events.reset(EventQueue::window_for(&cfg.mem));
        let mut fx = std::mem::take(&mut scratch.fx);
        fx.clear();
        let mut read_queues = std::mem::take(&mut scratch.read_queues);
        read_queues.iter_mut().for_each(VecDeque::clear);
        read_queues.resize_with(cfg.n_cores, VecDeque::new);
        let mut write_retries = std::mem::take(&mut scratch.write_retries);
        write_retries.iter_mut().for_each(RetryQueue::clear);
        write_retries.resize_with(cfg.n_cores, RetryQueue::default);
        Self {
            now: 0,
            cores,
            sources,
            core_names,
            l1s,
            wbs,
            l2s,
            bus,
            events,
            read_queues,
            write_retries,
            fx,
            loads_completed: 0,
            load_latency_sum: 0,
            c2c_transfers: 0,
            upper_invalidations: 0,
            trace: Vec::new(),
            last_snap: Snapshot::default(),
            interval_powered: 0,
            interval_start: 0,
            struct_dirty: true,
            struct_quiet: false,
            worklist,
            awake: all_mask,
            all_mask,
            sleep: vec![CoreSleep::default(); cfg.n_cores],
            next_core_wake: u64::MAX,
            powered_cache,
            powered_synced_at: 0,
            lines_total,
            core_snaps: vec![CoreSnap::default(); cfg.n_cores],
            snap_agg: Snapshot::default(),
            snap_dirty: all_mask,
            profile: CycleProfile::default(),
            ports_idle: 0,
            l2_decay_due,
            arena,
            cfg,
        }
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Read-only access to an L2 (tests/examples).
    pub fn l2(&self, core: usize) -> &L2Cache {
        &self.l2s[core]
    }

    /// Run to completion (all cores drained, all queues empty) or to the
    /// configured cycle cap, and return the statistics.
    pub fn run(mut self) -> SimStats {
        self.run_loop();
        self.finalize()
    }

    /// Event-queue occupancy counters (diagnostics; see
    /// [`EventQueueStats`]).
    pub fn event_queue_stats(&self) -> EventQueueStats {
        self.events.stats()
    }

    /// Cycle-cost attribution counters (all zero unless the
    /// `cycle-profile` feature is enabled; see [`CycleProfile`]).
    pub fn cycle_profile(&self) -> CycleProfile {
        self.profile
    }

    fn run_loop(&mut self) {
        match self.cfg.kernel {
            SimKernel::PerCycle => {
                while !self.done() && self.now < self.cfg.max_cycles {
                    self.step_cycle();
                }
            }
            SimKernel::QuiescenceSkip => {
                // Only probe for quiescence after a cycle that did no
                // work: active phases pay zero check overhead, quiet
                // spans pay one plain step at their first cycle (which
                // is exact anyway — stepping is always allowed).
                let mut try_skip = false;
                loop {
                    if self.done() || self.now >= self.cfg.max_cycles {
                        break;
                    }
                    if try_skip {
                        if let Some(target) = self.quiescent_wakeup() {
                            self.advance_quiet(target);
                            // The span may have reached the drain
                            // horizon or the cycle cap: recheck before
                            // stepping the wake cycle.
                            continue;
                        }
                    }
                    try_skip = !self.step_cycle();
                }
            }
        }
    }

    /// Cycles this lane can provably run without any core tick reading
    /// past the window. A fetching core consumes at most
    /// [`fetch_margin`] ops per tick, so `available / margin` ticks are
    /// safe on its stream; the lane-wide bound is the minimum over every
    /// core that still constrains the window. Cores past their
    /// instruction budget never fetch again ([`CoreModel::may_fetch`] is
    /// monotone — instruction counts only grow), and finished streams
    /// are exempt: their remaining buffered ops are all there will ever
    /// be, and the budget completes within them (or the cursor's overrun
    /// panic reports the contract violation). Zero means the very next
    /// cycle could overrun: pause and refill. Computing a whole budget
    /// instead of a per-cycle yes/no keeps the starvation guard out of
    /// the hot loop — one core scan buys thousands of unchecked cycles.
    fn starvation_free_cycles(&self, window: &OpWindow, pos: &[u64]) -> u64 {
        let margin = fetch_margin(self.cfg.core.width);
        let mut safe = u64::MAX;
        for (c, &p) in pos.iter().enumerate().take(self.cfg.n_cores) {
            if self.cores[c].may_fetch() && !window.finished(c) {
                safe = safe.min(window.available(c, p) / margin);
            }
        }
        safe
    }

    /// Run until completion (`true`) or until the lane needs more ops
    /// buffered in the shared window (`false`; re-call after
    /// [`OpWindow::advance`]). `pos` holds the lane's per-core absolute
    /// read positions and persists across segments; time, pipeline and
    /// cache state live in `self`, so the cycle sequence is exactly the
    /// one [`CmpSystem::run_loop`] would produce — pauses land *between*
    /// cycles and consume nothing.
    pub(crate) fn run_segment(&mut self, window: &OpWindow, pos: &mut [u64]) -> bool {
        match self.cfg.kernel {
            SimKernel::PerCycle => loop {
                if self.done() || self.now >= self.cfg.max_cycles {
                    break;
                }
                let mut safe = self.starvation_free_cycles(window, pos);
                if safe == 0 {
                    return false;
                }
                while safe > 0 && !self.done() && self.now < self.cfg.max_cycles {
                    self.step_cycle_with(&mut Feed::Window { window, pos: &mut *pos });
                    safe -= 1;
                }
            },
            SimKernel::QuiescenceSkip => {
                // Mirrors `run_loop`'s skip kernel: quiet spans advance
                // in bulk. A quiet cycle ticks no core, so skipping
                // never touches the window and is not charged against
                // the starvation budget (it consumes no ops).
                let mut try_skip = false;
                loop {
                    if self.done() || self.now >= self.cfg.max_cycles {
                        break;
                    }
                    let mut safe = self.starvation_free_cycles(window, pos);
                    if safe == 0 {
                        return false;
                    }
                    while safe > 0 && !self.done() && self.now < self.cfg.max_cycles {
                        if try_skip {
                            if let Some(target) = self.quiescent_wakeup() {
                                self.advance_quiet(target);
                                continue;
                            }
                        }
                        try_skip =
                            !self.step_cycle_with(&mut Feed::Window { window, pos: &mut *pos });
                        safe -= 1;
                    }
                }
            }
        }
        true
    }

    /// Drain check. The structural half (queues, cores, events) only
    /// changes on cycles that did work, so it is cached behind
    /// `struct_dirty`; the bus/memory busy horizons are pure time
    /// comparisons and are evaluated fresh.
    fn done(&mut self) -> bool {
        if self.struct_dirty {
            self.struct_quiet = self.cores.iter().all(|c| c.drained())
                && self.wbs.iter().all(|w| w.is_empty())
                && self.write_retries.iter().all(|q| q.is_empty())
                && self.read_queues.iter().all(|q| q.is_empty())
                && self.l1s.iter().all(|l| l.outstanding_misses() == 0)
                && self.l2s.iter().all(|l| !l.busy())
                && self.bus.queue_is_empty()
                && self.events.is_empty();
            self.struct_dirty = false;
        }
        self.struct_quiet && self.bus.idle(self.now)
    }

    fn step_cycle(&mut self) -> bool {
        self.step_cycle_with(&mut Feed::Own)
    }

    fn step_cycle_with(&mut self, feed: &mut Feed) -> bool {
        if self.worklist {
            self.step_cycle_worklist(feed)
        } else {
            self.step_cycle_scan(feed)
        }
    }

    /// The reference engine: every stepped cycle walks every core.
    /// ("Reference" for the worklist's active set, not for spine gating:
    /// the grant-horizon and ports-idle gates skip provable no-ops and
    /// apply to both engines alike.)
    fn step_cycle_scan(&mut self, feed: &mut Feed) -> bool {
        let mut work = false;
        while let Some(ev) = self.events.pop_due(self.now) {
            self.profile.on_event();
            self.handle_event(ev);
            work = true;
        }
        if self.now >= self.bus.next_possible_grant() {
            if self.bus_grant() {
                self.profile.on_grant();
                work = true;
            }
        } else {
            self.profile.on_grant_skip();
        }
        for core in 0..self.cfg.n_cores {
            work |= self.l2_phase(core);
        }
        for core in 0..self.cfg.n_cores {
            work |= self.tick_core(core, feed);
        }
        self.profile.on_step(self.cfg.n_cores as u64, 0);
        self.sample_cycle();
        self.now += 1;
        self.struct_dirty |= work;
        work
    }

    /// The worklist engine: phases 3 and 4 visit only the active set.
    /// Bit-identical to [`CmpSystem::step_cycle_scan`] — a core outside
    /// the set would have contributed nothing but its per-cycle stall
    /// and retry charges, which are settled in bulk when it wakes. See
    /// the module docs ("Engines") for the invariants.
    fn step_cycle_worklist(&mut self, feed: &mut Feed) -> bool {
        // Working span: when every awake core's L2 ports are provably
        // idle and every spine horizon is strictly ahead, their ticks
        // cannot interact (bus requests are only pushed when a port
        // queue drains, and those queues are empty), so the whole awake
        // set runs in lockstep in a tight inner loop instead of
        // re-consulting the spine each cycle. Own-source feeds only —
        // the lane engine's starvation budget is debited per
        // `run_segment` step, which a multi-cycle batch would bypass.
        // A core already drained at entry is excluded (it must reach
        // `try_sleep` on a normal cycle, or it would re-trigger the
        // batch's drain exit every span).
        if self.awake != 0
            && self.awake & self.ports_idle == self.awake
            && matches!(feed, Feed::Own)
            && !self.any_drained(self.awake)
        {
            let horizon = self.batch_horizon(self.awake);
            if horizon > self.now && horizon - self.now >= BATCH_MIN {
                return self.run_batch(self.awake, horizon);
            }
        }
        let mut work = false;
        // Every event is addressed to one core and mutates only that
        // core's state: wake it (settling its deferred charges) before
        // delivery.
        while let Some(ev) = self.events.pop_due(self.now) {
            self.profile.on_event();
            self.wake(ev.core());
            self.handle_event(ev);
            work = true;
        }
        // A grant snoops every other L2 and routes side effects into
        // other cores' L1s — the only cross-core mutation channel — so
        // any grant (including a conflict NACK-retry) wakes everyone.
        // Spurious wakes are harmless; missed ones would not be.
        if self.now >= self.bus.next_possible_grant() {
            if self.bus_grant() {
                self.profile.on_grant();
                self.wake_all();
                work = true;
            }
        } else {
            self.profile.on_grant_skip();
        }
        // Sleeping cores skip their L2 phase, so their decay clocks are
        // processed exactly at the deadline recorded when they slept
        // (frozen while asleep: only own phases and snoops move it).
        if self.now >= self.next_core_wake {
            self.wake_due_decays();
        }
        let awake = self.awake;
        let mut pending = awake;
        while pending != 0 {
            let core = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            work |= self.l2_phase(core);
        }
        let mut pending = self.awake;
        while pending != 0 {
            let core = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            work |= self.tick_core(core, feed);
        }
        let run = self.awake.count_ones() as u64;
        self.profile.on_step(run, self.cfg.n_cores as u64 - run);
        // Powered-lines integral, value × span form: powered counts
        // flip only on cycles that report work (a no-work cycle touches
        // no L2 state), so on a working cycle the elapsed span is
        // charged at the old value and the new value covers this cycle.
        if work {
            self.sync_powered_to(self.now);
            let p: u64 = self.l2s.iter().map(|l| l.powered_lines()).sum();
            self.powered_cache = p;
            self.interval_powered += p;
            self.powered_synced_at = self.now + 1;
        }
        // Any counter a cycle can move belongs to a core that was awake
        // during it (snoop cycles wake everyone), so the interval
        // snapshot only needs to refresh these.
        self.snap_dirty |= self.awake;
        let mut pending = self.awake;
        while pending != 0 {
            let core = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            self.try_sleep(core);
        }
        if self.now + 1 - self.interval_start >= self.cfg.sample_interval {
            self.close_interval(self.now + 1);
        }
        self.now += 1;
        self.struct_dirty |= work;
        work
    }

    // ---- worklist engine --------------------------------------------------

    /// Charge a sleeping core the per-cycle statistics its skipped
    /// phases would have accrued — the same spec as
    /// [`CmpSystem::advance_quiet`]: one stall of its blocking kind per
    /// cycle, one write-buffer full-stall per cycle when spinning on a
    /// refused store, and one L2 retry per jammed queue head per cycle.
    fn settle_core(&mut self, core: usize) {
        let s = self.sleep[core];
        let span = self.now - s.since;
        if span == 0 {
            return;
        }
        match s.charge {
            SleepCharge::Idle => {}
            SleepCharge::Window => self.cores[core].charge_stall_cycles(StallKind::Window, span),
            SleepCharge::RejectLoad => {
                self.cores[core].charge_stall_cycles(StallKind::Reject, span)
            }
            SleepCharge::RejectStore => {
                self.cores[core].charge_stall_cycles(StallKind::Reject, span);
                self.wbs[core].charge_full_stalls(span);
            }
        }
        if s.read_jam {
            self.l2s[core].charge_retries(span);
        }
        if s.write_jam {
            self.l2s[core].charge_retries(span);
        }
    }

    /// Return `core` to the active set, settling its deferred charges.
    #[inline]
    fn wake(&mut self, core: usize) {
        let bit = 1u64 << core;
        if self.awake & bit == 0 {
            self.settle_core(core);
            self.awake |= bit;
        }
    }

    /// Wake every sleeping core (bus grant, bulk skip, finalize).
    fn wake_all(&mut self) {
        let mut sleeping = self.all_mask & !self.awake;
        while sleeping != 0 {
            let core = sleeping.trailing_zeros() as usize;
            sleeping &= sleeping - 1;
            self.settle_core(core);
        }
        self.awake = self.all_mask;
        self.next_core_wake = u64::MAX;
    }

    /// Scan sleeping cores for due decay deadlines, wake them, and
    /// recompute the earliest remaining deadline (the stored minimum
    /// may be stale-low after wakes — recomputing here keeps the scan
    /// from re-triggering every cycle).
    #[cold]
    fn wake_due_decays(&mut self) {
        let mut next = u64::MAX;
        let mut sleeping = self.all_mask & !self.awake;
        while sleeping != 0 {
            let core = sleeping.trailing_zeros() as usize;
            sleeping &= sleeping - 1;
            match self.sleep[core].decay_at {
                Some(t) if t <= self.now => self.wake(core),
                Some(t) => next = next.min(t),
                None => {}
            }
        }
        self.next_core_wake = next;
    }

    /// Remove `core` from the active set if its phases are provably
    /// no-ops until a wake edge — the per-core slice of the conditions
    /// [`CmpSystem::quiescent_wakeup`] checks globally. Evaluated at
    /// the end of a cycle, after the core's phases ran.
    fn try_sleep(&mut self, core: usize) {
        let charge = match self.cores[core].progress_state() {
            ProgressState::Ready => return,
            ProgressState::Idle => SleepCharge::Idle,
            ProgressState::WindowBlocked => SleepCharge::Window,
            ProgressState::RetryLoad(addr) => {
                // Sleepable only if the L1 provably keeps refusing the
                // retried load (its state is frozen until an event).
                let line = self.cfg.l1.geometry().line_of(addr);
                if !self.l1s[core].load_would_refuse(line) {
                    return;
                }
                SleepCharge::RejectLoad
            }
            ProgressState::RetryStore(addr) => {
                let line = self.cfg.l1.geometry().line_of(addr);
                if !self.wbs[core].store_would_refuse(line) {
                    return;
                }
                SleepCharge::RejectStore
            }
        };
        if self.l2s[core].has_deferred_turnoffs() {
            return;
        }
        let read_jam = match self.read_queues[core].front() {
            Some(&line) => {
                if !self.l2s[core].read_would_retry(line) {
                    return;
                }
                true
            }
            None => false,
        };
        let write_jam = match self.write_retries[core].front().or_else(|| self.wbs[core].head()) {
            Some(line) => {
                if !self.l2s[core].write_would_retry(line) {
                    return;
                }
                true
            }
            None => false,
        };
        let decay_at = self.l2s[core].next_decay_deadline();
        self.sleep[core] = CoreSleep { since: self.now + 1, charge, read_jam, write_jam, decay_at };
        self.awake &= !(1u64 << core);
        if let Some(t) = decay_at {
            self.next_core_wake = self.next_core_wake.min(t);
        }
    }

    // ---- spine gating -----------------------------------------------------

    /// The ports-idle predicate, recomputed from scratch: whether
    /// `core`'s next [`CmpSystem::l2_cycle`] is provably a no-op apart
    /// from decay work (gated separately via `l2_decay_due`). Empty
    /// queues mean both port loops break before probing anything, so a
    /// skipped phase charges no statistic and consumes nothing.
    #[inline]
    fn ports_idle_now(&self, core: usize) -> bool {
        self.read_queues[core].is_empty()
            && self.write_retries[core].is_empty()
            && self.wbs[core].head().is_none()
            && !self.l2s[core].has_deferred_turnoffs()
    }

    /// Recompute `core`'s ports-idle bit and decay-deadline cache. Runs
    /// after every `l2_cycle`, which is the only place the phase's
    /// *internal* arming state can change (deferred turn-offs are pushed
    /// only by `turn_off`, reachable only from `l2_cycle`; the decay
    /// clock advances only in `take_decayed`). External arming — tick
    /// enqueues, event-path write retries — clears the bit at the
    /// mutation point instead ([`PortAdapter`], `issue_write_probe`).
    #[inline]
    fn refresh_ports_idle(&mut self, core: usize) {
        let bit = 1u64 << core;
        if self.ports_idle_now(core) {
            self.ports_idle |= bit;
        } else {
            self.ports_idle &= !bit;
        }
        self.l2_decay_due[core] = self.l2s[core].next_decay_deadline().unwrap_or(u64::MAX);
    }

    /// One core's L2 phase with the ports-idle gate applied: skip the
    /// whole phase when the bit proves it a no-op and no decay deadline
    /// is due, otherwise run it and refresh the bit.
    #[inline]
    fn l2_phase(&mut self, core: usize) -> bool {
        if self.ports_idle & (1u64 << core) != 0 && self.now < self.l2_decay_due[core] {
            debug_assert!(
                self.ports_idle_now(core)
                    && self.l2_decay_due[core]
                        == self.l2s[core].next_decay_deadline().unwrap_or(u64::MAX),
                "stale ports_idle bit: a mutation point failed to clear it"
            );
            self.profile.on_ports_skip();
            return false;
        }
        let work = self.l2_cycle(core);
        self.refresh_ports_idle(core);
        work
    }

    /// True if any core in `mask` has drained its instruction budget.
    #[inline]
    fn any_drained(&self, mask: u64) -> bool {
        let mut pending = mask;
        while pending != 0 {
            let core = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            if self.cores[core].drained() {
                return true;
            }
        }
        false
    }

    /// First cycle at which anything other than the batched cores' own
    /// ticks could act: the earliest pending event, the bus grant
    /// horizon, the sleeping cores' earliest decay wake, the earliest
    /// decay deadline among the batched cores, the sampling-interval
    /// close and the cycle cap. Cycles strictly before it can run as
    /// pure ticks.
    fn batch_horizon(&self, mask: u64) -> u64 {
        let mut h = self.events.next_at().unwrap_or(u64::MAX);
        h = h.min(self.bus.next_possible_grant());
        h = h.min(self.next_core_wake);
        let mut pending = mask;
        while pending != 0 {
            let core = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            h = h.min(self.l2_decay_due[core]);
        }
        // The interval's last cycle must be stepped normally: its close
        // runs at the end of that cycle.
        h = h.min(self.interval_start + self.cfg.sample_interval - 1);
        h.min(self.cfg.max_cycles)
    }

    /// Tick the awake set in lockstep in a tight loop over
    /// `[now, horizon)`.
    ///
    /// Equivalence argument, piece by piece: with every non-batched core
    /// asleep and `ports_idle` covering the batch, a reference cycle in
    /// the span would run (a) no event delivery before one is due —
    /// pre-existing events bound the horizon, and events pushed *by the
    /// batch's own ticks* are delivered in-loop exactly when due (they
    /// are batched cores' own L1 hits, the only kind a tick can push,
    /// and an L1 hit mutates only its own core); (b) no bus grant — the
    /// grant horizon bounds the span, and nothing in a tick enqueues on
    /// the bus (a miss arms a port queue, and the bus request is pushed
    /// only when `l2_cycle` later drains it — empty queues mean no
    /// pushes), so the batched ticks are mutually non-interacting and
    /// lockstep order equals the reference's per-cycle core order;
    /// (c) no L2 phase work — `ports_idle` holds until a tick enqueue
    /// clears some core's bit, which exits the loop; (d) the ticks
    /// themselves, executed here identically; (e) powered/interval
    /// bookkeeping — no tick touches an L2, so the powered value is
    /// frozen and PR 8's value×span integral charges the span exactly,
    /// and the interval close bounds the horizon. `try_sleep` is
    /// deferred to the next normal cycle: keeping a core awake is always
    /// stats-neutral (the reference ticks blocked cores every cycle, and
    /// those ticks charge exactly what the sleep settle would).
    fn run_batch(&mut self, mask: u64, horizon: u64) -> bool {
        debug_assert_eq!(self.awake, mask, "batch must cover exactly the awake set");
        debug_assert_eq!(self.ports_idle & mask, mask, "batch entered with armed L2 ports");
        self.snap_dirty |= mask;
        let start = self.now;
        // No pending event lies inside the horizon at entry; ticks can
        // only schedule batched cores' own L1-hit completions, tracked
        // here so they are delivered exactly on time.
        let mut next_ev = u64::MAX;
        let mut any = false;
        let mut work;
        loop {
            work = false;
            if self.now >= next_ev {
                while let Some(ev) = self.events.pop_due(self.now) {
                    self.profile.on_event();
                    debug_assert!(
                        mask & (1u64 << ev.core()) != 0,
                        "foreign event inside a working-span batch"
                    );
                    self.handle_event(ev);
                    work = true;
                }
                next_ev = self.events.next_at().unwrap_or(u64::MAX);
            }
            let seq = self.events.push_seq();
            let mut pending = mask;
            while pending != 0 {
                let core = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                work |= self.tick_core(core, &mut Feed::Own);
            }
            if self.events.push_seq() != seq {
                next_ev = next_ev.min(self.events.next_at().unwrap_or(u64::MAX));
            }
            any |= work;
            self.now += 1;
            // Exit on the first cycle where no batched core did anything
            // (let the kernel probe for a quiescent span), on a tick
            // enqueue arming any core's L2 ports, at the horizon, or the
            // moment any core drains — the run's drain check (`done`)
            // can flip only then, and the reference loop consults it
            // after every cycle.
            if !work
                || self.ports_idle & mask != mask
                || self.now >= horizon
                || self.any_drained(mask)
            {
                break;
            }
        }
        self.profile.on_batch(self.now - start);
        self.struct_dirty |= any;
        work
    }

    /// Charge cycles `[powered_synced_at, t)` into the interval's
    /// powered-lines integral at the cached (provably constant over
    /// that span) value.
    #[inline]
    fn sync_powered_to(&mut self, t: u64) {
        if t > self.powered_synced_at {
            self.interval_powered += self.powered_cache * (t - self.powered_synced_at);
            self.powered_synced_at = t;
        }
    }

    // ---- quiescence skipping ----------------------------------------------

    /// If nothing can make progress at the current cycle, return the
    /// next cycle at which something can (always `> now`); `None` means
    /// the cycle must be stepped normally.
    ///
    /// Wakeup sources: the earliest pending event, the bus's next
    /// possible grant (queue non-empty) or drain horizon (for the
    /// termination check), each cache's next decay tick, and the cycle
    /// whose sample closes the current interval. Skipping never passes
    /// any of them, so a skipped span provably contains no activity.
    fn quiescent_wakeup(&self) -> Option<u64> {
        // Anything due *this* cycle forces a step.
        if self.events.next_at().is_some_and(|t| t <= self.now) {
            return None;
        }
        if !self.bus.queue_is_empty() && self.bus.busy_until() <= self.now {
            return None;
        }
        for core in 0..self.cfg.n_cores {
            if self.l2s[core].has_deferred_turnoffs() {
                return None;
            }
            // A pending L1 read miss blocks the span only if the L2
            // provably keeps refusing the queue's head (transient line /
            // full MSHR). The refusal is stable until an event or bus
            // grant — both wakeup sources — so read-burst spans jammed
            // on a saturated MSHR are skippable like write bursts.
            if let Some(&line) = self.read_queues[core].front() {
                if !self.l2s[core].read_would_retry(line) {
                    return None;
                }
            }
            // A pending write drain blocks the span only if the L2
            // provably keeps refusing its head (retry queue first, then
            // the write buffer — the order the port loop serves). The
            // refusal is stable until an event or bus grant — both
            // wakeup sources — so blocked-on-reject write bursts no
            // longer force per-cycle stepping.
            if let Some(line) = self.write_retries[core].front().or_else(|| self.wbs[core].head()) {
                if !self.l2s[core].write_would_retry(line) {
                    return None;
                }
            }
            if self.l2s[core].next_decay_deadline().is_some_and(|t| t <= self.now) {
                return None;
            }
            match self.cores[core].progress_state() {
                ProgressState::Idle | ProgressState::WindowBlocked => {}
                ProgressState::RetryLoad(addr) => {
                    // Blocked only if the L1 provably keeps refusing the
                    // retried load (its state is frozen until an event).
                    let line = self.cfg.l1.geometry().line_of(addr);
                    if !self.l1s[core].load_would_refuse(line) {
                        return None;
                    }
                }
                ProgressState::RetryStore(addr) => {
                    // Blocked only if the write buffer keeps refusing —
                    // it is full, not coalescing, and (vetted above) its
                    // drain head cannot make progress either.
                    let line = self.cfg.l1.geometry().line_of(addr);
                    if !self.wbs[core].store_would_refuse(line) {
                        return None;
                    }
                }
                ProgressState::Ready => return None,
            }
        }
        let mut wake = u64::MAX;
        if let Some(t) = self.events.next_at() {
            wake = wake.min(t);
        }
        if !self.bus.queue_is_empty() {
            wake = wake.min(self.bus.busy_until());
        }
        let drain = self.bus.quiesce_at();
        if drain > self.now {
            // Not an activity source, but `done()` can flip here once
            // the channels run dry.
            wake = wake.min(drain);
        }
        for l2 in &self.l2s {
            if let Some(t) = l2.next_decay_deadline() {
                wake = wake.min(t);
            }
        }
        // The interval's last cycle must be stepped: its sample closes
        // the books at the boundary.
        wake = wake.min(self.interval_start + self.cfg.sample_interval - 1);
        wake = wake.min(self.cfg.max_cycles);
        (wake > self.now).then_some(wake)
    }

    /// Advance time in bulk over a span vetted by
    /// [`CmpSystem::quiescent_wakeup`]: charge the powered-lines leakage
    /// integral as value × elapsed span (every component's powered count
    /// is frozen) and bulk-charge each blocked core the stall statistics
    /// its per-cycle ticks would have accrued — including, for a core
    /// spinning on a refused store, the write buffer's full-stall count,
    /// and for any core with a blocked write drain, the one L2 retry its
    /// head probe would have accrued each cycle.
    fn advance_quiet(&mut self, target: u64) {
        let span = target - self.now;
        self.profile.on_skip(span);
        if self.worklist {
            // Settle every sleeping core through `now` first, so the
            // bulk charges below cover exactly `[now, target)` with no
            // overlap; the powered integral stays lazy (the value is
            // frozen over the span, so `sync_powered_to` at the next
            // interval close or working cycle charges it exactly).
            self.wake_all();
        } else {
            let powered: u64 = self.l2s.iter().map(|l| l.powered_lines()).sum();
            self.interval_powered += powered * span;
        }
        for core in 0..self.cfg.n_cores {
            match self.cores[core].progress_state() {
                ProgressState::Idle => {}
                ProgressState::WindowBlocked => {
                    self.cores[core].charge_stall_cycles(StallKind::Window, span)
                }
                ProgressState::RetryLoad(_) => {
                    self.cores[core].charge_stall_cycles(StallKind::Reject, span)
                }
                ProgressState::RetryStore(_) => {
                    self.cores[core].charge_stall_cycles(StallKind::Reject, span);
                    self.wbs[core].charge_full_stalls(span);
                }
                // audit:allow(unwrap-in-lib, advance_quiet only runs after every core reported a non-Ready progress state)
                ProgressState::Ready => unreachable!("quiescence check vetted all cores"),
            }
            // The port loop re-probes each blocked queue head once per
            // cycle, counting one retry per probe: one for a jammed read
            // head, one for a jammed write-drain head.
            if !self.read_queues[core].is_empty() {
                self.l2s[core].charge_retries(span);
            }
            if self.write_retries[core].front().or_else(|| self.wbs[core].head()).is_some() {
                self.l2s[core].charge_retries(span);
            }
        }
        self.now = target;
    }

    // ---- events -----------------------------------------------------------

    fn handle_event(&mut self, ev: EvKind) {
        match ev {
            EvKind::L1Hit { core, id, issued_at } => {
                self.cores[core].on_load_complete(id);
                self.loads_completed += 1;
                self.load_latency_sum += self.now - issued_at;
            }
            EvKind::L2ReadDone { core, line } => {
                self.deliver_to_l1(core, line);
            }
            EvKind::DataReady { core, line, shared } => {
                let mut fx = std::mem::take(&mut self.fx);
                fx.clear();
                let (reads, writes, _installed) =
                    self.l2s[core].fill(line, shared, self.now, &mut fx);
                self.route_fx(core, &mut fx, WbRoute::Queued);
                self.fx = fx;
                if reads > 0 {
                    self.deliver_to_l1(core, line);
                }
                if writes > 0 {
                    self.issue_write_probe(core, line);
                }
            }
            EvKind::Grant { core, slot, line } => {
                let mut fx = std::mem::take(&mut self.fx);
                fx.clear();
                self.l2s[core].grant(slot, line, self.now, &mut fx);
                self.route_fx(core, &mut fx, WbRoute::Queued);
                self.fx = fx;
            }
        }
    }

    fn deliver_to_l1(&mut self, core: usize, line: LineAddr) {
        let install = self.l2s[core].holds_valid(line);
        let (waiting, evicted) = if install {
            let r = self.l1s[core].fill(line);
            self.l2s[core].set_in_l1(line, true);
            r
        } else {
            (self.l1s[core].complete_without_install(line), None)
        };
        if let Some(ev) = evicted {
            self.l2s[core].set_in_l1(ev, false);
        }
        for p in waiting {
            self.cores[core].on_load_complete(p.id);
            self.loads_completed += 1;
            self.load_latency_sum += self.now - p.issued_at;
        }
    }

    // ---- bus --------------------------------------------------------------

    fn bus_grant(&mut self) -> bool {
        let Some(req) = self.bus.try_grant(self.now) else {
            return false;
        };
        // Split-transaction conflict rule: a transaction touching a line
        // whose data is in flight to another cache is NACKed and
        // retried, so the in-flight fill installs before being snooped.
        // (Entries merely *queued* behind us do not NACK — they will see
        // our issued entry when their turn comes — so no deadlock.)
        if !matches!(req.kind, BusReqKind::Writeback) {
            let conflict = (0..self.cfg.n_cores)
                .any(|j| j != req.origin && self.l2s[j].pending_issued(req.line));
            if conflict {
                self.bus.push(req);
                return true;
            }
        }
        match req.kind {
            BusReqKind::Writeback => {
                self.bus.memory_writeback(self.now);
            }
            BusReqKind::Upgrade => {
                self.snoop_others(req.origin, req.line, SnoopKind::BusRdX);
                match self.l2s[req.origin].complete_upgrade(req.line, self.now) {
                    UpgradeResult::Done => {}
                    UpgradeResult::ConvertToMiss => {
                        self.start_fill(req.origin, req.line, true);
                    }
                }
            }
            BusReqKind::ReadMiss | BusReqKind::WriteMiss => {
                let exclusive = matches!(req.kind, BusReqKind::WriteMiss)
                    || self.l2s[req.origin].pending_exclusive(req.line);
                self.start_fill(req.origin, req.line, exclusive);
            }
        }
        true
    }

    fn start_fill(&mut self, origin: usize, line: LineAddr, exclusive: bool) {
        self.l2s[origin].mark_issued(line);
        let kind = if exclusive { SnoopKind::BusRdX } else { SnoopKind::BusRd };
        let (shared, supplied) = self.snoop_others(origin, line, kind);
        let ready = if supplied {
            self.c2c_transfers += 1;
            self.bus.c2c_fill(self.now)
        } else {
            self.bus.memory_fill(self.now)
        };
        self.events.push(ready.max(self.now + 1), EvKind::DataReady { core: origin, line, shared });
    }

    fn snoop_others(&mut self, origin: usize, line: LineAddr, kind: SnoopKind) -> (bool, bool) {
        let mut shared = false;
        let mut supplied = false;
        for j in 0..self.cfg.n_cores {
            if j == origin {
                continue;
            }
            let mut fx = std::mem::take(&mut self.fx);
            fx.clear();
            let reply = self.l2s[j].snoop(line, kind, self.now, &mut fx);
            shared |= reply.assert_shared;
            supplied |= reply.supply_data;
            self.route_fx(j, &mut fx, WbRoute::SnoopFlush);
            self.fx = fx;
        }
        (shared, supplied)
    }

    fn route_fx(&mut self, core: usize, fx: &mut SideEffects, route: WbRoute) {
        for line in fx.writebacks.drain(..) {
            match route {
                WbRoute::SnoopFlush => self.bus.memory_writeback(self.now),
                WbRoute::Queued => {
                    self.bus.push(BusReq { origin: core, line, kind: BusReqKind::Writeback })
                }
            }
        }
        for (line, induced) in fx.upper_invals.drain(..) {
            if self.l1s[core].invalidate(line, induced) {
                self.upper_invalidations += 1;
            }
        }
        for (due, slot, line) in fx.grants.drain(..) {
            self.events.push(due.max(self.now + 1), EvKind::Grant { core, slot, line });
        }
    }

    // ---- per-core L2 cycle --------------------------------------------------

    fn l2_cycle(&mut self, core: usize) -> bool {
        // Decay clock and turn-off processing.
        let decayed = self.l2s[core].take_decayed(self.now);
        let mut work = !decayed.is_empty();
        for slot in decayed {
            self.try_turn_off(core, slot);
        }
        let deferred = self.l2s[core].take_deferred_turnoffs();
        work |= !deferred.is_empty();
        for slot in deferred {
            self.try_turn_off(core, slot);
        }

        // L2 ports: reads (latency-critical) first, then writes.
        let mut ops = 0u32;
        while ops < self.cfg.l2.ports {
            let Some(&line) = self.read_queues[core].front() else {
                break;
            };
            match self.l2s[core].probe_read(line) {
                L2ReadOutcome::Hit => {
                    work = true;
                    self.read_queues[core].pop_front();
                    let done = self.now + self.l2s[core].hit_latency();
                    self.events.push(done, EvKind::L2ReadDone { core, line });
                }
                L2ReadOutcome::MissPrimary => {
                    work = true;
                    self.read_queues[core].pop_front();
                    self.bus.push(BusReq { origin: core, line, kind: BusReqKind::ReadMiss });
                }
                L2ReadOutcome::MissSecondary => {
                    work = true;
                    self.read_queues[core].pop_front();
                }
                // A retried head changes nothing structural (one retry
                // counter tick only): not reported as work, so the skip
                // kernel gets to probe whether the blockage is provable.
                L2ReadOutcome::Retry => break,
            }
            ops += 1;
        }
        while ops < self.cfg.l2.ports {
            let (line, from_retry) = if let Some(line) = self.write_retries[core].front() {
                (line, true)
            } else if let Some(line) = self.wbs[core].head() {
                (line, false)
            } else {
                break;
            };
            let outcome = self.issue_write_probe_inner(core, line);
            match outcome {
                // A retried head changes nothing structural (one retry
                // counter tick only): not reported as work, so the skip
                // kernel gets to probe whether the blockage is provable.
                L2WriteOutcome::Retry => break,
                _ => {
                    work = true;
                    if from_retry {
                        self.write_retries[core].pop_front();
                    } else {
                        self.wbs[core].pop();
                    }
                }
            }
            ops += 1;
        }
        work
    }

    fn try_turn_off(&mut self, core: usize, slot: usize) {
        let Some(line) = self.l2s[core].line_at(slot) else {
            return;
        };
        let pending = self.wbs[core].has_pending(line) || self.write_retries[core].contains(line);
        let mut fx = std::mem::take(&mut self.fx);
        fx.clear();
        self.l2s[core].turn_off(slot, self.now, pending, &mut fx);
        self.route_fx(core, &mut fx, WbRoute::Queued);
        self.fx = fx;
    }

    /// Probe a write that is no longer in the write buffer (re-issued
    /// after a demoted/doomed fill); retries go to the retry queue —
    /// arming the core's write-drain loop, so the ports-idle bit falls.
    fn issue_write_probe(&mut self, core: usize, line: LineAddr) {
        if self.issue_write_probe_inner(core, line) == L2WriteOutcome::Retry {
            self.write_retries[core].push_back(line);
            self.ports_idle &= !(1u64 << core);
        }
    }

    fn issue_write_probe_inner(&mut self, core: usize, line: LineAddr) -> L2WriteOutcome {
        let outcome = self.l2s[core].probe_write(line);
        match outcome {
            L2WriteOutcome::Done | L2WriteOutcome::MissSecondary => {}
            L2WriteOutcome::UpgradeIssued => {
                self.bus.push(BusReq { origin: core, line, kind: BusReqKind::Upgrade });
            }
            L2WriteOutcome::MissPrimary => {
                self.bus.push(BusReq { origin: core, line, kind: BusReqKind::WriteMiss });
            }
            L2WriteOutcome::Retry => {}
        }
        outcome
    }

    // ---- cores ------------------------------------------------------------

    /// One core's tick phase: fetch through the feed (own enum-dispatch
    /// sources or the shared window cursor — both monomorphized) into a
    /// fresh [`PortAdapter`].
    #[inline]
    fn tick_core(&mut self, core: usize, feed: &mut Feed) -> bool {
        let mut port = PortAdapter {
            now: self.now,
            core,
            geom: self.cfg.l1.geometry(),
            l1_hit_latency: self.cfg.l1.hit_latency,
            l1: &mut self.l1s[core],
            wb: &mut self.wbs[core],
            read_queue: &mut self.read_queues[core],
            events: &mut self.events,
            ports_idle: &mut self.ports_idle,
        };
        (match feed {
            Feed::Own => self.cores[core].tick(&mut self.sources[core], &mut port),
            Feed::Window { window, pos } => {
                let mut cur = window.cursor(core, &mut pos[core]);
                self.cores[core].tick(&mut cur, &mut port)
            }
        }) > 0
    }

    // ---- sampling -----------------------------------------------------------

    /// Interval snapshot. The worklist engine refreshes only the
    /// per-core slices whose counters may have moved since the last
    /// close (`snap_dirty` accumulates the awake mask — a sleeping
    /// core's counters are provably frozen); the full scan recomputes
    /// everything, and a debug assertion pins the two against each
    /// other.
    fn counters(&mut self) -> Snapshot {
        if !self.worklist {
            return self.counters_scan();
        }
        let mut dirty = self.snap_dirty;
        while dirty != 0 {
            let core = dirty.trailing_zeros() as usize;
            dirty &= dirty - 1;
            let old = self.core_snaps[core];
            let new = self.core_snap_of(core);
            self.snap_agg.instructions += new.instructions - old.instructions;
            self.snap_agg.l1_accesses += new.l1_accesses - old.l1_accesses;
            self.snap_agg.l2_reads += new.l2_reads - old.l2_reads;
            self.snap_agg.l2_writes += new.l2_writes - old.l2_writes;
            self.snap_agg.decay_events += new.decay_events - old.decay_events;
            self.core_snaps[core] = new;
        }
        self.snap_dirty = 0;
        let mut s = self.snap_agg;
        s.bus_transactions = self.bus.transactions;
        s.bus_bytes = self.bus.bus_bytes;
        s.mem_bytes = self.bus.mem_bytes;
        debug_assert_eq!(s, self.counters_scan(), "delta-tracked snapshot drifted");
        s
    }

    fn core_snap_of(&self, core: usize) -> CoreSnap {
        let l1 = self.l1s[core].stats();
        let l2 = self.l2s[core].stats();
        let d = self.l2s[core].decay_stats();
        CoreSnap {
            instructions: self.cores[core].stats().instructions,
            l1_accesses: l1.loads + l1.stores,
            l2_reads: l2.reads,
            l2_writes: l2.writes,
            decay_events: d.increments + d.resets,
        }
    }

    fn counters_scan(&self) -> Snapshot {
        let mut s = Snapshot::default();
        for c in &self.cores {
            s.instructions += c.stats().instructions;
        }
        for l in &self.l1s {
            let st = l.stats();
            s.l1_accesses += st.loads + st.stores;
        }
        for l in &self.l2s {
            let st = l.stats();
            s.l2_reads += st.reads;
            s.l2_writes += st.writes;
            let d = l.decay_stats();
            s.decay_events += d.increments + d.resets;
        }
        s.bus_transactions = self.bus.transactions;
        s.bus_bytes = self.bus.bus_bytes;
        s.mem_bytes = self.bus.mem_bytes;
        s
    }

    fn sample_cycle(&mut self) {
        self.interval_powered += self.l2s.iter().map(|l| l.powered_lines()).sum::<u64>();
        let elapsed = self.now + 1 - self.interval_start;
        if elapsed >= self.cfg.sample_interval {
            self.close_interval(self.now + 1);
        }
    }

    fn close_interval(&mut self, end: u64) {
        let elapsed = end.saturating_sub(self.interval_start);
        if elapsed == 0 {
            return;
        }
        if self.worklist {
            // Bring the lazily integrated powered-lines trace up to the
            // boundary (the value is frozen since the last working
            // cycle).
            self.sync_powered_to(end);
        }
        let snap = self.counters();
        let lines_total = self.lines_total;
        self.trace.push(IntervalActivity {
            cycles: elapsed,
            instructions: snap.instructions - self.last_snap.instructions,
            l1_accesses: snap.l1_accesses - self.last_snap.l1_accesses,
            l2_reads: snap.l2_reads - self.last_snap.l2_reads,
            l2_writes: snap.l2_writes - self.last_snap.l2_writes,
            bus_transactions: snap.bus_transactions - self.last_snap.bus_transactions,
            bus_bytes: snap.bus_bytes - self.last_snap.bus_bytes,
            mem_bytes: snap.mem_bytes - self.last_snap.mem_bytes,
            l2_powered_line_cycles: self.interval_powered,
            l2_total_line_cycles: lines_total * elapsed,
            decay_counter_events: snap.decay_events - self.last_snap.decay_events,
        });
        self.last_snap = snap;
        self.interval_powered = 0;
        self.interval_start = end;
    }

    /// Close the books and assemble the statistics. The caches' storage
    /// stays attached (so this can run before the scratch reclaim that
    /// strips it); the trace is moved out.
    pub(crate) fn finalize(&mut self) -> SimStats {
        if self.worklist {
            // Settle every sleeping core's deferred stall/retry charges
            // before the books close.
            self.wake_all();
        }
        self.close_interval(self.now);
        let now = self.now;
        let mut on = 0u64;
        for l2 in &mut self.l2s {
            on += l2.finish_on_cycles(now);
        }
        let lines_total = self.lines_total;
        SimStats {
            cycles: now,
            instructions: self.cores.iter().map(|c| c.stats().instructions).sum(),
            cores: self.cores.iter().map(|c| c.stats()).collect(),
            core_workloads: self.core_names.clone(),
            l1: self.l1s.iter().map(|l| l.stats()).collect(),
            l2: self.l2s.iter().map(|l| l.stats()).collect(),
            l2_on_line_cycles: on,
            l2_line_cycle_capacity: lines_total * now,
            loads_completed: self.loads_completed,
            load_latency_sum: self.load_latency_sum,
            bus_transactions: self.bus.transactions,
            bus_busy_cycles: self.bus.busy_cycles,
            mem_fills: self.bus.mem_fills,
            mem_writebacks: self.bus.mem_writebacks,
            mem_bytes: self.bus.mem_bytes,
            c2c_transfers: self.c2c_transfers,
            upper_invalidations: self.upper_invalidations,
            trace: std::mem::take(&mut self.trace),
        }
    }
}

impl CmpSystem {
    /// Hand the reusable pools back to `scratch`: the caches release
    /// their per-line columns into the arena, and the arena, event ring
    /// and queues return for the next run. Must run after
    /// [`CmpSystem::finalize`] (the final accounting pass reads the
    /// line-state banks).
    pub(crate) fn reclaim_scratch(&mut self, scratch: &mut SimScratch) {
        for l2 in &mut self.l2s {
            l2.release_storage(&mut self.arena);
        }
        for l1 in &mut self.l1s {
            l1.release_storage(&mut self.arena);
        }
        scratch.arena = std::mem::take(&mut self.arena);
        scratch.events = std::mem::take(&mut self.events);
        scratch.fx = std::mem::take(&mut self.fx);
        scratch.read_queues = std::mem::take(&mut self.read_queues);
        scratch.write_retries = std::mem::take(&mut self.write_retries);
        scratch.profile = self.profile;
    }
}

/// Convenience: build and run a system in one call.
pub fn run_simulation(cfg: CmpConfig, workloads: Vec<Box<dyn Workload>>) -> SimStats {
    CmpSystem::new(cfg, workloads).run()
}

/// Like [`run_simulation`], but borrowing the reusable allocation pools
/// of `scratch` and returning them when the run finishes — callers that
/// run many simulations back to back (sweep workers, benchmarks) keep
/// the event ring and queue capacities warm across runs.
pub fn run_simulation_with_scratch(
    cfg: CmpConfig,
    workloads: Vec<Box<dyn Workload>>,
    scratch: &mut SimScratch,
) -> SimStats {
    run_sources_with_scratch(cfg, workloads.into_iter().map(LiveGen::boxed).collect(), scratch)
}

/// [`run_simulation_with_scratch`] over arbitrary per-core [`OpSource`]
/// backends (shared trace cursors, file replays, wrapped generators).
pub fn run_sources_with_scratch(
    cfg: CmpConfig,
    sources: Vec<Box<dyn OpSource>>,
    scratch: &mut SimScratch,
) -> SimStats {
    run_feeds_with_scratch(cfg, sources.into_iter().map(CoreSource::Dyn).collect(), scratch)
}

/// [`run_simulation_with_scratch`] over enum-dispatched [`CoreSource`]
/// feeds — the devirtualized delivery path: live generators and shared
/// trace cursors inline their fetch into the core tick.
pub fn run_feeds_with_scratch(
    cfg: CmpConfig,
    feeds: Vec<CoreSource>,
    scratch: &mut SimScratch,
) -> SimStats {
    let mut sys = CmpSystem::with_feeds(cfg, feeds, scratch);
    sys.run_loop();
    let stats = sys.finalize();
    sys.reclaim_scratch(scratch);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpleak_coherence::Technique;
    use cmpleak_cpu::{ReplayWorkload, TraceOp};

    fn tiny_cfg(technique: Technique) -> CmpConfig {
        let mut cfg = CmpConfig { n_cores: 2, ..CmpConfig::default() };
        cfg.l1.size_bytes = 1024;
        cfg.l2.size_bytes = 64 * 1024;
        cfg.technique = technique;
        cfg.instructions_per_core = 20_000;
        cfg.max_cycles = 10_000_000;
        cfg.sample_interval = 1000;
        cfg
    }

    fn private_streams() -> Vec<Box<dyn Workload>> {
        // Each core strides over its own 16 KiB segment.
        (0..2)
            .map(|c| {
                let base = (c as u64 + 1) << 20;
                let ops: Vec<TraceOp> = (0..256)
                    .flat_map(|i| {
                        [
                            TraceOp::Exec(3),
                            TraceOp::Load(base + i * 64),
                            TraceOp::Exec(2),
                            TraceOp::Store(base + i * 64 + 8),
                        ]
                    })
                    .collect();
                Box::new(ReplayWorkload::cycle(ops)) as Box<dyn Workload>
            })
            .collect()
    }

    fn sharing_streams() -> Vec<Box<dyn Workload>> {
        // Both cores hammer the same 4 KiB: lots of invalidations.
        (0..2)
            .map(|_| {
                let ops: Vec<TraceOp> = (0..64)
                    .flat_map(|i| {
                        [
                            TraceOp::Exec(2),
                            TraceOp::Store(i * 64),
                            TraceOp::Exec(2),
                            TraceOp::Load(i * 64),
                        ]
                    })
                    .collect();
                Box::new(ReplayWorkload::cycle(ops)) as Box<dyn Workload>
            })
            .collect()
    }

    #[test]
    fn baseline_run_completes_and_counts_instructions() {
        let stats = run_simulation(tiny_cfg(Technique::Baseline), private_streams());
        assert_eq!(stats.instructions, 40_000);
        assert!(stats.cycles > 0 && stats.cycles < 2_000_000, "cycles = {}", stats.cycles);
        assert!((stats.occupation_rate() - 1.0).abs() < 1e-12, "baseline is always on");
        assert!(stats.ipc() > 0.1);
    }

    #[test]
    fn private_streams_have_no_coherence_traffic() {
        let stats = run_simulation(tiny_cfg(Technique::Baseline), private_streams());
        let invals: u64 = stats.l2.iter().map(|s| s.snoop_invalidations).sum();
        assert_eq!(invals, 0);
        assert_eq!(stats.c2c_transfers, 0);
    }

    #[test]
    fn sharing_streams_invalidate_and_supply_cache_to_cache() {
        let stats = run_simulation(tiny_cfg(Technique::Baseline), sharing_streams());
        let invals: u64 = stats.l2.iter().map(|s| s.snoop_invalidations).sum();
        assert!(invals > 0, "write sharing must invalidate");
        assert!(stats.c2c_transfers > 0, "M owners must supply data");
    }

    #[test]
    fn protocol_gates_cold_and_invalidated_lines() {
        let stats = run_simulation(tiny_cfg(Technique::Protocol), sharing_streams());
        let occ = stats.occupation_rate();
        assert!(occ < 0.5, "small working set: most lines stay cold, occ = {occ}");
        let gated: u64 = stats.l2.iter().map(|s| s.turnoffs_protocol).sum();
        assert!(gated > 0, "protocol must gate invalidated lines");
    }

    #[test]
    fn protocol_does_not_change_cycle_count_much() {
        let base = run_simulation(tiny_cfg(Technique::Baseline), private_streams());
        let prot = run_simulation(tiny_cfg(Technique::Protocol), private_streams());
        assert_eq!(base.instructions, prot.instructions);
        let loss = 1.0 - base.cycles as f64 / prot.cycles as f64;
        assert!(loss.abs() < 0.01, "protocol IPC loss should be ~0, got {loss}");
    }

    #[test]
    fn decay_reduces_occupation_at_a_performance_cost() {
        let mut cfg = tiny_cfg(Technique::Decay { decay_cycles: 2048 });
        cfg.instructions_per_core = 60_000;
        let base_cfg = {
            let mut c = cfg;
            c.technique = Technique::Baseline;
            c
        };
        // Workload with dead lines: touch a big footprint once, then loop
        // in a small hot set.
        let wl = || -> Vec<Box<dyn Workload>> {
            (0..2)
                .map(|c| {
                    let base = (c as u64 + 1) << 20;
                    let mut ops = Vec::new();
                    for i in 0..512u64 {
                        ops.push(TraceOp::Load(base + i * 64));
                        ops.push(TraceOp::Exec(2));
                    }
                    let hot: Vec<TraceOp> = (0..16u64)
                        .flat_map(|i| [TraceOp::Exec(3), TraceOp::Load(base + i * 64)])
                        .collect();
                    ops.extend(std::iter::repeat_n(hot, 400).flatten());
                    Box::new(ReplayWorkload::cycle(ops)) as Box<dyn Workload>
                })
                .collect()
        };
        let base = run_simulation(base_cfg, wl());
        let decay = run_simulation(cfg, wl());
        assert!(decay.occupation_rate() < 0.4, "decay occupation = {}", decay.occupation_rate());
        assert!(base.occupation_rate() == 1.0);
        let turnoffs: u64 = decay.l2.iter().map(|s| s.turnoffs_decay).sum();
        assert!(turnoffs > 0);
    }

    #[test]
    fn trace_integrates_to_totals() {
        let stats = run_simulation(tiny_cfg(Technique::Protocol), sharing_streams());
        let trace_cycles: u64 = stats.trace.iter().map(|t| t.cycles).sum();
        assert_eq!(trace_cycles, stats.cycles);
        let trace_on: u64 = stats.trace.iter().map(|t| t.l2_powered_line_cycles).sum();
        assert_eq!(
            trace_on, stats.l2_on_line_cycles,
            "trace must integrate to the occupancy total"
        );
        let trace_instr: u64 = stats.trace.iter().map(|t| t.instructions).sum();
        assert_eq!(trace_instr, stats.instructions);
        let trace_mem: u64 = stats.trace.iter().map(|t| t.mem_bytes).sum();
        assert_eq!(trace_mem, stats.mem_bytes);
    }

    #[test]
    fn determinism_same_config_same_stats() {
        let a =
            run_simulation(tiny_cfg(Technique::Decay { decay_cycles: 4096 }), sharing_streams());
        let b =
            run_simulation(tiny_cfg(Technique::Decay { decay_cycles: 4096 }), sharing_streams());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mem_bytes, b.mem_bytes);
        assert_eq!(a.l2_on_line_cycles, b.l2_on_line_cycles);
    }

    fn run_both_kernels(mut cfg: CmpConfig, wl: impl Fn() -> Vec<Box<dyn Workload>>) -> SimStats {
        cfg.kernel = crate::config::SimKernel::PerCycle;
        let reference = run_simulation(cfg, wl());
        cfg.kernel = crate::config::SimKernel::QuiescenceSkip;
        let skipping = run_simulation(cfg, wl());
        assert_eq!(reference, skipping, "kernels must be bit-identical");
        skipping
    }

    /// Run the full kernel × engine matrix and assert all four cells
    /// agree bit for bit.
    fn run_engine_matrix(cfg: CmpConfig, wl: impl Fn() -> Vec<Box<dyn Workload>>) -> SimStats {
        let mut out = Vec::new();
        for kernel in [SimKernel::PerCycle, SimKernel::QuiescenceSkip] {
            for engine in [CycleEngine::FullScan, CycleEngine::Worklist] {
                let mut c = cfg;
                c.kernel = kernel;
                c.engine = engine;
                out.push((kernel, engine, run_simulation(c, wl())));
            }
        }
        let (_, _, reference) = out[0].clone();
        for (kernel, engine, stats) in &out[1..] {
            assert_eq!(&reference, stats, "{kernel:?} × {engine:?} diverged from the reference");
        }
        reference
    }

    #[test]
    fn engines_bit_identical_on_private_and_sharing_streams() {
        for technique in [
            Technique::Baseline,
            Technique::Protocol,
            Technique::Decay { decay_cycles: 2048 },
            Technique::SelectiveDecay { decay_cycles: 4096 },
        ] {
            run_engine_matrix(tiny_cfg(technique), private_streams);
            run_engine_matrix(tiny_cfg(technique), sharing_streams);
        }
    }

    #[test]
    fn engines_bit_identical_with_idle_cores_and_memory_stalls() {
        // Core 0 drains early (long Idle sleeps in the worklist
        // engine); core 1 streams loads (window-blocked sleeps).
        let wl = || -> Vec<Box<dyn Workload>> {
            vec![
                Box::new(ReplayWorkload::cycle(vec![TraceOp::Exec(64), TraceOp::Load(1 << 21)])),
                Box::new(ReplayWorkload::cycle(
                    (0..2048u64).map(|i| TraceOp::Load((2 << 20) + i * 64)).collect(),
                )),
            ]
        };
        let mut cfg = tiny_cfg(Technique::Decay { decay_cycles: 2048 });
        cfg.instructions_per_core = 10_000;
        let stats = run_engine_matrix(cfg, wl);
        assert!(stats.cores[1].window_stall_cycles > 0, "stalls must occur to be settled");
    }

    #[test]
    fn engines_bit_identical_through_blocked_write_bursts() {
        // Retry-storm: write buffers fill, drains jam on a saturated L2
        // MSHR, cores spin on refused stores. The worklist engine must
        // settle reject stalls, wb full-stalls and per-head L2 retries
        // exactly as the per-cycle probes would have charged them.
        let wl = || -> Vec<Box<dyn Workload>> {
            (0..2)
                .map(|c| {
                    let base = (c as u64 + 1) << 21;
                    let ops: Vec<TraceOp> =
                        (0..4096u64).map(|i| TraceOp::Store(base + i * 64)).collect();
                    Box::new(ReplayWorkload::cycle(ops)) as Box<dyn Workload>
                })
                .collect()
        };
        let mut cfg = tiny_cfg(Technique::Decay { decay_cycles: 2048 });
        cfg.instructions_per_core = 6_000;
        cfg.mem.latency = 1_000;
        let stats = run_engine_matrix(cfg, wl);
        let rejects: u64 = stats.cores.iter().map(|c| c.reject_stall_cycles).sum();
        assert!(rejects > 0, "cores must actually block on refused stores");
    }

    #[test]
    fn engines_bit_identical_through_blocked_read_bursts() {
        let wl = || -> Vec<Box<dyn Workload>> {
            (0..2)
                .map(|c| {
                    let base = (c as u64 + 1) << 21;
                    let ops: Vec<TraceOp> =
                        (0..4096u64).map(|i| TraceOp::Load(base + i * 64)).collect();
                    Box::new(ReplayWorkload::cycle(ops)) as Box<dyn Workload>
                })
                .collect()
        };
        let mut cfg = tiny_cfg(Technique::Protocol);
        cfg.instructions_per_core = 6_000;
        cfg.mem.latency = 1_000;
        cfg.l1.mshr_entries = 16;
        cfg.l2.mshr_entries = 2;
        cfg.core.max_outstanding_loads = 16;
        let stats = run_engine_matrix(cfg, wl);
        let retries: u64 = stats.l2.iter().map(|s| s.retries).sum();
        assert!(retries > 0, "the blocked read head must accrue L2 retries");
    }

    #[test]
    fn engines_bit_identical_at_cycle_cap_and_single_core() {
        let mut cfg = tiny_cfg(Technique::Decay { decay_cycles: 1024 });
        cfg.max_cycles = 7_777; // cut mid-run, also mid-interval
        let stats = run_engine_matrix(cfg, private_streams);
        assert_eq!(stats.cycles, 7_777);

        let mut cfg = tiny_cfg(Technique::SelectiveDecay { decay_cycles: 2048 });
        cfg.n_cores = 1;
        let one = || private_streams().drain(..1).collect::<Vec<_>>();
        run_engine_matrix(cfg, one);
    }

    #[test]
    fn feeds_match_boxed_sources_bit_for_bit() {
        // The enum-dispatched feed path must be invisible: CoreSource
        // wrapping (Live and Dyn) changes delivery mechanics only.
        let cfg = tiny_cfg(Technique::Decay { decay_cycles: 2048 });
        let boxed = run_sources_with_scratch(
            cfg,
            sharing_streams().into_iter().map(LiveGen::boxed).collect(),
            &mut SimScratch::default(),
        );
        let feeds = run_feeds_with_scratch(
            cfg,
            sharing_streams().into_iter().map(|w| CoreSource::Live(LiveGen::new(w))).collect(),
            &mut SimScratch::default(),
        );
        assert_eq!(boxed, feeds);
    }

    #[test]
    fn kernels_bit_identical_on_private_and_sharing_streams() {
        for technique in [
            Technique::Baseline,
            Technique::Protocol,
            Technique::Decay { decay_cycles: 2048 },
            Technique::SelectiveDecay { decay_cycles: 4096 },
        ] {
            run_both_kernels(tiny_cfg(technique), private_streams);
            run_both_kernels(tiny_cfg(technique), sharing_streams);
        }
    }

    #[test]
    fn kernels_bit_identical_with_idle_cores_and_memory_stalls() {
        // Core 0 is compute-heavy and drains early (Idle spans); core 1
        // pointer-chases a large footprint (window-blocked memory
        // stalls): both classes of quiet span in one run.
        let wl = || -> Vec<Box<dyn Workload>> {
            vec![
                Box::new(ReplayWorkload::cycle(vec![TraceOp::Exec(64), TraceOp::Load(1 << 21)])),
                Box::new(ReplayWorkload::cycle(
                    (0..2048u64).map(|i| TraceOp::Load((2 << 20) + i * 64)).collect(),
                )),
            ]
        };
        let mut cfg = tiny_cfg(Technique::Decay { decay_cycles: 2048 });
        cfg.instructions_per_core = 10_000;
        let stats = run_both_kernels(cfg, wl);
        assert!(stats.cores[1].window_stall_cycles > 0, "stalls must occur to be skipped");
    }

    #[test]
    fn kernels_bit_identical_with_memory_latency_beyond_event_window() {
        // DataReady events land past the bucket ring even after the
        // adaptive window clamps at its maximum: the overflow heap and
        // its migration are on the hot path of both kernels.
        let mut cfg = tiny_cfg(Technique::Decay { decay_cycles: 4096 });
        cfg.mem.latency = 3 * MAX_EVENT_WINDOW as u64;
        assert_eq!(
            EventQueue::window_for(&cfg.mem),
            MAX_EVENT_WINDOW,
            "latency must exceed the clamped window for this test to bite"
        );
        cfg.instructions_per_core = 5_000;
        run_both_kernels(cfg, private_streams);
    }

    #[test]
    fn event_window_sized_from_memory_latency() {
        let mut mem = crate::config::MemConfig { latency: 250, service: 16 };
        assert_eq!(EventQueue::window_for(&mem), MIN_EVENT_WINDOW, "default fits the minimum");
        mem.latency = 1500;
        assert_eq!(EventQueue::window_for(&mem), 2048, "round-trip rounds up to a power of two");
        mem.latency = 1_000_000;
        assert_eq!(EventQueue::window_for(&mem), MAX_EVENT_WINDOW, "clamped at the cap");
    }

    #[test]
    fn event_queue_counts_ring_hits_and_overflow_spills() {
        let mut q = EventQueue::new();
        let ev = |core: usize| EvKind::L1Hit { core, id: 0, issued_at: 0 };
        q.push(3, ev(0)); // in window
        q.push(5000, ev(1)); // beyond the 1024-cycle default window
        q.push(900, ev(2)); // in window
        let s = q.stats();
        assert_eq!((s.ring_pushes, s.overflow_pushes, s.overflow_migrations), (2, 1, 0));
        assert_eq!(s.window, MIN_EVENT_WINDOW as u64);
        // Draining past the spill migrates it into a bucket.
        while q.pop_due(6000).is_some() {}
        assert_eq!(q.stats().overflow_migrations, 1);
        // A fresh run resets the counters and may resize the window.
        q.reset(2048);
        let s = q.stats();
        assert_eq!((s.ring_pushes, s.overflow_pushes, s.window), (0, 0, 2048));
    }

    #[test]
    fn scratch_exposes_event_queue_stats_after_run() {
        let mut scratch = SimScratch::default();
        let mut cfg = tiny_cfg(Technique::Baseline);
        // Memory latency beyond the clamped window forces overflow
        // traffic that the counters must witness.
        cfg.mem.latency = 2 * MAX_EVENT_WINDOW as u64;
        run_simulation_with_scratch(cfg, private_streams(), &mut scratch);
        let s = scratch.event_queue_stats();
        assert_eq!(s.window, MAX_EVENT_WINDOW as u64);
        assert!(s.overflow_pushes > 0, "far DataReady events must spill");
        assert!(s.ring_pushes > 0, "L1 hits stay in the ring");
        assert_eq!(s.overflow_migrations, s.overflow_pushes, "every spill migrates back");
    }

    #[test]
    fn kernels_bit_identical_through_blocked_write_bursts() {
        // Store bursts to distinct lines: the write buffer fills, its
        // drain jams on a full L2 MSHR behind slow memory, and the cores
        // spin on refused stores. These spans used to force per-cycle
        // stepping; they are now skipped, and every bulk-charged counter
        // (reject stalls, L2 retries, wb full-stalls) must match the
        // per-cycle reference exactly.
        let wl = || -> Vec<Box<dyn Workload>> {
            (0..2)
                .map(|c| {
                    let base = (c as u64 + 1) << 21;
                    let ops: Vec<TraceOp> =
                        (0..4096u64).map(|i| TraceOp::Store(base + i * 64)).collect();
                    Box::new(ReplayWorkload::cycle(ops)) as Box<dyn Workload>
                })
                .collect()
        };
        for technique in
            [Technique::Baseline, Technique::Protocol, Technique::Decay { decay_cycles: 2048 }]
        {
            let mut cfg = tiny_cfg(technique);
            cfg.instructions_per_core = 6_000;
            cfg.mem.latency = 1_000; // long fills keep the MSHR saturated
            let stats = run_both_kernels(cfg, wl);
            let rejects: u64 = stats.cores.iter().map(|c| c.reject_stall_cycles).sum();
            assert!(rejects > 0, "cores must actually block on refused stores");
            let retries: u64 = stats.l2.iter().map(|s| s.retries).sum();
            assert!(retries > 0, "the blocked drain head must accrue L2 retries");
        }
    }

    #[test]
    fn kernels_bit_identical_through_blocked_read_bursts() {
        // Load bursts to distinct lines: the L1 MSHRs outpace the L2
        // MSHRs behind a slow memory, so the L2 read queues jam on a
        // head the cache provably keeps refusing. These spans used to
        // force per-cycle stepping (a non-empty read queue vetoed
        // skipping); they are now skipped, and every bulk-charged
        // counter (window stalls, the read head's L2 retries) must match
        // the per-cycle reference exactly.
        let wl = || -> Vec<Box<dyn Workload>> {
            (0..2)
                .map(|c| {
                    let base = (c as u64 + 1) << 21;
                    let ops: Vec<TraceOp> =
                        (0..4096u64).map(|i| TraceOp::Load(base + i * 64)).collect();
                    Box::new(ReplayWorkload::cycle(ops)) as Box<dyn Workload>
                })
                .collect()
        };
        for technique in
            [Technique::Baseline, Technique::Protocol, Technique::Decay { decay_cycles: 2048 }]
        {
            let mut cfg = tiny_cfg(technique);
            cfg.instructions_per_core = 6_000;
            cfg.mem.latency = 1_000; // long fills keep the L2 MSHR saturated
            cfg.l1.mshr_entries = 16; // the L1 feeds faster than the L2 drains
            cfg.l2.mshr_entries = 2;
            cfg.core.max_outstanding_loads = 16;
            let stats = run_both_kernels(cfg, wl);
            let retries: u64 = stats.l2.iter().map(|s| s.retries).sum();
            assert!(retries > 0, "the blocked read head must accrue L2 retries");
            let stalls: u64 = stats.cores.iter().map(|c| c.window_stall_cycles).sum();
            assert!(stalls > 0, "cores must actually block behind the jammed reads");
        }
    }

    #[test]
    fn kernels_bit_identical_at_cycle_cap() {
        let mut cfg = tiny_cfg(Technique::Decay { decay_cycles: 1024 });
        cfg.max_cycles = 7_777; // cut mid-run, also mid-interval
        let stats = run_both_kernels(cfg, private_streams);
        assert_eq!(stats.cycles, 7_777);
    }

    #[test]
    fn event_queue_orders_like_a_heap_across_overflow() {
        let mut q = EventQueue::new();
        let ev = |core: usize| EvKind::L1Hit { core, id: 0, issued_at: 0 };
        // Far-future events (overflow), then near ones, interleaved on
        // the same cycle to exercise FIFO-per-cycle across migration.
        q.push(5000, ev(0));
        q.push(3, ev(1));
        q.push(3, ev(2));
        q.push(5000, ev(3));
        q.push(1500, ev(4));
        assert_eq!(q.next_at(), Some(3));
        assert!(q.pop_due(2).is_none());
        assert_eq!(q.pop_due(3), Some(ev(1)));
        assert_eq!(q.pop_due(3), Some(ev(2)));
        assert!(q.pop_due(3).is_none());
        assert_eq!(q.next_at(), Some(1500));
        // Jump far ahead: both the in-window and the overflow events
        // drain in time order with FIFO ties.
        assert_eq!(q.pop_due(6000), Some(ev(4)));
        assert_eq!(q.pop_due(6000), Some(ev(0)));
        assert_eq!(q.pop_due(6000), Some(ev(3)));
        assert!(q.pop_due(6000).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn retry_queue_membership_tracks_duplicates() {
        let mut q = RetryQueue::default();
        q.push_back(LineAddr(7));
        q.push_back(LineAddr(9));
        q.push_back(LineAddr(7));
        assert!(q.contains(LineAddr(7)));
        assert_eq!(q.pop_front(), Some(LineAddr(7)));
        assert!(q.contains(LineAddr(7)), "second copy still queued");
        assert_eq!(q.pop_front(), Some(LineAddr(9)));
        assert!(!q.contains(LineAddr(9)));
        assert_eq!(q.pop_front(), Some(LineAddr(7)));
        assert!(!q.contains(LineAddr(7)));
        assert!(q.is_empty());
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        let mut scratch = SimScratch::default();
        let a = run_simulation_with_scratch(
            tiny_cfg(Technique::Protocol),
            sharing_streams(),
            &mut scratch,
        );
        // Second run adopts the warmed pools; results must not change.
        let b = run_simulation_with_scratch(
            tiny_cfg(Technique::Protocol),
            sharing_streams(),
            &mut scratch,
        );
        let fresh = run_simulation(tiny_cfg(Technique::Protocol), sharing_streams());
        assert_eq!(a, b);
        assert_eq!(a, fresh);
    }

    #[test]
    fn amat_reflects_l1_hits_mostly() {
        let stats = run_simulation(tiny_cfg(Technique::Baseline), private_streams());
        let amat = stats.amat();
        assert!(amat >= 2.0, "amat {amat} must be at least the L1 hit latency");
        assert!(amat < 60.0, "private strided loads should mostly hit, amat {amat}");
    }
}
