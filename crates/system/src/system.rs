//! The CMP system orchestrator: the cycle loop tying cores, L1s, write
//! buffers, L2s, the snoopy bus and memory together.
//!
//! # Cycle structure
//!
//! 1. fire due events (load completions, L2 responses, fills, TC/TD
//!    grants),
//! 2. grant at most one bus transaction (the bus serialises coherence),
//!    performing the snoop across all other L2s at grant time,
//! 3. per core: advance decay clocks, retry deferred turn-offs, serve the
//!    L2 ports (L1 read misses first, then write-buffer drains),
//! 4. tick the cores (dispatch instructions, issue loads/stores into the
//!    L1 / write buffer through [`CorePort`] adapters),
//! 5. sample the activity trace.
//!
//! Everything is deterministic: FIFO bus arbitration, fixed core order,
//! a sequence-numbered event queue.

use crate::bus::{BusReq, BusReqKind, SharedBus};
use crate::config::CmpConfig;
use crate::l1::{L1Cache, L1LoadOutcome, PendingLoad};
use crate::l2::{L2Cache, L2ReadOutcome, L2WriteOutcome, SideEffects, UpgradeResult};
use crate::stats::{IntervalActivity, SimStats};
use cmpleak_coherence::bus::SnoopKind;
use cmpleak_cpu::{CoreModel, CorePort, Workload};
use cmpleak_mem::{Geometry, LineAddr, WriteBuffer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    /// An L1 load hit completes.
    L1Hit { core: usize, id: u64, issued_at: u64 },
    /// An L2 read hit's response reaches the L1.
    L2ReadDone { core: usize, line: LineAddr },
    /// A miss's data arrives at the requesting L2.
    DataReady { core: usize, line: LineAddr, shared: bool },
    /// An upper-level invalidation acknowledges (TC/TD Grant).
    Grant { core: usize, slot: usize, line: LineAddr },
}

#[derive(Debug)]
struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, u64, EvKind)>>,
    seq: u64,
}

impl EventQueue {
    fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    fn push(&mut self, at: u64, kind: EvKind) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, kind)));
    }

    fn pop_due(&mut self, now: u64) -> Option<EvKind> {
        match self.heap.peek() {
            Some(Reverse((at, _, _))) if *at <= now => self.heap.pop().map(|Reverse((_, _, k))| k),
            _ => None,
        }
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// How a batch of L2 side effects reached the system, deciding the
/// transport of write-backs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WbRoute {
    /// Snoop flush: the data phase rides the in-progress bus transaction;
    /// only the memory channel is charged.
    SnoopFlush,
    /// Victim eviction or turn-off: a separate bus transaction is queued.
    Queued,
}

/// Adapter giving one core a view of its L1 and write buffer for a cycle.
struct PortAdapter<'a> {
    now: u64,
    core: usize,
    geom: Geometry,
    l1_hit_latency: u64,
    l1: &'a mut L1Cache,
    wb: &'a mut WriteBuffer,
    read_queue: &'a mut VecDeque<LineAddr>,
    events: &'a mut EventQueue,
}

impl CorePort for PortAdapter<'_> {
    fn try_load(&mut self, addr: u64, id: u64) -> bool {
        let line = self.geom.line_of(addr);
        match self.l1.access_load(line, PendingLoad { id, issued_at: self.now }) {
            L1LoadOutcome::Hit => {
                self.events.push(
                    self.now + self.l1_hit_latency,
                    EvKind::L1Hit { core: self.core, id, issued_at: self.now },
                );
                true
            }
            L1LoadOutcome::MissPrimary => {
                self.read_queue.push_back(line);
                true
            }
            L1LoadOutcome::MissSecondary => true,
            L1LoadOutcome::Refused => false,
        }
    }

    fn try_store(&mut self, addr: u64) -> bool {
        let line = self.geom.line_of(addr);
        if !self.wb.push(line) {
            return false;
        }
        self.l1.access_store(line);
        true
    }
}

/// Snapshot of cumulative counters for interval differencing.
#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    instructions: u64,
    l1_accesses: u64,
    l2_reads: u64,
    l2_writes: u64,
    bus_transactions: u64,
    bus_bytes: u64,
    mem_bytes: u64,
    decay_events: u64,
}

/// The simulated CMP.
pub struct CmpSystem {
    cfg: CmpConfig,
    now: u64,
    cores: Vec<CoreModel>,
    workloads: Vec<Box<dyn Workload>>,
    l1s: Vec<L1Cache>,
    wbs: Vec<WriteBuffer>,
    l2s: Vec<L2Cache>,
    bus: SharedBus,
    events: EventQueue,
    read_queues: Vec<VecDeque<LineAddr>>,
    write_retries: Vec<VecDeque<LineAddr>>,
    fx: SideEffects,
    // accounting
    loads_completed: u64,
    load_latency_sum: u64,
    c2c_transfers: u64,
    upper_invalidations: u64,
    trace: Vec<IntervalActivity>,
    last_snap: Snapshot,
    interval_powered: u64,
    interval_start: u64,
}

impl std::fmt::Debug for CmpSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Workloads are trait objects; summarize instead of deriving.
        f.debug_struct("CmpSystem")
            .field("now", &self.now)
            .field("n_cores", &self.cores.len())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl CmpSystem {
    /// Build a system running one workload per core.
    ///
    /// # Panics
    /// Panics unless exactly `cfg.n_cores` workloads are supplied, or if
    /// the configuration is invalid.
    pub fn new(cfg: CmpConfig, workloads: Vec<Box<dyn Workload>>) -> Self {
        cfg.validate();
        assert_eq!(workloads.len(), cfg.n_cores, "one workload per core");
        let cores =
            (0..cfg.n_cores).map(|_| CoreModel::new(cfg.core, cfg.instructions_per_core)).collect();
        let l1s = (0..cfg.n_cores).map(|_| L1Cache::new(&cfg.l1)).collect();
        let wbs = (0..cfg.n_cores).map(|_| WriteBuffer::new(cfg.l1.write_buffer)).collect();
        let l2s = (0..cfg.n_cores)
            .map(|_| L2Cache::new(&cfg.l2, cfg.technique, cfg.shadow_tags))
            .collect();
        let bus = SharedBus::new(cfg.bus, cfg.mem, cfg.l2.line_bytes);
        Self {
            now: 0,
            cores,
            workloads,
            l1s,
            wbs,
            l2s,
            bus,
            events: EventQueue::new(),
            read_queues: (0..cfg.n_cores).map(|_| VecDeque::new()).collect(),
            write_retries: (0..cfg.n_cores).map(|_| VecDeque::new()).collect(),
            fx: SideEffects::default(),
            loads_completed: 0,
            load_latency_sum: 0,
            c2c_transfers: 0,
            upper_invalidations: 0,
            trace: Vec::new(),
            last_snap: Snapshot::default(),
            interval_powered: 0,
            interval_start: 0,
            cfg,
        }
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Read-only access to an L2 (tests/examples).
    pub fn l2(&self, core: usize) -> &L2Cache {
        &self.l2s[core]
    }

    /// Run to completion (all cores drained, all queues empty) or to the
    /// configured cycle cap, and return the statistics.
    pub fn run(mut self) -> SimStats {
        while !self.done() && self.now < self.cfg.max_cycles {
            self.step_cycle();
        }
        self.finalize()
    }

    fn done(&self) -> bool {
        self.cores.iter().all(|c| c.drained())
            && self.wbs.iter().all(|w| w.is_empty())
            && self.write_retries.iter().all(|q| q.is_empty())
            && self.read_queues.iter().all(|q| q.is_empty())
            && self.l1s.iter().all(|l| l.outstanding_misses() == 0)
            && self.l2s.iter().all(|l| !l.busy())
            && self.bus.idle(self.now)
            && self.events.is_empty()
    }

    fn step_cycle(&mut self) {
        while let Some(ev) = self.events.pop_due(self.now) {
            self.handle_event(ev);
        }
        self.bus_grant();
        for core in 0..self.cfg.n_cores {
            self.l2_cycle(core);
        }
        self.tick_cores();
        self.sample_cycle();
        self.now += 1;
    }

    // ---- events -----------------------------------------------------------

    fn handle_event(&mut self, ev: EvKind) {
        match ev {
            EvKind::L1Hit { core, id, issued_at } => {
                self.cores[core].on_load_complete(id);
                self.loads_completed += 1;
                self.load_latency_sum += self.now - issued_at;
            }
            EvKind::L2ReadDone { core, line } => {
                self.deliver_to_l1(core, line);
            }
            EvKind::DataReady { core, line, shared } => {
                let mut fx = std::mem::take(&mut self.fx);
                fx.clear();
                let (reads, writes, _installed) =
                    self.l2s[core].fill(line, shared, self.now, &mut fx);
                self.route_fx(core, &mut fx, WbRoute::Queued);
                self.fx = fx;
                if reads > 0 {
                    self.deliver_to_l1(core, line);
                }
                if writes > 0 {
                    self.issue_write_probe(core, line);
                }
            }
            EvKind::Grant { core, slot, line } => {
                let mut fx = std::mem::take(&mut self.fx);
                fx.clear();
                self.l2s[core].grant(slot, line, self.now, &mut fx);
                self.route_fx(core, &mut fx, WbRoute::Queued);
                self.fx = fx;
            }
        }
    }

    fn deliver_to_l1(&mut self, core: usize, line: LineAddr) {
        let install = self.l2s[core].holds_valid(line);
        let (waiting, evicted) = if install {
            let r = self.l1s[core].fill(line);
            self.l2s[core].set_in_l1(line, true);
            r
        } else {
            (self.l1s[core].complete_without_install(line), None)
        };
        if let Some(ev) = evicted {
            self.l2s[core].set_in_l1(ev, false);
        }
        for p in waiting {
            self.cores[core].on_load_complete(p.id);
            self.loads_completed += 1;
            self.load_latency_sum += self.now - p.issued_at;
        }
    }

    // ---- bus --------------------------------------------------------------

    fn bus_grant(&mut self) {
        let Some(req) = self.bus.try_grant(self.now) else {
            return;
        };
        // Split-transaction conflict rule: a transaction touching a line
        // whose data is in flight to another cache is NACKed and
        // retried, so the in-flight fill installs before being snooped.
        // (Entries merely *queued* behind us do not NACK — they will see
        // our issued entry when their turn comes — so no deadlock.)
        if !matches!(req.kind, BusReqKind::Writeback) {
            let conflict = (0..self.cfg.n_cores)
                .any(|j| j != req.origin && self.l2s[j].pending_issued(req.line));
            if conflict {
                self.bus.push(req);
                return;
            }
        }
        match req.kind {
            BusReqKind::Writeback => {
                self.bus.memory_writeback(self.now);
            }
            BusReqKind::Upgrade => {
                self.snoop_others(req.origin, req.line, SnoopKind::BusRdX);
                match self.l2s[req.origin].complete_upgrade(req.line, self.now) {
                    UpgradeResult::Done => {}
                    UpgradeResult::ConvertToMiss => {
                        self.start_fill(req.origin, req.line, true);
                    }
                }
            }
            BusReqKind::ReadMiss | BusReqKind::WriteMiss => {
                let exclusive = matches!(req.kind, BusReqKind::WriteMiss)
                    || self.l2s[req.origin].pending_exclusive(req.line);
                self.start_fill(req.origin, req.line, exclusive);
            }
        }
    }

    fn start_fill(&mut self, origin: usize, line: LineAddr, exclusive: bool) {
        self.l2s[origin].mark_issued(line);
        let kind = if exclusive { SnoopKind::BusRdX } else { SnoopKind::BusRd };
        let (shared, supplied) = self.snoop_others(origin, line, kind);
        let ready = if supplied {
            self.c2c_transfers += 1;
            self.bus.c2c_fill(self.now)
        } else {
            self.bus.memory_fill(self.now)
        };
        self.events.push(ready.max(self.now + 1), EvKind::DataReady { core: origin, line, shared });
    }

    fn snoop_others(&mut self, origin: usize, line: LineAddr, kind: SnoopKind) -> (bool, bool) {
        let mut shared = false;
        let mut supplied = false;
        for j in 0..self.cfg.n_cores {
            if j == origin {
                continue;
            }
            let mut fx = std::mem::take(&mut self.fx);
            fx.clear();
            let reply = self.l2s[j].snoop(line, kind, self.now, &mut fx);
            shared |= reply.assert_shared;
            supplied |= reply.supply_data;
            self.route_fx(j, &mut fx, WbRoute::SnoopFlush);
            self.fx = fx;
        }
        (shared, supplied)
    }

    fn route_fx(&mut self, core: usize, fx: &mut SideEffects, route: WbRoute) {
        for line in fx.writebacks.drain(..) {
            match route {
                WbRoute::SnoopFlush => self.bus.memory_writeback(self.now),
                WbRoute::Queued => {
                    self.bus.push(BusReq { origin: core, line, kind: BusReqKind::Writeback })
                }
            }
        }
        for (line, induced) in fx.upper_invals.drain(..) {
            if self.l1s[core].invalidate(line, induced) {
                self.upper_invalidations += 1;
            }
        }
        for (due, slot, line) in fx.grants.drain(..) {
            self.events.push(due.max(self.now + 1), EvKind::Grant { core, slot, line });
        }
    }

    // ---- per-core L2 cycle --------------------------------------------------

    fn l2_cycle(&mut self, core: usize) {
        // Decay clock and turn-off processing.
        let decayed = self.l2s[core].take_decayed(self.now);
        for slot in decayed {
            self.try_turn_off(core, slot);
        }
        let deferred = self.l2s[core].take_deferred_turnoffs();
        for slot in deferred {
            self.try_turn_off(core, slot);
        }

        // L2 ports: reads (latency-critical) first, then writes.
        let mut ops = 0u32;
        while ops < self.cfg.l2.ports {
            let Some(&line) = self.read_queues[core].front() else {
                break;
            };
            match self.l2s[core].probe_read(line) {
                L2ReadOutcome::Hit => {
                    self.read_queues[core].pop_front();
                    let done = self.now + self.l2s[core].hit_latency();
                    self.events.push(done, EvKind::L2ReadDone { core, line });
                }
                L2ReadOutcome::MissPrimary => {
                    self.read_queues[core].pop_front();
                    self.bus.push(BusReq { origin: core, line, kind: BusReqKind::ReadMiss });
                }
                L2ReadOutcome::MissSecondary => {
                    self.read_queues[core].pop_front();
                }
                L2ReadOutcome::Retry => break,
            }
            ops += 1;
        }
        while ops < self.cfg.l2.ports {
            let (line, from_retry) = if let Some(&line) = self.write_retries[core].front() {
                (line, true)
            } else if let Some(line) = self.wbs[core].head() {
                (line, false)
            } else {
                break;
            };
            let outcome = self.issue_write_probe_inner(core, line);
            match outcome {
                L2WriteOutcome::Retry => break,
                _ => {
                    if from_retry {
                        self.write_retries[core].pop_front();
                    } else {
                        self.wbs[core].pop();
                    }
                }
            }
            ops += 1;
        }
    }

    fn try_turn_off(&mut self, core: usize, slot: usize) {
        let Some(line) = self.l2s[core].line_at(slot) else {
            return;
        };
        let pending = self.wbs[core].has_pending(line) || self.write_retries[core].contains(&line);
        let mut fx = std::mem::take(&mut self.fx);
        fx.clear();
        self.l2s[core].turn_off(slot, self.now, pending, &mut fx);
        self.route_fx(core, &mut fx, WbRoute::Queued);
        self.fx = fx;
    }

    /// Probe a write that is no longer in the write buffer (re-issued
    /// after a demoted/doomed fill); retries go to the retry queue.
    fn issue_write_probe(&mut self, core: usize, line: LineAddr) {
        if self.issue_write_probe_inner(core, line) == L2WriteOutcome::Retry {
            self.write_retries[core].push_back(line)
        }
    }

    fn issue_write_probe_inner(&mut self, core: usize, line: LineAddr) -> L2WriteOutcome {
        let outcome = self.l2s[core].probe_write(line);
        match outcome {
            L2WriteOutcome::Done | L2WriteOutcome::MissSecondary => {}
            L2WriteOutcome::UpgradeIssued => {
                self.bus.push(BusReq { origin: core, line, kind: BusReqKind::Upgrade });
            }
            L2WriteOutcome::MissPrimary => {
                self.bus.push(BusReq { origin: core, line, kind: BusReqKind::WriteMiss });
            }
            L2WriteOutcome::Retry => {}
        }
        outcome
    }

    // ---- cores ------------------------------------------------------------

    fn tick_cores(&mut self) {
        for core in 0..self.cfg.n_cores {
            let mut port = PortAdapter {
                now: self.now,
                core,
                geom: self.cfg.l1.geometry(),
                l1_hit_latency: self.cfg.l1.hit_latency,
                l1: &mut self.l1s[core],
                wb: &mut self.wbs[core],
                read_queue: &mut self.read_queues[core],
                events: &mut self.events,
            };
            self.cores[core].tick(self.workloads[core].as_mut(), &mut port);
        }
    }

    // ---- sampling -----------------------------------------------------------

    fn counters(&self) -> Snapshot {
        let mut s = Snapshot::default();
        for c in &self.cores {
            s.instructions += c.stats().instructions;
        }
        for l in &self.l1s {
            let st = l.stats();
            s.l1_accesses += st.loads + st.stores;
        }
        for l in &self.l2s {
            let st = l.stats();
            s.l2_reads += st.reads;
            s.l2_writes += st.writes;
            let d = l.decay_stats();
            s.decay_events += d.increments + d.resets;
        }
        s.bus_transactions = self.bus.transactions;
        s.bus_bytes = self.bus.bus_bytes;
        s.mem_bytes = self.bus.mem_bytes;
        s
    }

    fn sample_cycle(&mut self) {
        self.interval_powered += self.l2s.iter().map(|l| l.powered_lines()).sum::<u64>();
        let elapsed = self.now + 1 - self.interval_start;
        if elapsed >= self.cfg.sample_interval {
            self.close_interval(self.now + 1);
        }
    }

    fn close_interval(&mut self, end: u64) {
        let elapsed = end.saturating_sub(self.interval_start);
        if elapsed == 0 {
            return;
        }
        let snap = self.counters();
        let lines_total: u64 = self.l2s.iter().map(|l| l.geometry().lines() as u64).sum();
        self.trace.push(IntervalActivity {
            cycles: elapsed,
            instructions: snap.instructions - self.last_snap.instructions,
            l1_accesses: snap.l1_accesses - self.last_snap.l1_accesses,
            l2_reads: snap.l2_reads - self.last_snap.l2_reads,
            l2_writes: snap.l2_writes - self.last_snap.l2_writes,
            bus_transactions: snap.bus_transactions - self.last_snap.bus_transactions,
            bus_bytes: snap.bus_bytes - self.last_snap.bus_bytes,
            mem_bytes: snap.mem_bytes - self.last_snap.mem_bytes,
            l2_powered_line_cycles: self.interval_powered,
            l2_total_line_cycles: lines_total * elapsed,
            decay_counter_events: snap.decay_events - self.last_snap.decay_events,
        });
        self.last_snap = snap;
        self.interval_powered = 0;
        self.interval_start = end;
    }

    fn finalize(mut self) -> SimStats {
        self.close_interval(self.now);
        let now = self.now;
        let mut on = 0u64;
        for l2 in &mut self.l2s {
            on += l2.finish_on_cycles(now);
        }
        let lines_total: u64 = self.l2s.iter().map(|l| l.geometry().lines() as u64).sum();
        SimStats {
            cycles: now,
            instructions: self.cores.iter().map(|c| c.stats().instructions).sum(),
            cores: self.cores.iter().map(|c| c.stats()).collect(),
            core_workloads: self.workloads.iter().map(|w| w.name().to_string()).collect(),
            l1: self.l1s.iter().map(|l| l.stats()).collect(),
            l2: self.l2s.iter().map(|l| l.stats()).collect(),
            l2_on_line_cycles: on,
            l2_line_cycle_capacity: lines_total * now,
            loads_completed: self.loads_completed,
            load_latency_sum: self.load_latency_sum,
            bus_transactions: self.bus.transactions,
            bus_busy_cycles: self.bus.busy_cycles,
            mem_fills: self.bus.mem_fills,
            mem_writebacks: self.bus.mem_writebacks,
            mem_bytes: self.bus.mem_bytes,
            c2c_transfers: self.c2c_transfers,
            upper_invalidations: self.upper_invalidations,
            trace: self.trace,
        }
    }
}

/// Convenience: build and run a system in one call.
pub fn run_simulation(cfg: CmpConfig, workloads: Vec<Box<dyn Workload>>) -> SimStats {
    CmpSystem::new(cfg, workloads).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpleak_coherence::Technique;
    use cmpleak_cpu::{ReplayWorkload, TraceOp};

    fn tiny_cfg(technique: Technique) -> CmpConfig {
        let mut cfg = CmpConfig { n_cores: 2, ..CmpConfig::default() };
        cfg.l1.size_bytes = 1024;
        cfg.l2.size_bytes = 64 * 1024;
        cfg.technique = technique;
        cfg.instructions_per_core = 20_000;
        cfg.max_cycles = 10_000_000;
        cfg.sample_interval = 1000;
        cfg
    }

    fn private_streams() -> Vec<Box<dyn Workload>> {
        // Each core strides over its own 16 KiB segment.
        (0..2)
            .map(|c| {
                let base = (c as u64 + 1) << 20;
                let ops: Vec<TraceOp> = (0..256)
                    .flat_map(|i| {
                        [
                            TraceOp::Exec(3),
                            TraceOp::Load(base + i * 64),
                            TraceOp::Exec(2),
                            TraceOp::Store(base + i * 64 + 8),
                        ]
                    })
                    .collect();
                Box::new(ReplayWorkload::cycle(ops)) as Box<dyn Workload>
            })
            .collect()
    }

    fn sharing_streams() -> Vec<Box<dyn Workload>> {
        // Both cores hammer the same 4 KiB: lots of invalidations.
        (0..2)
            .map(|_| {
                let ops: Vec<TraceOp> = (0..64)
                    .flat_map(|i| {
                        [
                            TraceOp::Exec(2),
                            TraceOp::Store(i * 64),
                            TraceOp::Exec(2),
                            TraceOp::Load(i * 64),
                        ]
                    })
                    .collect();
                Box::new(ReplayWorkload::cycle(ops)) as Box<dyn Workload>
            })
            .collect()
    }

    #[test]
    fn baseline_run_completes_and_counts_instructions() {
        let stats = run_simulation(tiny_cfg(Technique::Baseline), private_streams());
        assert_eq!(stats.instructions, 40_000);
        assert!(stats.cycles > 0 && stats.cycles < 2_000_000, "cycles = {}", stats.cycles);
        assert!((stats.occupation_rate() - 1.0).abs() < 1e-12, "baseline is always on");
        assert!(stats.ipc() > 0.1);
    }

    #[test]
    fn private_streams_have_no_coherence_traffic() {
        let stats = run_simulation(tiny_cfg(Technique::Baseline), private_streams());
        let invals: u64 = stats.l2.iter().map(|s| s.snoop_invalidations).sum();
        assert_eq!(invals, 0);
        assert_eq!(stats.c2c_transfers, 0);
    }

    #[test]
    fn sharing_streams_invalidate_and_supply_cache_to_cache() {
        let stats = run_simulation(tiny_cfg(Technique::Baseline), sharing_streams());
        let invals: u64 = stats.l2.iter().map(|s| s.snoop_invalidations).sum();
        assert!(invals > 0, "write sharing must invalidate");
        assert!(stats.c2c_transfers > 0, "M owners must supply data");
    }

    #[test]
    fn protocol_gates_cold_and_invalidated_lines() {
        let stats = run_simulation(tiny_cfg(Technique::Protocol), sharing_streams());
        let occ = stats.occupation_rate();
        assert!(occ < 0.5, "small working set: most lines stay cold, occ = {occ}");
        let gated: u64 = stats.l2.iter().map(|s| s.turnoffs_protocol).sum();
        assert!(gated > 0, "protocol must gate invalidated lines");
    }

    #[test]
    fn protocol_does_not_change_cycle_count_much() {
        let base = run_simulation(tiny_cfg(Technique::Baseline), private_streams());
        let prot = run_simulation(tiny_cfg(Technique::Protocol), private_streams());
        assert_eq!(base.instructions, prot.instructions);
        let loss = 1.0 - base.cycles as f64 / prot.cycles as f64;
        assert!(loss.abs() < 0.01, "protocol IPC loss should be ~0, got {loss}");
    }

    #[test]
    fn decay_reduces_occupation_at_a_performance_cost() {
        let mut cfg = tiny_cfg(Technique::Decay { decay_cycles: 2048 });
        cfg.instructions_per_core = 60_000;
        let base_cfg = {
            let mut c = cfg;
            c.technique = Technique::Baseline;
            c
        };
        // Workload with dead lines: touch a big footprint once, then loop
        // in a small hot set.
        let wl = || -> Vec<Box<dyn Workload>> {
            (0..2)
                .map(|c| {
                    let base = (c as u64 + 1) << 20;
                    let mut ops = Vec::new();
                    for i in 0..512u64 {
                        ops.push(TraceOp::Load(base + i * 64));
                        ops.push(TraceOp::Exec(2));
                    }
                    let hot: Vec<TraceOp> = (0..16u64)
                        .flat_map(|i| [TraceOp::Exec(3), TraceOp::Load(base + i * 64)])
                        .collect();
                    ops.extend(std::iter::repeat_n(hot, 400).flatten());
                    Box::new(ReplayWorkload::cycle(ops)) as Box<dyn Workload>
                })
                .collect()
        };
        let base = run_simulation(base_cfg, wl());
        let decay = run_simulation(cfg, wl());
        assert!(decay.occupation_rate() < 0.4, "decay occupation = {}", decay.occupation_rate());
        assert!(base.occupation_rate() == 1.0);
        let turnoffs: u64 = decay.l2.iter().map(|s| s.turnoffs_decay).sum();
        assert!(turnoffs > 0);
    }

    #[test]
    fn trace_integrates_to_totals() {
        let stats = run_simulation(tiny_cfg(Technique::Protocol), sharing_streams());
        let trace_cycles: u64 = stats.trace.iter().map(|t| t.cycles).sum();
        assert_eq!(trace_cycles, stats.cycles);
        let trace_on: u64 = stats.trace.iter().map(|t| t.l2_powered_line_cycles).sum();
        assert_eq!(
            trace_on, stats.l2_on_line_cycles,
            "trace must integrate to the occupancy total"
        );
        let trace_instr: u64 = stats.trace.iter().map(|t| t.instructions).sum();
        assert_eq!(trace_instr, stats.instructions);
        let trace_mem: u64 = stats.trace.iter().map(|t| t.mem_bytes).sum();
        assert_eq!(trace_mem, stats.mem_bytes);
    }

    #[test]
    fn determinism_same_config_same_stats() {
        let a =
            run_simulation(tiny_cfg(Technique::Decay { decay_cycles: 4096 }), sharing_streams());
        let b =
            run_simulation(tiny_cfg(Technique::Decay { decay_cycles: 4096 }), sharing_streams());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mem_bytes, b.mem_bytes);
        assert_eq!(a.l2_on_line_cycles, b.l2_on_line_cycles);
    }

    #[test]
    fn amat_reflects_l1_hits_mostly() {
        let stats = run_simulation(tiny_cfg(Technique::Baseline), private_streams());
        let amat = stats.amat();
        assert!(amat >= 2.0, "amat {amat} must be at least the L1 hit latency");
        assert!(amat < 60.0, "private strided loads should mostly hit, amat {amat}");
    }
}
