//! Private write-through L1 data cache.
//!
//! Policy summary (Fig. 1 / §III of the paper):
//!
//! * **write-through, no-write-allocate**: stores update the L1 copy if
//!   present and always continue to the write buffer toward the L2, so
//!   the L2 always holds current data;
//! * loads allocate on miss through the L1 MSHR (hits are served under
//!   pending misses, secondary misses merge);
//! * the L1 holds no coherence state of its own — inclusion makes the L2
//!   responsible: when the L2 loses a line (snoop, eviction, turn-off)
//!   it *back-invalidates* the L1 through [`L1Cache::invalidate`].

use crate::config::L1Config;
use crate::stats::L1Stats;
use cmpleak_mem::{BankArena, Geometry, LineAddr, LookupOutcome, Mshr, MshrAlloc, SetAssocArray};

/// Per-line metadata: presence only (the L1 carries no dirty bit — it is
/// write-through — and no MESI state — the L2 enforces coherence).
#[derive(Debug, Clone, Copy, Default)]
pub struct L1Meta {
    valid: bool,
}

impl cmpleak_mem::array::LineMeta for L1Meta {
    fn is_valid(&self) -> bool {
        self.valid
    }
    fn to_byte(&self) -> u8 {
        self.valid.into()
    }
    fn from_byte(b: u8) -> Self {
        Self { valid: b != 0 }
    }
}

/// A waiting load: id for the core, issue cycle for AMAT accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingLoad {
    /// Core-assigned load id.
    pub id: u64,
    /// Cycle the core issued the load.
    pub issued_at: u64,
}

/// Outcome of a load probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1LoadOutcome {
    /// Data present: complete after the hit latency.
    Hit,
    /// First miss for this line: the caller must request it from the L2.
    MissPrimary,
    /// Miss merged into an in-flight line: nothing to send downstream.
    MissSecondary,
    /// MSHR exhausted: refuse, the core retries.
    Refused,
}

/// Private write-through L1 data cache with MSHR.
#[derive(Debug)]
pub struct L1Cache {
    tags: SetAssocArray<L1Meta>,
    mshr: Mshr<PendingLoad>,
    stats: L1Stats,
}

impl L1Cache {
    /// Build from configuration, allocating fresh storage.
    pub fn new(cfg: &L1Config) -> Self {
        Self::new_in(cfg, &mut BankArena::default())
    }

    /// Like [`L1Cache::new`], with the tag columns checked out of
    /// `arena` for reuse across simulations.
    pub fn new_in(cfg: &L1Config, arena: &mut BankArena) -> Self {
        Self {
            tags: SetAssocArray::new_in(cfg.geometry(), arena),
            mshr: Mshr::new(cfg.mshr_entries, cfg.mshr_entries * 4),
            stats: L1Stats::default(),
        }
    }

    /// Hand the tag columns back to `arena`; the cache must not be used
    /// afterwards (statistics remain readable).
    pub fn release_storage(&mut self, arena: &mut BankArena) {
        self.tags.release_into(arena);
    }

    /// Geometry of the tag array.
    pub fn geometry(&self) -> Geometry {
        self.tags.geometry()
    }

    /// Statistics so far.
    pub fn stats(&self) -> L1Stats {
        self.stats
    }

    /// Whether the L1 currently holds `line` (used by the L2 for the
    /// `upper_has_copy` turn-off context — the `in_l1` bit in a real
    /// implementation; exact here because eviction notifies).
    pub fn holds(&self, line: LineAddr) -> bool {
        matches!(self.tags.probe(line), LookupOutcome::Hit(_))
    }

    /// Whether a fill for `line` is outstanding.
    pub fn miss_pending(&self, line: LineAddr) -> bool {
        self.mshr.pending(line)
    }

    /// Whether [`L1Cache::access_load`] for `line` would return
    /// [`L1LoadOutcome::Refused`], without performing the probe. Used by
    /// the quiescence-skipping kernel: a refused load stays refused (and
    /// the refusal is side-effect-free) until a fill or invalidation
    /// changes this cache, both of which are event-driven.
    pub fn load_would_refuse(&self, line: LineAddr) -> bool {
        if matches!(self.tags.probe(line), LookupOutcome::Hit(_)) {
            return false;
        }
        !self.mshr.would_accept(line)
    }

    /// Probe for a load.
    pub fn access_load(&mut self, line: LineAddr, pending: PendingLoad) -> L1LoadOutcome {
        self.stats.loads += 1;
        if let LookupOutcome::Hit(_) = self.tags.lookup(line) {
            self.stats.load_hits += 1;
            return L1LoadOutcome::Hit;
        }
        match self.mshr.allocate(line, pending, false) {
            MshrAlloc::Primary => L1LoadOutcome::MissPrimary,
            MshrAlloc::Secondary => L1LoadOutcome::MissSecondary,
            MshrAlloc::Full => {
                // The probe did not take effect; undo the load count so
                // retries are not double-counted.
                self.stats.loads -= 1;
                L1LoadOutcome::Refused
            }
        }
    }

    /// Probe for a store: update in place on hit (write-through — the
    /// caller independently pushes the store into the write buffer).
    /// No-write-allocate: a miss changes nothing.
    pub fn access_store(&mut self, line: LineAddr) -> bool {
        self.stats.stores += 1;
        match self.tags.lookup(line) {
            LookupOutcome::Hit(_) => {
                self.stats.store_hits += 1;
                true
            }
            LookupOutcome::Miss => false,
        }
    }

    /// Install `line` (fill from L2) and complete its waiting loads.
    /// Returns the completed loads and the line evicted to make room (the
    /// system clears the L2's `in_l1` bookkeeping for it).
    pub fn fill(&mut self, line: LineAddr) -> (Vec<PendingLoad>, Option<LineAddr>) {
        let waiting = self.mshr.complete(line).map(|e| e.targets).unwrap_or_default();
        // A back-invalidation may have raced ahead of this fill and the
        // line may be re-requested later; installing is still correct
        // because the L2 fill that produced this callback installed the
        // line at L2 first (inclusion holds at delivery time).
        let evicted = match self.tags.probe(line) {
            LookupOutcome::Hit(_) => None,
            LookupOutcome::Miss => {
                let v = self.tags.victim(line);
                self.tags.fill(v, line, L1Meta { valid: true }).map(|(t, _)| t)
            }
        };
        (waiting, evicted)
    }

    /// Back-invalidation from the L2 (inclusion). Returns whether the
    /// line was present. `technique_induced` tags invalidations caused by
    /// a leakage turn-off rather than baseline coherence.
    pub fn invalidate(&mut self, line: LineAddr, technique_induced: bool) -> bool {
        match self.tags.probe(line) {
            LookupOutcome::Hit(slot) => {
                self.tags.invalidate(slot);
                self.stats.back_invalidations += 1;
                if technique_induced {
                    self.stats.technique_back_invalidations += 1;
                }
                true
            }
            LookupOutcome::Miss => false,
        }
    }

    /// Complete the waiting loads for `line` without installing it (used
    /// when the line vanished from the L2 between the response and its
    /// delivery — the data is forwarded but not cached, preserving
    /// inclusion).
    pub fn complete_without_install(&mut self, line: LineAddr) -> Vec<PendingLoad> {
        self.mshr.complete(line).map(|e| e.targets).unwrap_or_default()
    }

    /// Number of in-flight misses (for drain checks).
    pub fn outstanding_misses(&self) -> usize {
        self.mshr.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        L1Cache::new(&L1Config {
            size_bytes: 1024,
            line_bytes: 64,
            assoc: 2,
            hit_latency: 2,
            mshr_entries: 2,
            write_buffer: 4,
        })
    }

    fn la(cache: &L1Cache, addr: u64) -> LineAddr {
        cache.geometry().line_of(addr)
    }

    const P: PendingLoad = PendingLoad { id: 0, issued_at: 0 };

    #[test]
    fn load_miss_fill_hit_roundtrip() {
        let mut c = l1();
        let line = la(&c, 0x1000);
        assert_eq!(c.access_load(line, P), L1LoadOutcome::MissPrimary);
        let (waiting, _) = c.fill(line);
        assert_eq!(waiting, vec![P]);
        assert_eq!(c.access_load(line, P), L1LoadOutcome::Hit);
        assert_eq!(c.stats().load_hits, 1);
        assert_eq!(c.stats().load_misses(), 1);
    }

    #[test]
    fn secondary_misses_merge() {
        let mut c = l1();
        let line = la(&c, 0x40);
        assert_eq!(
            c.access_load(line, PendingLoad { id: 1, issued_at: 5 }),
            L1LoadOutcome::MissPrimary
        );
        assert_eq!(
            c.access_load(line, PendingLoad { id: 2, issued_at: 6 }),
            L1LoadOutcome::MissSecondary
        );
        let (waiting, _) = c.fill(line);
        assert_eq!(waiting.len(), 2);
    }

    #[test]
    fn mshr_exhaustion_refuses_without_counting() {
        let mut c = l1();
        assert_eq!(c.access_load(la(&c, 0x0), P), L1LoadOutcome::MissPrimary);
        assert_eq!(c.access_load(la(&c, 0x40), P), L1LoadOutcome::MissPrimary);
        let before = c.stats().loads;
        assert_eq!(c.access_load(la(&c, 0x80), P), L1LoadOutcome::Refused);
        assert_eq!(c.stats().loads, before, "refused probe not counted");
    }

    #[test]
    fn stores_update_without_allocating() {
        let mut c = l1();
        let line = la(&c, 0x200);
        assert!(!c.access_store(line), "miss: no allocate");
        assert_eq!(c.access_load(line, P), L1LoadOutcome::MissPrimary, "store did not allocate");
        c.fill(line);
        assert!(c.access_store(line), "hit after fill");
        assert_eq!(c.stats().stores, 2);
        assert_eq!(c.stats().store_hits, 1);
    }

    #[test]
    fn back_invalidation_removes_line_and_counts_cause() {
        let mut c = l1();
        let line = la(&c, 0x300);
        c.access_load(line, P);
        c.fill(line);
        assert!(c.holds(line));
        assert!(c.invalidate(line, true));
        assert!(!c.holds(line));
        assert_eq!(c.stats().back_invalidations, 1);
        assert_eq!(c.stats().technique_back_invalidations, 1);
        assert!(!c.invalidate(line, false), "second invalidation is a no-op");
        assert_eq!(c.stats().back_invalidations, 1);
    }

    #[test]
    fn fill_reports_eviction_for_inclusion_bookkeeping() {
        let mut c = l1(); // 8 sets x 2 ways
        let a = la(&c, 0);
        let b = la(&c, 8 * 64);
        let d = la(&c, 16 * 64); // all set 0
        for line in [a, b] {
            c.access_load(line, P);
            c.fill(line);
        }
        c.access_load(d, P);
        let (_, evicted) = c.fill(d);
        assert_eq!(evicted, Some(a), "LRU line evicted and reported");
    }
}
