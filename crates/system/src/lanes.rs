//! The lane engine: step many technique configurations through one
//! decoded op stream.
//!
//! A sweep group — one (scenario, seed, budget, size) cell row — runs
//! the *same* per-core op sequence under N different leakage
//! techniques. The sequential planner delivers that sequence N times
//! (decode for replay backends, generator arithmetic for live ones).
//! [`run_lane_group`] delivers it **once**: the group's sources feed a
//! shared [`OpWindow`](cmpleak_cpu::OpWindow), and every lane — a full
//! [`CmpSystem`] with its own cores, caches, bus and event queue —
//! walks the window through per-lane read cursors.
//!
//! # Scheduling
//!
//! Lanes run *batch-granular* segments, not cycle-interleaved: each
//! scheduler round slides the window over the slowest lane's position,
//! extends it `SEGMENT_TARGET` ops past the fastest, and then runs each
//! live lane with [`CmpSystem::run_segment`] until it either completes
//! or drains its buffered ops. One lane's cache/bus state thus stays
//! hot through thousands of consecutive cycles, while the window stays
//! O(segment) — not O(stream) — because lanes drain to within a fetch
//! margin of the window's end before pausing. Each lane's
//! quiescence-skip kernel operates unchanged within its segments.
//!
//! # Bit-identity
//!
//! A lane's cycle sequence is exactly the sequential run's: segment
//! pauses land between cycles and consume nothing, the window filters
//! only `Exec(0)` ops (timing- and statistics-neutral by construction,
//! see [`cmpleak_cpu::lane`]), and per-lane state never aliases. The
//! equivalence is enforced by this module's tests and by
//! `tests/lane_differential.rs` in `cmpleak-core`.

use crate::config::CmpConfig;
use crate::stats::SimStats;
use crate::system::{CmpSystem, SimScratch};
use cmpleak_cpu::{OpSource, OpWindow};

/// Ops buffered ahead of the fastest lane per scheduler round. Segment
/// switches are the lane engine's only overhead versus a plain run —
/// each switch re-warms the next lane's multi-megabyte cache state —
/// so the target is sized for *rare* switches (a lane runs tens of
/// thousands of cycles per segment, so a whole paper-scale cell takes
/// only a handful). The cost is window memory, which is cheap: the
/// buffer is shared by every lane and read as a stream, ~16 bytes/op.
const SEGMENT_TARGET: u64 = 32_768;

/// Reusable allocation pools for lane groups: one [`SimScratch`] per
/// lane slot, so every lane of every group reuses the event ring,
/// queue and line-column allocations of the lane that ran in its slot
/// before.
#[derive(Debug, Default)]
pub struct LaneScratch {
    sims: Vec<SimScratch>,
}

impl LaneScratch {
    /// The scratch pool of lane slot `lane` (diagnostics: arena and
    /// event-queue counters).
    pub fn sim(&self, lane: usize) -> Option<&SimScratch> {
        self.sims.get(lane)
    }
}

/// Run one op stream through every configuration in `cfgs` at once and
/// return their statistics in `cfgs` order. Each result is
/// bit-identical to
/// [`run_sources_with_scratch`](crate::run_sources_with_scratch) over
/// the same sources and configuration.
///
/// All configurations must agree on everything that shapes the op
/// stream — core count, instruction budget, core width (the fetch
/// margin) — they may differ in technique, cache geometry, decay
/// intervals, kernels.
///
/// # Panics
/// Panics if `cfgs` is empty or disagrees on `n_cores`,
/// `instructions_per_core` or `core.width`, or if `sources` does not
/// supply exactly one op stream per core.
pub fn run_lane_group(
    cfgs: &[CmpConfig],
    sources: Vec<Box<dyn OpSource>>,
    scratch: &mut LaneScratch,
) -> Vec<SimStats> {
    // audit:allow(unwrap-in-lib, caller contract: lane groups are built non-empty by the planner)
    let first = cfgs.first().expect("a lane group needs at least one configuration");
    for c in cfgs {
        assert_eq!(c.n_cores, first.n_cores, "lane configs must agree on the core count");
        assert_eq!(
            c.instructions_per_core, first.instructions_per_core,
            "lane configs must agree on the instruction budget"
        );
        assert_eq!(c.core.width, first.core.width, "lane configs must agree on the core width");
    }
    let n_cores = first.n_cores;
    assert_eq!(sources.len(), n_cores, "one op source per core");

    let mut window = OpWindow::new(sources);
    let names: Vec<String> = (0..n_cores).map(|c| window.name(c).to_string()).collect();
    if scratch.sims.len() < cfgs.len() {
        scratch.sims.resize_with(cfgs.len(), SimScratch::default);
    }

    struct Lane {
        sys: CmpSystem,
        pos: Vec<u64>,
    }
    let mut lanes: Vec<Option<Lane>> = cfgs
        .iter()
        .zip(scratch.sims.iter_mut())
        .map(|(cfg, sim)| {
            Some(Lane {
                sys: CmpSystem::for_window(*cfg, names.clone(), sim),
                pos: vec![0; n_cores],
            })
        })
        .collect();
    let mut out: Vec<Option<SimStats>> = (0..cfgs.len()).map(|_| None).collect();

    let mut min_pos = vec![0u64; n_cores];
    let mut max_pos = vec![0u64; n_cores];
    while lanes.iter().any(Option::is_some) {
        // Window bounds over the live lanes only: finished lanes no
        // longer anchor the base, so the window keeps sliding.
        min_pos.fill(u64::MAX);
        max_pos.fill(0);
        for lane in lanes.iter().flatten() {
            for c in 0..n_cores {
                min_pos[c] = min_pos[c].min(lane.pos[c]);
                max_pos[c] = max_pos[c].max(lane.pos[c]);
            }
        }
        window.advance(&min_pos, &max_pos, SEGMENT_TARGET);
        for i in 0..lanes.len() {
            let Some(lane) = lanes[i].as_mut() else {
                continue;
            };
            let before = lane.sys.now();
            let done = lane.sys.run_segment(&window, &mut lane.pos);
            // After `advance`, every live lane has at least the segment
            // target buffered on every unfinished core, so a segment
            // that neither completes nor steps a cycle means the window
            // contract broke — looping on it would hang the sweep.
            assert!(
                done || lane.sys.now() > before,
                "lane {i} made no progress in a freshly advanced window"
            );
            if done {
                // audit:allow(unwrap-in-lib, guarded by the `as_mut` binding above: the slot is occupied in this branch)
                let mut lane = lanes[i].take().expect("lane is live");
                let stats = lane.sys.finalize();
                lane.sys.reclaim_scratch(&mut scratch.sims[i]);
                out[i] = Some(stats);
            }
        }
    }
    // audit:allow(unwrap-in-lib, the scheduler loop only exits once every lane has been finalized into its slot)
    out.into_iter().map(|s| s.expect("every lane finalized")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimKernel;
    use crate::system::run_sources_with_scratch;
    use cmpleak_coherence::Technique;
    use cmpleak_cpu::{LiveGen, ReplayWorkload, TraceOp};

    fn tiny_cfg(technique: Technique) -> CmpConfig {
        let mut cfg = CmpConfig { n_cores: 2, ..CmpConfig::default() };
        cfg.l1.size_bytes = 1024;
        cfg.l2.size_bytes = 64 * 1024;
        cfg.technique = technique;
        cfg.instructions_per_core = 20_000;
        cfg.max_cycles = 10_000_000;
        cfg.sample_interval = 1000;
        cfg
    }

    fn mixed_streams() -> Vec<Box<dyn OpSource>> {
        // Core 0 strides privately; core 1 hammers a small shared set —
        // invalidations, c2c transfers and idle spans in one group.
        let a: Vec<TraceOp> = (0..256u64)
            .flat_map(|i| {
                [
                    TraceOp::Exec(3),
                    TraceOp::Load((1 << 20) + i * 64),
                    TraceOp::Exec(0),
                    TraceOp::Store((1 << 20) + i * 64 + 8),
                ]
            })
            .collect();
        let b: Vec<TraceOp> = (0..64u64)
            .flat_map(|i| [TraceOp::Exec(2), TraceOp::Store(i * 64), TraceOp::Load(i * 64)])
            .collect();
        vec![
            LiveGen::boxed(Box::new(ReplayWorkload::named("alpha", a))),
            LiveGen::boxed(Box::new(ReplayWorkload::named("beta", b))),
        ]
    }

    fn techniques() -> Vec<Technique> {
        vec![
            Technique::Baseline,
            Technique::Protocol,
            Technique::Decay { decay_cycles: 2048 },
            Technique::SelectiveDecay { decay_cycles: 4096 },
        ]
    }

    #[test]
    fn lane_group_matches_sequential_runs_bit_for_bit() {
        for kernel in [SimKernel::QuiescenceSkip, SimKernel::PerCycle] {
            let cfgs: Vec<CmpConfig> = techniques()
                .into_iter()
                .map(|t| {
                    let mut c = tiny_cfg(t);
                    c.kernel = kernel;
                    c
                })
                .collect();
            let mut scratch = LaneScratch::default();
            let laned = run_lane_group(&cfgs, mixed_streams(), &mut scratch);
            for (cfg, lane_stats) in cfgs.iter().zip(&laned) {
                let mut sim = SimScratch::default();
                let sequential = run_sources_with_scratch(*cfg, mixed_streams(), &mut sim);
                assert_eq!(lane_stats, &sequential, "lanes diverged under {:?}", cfg.technique);
            }
        }
    }

    #[test]
    fn lane_group_reports_workload_names() {
        let cfgs = vec![tiny_cfg(Technique::Baseline)];
        let stats = run_lane_group(&cfgs, mixed_streams(), &mut LaneScratch::default());
        assert_eq!(stats[0].core_workloads, vec!["alpha", "beta"]);
    }

    #[test]
    fn lane_scratch_reuse_is_invisible() {
        let cfgs: Vec<CmpConfig> = techniques().into_iter().map(tiny_cfg).collect();
        let mut scratch = LaneScratch::default();
        let a = run_lane_group(&cfgs, mixed_streams(), &mut scratch);
        let b = run_lane_group(&cfgs, mixed_streams(), &mut scratch);
        assert_eq!(a, b, "warm pools must not change results");
    }

    #[test]
    fn single_lane_group_degenerates_to_a_plain_run() {
        let cfgs = vec![tiny_cfg(Technique::Decay { decay_cycles: 1024 })];
        let laned = run_lane_group(&cfgs, mixed_streams(), &mut LaneScratch::default());
        let plain = run_sources_with_scratch(cfgs[0], mixed_streams(), &mut SimScratch::default());
        assert_eq!(laned[0], plain);
    }

    #[test]
    fn lanes_with_different_kernels_stay_bit_identical() {
        // One group mixing the per-cycle reference with the skipping
        // kernel: both must agree with each other (kernel bit-identity)
        // while sharing the window.
        let mut per_cycle = tiny_cfg(Technique::Decay { decay_cycles: 2048 });
        per_cycle.kernel = SimKernel::PerCycle;
        let mut skipping = per_cycle;
        skipping.kernel = SimKernel::QuiescenceSkip;
        let stats =
            run_lane_group(&[per_cycle, skipping], mixed_streams(), &mut LaneScratch::default());
        assert_eq!(stats[0], stats[1]);
    }

    #[test]
    fn lane_group_caps_at_max_cycles() {
        let mut cfg = tiny_cfg(Technique::Baseline);
        cfg.max_cycles = 7_777;
        let laned = run_lane_group(&[cfg], mixed_streams(), &mut LaneScratch::default());
        assert_eq!(laned[0].cycles, 7_777);
        let plain = run_sources_with_scratch(cfg, mixed_streams(), &mut SimScratch::default());
        assert_eq!(laned[0], plain);
    }

    #[test]
    #[should_panic(expected = "agree on the instruction budget")]
    fn mismatched_budgets_are_rejected() {
        let a = tiny_cfg(Technique::Baseline);
        let mut b = a;
        b.instructions_per_core += 1;
        run_lane_group(&[a, b], mixed_streams(), &mut LaneScratch::default());
    }
}
