//! Simulation statistics and the power-trace sampling the thermal model
//! consumes.

use cmpleak_cpu::CoreStats;

/// Per-L1 statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1Stats {
    /// Loads probing the L1.
    pub loads: u64,
    /// Load hits.
    pub load_hits: u64,
    /// Stores probing the L1 (write-through: they update on hit and
    /// always continue to the write buffer).
    pub stores: u64,
    /// Store hits (line present and updated in place).
    pub store_hits: u64,
    /// Lines invalidated from above (L2 inclusion back-invalidations,
    /// snoop-driven or turn-off-driven).
    pub back_invalidations: u64,
    /// Back-invalidations caused specifically by the leakage technique
    /// (decay turn-offs), as opposed to baseline coherence/inclusion.
    pub technique_back_invalidations: u64,
}

impl L1Stats {
    /// Load miss count.
    pub fn load_misses(&self) -> u64 {
        self.loads - self.load_hits
    }
}

/// Per-L2 statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2Stats {
    /// Read probes accepted (L1 load misses reaching this L2).
    pub reads: u64,
    /// Write probes accepted (write-buffer drains).
    pub writes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Write probes that completed against a resident line (M/E hit, or
    /// S hit pending upgrade).
    pub write_hits: u64,
    /// Misses that allocated an MSHR entry (primaries only).
    pub misses: u64,
    /// Primary misses whose tag was still resident in the always-on
    /// shadow directory: misses *induced* by the leakage technique.
    pub induced_misses: u64,
    /// Lines invalidated by snooped BusRdX/BusUpgr.
    pub snoop_invalidations: u64,
    /// Turn-offs completed, by initiating reason.
    pub turnoffs_decay: u64,
    /// Lines gated because the protocol invalidated them.
    pub turnoffs_protocol: u64,
    /// Decay turn-offs that hit a Modified line (paid write-back +
    /// upper-level invalidation).
    pub dirty_decay_turnoffs: u64,
    /// Write-backs to memory issued by this cache (snoop flushes, dirty
    /// evictions, dirty turn-offs).
    pub writebacks: u64,
    /// Evictions by replacement.
    pub evictions: u64,
    /// Fills installed.
    pub fills: u64,
    /// Probes rejected because the line was transient or the MSHR was
    /// full (retried by the requester).
    pub retries: u64,
}

impl L2Stats {
    /// Total accepted probes.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Aggregate miss rate over accepted probes.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// Activity counters for one sampling interval (the 10K-cycle power
/// trace of the paper's methodology).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IntervalActivity {
    /// Cycles covered by this interval (the last one may be short).
    pub cycles: u64,
    /// Instructions dispatched across all cores.
    pub instructions: u64,
    /// L1 probes (loads + stores).
    pub l1_accesses: u64,
    /// L2 read probes.
    pub l2_reads: u64,
    /// L2 write probes.
    pub l2_writes: u64,
    /// Shared-bus transactions granted.
    pub bus_transactions: u64,
    /// Bytes moved on the shared bus.
    pub bus_bytes: u64,
    /// Bytes moved to/from external memory.
    pub mem_bytes: u64,
    /// Σ over the interval's cycles of powered L2 lines (all caches):
    /// the integral the leakage model multiplies by per-line leakage
    /// power.
    pub l2_powered_line_cycles: u64,
    /// Same integral if every line were powered (baseline denominator).
    pub l2_total_line_cycles: u64,
    /// Decay-counter increments + resets (dynamic energy of the decay
    /// logic).
    pub decay_counter_events: u64,
}

/// Full result of one simulation run.
///
/// `PartialEq` compares every counter: two runs are equal only when they
/// are *bit-identical*, which is what the trace record/replay
/// differential tests assert.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Cycles until every core drained and all queues emptied.
    pub cycles: u64,
    /// Total instructions dispatched.
    pub instructions: u64,
    /// Per-core pipeline statistics (the heterogeneous-scenario
    /// breakdown: with different workloads per core, per-core IPC and
    /// stall profiles diverge and the aggregate hides it).
    pub cores: Vec<CoreStats>,
    /// Per-core workload report names, index-aligned with [`Self::cores`].
    pub core_workloads: Vec<String>,
    /// Per-core L1 statistics.
    pub l1: Vec<L1Stats>,
    /// Per-core L2 statistics.
    pub l2: Vec<L2Stats>,
    /// Σ on-cycles over all L2 line slots and caches (numerator of the
    /// paper's occupation-rate formula).
    pub l2_on_line_cycles: u64,
    /// `#L2s × #lines × total_cycles` (denominator of the same formula).
    pub l2_line_cycle_capacity: u64,
    /// Loads completed, with their total latency, for AMAT.
    pub loads_completed: u64,
    /// Σ (complete − issue) over completed loads, in cycles.
    pub load_latency_sum: u64,
    /// Shared-bus transactions granted.
    pub bus_transactions: u64,
    /// Cycles the shared bus was occupied.
    pub bus_busy_cycles: u64,
    /// Line fills supplied by external memory.
    pub mem_fills: u64,
    /// Line write-backs received by external memory.
    pub mem_writebacks: u64,
    /// Total bytes exchanged with external memory.
    pub mem_bytes: u64,
    /// Cache-to-cache supplies (M-owner flushes).
    pub c2c_transfers: u64,
    /// Upper-level (L1) invalidations sent, all causes.
    pub upper_invalidations: u64,
    /// The sampled activity trace (one entry per `sample_interval`).
    pub trace: Vec<IntervalActivity>,
}

impl SimStats {
    /// The paper's occupation-rate metric (§VI): the average fraction of
    /// time an L2 line was powered. 1.0 for the baseline by definition.
    pub fn occupation_rate(&self) -> f64 {
        if self.l2_line_cycle_capacity == 0 {
            1.0
        } else {
            self.l2_on_line_cycles as f64 / self.l2_line_cycle_capacity as f64
        }
    }

    /// Aggregate L2 miss rate over all private caches.
    pub fn l2_miss_rate(&self) -> f64 {
        let (mut m, mut a) = (0u64, 0u64);
        for s in &self.l2 {
            m += s.misses;
            a += s.accesses();
        }
        if a == 0 {
            0.0
        } else {
            m as f64 / a as f64
        }
    }

    /// Aggregate induced-miss fraction of L2 accesses.
    pub fn l2_induced_miss_rate(&self) -> f64 {
        let (mut m, mut a) = (0u64, 0u64);
        for s in &self.l2 {
            m += s.induced_misses;
            a += s.accesses();
        }
        if a == 0 {
            0.0
        } else {
            m as f64 / a as f64
        }
    }

    /// Average memory access time observed by loads, in cycles.
    pub fn amat(&self) -> f64 {
        if self.loads_completed == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.loads_completed as f64
        }
    }

    /// Instructions per cycle, whole chip.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Instructions per cycle of one core (heterogeneous scenarios make
    /// this differ per core; all cores share the chip's cycle count).
    pub fn core_ipc(&self, core: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.cores[core].instructions as f64 / self.cycles as f64
        }
    }

    /// External-memory traffic in bytes (the figure-4a quantity).
    pub fn memory_traffic_bytes(&self) -> u64 {
        self.mem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupation_rate_defaults_to_full() {
        let s = SimStats::default();
        assert_eq!(s.occupation_rate(), 1.0);
    }

    #[test]
    fn derived_rates() {
        let s = SimStats {
            cycles: 1000,
            instructions: 2500,
            loads_completed: 10,
            load_latency_sum: 50,
            l2: vec![L2Stats {
                reads: 80,
                writes: 20,
                misses: 5,
                induced_misses: 2,
                ..Default::default()
            }],
            l2_on_line_cycles: 250,
            l2_line_cycle_capacity: 1000,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.amat() - 5.0).abs() < 1e-12);
        assert!((s.l2_miss_rate() - 0.05).abs() < 1e-12);
        assert!((s.l2_induced_miss_rate() - 0.02).abs() < 1e-12);
        assert!((s.occupation_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn l1_misses_derived() {
        let l1 = L1Stats { loads: 100, load_hits: 93, ..Default::default() };
        assert_eq!(l1.load_misses(), 7);
    }
}
