//! Private, inclusive, snoopy-MESI L2 cache with the Gated-Vdd turn-off
//! mechanism.
//!
//! This is where the paper's §III/§IV machinery comes together:
//!
//! * coherence state per line via [`cmpleak_coherence::mesi`], including
//!   the TC/TD transient states while the L1 copy of a departing line is
//!   invalidated;
//! * power gating per line (`powered` / on-cycle accounting for the
//!   occupation-rate metric), driven by the configured
//!   [`Technique`]: cold lines, protocol invalidations, decay;
//! * the hierarchical decay counter bank, with Selective Decay's
//!   arm/disarm-on-transition rules;
//! * the MSHR with in-flight race handling (a snooped `BusRd` demotes an
//!   in-flight fill to Shared, a snooped `BusRdX` dooms it), and
//! * the always-on shadow directory classifying technique-induced
//!   misses.
//!
//! The cache is passive: `cmpleak-system` drives it and routes the
//! [`SideEffects`] each call emits (write-backs to the bus, upper-level
//! invalidations to the L1, Grant timers to the event queue).

use crate::config::L2Config;
use crate::stats::L2Stats;
use cmpleak_coherence::mesi::{
    fill_state, step, Event, MesiState, PendingInval, SnoopContext, Transition,
};
use cmpleak_coherence::{bus::SnoopKind, DecayArming, Technique};
use cmpleak_mem::{
    BankArena, DecayBank, DecayConfig, Geometry, LineAddr, LineStateBank, LookupOutcome, Mshr,
    MshrAlloc, SetAssocArray, ShadowTags,
};

/// Per-line metadata.
#[derive(Debug, Clone, Copy)]
pub struct L2Meta {
    /// MESI(+TC/TD) state.
    pub state: MesiState,
    /// Whether the upper-level L1 holds a copy (inclusion bookkeeping).
    pub in_l1: bool,
}

impl Default for L2Meta {
    fn default() -> Self {
        Self { state: MesiState::Invalid, in_l1: false }
    }
}

impl cmpleak_mem::array::LineMeta for L2Meta {
    fn is_valid(&self) -> bool {
        self.state.is_valid()
    }

    /// MESI(+TC/TD with reason) in the low three bits, `in_l1` in bit 3.
    fn to_byte(&self) -> u8 {
        let state = match self.state {
            MesiState::Invalid => 0u8,
            MesiState::Shared => 1,
            MesiState::Exclusive => 2,
            MesiState::Modified => 3,
            MesiState::TransientClean(PendingInval::SnoopRdX) => 4,
            MesiState::TransientClean(PendingInval::TurnOff) => 5,
            MesiState::TransientDirty(PendingInval::SnoopRdX) => 6,
            MesiState::TransientDirty(PendingInval::TurnOff) => 7,
        };
        state | (u8::from(self.in_l1) << 3)
    }

    fn from_byte(b: u8) -> Self {
        let state = match b & 0b111 {
            0 => MesiState::Invalid,
            1 => MesiState::Shared,
            2 => MesiState::Exclusive,
            3 => MesiState::Modified,
            4 => MesiState::TransientClean(PendingInval::SnoopRdX),
            5 => MesiState::TransientClean(PendingInval::TurnOff),
            6 => MesiState::TransientDirty(PendingInval::SnoopRdX),
            _ => MesiState::TransientDirty(PendingInval::TurnOff),
        };
        Self { state, in_l1: b & 0b1000 != 0 }
    }
}

/// What an in-flight miss is waiting to do once the line arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Target {
    /// An L1 read miss: deliver the line upward.
    Read,
    /// A drained store: apply it (the line must be Modified).
    Write,
}

/// Race flags attached to an in-flight miss by snoops that passed on the
/// bus between our request's grant and its data return.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct MissFlags {
    /// A BusRd passed: fill must demote to Shared.
    fill_shared: bool,
    /// A BusRdX passed: the fill is stale — complete waiting reads but do
    /// not install; re-issue writes.
    doomed: bool,
}

/// Outcome of a read probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2ReadOutcome {
    /// Line resident: respond after the hit latency.
    Hit,
    /// Primary miss: the system must issue a bus request.
    MissPrimary,
    /// Merged into an in-flight miss.
    MissSecondary,
    /// Transient line or MSHR full: retry next cycle.
    Retry,
}

/// Outcome of a write (write-buffer drain) probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2WriteOutcome {
    /// Store applied (line was M, or E silently upgraded).
    Done,
    /// Line resident Shared: an Upgrade bus request was allocated.
    UpgradeIssued,
    /// Primary write miss: the system must issue a BusRdX.
    MissPrimary,
    /// Merged into an in-flight miss (promoting it to exclusive).
    MissSecondary,
    /// Transient line or MSHR full: retry next cycle.
    Retry,
}

/// Result of completing an Upgrade transaction on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpgradeResult {
    /// Line was still Shared: now Modified, stores applied.
    Done,
    /// Line vanished before the grant: the transaction must proceed as a
    /// write miss (fetch data).
    ConvertToMiss,
}

/// A snooping cache's reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnoopReply {
    /// Drives the shared wire: the requester fills S instead of E.
    pub assert_shared: bool,
    /// This cache supplies the line (it was the M owner).
    pub supply_data: bool,
}

/// Side effects of one L2 call, routed by the system.
#[derive(Debug, Default)]
pub struct SideEffects {
    /// Dirty lines to push to memory. The caller decides the transport:
    /// snoop flushes ride the current bus transaction; evictions and
    /// turn-offs queue their own write-back transaction.
    pub writebacks: Vec<LineAddr>,
    /// Upper-level invalidations `(line, technique_induced)`.
    pub upper_invals: Vec<(LineAddr, bool)>,
    /// Grant timers to schedule: `(due_cycle, slot, line)`.
    pub grants: Vec<(u64, usize, LineAddr)>,
}

impl SideEffects {
    /// True when nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.writebacks.is_empty() && self.upper_invals.is_empty() && self.grants.is_empty()
    }

    /// Reset for reuse.
    pub fn clear(&mut self) {
        self.writebacks.clear();
        self.upper_invals.clear();
        self.grants.clear();
    }
}

/// One private L2 cache.
#[derive(Debug)]
pub struct L2Cache {
    cfg: L2Config,
    technique: Technique,
    tags: SetAssocArray<L2Meta>,
    mshr: Mshr<L2Target>,
    flags: Vec<(LineAddr, MissFlags)>,
    /// Global decay clock + tick policy (per-line state lives in
    /// [`L2Cache::state`]).
    decay: Option<DecayBank>,
    shadow: Option<ShadowTags>,
    /// Columnar per-line state: powered/armed/live bitsets, decay
    /// counters, on-time accounting — one arena-backed bank.
    state: LineStateBank,
    /// Turn-offs that had to wait (transient line / pending write).
    deferred_turnoffs: Vec<usize>,
    stats: L2Stats,
    decay_scratch: Vec<usize>,
}

impl L2Cache {
    /// Build one private L2 under `technique`, allocating fresh storage.
    pub fn new(cfg: &L2Config, technique: Technique, shadow: bool) -> Self {
        Self::new_in(cfg, technique, shadow, &mut BankArena::default())
    }

    /// Like [`L2Cache::new`], with every per-line column (line-state
    /// bank, tag array, shadow directory) checked out of `arena` so
    /// back-to-back simulations reuse the multi-MB allocations.
    pub fn new_in(
        cfg: &L2Config,
        technique: Technique,
        shadow: bool,
        arena: &mut BankArena,
    ) -> Self {
        let geom = cfg.geometry();
        let lines = geom.lines();
        let decay = technique.decay_cycles().map(|d| {
            DecayBank::new(DecayConfig { decay_cycles: d, counter_bits: cfg.decay_counter_bits })
        });
        let mut state = LineStateBank::new_in(lines, arena);
        if !technique.gates_cold_lines() {
            state.power_all_on();
        }
        Self {
            cfg: *cfg,
            technique,
            tags: SetAssocArray::new_in(geom, arena),
            mshr: Mshr::new(cfg.mshr_entries, cfg.mshr_entries * 4),
            flags: Vec::new(),
            decay,
            shadow: shadow.then(|| ShadowTags::new_in(geom, arena)),
            state,
            deferred_turnoffs: Vec::new(),
            stats: L2Stats::default(),
            decay_scratch: Vec::new(),
        }
    }

    /// Hand the per-line columns back to `arena`. The cache must not be
    /// used afterwards (statistics remain readable).
    pub fn release_storage(&mut self, arena: &mut BankArena) {
        self.state.release_into(arena);
        self.tags.release_into(arena);
        if let Some(sh) = self.shadow.as_mut() {
            sh.release_into(arena);
        }
    }

    /// Geometry of the tag array.
    pub fn geometry(&self) -> Geometry {
        self.tags.geometry()
    }

    /// Statistics so far.
    pub fn stats(&self) -> L2Stats {
        self.stats
    }

    /// Effective hit latency (configured + technique access penalty).
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency + self.technique.access_penalty_cycles()
    }

    /// Lines currently powered (for the interval activity trace).
    pub fn powered_lines(&self) -> u64 {
        self.state.powered_count()
    }

    /// Whether the line is resident in a stationary valid state.
    pub fn holds_valid(&self, line: LineAddr) -> bool {
        match self.tags.probe(line) {
            LookupOutcome::Hit(slot) => self.tags.slot(slot).meta.state.is_stationary(),
            LookupOutcome::Miss => false,
        }
    }

    /// MESI state of `line` if resident (tests/examples).
    pub fn state_of(&self, line: LineAddr) -> Option<MesiState> {
        match self.tags.probe(line) {
            LookupOutcome::Hit(slot) => Some(self.tags.slot(slot).meta.state),
            LookupOutcome::Miss => None,
        }
    }

    /// Whether an in-flight miss for `line` exists.
    pub fn miss_pending(&self, line: LineAddr) -> bool {
        self.mshr.pending(line)
    }

    /// Whether the in-flight miss for `line` requires exclusivity (the
    /// system checks at bus-grant time, because a store may have merged
    /// after the request was queued).
    pub fn pending_exclusive(&self, line: LineAddr) -> bool {
        self.mshr.get(line).map(|e| e.exclusive).unwrap_or(false)
    }

    /// Whether a miss for `line` has been granted the bus and its data is
    /// in flight. The bus NACKs (retries) any new transaction touching
    /// such a line — the standard split-transaction conflict rule — so
    /// the first requester installs before the second snoops it.
    pub fn pending_issued(&self, line: LineAddr) -> bool {
        self.mshr.get(line).map(|e| e.issued).unwrap_or(false)
    }

    /// Mark the miss for `line` as granted/in-flight.
    pub fn mark_issued(&mut self, line: LineAddr) {
        if let Some(e) = self.mshr.get_mut(line) {
            e.issued = true;
        }
    }

    /// Outstanding work that must drain before the simulation ends.
    pub fn busy(&self) -> bool {
        !self.mshr.is_empty()
    }

    /// Aggregate decay-counter activity (dynamic-energy accounting).
    pub fn decay_stats(&self) -> cmpleak_mem::DecayStats {
        self.decay.as_ref().map(|d| d.stats()).unwrap_or_default()
    }

    /// The L1 filled/evicted `line`: keep the inclusion bit exact.
    pub fn set_in_l1(&mut self, line: LineAddr, val: bool) {
        if let LookupOutcome::Hit(slot) = self.tags.probe(line) {
            self.tags.update_meta(slot, |m| m.in_l1 = val);
        }
    }

    // ---- gating ---------------------------------------------------------

    fn power_on(&mut self, slot: usize, now: u64) {
        self.state.power_on(slot, now);
    }

    fn power_off(&mut self, slot: usize, now: u64) {
        self.state.power_off(slot, now);
    }

    /// Close the books at `now`: Σ on-cycles over all slots
    /// (word-chunked over the powered bitset).
    pub fn finish_on_cycles(&mut self, now: u64) -> u64 {
        self.state.finish_on_cycles(now)
    }

    // ---- decay hooks ----------------------------------------------------

    fn decay_access(&mut self, slot: usize) {
        if let Some(d) = self.decay.as_mut() {
            d.on_access(&mut self.state, slot);
        }
    }

    fn apply_arming(&mut self, slot: usize, state: MesiState) {
        if self.decay.is_some() {
            match self.technique.arming_on_enter(state) {
                DecayArming::Arm => self.state.arm(slot),
                DecayArming::Disarm => self.state.disarm(slot),
                DecayArming::Unchanged => {}
            }
        }
    }

    /// Advance the decay clock to `now`, returning slots whose lines
    /// decayed this call. The system feeds them to [`L2Cache::turn_off`]
    /// with the pending-write context. Coarse advances apply all due
    /// ticks in closed form ([`DecayBank::advance_to`]) with per-tick
    /// semantics.
    pub fn take_decayed(&mut self, now: u64) -> Vec<usize> {
        self.decay_scratch.clear();
        if let Some(d) = self.decay.as_mut() {
            d.advance_to(&mut self.state, now, &mut self.decay_scratch);
        }
        std::mem::take(&mut self.decay_scratch)
    }

    /// Cycle of the next global decay tick, if this cache decays at all.
    /// A wakeup source for the quiescence-skipping kernel: between ticks
    /// an otherwise-idle cache has no decay activity to simulate.
    pub fn next_decay_deadline(&self) -> Option<u64> {
        self.decay.as_ref().map(|d| d.next_tick_at())
    }

    /// Whether deferred turn-offs are waiting to be retried (they retry
    /// every cycle, so the kernel must not skip while any are pending).
    pub fn has_deferred_turnoffs(&self) -> bool {
        !self.deferred_turnoffs.is_empty()
    }

    /// Deferred turn-offs to retry (drains the internal list).
    pub fn take_deferred_turnoffs(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.deferred_turnoffs)
    }

    /// Line address currently held by `slot`, if valid.
    pub fn line_at(&self, slot: usize) -> Option<LineAddr> {
        let l = self.tags.slot(slot);
        l.meta.state.is_valid().then_some(l.tag)
    }

    // ---- transition plumbing --------------------------------------------

    /// Apply an FSM transition to `slot` (holding `line`).
    fn apply_transition(
        &mut self,
        slot: usize,
        line: LineAddr,
        t: &Transition,
        now: u64,
        technique_induced: bool,
        fx: &mut SideEffects,
    ) {
        if t.writeback {
            fx.writebacks.push(line);
            self.stats.writebacks += 1;
        }
        if t.invalidate_upper {
            self.tags.update_meta(slot, |m| m.in_l1 = false);
            fx.upper_invals.push((line, technique_induced));
            fx.grants.push((now + self.cfg.upper_inval_latency, slot, line));
        }
        if let Some(next) = t.next {
            if next == MesiState::Invalid {
                self.tags.invalidate(slot);
                if let Some(d) = self.decay.as_mut() {
                    d.on_line_off(&mut self.state, slot);
                }
                if t.protocol_invalidation {
                    self.stats.snoop_invalidations += 1;
                    if let Some(sh) = self.shadow.as_mut() {
                        // Baseline would experience this invalidation too.
                        sh.invalidate(line);
                    }
                    if self.technique.gates_on_protocol_invalidation() {
                        self.stats.turnoffs_protocol += 1;
                        self.power_off(slot, now);
                    }
                }
                if t.gate {
                    self.stats.turnoffs_decay += 1;
                    self.power_off(slot, now);
                }
            } else {
                self.tags.update_meta(slot, |m| m.state = next);
                self.apply_arming(slot, next);
            }
        }
    }

    // ---- processor-side probes -------------------------------------------

    /// An L1 read miss probes this cache.
    pub fn probe_read(&mut self, line: LineAddr) -> L2ReadOutcome {
        match self.tags.probe(line) {
            LookupOutcome::Hit(slot) => {
                if !self.tags.slot(slot).meta.state.is_stationary() {
                    self.stats.retries += 1;
                    return L2ReadOutcome::Retry;
                }
                self.tags.touch(slot);
                self.decay_access(slot);
                self.shadow_access(line);
                self.stats.reads += 1;
                self.stats.read_hits += 1;
                L2ReadOutcome::Hit
            }
            LookupOutcome::Miss => match self.mshr.allocate(line, L2Target::Read, false) {
                MshrAlloc::Primary => {
                    self.stats.reads += 1;
                    self.note_miss(line);
                    L2ReadOutcome::MissPrimary
                }
                MshrAlloc::Secondary => {
                    self.stats.reads += 1;
                    self.shadow_access(line);
                    L2ReadOutcome::MissSecondary
                }
                MshrAlloc::Full => {
                    self.stats.retries += 1;
                    L2ReadOutcome::Retry
                }
            },
        }
    }

    /// A drained store probes this cache (write-through traffic).
    pub fn probe_write(&mut self, line: LineAddr) -> L2WriteOutcome {
        match self.tags.probe(line) {
            LookupOutcome::Hit(slot) => {
                let state = self.tags.slot(slot).meta.state;
                if !state.is_stationary() {
                    self.stats.retries += 1;
                    return L2WriteOutcome::Retry;
                }
                match state {
                    MesiState::Modified => {
                        self.tags.touch(slot);
                        self.decay_access(slot);
                        self.shadow_access(line);
                        self.stats.writes += 1;
                        self.stats.write_hits += 1;
                        L2WriteOutcome::Done
                    }
                    MesiState::Exclusive => {
                        // Silent E -> M upgrade.
                        self.tags.touch(slot);
                        self.tags.update_meta(slot, |m| m.state = MesiState::Modified);
                        self.apply_arming(slot, MesiState::Modified);
                        self.decay_access(slot);
                        self.shadow_access(line);
                        self.stats.writes += 1;
                        self.stats.write_hits += 1;
                        L2WriteOutcome::Done
                    }
                    MesiState::Shared => match self.mshr.allocate(line, L2Target::Write, true) {
                        MshrAlloc::Primary => {
                            self.tags.touch(slot);
                            self.decay_access(slot);
                            self.shadow_access(line);
                            self.stats.writes += 1;
                            self.stats.write_hits += 1;
                            L2WriteOutcome::UpgradeIssued
                        }
                        MshrAlloc::Secondary => {
                            self.stats.writes += 1;
                            self.shadow_access(line);
                            L2WriteOutcome::MissSecondary
                        }
                        MshrAlloc::Full => {
                            self.stats.retries += 1;
                            L2WriteOutcome::Retry
                        }
                    },
                    // audit:allow(unwrap-in-lib, the Invalid arm is excluded by the stationary-state check directly above)
                    _ => unreachable!("stationary check above"),
                }
            }
            LookupOutcome::Miss => match self.mshr.allocate(line, L2Target::Write, true) {
                MshrAlloc::Primary => {
                    self.stats.writes += 1;
                    self.note_miss(line);
                    L2WriteOutcome::MissPrimary
                }
                MshrAlloc::Secondary => {
                    self.stats.writes += 1;
                    self.shadow_access(line);
                    L2WriteOutcome::MissSecondary
                }
                MshrAlloc::Full => {
                    self.stats.retries += 1;
                    L2WriteOutcome::Retry
                }
            },
        }
    }

    /// Whether [`L2Cache::probe_read`] for `line` would return
    /// [`L2ReadOutcome::Retry`] — the non-mutating mirror of its retry
    /// conditions (transient line, or MSHR unable to accept). Used by
    /// the quiescence-skipping kernel: while the head of a read queue
    /// provably keeps retrying, the cache's state can only change
    /// through events or bus grants — both wakeup sources — so a
    /// read-burst span blocked on a saturated MSHR or a transient line
    /// no longer forces per-cycle stepping.
    pub fn read_would_retry(&self, line: LineAddr) -> bool {
        match self.tags.probe(line) {
            LookupOutcome::Hit(slot) => !self.tags.slot(slot).meta.state.is_stationary(),
            LookupOutcome::Miss => !self.mshr.would_accept(line),
        }
    }

    /// Whether [`L2Cache::probe_write`] for `line` would return
    /// [`L2WriteOutcome::Retry`] — the non-mutating mirror of its retry
    /// conditions (transient line, or MSHR unable to accept). Used by
    /// the quiescence-skipping kernel: while the head of a write drain
    /// provably keeps retrying, the cache's state can only change
    /// through events or bus grants, which are wakeup sources, so the
    /// blocked span can be skipped.
    pub fn write_would_retry(&self, line: LineAddr) -> bool {
        match self.tags.probe(line) {
            LookupOutcome::Hit(slot) => {
                let state = self.tags.slot(slot).meta.state;
                if !state.is_stationary() {
                    return true;
                }
                match state {
                    // M hit / silent E→M upgrade always complete.
                    MesiState::Modified | MesiState::Exclusive => false,
                    // S hit needs an MSHR entry for the upgrade.
                    MesiState::Shared => !self.mshr.would_accept(line),
                    // audit:allow(unwrap-in-lib, the Invalid arm is excluded by the stationary-state check directly above)
                    _ => unreachable!("stationary check above"),
                }
            }
            LookupOutcome::Miss => !self.mshr.would_accept(line),
        }
    }

    /// Account `cycles` retried probes in one step: the per-cycle loop
    /// re-probes a blocked write head every cycle, counting one retry
    /// each; a skipped blocked span charges them in bulk.
    pub fn charge_retries(&mut self, cycles: u64) {
        self.stats.retries += cycles;
    }

    /// Account a primary miss, classifying it against the shadow
    /// directory *before* updating it.
    fn note_miss(&mut self, line: LineAddr) {
        self.stats.misses += 1;
        if let Some(sh) = self.shadow.as_mut() {
            if sh.would_hit(line) {
                self.stats.induced_misses += 1;
            }
            sh.access(line);
        }
    }

    fn shadow_access(&mut self, line: LineAddr) {
        if let Some(sh) = self.shadow.as_mut() {
            sh.access(line);
        }
    }

    // ---- bus-side ---------------------------------------------------------

    /// Another cache's transaction is snooped.
    pub fn snoop(
        &mut self,
        line: LineAddr,
        kind: SnoopKind,
        now: u64,
        fx: &mut SideEffects,
    ) -> SnoopReply {
        let mut reply = SnoopReply::default();
        // Race handling for our own in-flight miss on this line.
        if self.mshr.pending(line) {
            match kind {
                SnoopKind::BusRd => {
                    reply.assert_shared = true;
                    self.flag_mut(line).fill_shared = true;
                }
                SnoopKind::BusRdX => {
                    self.flag_mut(line).doomed = true;
                }
            }
        }
        if let LookupOutcome::Hit(slot) = self.tags.probe(line) {
            let meta = self.tags.slot(slot).meta;
            if !meta.state.is_stationary() {
                // Transient lines are logically dead (all bus-visible
                // effects were emitted on entry); nothing to do.
                return reply;
            }
            let ctx = SnoopContext { upper_has_copy: meta.in_l1, pending_write: false };
            let t = step(meta.state, Event::Snoop(kind), ctx);
            reply.assert_shared |= t.assert_shared;
            reply.supply_data |= t.supply_data;
            self.apply_transition(slot, line, &t, now, false, fx);
        }
        reply
    }

    /// The leakage machinery requests turning off `slot`.
    ///
    /// `pending_write` reflects the core's write buffer (Table I: the
    /// turn-off must wait for pending writes); such turn-offs are
    /// *deferred* rather than forced, and dropped if the line is touched
    /// in the meantime.
    pub fn turn_off(&mut self, slot: usize, now: u64, pending_write: bool, fx: &mut SideEffects) {
        let l = self.tags.slot(slot);
        let line = l.tag;
        let state = l.meta.state;
        if state == MesiState::Invalid {
            return; // raced with an invalidation: nothing left to do
        }
        if !state.is_stationary() || pending_write {
            self.deferred_turnoffs.push(slot);
            return;
        }
        // A deferred turn-off may have been overtaken by an access that
        // reset the decay counter — drop it then.
        if self.decay.is_some() && self.state.is_live(slot) {
            return;
        }
        let ctx = SnoopContext { upper_has_copy: l.meta.in_l1, pending_write: false };
        if state == MesiState::Modified {
            self.stats.dirty_decay_turnoffs += 1;
        }
        let t = step(state, Event::TurnOff, ctx);
        self.apply_transition(slot, line, &t, now, true, fx);
    }

    /// An upper-level invalidation completed (TC/TD Grant).
    pub fn grant(&mut self, slot: usize, line: LineAddr, now: u64, fx: &mut SideEffects) {
        let l = self.tags.slot(slot);
        if l.tag != line || l.meta.state.is_stationary() {
            return; // stale timer (line already moved on)
        }
        let t = step(l.meta.state, Event::Grant, SnoopContext::default());
        self.apply_transition(slot, line, &t, now, true, fx);
    }

    /// Complete an Upgrade transaction at bus grant.
    pub fn complete_upgrade(&mut self, line: LineAddr, now: u64) -> UpgradeResult {
        match self.tags.probe(line) {
            LookupOutcome::Hit(slot) if self.tags.slot(slot).meta.state == MesiState::Shared => {
                self.tags.update_meta(slot, |m| m.state = MesiState::Modified);
                self.apply_arming(slot, MesiState::Modified);
                self.decay_access(slot);
                self.tags.touch(slot);
                let _ = now;
                // Entry done: waiting stores are satisfied by ownership.
                self.mshr.complete(line);
                self.clear_flags(line);
                UpgradeResult::Done
            }
            _ => UpgradeResult::ConvertToMiss,
        }
    }

    /// The data for an in-flight miss arrived. Installs the line (unless
    /// doomed), completes the MSHR entry and returns
    /// `(read_targets, write_targets_to_reissue, installed)`.
    ///
    /// `shared_wire` is the OR of the shared asserts observed at grant
    /// time; a `fill_shared` race flag also forces Shared.
    pub fn fill(
        &mut self,
        line: LineAddr,
        shared_wire: bool,
        now: u64,
        fx: &mut SideEffects,
    ) -> (u32, u32, bool) {
        let Some(entry) = self.mshr.complete(line) else {
            return (0, 0, false);
        };
        let flags = self.take_flags(line);
        let mut reads = 0u32;
        let mut writes = 0u32;
        for t in &entry.targets {
            match t {
                L2Target::Read => reads += 1,
                L2Target::Write => writes += 1,
            }
        }
        if flags.doomed {
            // Bus order put an invalidating transaction after our grant:
            // the arriving data must not be cached. Reads complete with
            // the forwarded data; writes must re-acquire ownership.
            return (reads, writes, false);
        }
        let demoted = shared_wire || flags.fill_shared;
        let state = if entry.exclusive && !demoted {
            fill_state(false, true)
        } else {
            fill_state(demoted, false)
        };
        let Some(victim) = self.pick_victim(line) else {
            // Every way is transient (pathological): treat like doomed —
            // forward data without caching. Writes re-acquire.
            self.stats.retries += 1;
            return (reads, writes, false);
        };
        self.install(victim, line, state, now, fx);
        if entry.exclusive && demoted {
            // We wanted M but a concurrent reader demoted us: the stores
            // must upgrade after install; the caller re-issues them.
            return (reads, writes, true);
        }
        (reads, if state == MesiState::Modified { 0 } else { writes }, true)
    }

    /// Victim slot among stationary lines (invalid first, then LRU);
    /// `None` if the whole set is transient.
    fn pick_victim(&self, line: LineAddr) -> Option<usize> {
        let mut best: Option<(usize, u64)> = None;
        for slot in self.tags.set_slots(line) {
            let l = self.tags.slot(slot);
            if !l.meta.state.is_valid() {
                return Some(slot);
            }
            if !l.meta.state.is_stationary() {
                continue;
            }
            if best.map(|(_, lru)| l.lru < lru).unwrap_or(true) {
                best = Some((slot, l.lru));
            }
        }
        best.map(|(s, _)| s)
    }

    fn install(
        &mut self,
        slot: usize,
        line: LineAddr,
        state: MesiState,
        now: u64,
        fx: &mut SideEffects,
    ) {
        let victim = self.tags.slot(slot);
        if victim.meta.state.is_valid() {
            let vline = victim.tag;
            let vmeta = victim.meta;
            self.stats.evictions += 1;
            if vmeta.state.is_dirty() {
                fx.writebacks.push(vline);
                self.stats.writebacks += 1;
            }
            if vmeta.in_l1 {
                // Inclusion: the L1 copy must go. This is a baseline
                // cost, not a technique cost.
                fx.upper_invals.push((vline, false));
            }
            if let Some(sh) = self.shadow.as_mut() {
                // The shadow evicts by its own LRU; nothing to do here —
                // divergence between the two is exactly what the induced
                // metric measures.
                let _ = sh;
            }
        }
        self.tags.fill(slot, line, L2Meta { state, in_l1: false });
        self.power_on(slot, now);
        self.decay_access(slot);
        self.apply_arming(slot, state);
        self.stats.fills += 1;
    }

    // ---- miss-flag bookkeeping -------------------------------------------

    fn flag_mut(&mut self, line: LineAddr) -> &mut MissFlags {
        let pos = match self.flags.iter().position(|(l, _)| *l == line) {
            Some(pos) => pos,
            None => {
                self.flags.push((line, MissFlags::default()));
                self.flags.len() - 1
            }
        };
        &mut self.flags[pos].1
    }

    fn take_flags(&mut self, line: LineAddr) -> MissFlags {
        if let Some(pos) = self.flags.iter().position(|(l, _)| *l == line) {
            self.flags.swap_remove(pos).1
        } else {
            MissFlags::default()
        }
    }

    fn clear_flags(&mut self, line: LineAddr) {
        self.take_flags(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> L2Config {
        L2Config {
            size_bytes: 4096, // 8 sets x 8 ways x 64B
            line_bytes: 64,
            assoc: 8,
            hit_latency: 12,
            mshr_entries: 4,
            upper_inval_latency: 4,
            ports: 2,
            decay_counter_bits: 2,
        }
    }

    fn l2(technique: Technique) -> L2Cache {
        L2Cache::new(&cfg(), technique, true)
    }

    fn fill_line(c: &mut L2Cache, line: LineAddr, exclusive: bool, now: u64) {
        let fx = &mut SideEffects::default();
        if exclusive {
            assert_eq!(c.probe_write(line), L2WriteOutcome::MissPrimary);
        } else {
            assert_eq!(c.probe_read(line), L2ReadOutcome::MissPrimary);
        }
        let (_, _, installed) = c.fill(line, false, now, fx);
        assert!(installed);
    }

    const L: LineAddr = LineAddr(0x100);

    #[test]
    fn read_miss_fill_hit() {
        let mut c = l2(Technique::Baseline);
        assert_eq!(c.probe_read(L), L2ReadOutcome::MissPrimary);
        assert_eq!(c.probe_read(L), L2ReadOutcome::MissSecondary);
        let fx = &mut SideEffects::default();
        let (reads, writes, installed) = c.fill(L, false, 10, fx);
        assert_eq!((reads, writes, installed), (2, 0, true));
        assert_eq!(c.state_of(L), Some(MesiState::Exclusive));
        assert_eq!(c.probe_read(L), L2ReadOutcome::Hit);
    }

    #[test]
    fn shared_wire_fills_shared() {
        let mut c = l2(Technique::Baseline);
        c.probe_read(L);
        let fx = &mut SideEffects::default();
        c.fill(L, true, 10, fx);
        assert_eq!(c.state_of(L), Some(MesiState::Shared));
    }

    #[test]
    fn write_miss_fills_modified_and_absorbs_stores() {
        let mut c = l2(Technique::Baseline);
        assert_eq!(c.probe_write(L), L2WriteOutcome::MissPrimary);
        let fx = &mut SideEffects::default();
        let (r, w, installed) = c.fill(L, false, 10, fx);
        assert_eq!((r, w, installed), (0, 0, true), "writes satisfied by M fill");
        assert_eq!(c.state_of(L), Some(MesiState::Modified));
        assert_eq!(c.probe_write(L), L2WriteOutcome::Done);
    }

    #[test]
    fn silent_e_to_m_upgrade_on_write_hit() {
        let mut c = l2(Technique::Baseline);
        fill_line(&mut c, L, false, 0);
        assert_eq!(c.state_of(L), Some(MesiState::Exclusive));
        assert_eq!(c.probe_write(L), L2WriteOutcome::Done);
        assert_eq!(c.state_of(L), Some(MesiState::Modified));
    }

    #[test]
    fn shared_write_hit_issues_upgrade() {
        let mut c = l2(Technique::Baseline);
        c.probe_read(L);
        let fx = &mut SideEffects::default();
        c.fill(L, true, 0, fx); // Shared
        assert_eq!(c.probe_write(L), L2WriteOutcome::UpgradeIssued);
        assert!(c.pending_exclusive(L));
        assert_eq!(c.complete_upgrade(L, 5), UpgradeResult::Done);
        assert_eq!(c.state_of(L), Some(MesiState::Modified));
        assert!(!c.busy());
    }

    #[test]
    fn upgrade_converts_to_miss_if_line_stolen() {
        let mut c = l2(Technique::Baseline);
        c.probe_read(L);
        let fx = &mut SideEffects::default();
        c.fill(L, true, 0, fx);
        assert_eq!(c.probe_write(L), L2WriteOutcome::UpgradeIssued);
        // Another core's BusRdX lands first.
        c.snoop(L, SnoopKind::BusRdX, 3, fx);
        assert_eq!(c.state_of(L), None);
        assert_eq!(c.complete_upgrade(L, 5), UpgradeResult::ConvertToMiss);
        assert!(c.miss_pending(L), "entry stays for the converted miss");
    }

    #[test]
    fn snoop_busrd_on_modified_flushes_and_shares() {
        let mut c = l2(Technique::Baseline);
        fill_line(&mut c, L, true, 0);
        let fx = &mut SideEffects::default();
        let reply = c.snoop(L, SnoopKind::BusRd, 5, fx);
        assert!(reply.supply_data && reply.assert_shared);
        assert_eq!(c.state_of(L), Some(MesiState::Shared));
        assert_eq!(fx.writebacks, vec![L]);
    }

    #[test]
    fn snoop_busrdx_with_l1_copy_detours_through_td() {
        let mut c = l2(Technique::Protocol);
        fill_line(&mut c, L, true, 0);
        c.set_in_l1(L, true);
        let fx = &mut SideEffects::default();
        let reply = c.snoop(L, SnoopKind::BusRdX, 5, fx);
        assert!(reply.supply_data);
        assert_eq!(fx.upper_invals, vec![(L, false)]);
        assert_eq!(fx.grants.len(), 1);
        assert!(!c.holds_valid(L), "transient line is not valid for probes");
        // Grant completes the invalidation; Protocol gates the line.
        let (due, slot, line) = fx.grants[0];
        let fx2 = &mut SideEffects::default();
        c.grant(slot, line, due, fx2);
        assert_eq!(c.state_of(L), None);
        assert_eq!(c.stats().turnoffs_protocol, 1);
    }

    #[test]
    fn protocol_gating_counts_on_direct_invalidation() {
        let mut c = l2(Technique::Protocol);
        fill_line(&mut c, L, false, 0);
        let fx = &mut SideEffects::default();
        c.snoop(L, SnoopKind::BusRdX, 5, fx);
        assert_eq!(c.stats().snoop_invalidations, 1);
        assert_eq!(c.stats().turnoffs_protocol, 1);
        assert_eq!(c.powered_lines(), 0, "protocol cache gates invalidated lines");
    }

    #[test]
    fn baseline_keeps_invalidated_lines_powered() {
        let mut c = l2(Technique::Baseline);
        let total = c.geometry().lines() as u64;
        fill_line(&mut c, L, false, 0);
        let fx = &mut SideEffects::default();
        c.snoop(L, SnoopKind::BusRdX, 5, fx);
        assert_eq!(c.powered_lines(), total, "baseline never gates");
    }

    #[test]
    fn cold_lines_start_gated_under_techniques() {
        let c = l2(Technique::Decay { decay_cycles: 1024 });
        assert_eq!(c.powered_lines(), 0);
        let b = l2(Technique::Baseline);
        assert_eq!(b.powered_lines(), b.geometry().lines() as u64);
    }

    #[test]
    fn decay_turns_off_idle_clean_line() {
        let mut c = l2(Technique::Decay { decay_cycles: 1024 });
        fill_line(&mut c, L, false, 0);
        assert_eq!(c.powered_lines(), 1);
        let decayed = c.take_decayed(1024);
        assert_eq!(decayed.len(), 1);
        let fx = &mut SideEffects::default();
        c.turn_off(decayed[0], 1024, false, fx);
        assert_eq!(c.state_of(L), None);
        assert_eq!(c.powered_lines(), 0);
        assert_eq!(c.stats().turnoffs_decay, 1);
        assert!(fx.writebacks.is_empty(), "clean turn-off is free");
    }

    #[test]
    fn decay_of_modified_line_writes_back() {
        let mut c = l2(Technique::Decay { decay_cycles: 1024 });
        fill_line(&mut c, L, true, 0);
        let decayed = c.take_decayed(1024);
        let fx = &mut SideEffects::default();
        c.turn_off(decayed[0], 1024, false, fx);
        assert_eq!(fx.writebacks, vec![L]);
        assert_eq!(c.stats().dirty_decay_turnoffs, 1);
        assert_eq!(c.powered_lines(), 0);
    }

    #[test]
    fn decay_of_modified_line_with_l1_copy_invalidates_upward() {
        let mut c = l2(Technique::Decay { decay_cycles: 1024 });
        fill_line(&mut c, L, true, 0);
        c.set_in_l1(L, true);
        let decayed = c.take_decayed(1024);
        let fx = &mut SideEffects::default();
        c.turn_off(decayed[0], 1024, false, fx);
        assert_eq!(fx.upper_invals, vec![(L, true)], "technique-induced L1 invalidation");
        assert_eq!(fx.grants.len(), 1);
        assert_eq!(c.powered_lines(), 1, "gating waits for the grant");
        let (due, slot, line) = fx.grants[0];
        let fx2 = &mut SideEffects::default();
        c.grant(slot, line, due, fx2);
        assert_eq!(c.powered_lines(), 0);
    }

    #[test]
    fn selective_decay_never_decays_modified_lines() {
        let mut c = l2(Technique::SelectiveDecay { decay_cycles: 1024 });
        fill_line(&mut c, L, true, 0); // fills Modified -> disarmed
        assert!(c.take_decayed(100 * 1024).is_empty(), "M lines are disarmed");
        // A snoop read demotes to Shared -> rearmed.
        let fx = &mut SideEffects::default();
        c.snoop(L, SnoopKind::BusRd, 200 * 1024, fx);
        assert_eq!(c.state_of(L), Some(MesiState::Shared));
        let decayed = c.take_decayed(202 * 1024);
        assert_eq!(decayed.len(), 1, "S line decays after rearm");
    }

    #[test]
    fn pending_write_defers_turn_off() {
        let mut c = l2(Technique::Decay { decay_cycles: 1024 });
        fill_line(&mut c, L, false, 0);
        let decayed = c.take_decayed(1024);
        let fx = &mut SideEffects::default();
        c.turn_off(decayed[0], 1024, true, fx);
        assert!(fx.is_empty());
        assert!(c.holds_valid(L), "line survives while a write is pending");
        let deferred = c.take_deferred_turnoffs();
        assert_eq!(deferred.len(), 1);
        // Retry without the pending write: now it gates.
        c.turn_off(deferred[0], 1100, false, fx);
        assert_eq!(c.state_of(L), None);
    }

    #[test]
    fn deferred_turn_off_dropped_after_reaccess() {
        let mut c = l2(Technique::Decay { decay_cycles: 1024 });
        fill_line(&mut c, L, false, 0);
        let decayed = c.take_decayed(1024);
        let fx = &mut SideEffects::default();
        c.turn_off(decayed[0], 1024, true, fx); // deferred
        assert_eq!(c.probe_read(L), L2ReadOutcome::Hit); // reset counter
        let deferred = c.take_deferred_turnoffs();
        c.turn_off(deferred[0], 1100, false, fx);
        assert!(c.holds_valid(L), "re-accessed line must not be gated");
    }

    #[test]
    fn inflight_busrd_demotes_fill_to_shared() {
        let mut c = l2(Technique::Baseline);
        c.probe_read(L);
        let fx = &mut SideEffects::default();
        let reply = c.snoop(L, SnoopKind::BusRd, 2, fx);
        assert!(reply.assert_shared, "in-flight line must assert shared");
        let (_, _, installed) = c.fill(L, false, 10, fx);
        assert!(installed);
        assert_eq!(c.state_of(L), Some(MesiState::Shared));
    }

    #[test]
    fn inflight_busrdx_dooms_fill() {
        let mut c = l2(Technique::Baseline);
        c.probe_read(L);
        let fx = &mut SideEffects::default();
        c.snoop(L, SnoopKind::BusRdX, 2, fx);
        let (reads, _, installed) = c.fill(L, false, 10, fx);
        assert_eq!(reads, 1);
        assert!(!installed, "doomed fill must not cache the line");
        assert_eq!(c.state_of(L), None);
    }

    #[test]
    fn exclusive_fill_demoted_by_reader_reissues_writes() {
        let mut c = l2(Technique::Baseline);
        assert_eq!(c.probe_write(L), L2WriteOutcome::MissPrimary);
        let fx = &mut SideEffects::default();
        c.snoop(L, SnoopKind::BusRd, 2, fx); // concurrent reader
        let (_, writes, installed) = c.fill(L, false, 10, fx);
        assert!(installed);
        assert_eq!(c.state_of(L), Some(MesiState::Shared));
        assert_eq!(writes, 1, "store must be re-issued as an upgrade");
    }

    #[test]
    fn eviction_of_dirty_line_writes_back_and_back_invalidates() {
        let mut c = l2(Technique::Baseline);
        let geom = c.geometry();
        let sets = geom.sets() as u64;
        // Fill all 8 ways of set 0 with dirty lines, L1 copies present.
        for i in 0..8u64 {
            let line = LineAddr(i * sets);
            fill_line(&mut c, line, true, 0);
            c.set_in_l1(line, true);
        }
        // Ninth line in the same set evicts the LRU one.
        let newline = LineAddr(8 * sets);
        assert_eq!(c.probe_read(newline), L2ReadOutcome::MissPrimary);
        let fx = &mut SideEffects::default();
        c.fill(newline, false, 100, fx);
        assert_eq!(fx.writebacks.len(), 1, "dirty victim written back");
        assert_eq!(fx.upper_invals.len(), 1, "inclusion back-invalidation");
        assert!(!fx.upper_invals[0].1, "eviction is a baseline cost");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn occupation_accounting_integrates_on_time() {
        let mut c = l2(Technique::Decay { decay_cycles: 1024 });
        fill_line(&mut c, L, false, 100);
        let decayed = c.take_decayed(1024 + 100);
        let fx = &mut SideEffects::default();
        for slot in decayed {
            c.turn_off(slot, 1124, false, fx);
        }
        let on = c.finish_on_cycles(5000);
        assert_eq!(on, 1024, "line was powered from 100 to 1124");
    }

    #[test]
    fn induced_misses_detected_via_shadow() {
        let mut c = l2(Technique::Decay { decay_cycles: 1024 });
        fill_line(&mut c, L, false, 0);
        let decayed = c.take_decayed(1024);
        let fx = &mut SideEffects::default();
        for slot in decayed {
            c.turn_off(slot, 1024, false, fx);
        }
        // Re-access: the baseline would have hit.
        assert_eq!(c.probe_read(L), L2ReadOutcome::MissPrimary);
        assert_eq!(c.stats().induced_misses, 1);
        assert_eq!(c.stats().misses, 2, "cold miss + induced miss");
    }

    #[test]
    fn hit_latency_includes_decay_penalty() {
        let base = l2(Technique::Baseline);
        let dec = l2(Technique::Decay { decay_cycles: 1024 });
        assert_eq!(dec.hit_latency(), base.hit_latency() + 1);
    }
}
