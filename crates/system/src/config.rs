//! System configuration.

use cmpleak_coherence::Technique;
use cmpleak_cpu::CoreConfig;
use cmpleak_mem::Geometry;

/// Private L1 data cache parameters. The L1 is write-through,
/// no-write-allocate, with a coalescing write buffer toward the L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (must match the L2's).
    pub line_bytes: usize,
    /// Associativity.
    pub assoc: usize,
    /// Load-to-use latency of a hit, in core cycles.
    pub hit_latency: u64,
    /// MSHR entries (outstanding L1 misses).
    pub mshr_entries: usize,
    /// Write-buffer depth (distinct lines).
    pub write_buffer: usize,
}

impl Default for L1Config {
    fn default() -> Self {
        Self {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            assoc: 4,
            hit_latency: 2,
            mshr_entries: 8,
            write_buffer: 8,
        }
    }
}

impl L1Config {
    /// Geometry helper.
    pub fn geometry(&self) -> Geometry {
        Geometry::new(self.size_bytes, self.line_bytes, self.assoc)
    }
}

/// Private L2 cache parameters (per core).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Capacity in bytes *per core* (the paper reports total = 4×this).
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity.
    pub assoc: usize,
    /// Hit latency in core cycles (before any decay access penalty).
    pub hit_latency: u64,
    /// MSHR entries.
    pub mshr_entries: usize,
    /// Cycles to invalidate the upper-level copy (the TC/TD Grant
    /// delay).
    pub upper_inval_latency: u64,
    /// Operations the L2 accepts per cycle (read probes + write drains).
    pub ports: u32,
    /// Width of the per-line decay counters (2 in the paper).
    pub decay_counter_bits: u32,
}

impl Default for L2Config {
    fn default() -> Self {
        Self {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            assoc: 8,
            hit_latency: 12,
            mshr_entries: 16,
            upper_inval_latency: 4,
            ports: 2,
            decay_counter_bits: 2,
        }
    }
}

impl L2Config {
    /// Geometry helper.
    pub fn geometry(&self) -> Geometry {
        Geometry::new(self.size_bytes, self.line_bytes, self.assoc)
    }
}

/// Shared snoopy bus parameters. The paper's bus is pipelined, clocked at
/// half the core clock, 57 GB/s; we express it as cycles of occupancy per
/// transaction class at core-clock granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Bus occupancy of a data-carrying transaction (address + 64 B
    /// line at the bus's data rate).
    pub data_occupancy: u64,
    /// Bus occupancy of an address-only transaction (upgrade,
    /// write-back address phase).
    pub addr_occupancy: u64,
    /// Extra latency of a cache-to-cache supply (snoop response + data
    /// turnaround) on top of bus occupancy.
    pub c2c_latency: u64,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self { data_occupancy: 8, addr_occupancy: 4, c2c_latency: 12 }
    }
}

/// External memory interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Access latency (cycles from grant to first data).
    pub latency: u64,
    /// Channel service time per line transfer (finite bandwidth:
    /// back-to-back transfers queue behind each other).
    pub service: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self { latency: 250, service: 16 }
    }
}

/// Which cycle kernel drives the simulation.
///
/// Both kernels produce **bit-identical** [`SimStats`](crate::SimStats)
/// — enforced by `tests/kernel_differential.rs` and by the golden sweep
/// snapshot, which was blessed under the per-cycle kernel and must pass
/// under the default without re-blessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimKernel {
    /// Quiescence-skipping kernel: when no component can make progress,
    /// time jumps directly to the next wakeup (event, bus grant, decay
    /// tick, sample boundary) instead of stepping cycle by cycle.
    #[default]
    QuiescenceSkip,
    /// The classic one-`step_cycle`-per-cycle loop, kept as the
    /// differential reference.
    PerCycle,
}

/// Which per-cycle engine executes a *stepped* cycle.
///
/// Orthogonal to [`SimKernel`]: the kernel decides *which* cycles are
/// stepped (all of them, or only non-quiescent ones); the engine decides
/// how much of the machine a stepped cycle scans. Both engines produce
/// **bit-identical** [`SimStats`](crate::SimStats) — enforced by
/// `tests/cycle_engine_differential.rs` and by the golden sweep
/// snapshot, which passes under the worklist default without
/// re-blessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CycleEngine {
    /// Worklist engine: an awake-core bitmask limits the per-cycle L2
    /// port loops and core ticks to cores that can make progress;
    /// provably blocked cores sleep and are bulk-charged their stall
    /// and retry statistics when a wake edge (own event, bus grant,
    /// decay deadline) re-activates them, and the powered-lines
    /// integral advances as value × span between working cycles.
    /// Systems with more than 64 cores fall back to the full scan (the
    /// mask is a single word).
    #[default]
    Worklist,
    /// The classic full scan — every stepped cycle walks all cores —
    /// kept as the differential reference arm.
    FullScan,
}

/// Full system configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmpConfig {
    /// Number of cores (the paper evaluates 4).
    pub n_cores: usize,
    /// Core timing model parameters.
    pub core: CoreConfig,
    /// L1 parameters.
    pub l1: L1Config,
    /// Per-core private L2 parameters.
    pub l2: L2Config,
    /// Shared-bus parameters.
    pub bus: BusConfig,
    /// Memory interface parameters.
    pub mem: MemConfig,
    /// The leakage technique under evaluation.
    pub technique: Technique,
    /// Instructions each core executes before draining.
    pub instructions_per_core: u64,
    /// Hard cycle cap (safety net for misconfigured runs).
    pub max_cycles: u64,
    /// Cycles per activity-sampling interval (the paper dumps its power
    /// trace every 10 000 cycles).
    pub sample_interval: u64,
    /// Whether to maintain the always-on shadow directory that
    /// classifies technique-induced misses (small simulation overhead;
    /// measurement-only).
    pub shadow_tags: bool,
    /// Cycle kernel (default: quiescence-skipping; both are
    /// bit-identical, see [`SimKernel`]).
    pub kernel: SimKernel,
    /// Per-cycle engine (default: worklist; both are bit-identical, see
    /// [`CycleEngine`]).
    pub engine: CycleEngine,
}

impl Default for CmpConfig {
    fn default() -> Self {
        Self {
            n_cores: 4,
            core: CoreConfig::default(),
            l1: L1Config::default(),
            l2: L2Config::default(),
            bus: BusConfig::default(),
            mem: MemConfig::default(),
            technique: Technique::Baseline,
            instructions_per_core: 1_000_000,
            max_cycles: 500_000_000,
            sample_interval: 10_000,
            shadow_tags: true,
            kernel: SimKernel::default(),
            engine: CycleEngine::default(),
        }
    }
}

impl CmpConfig {
    /// The paper's system at a given **total** L2 capacity (split over
    /// four private caches): `total_mb` ∈ {1, 2, 4, 8}.
    pub fn paper_system(total_mb: usize, technique: Technique) -> Self {
        assert!(total_mb.is_power_of_two() && total_mb >= 1, "paper sizes are 1/2/4/8 MB");
        let mut cfg = Self { technique, ..Self::default() };
        cfg.l2.size_bytes = total_mb * 1024 * 1024 / cfg.n_cores;
        cfg
    }

    /// Total L2 capacity across all private caches.
    pub fn total_l2_bytes(&self) -> usize {
        self.l2.size_bytes * self.n_cores
    }

    /// Validate cross-component invariants.
    pub fn validate(&self) {
        assert!(self.n_cores >= 1);
        assert_eq!(self.l1.line_bytes, self.l2.line_bytes, "uniform line size");
        assert!(
            self.l2.size_bytes >= self.l1.size_bytes,
            "inclusive L2 must not be smaller than L1"
        );
        assert!(self.sample_interval > 0);
        let _ = self.l1.geometry();
        let _ = self.l2.geometry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_splits_total_capacity() {
        let cfg = CmpConfig::paper_system(4, Technique::Protocol);
        assert_eq!(cfg.n_cores, 4);
        assert_eq!(cfg.l2.size_bytes, 1024 * 1024);
        assert_eq!(cfg.total_l2_bytes(), 4 * 1024 * 1024);
        cfg.validate();
    }

    #[test]
    fn default_config_is_valid() {
        CmpConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "inclusive L2")]
    fn rejects_l2_smaller_than_l1() {
        let mut cfg = CmpConfig::default();
        cfg.l2.size_bytes = 16 * 1024;
        cfg.validate();
    }
}
