//! Shared snoopy bus and external memory channel timing.
//!
//! The bus serialises coherence transactions between the private L2s
//! (Fig. 1): one transaction holds the bus for its occupancy, requests
//! queue FIFO (which is also deterministic). The memory channel models
//! the external bus: a fixed access latency plus a finite per-line
//! service time, so bursts of fills/write-backs queue behind each other —
//! this is what turns the decay techniques' extra traffic into the AMAT
//! degradation of Fig. 4(b).

use crate::config::{BusConfig, MemConfig};
use cmpleak_mem::LineAddr;
use std::collections::VecDeque;

/// A request queued for the shared bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusReq {
    /// Issuing cache (core id).
    pub origin: usize,
    /// Line concerned.
    pub line: LineAddr,
    /// Transaction kind.
    pub kind: BusReqKind,
}

/// Transaction kinds carried by the shared bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusReqKind {
    /// Fetch for read (fills E or S).
    ReadMiss,
    /// Fetch for write (fills M, invalidates other copies).
    WriteMiss,
    /// Ownership upgrade of a resident Shared line (no data).
    Upgrade,
    /// Dirty line pushed to memory (victim, snoop flush or turn-off).
    Writeback,
}

/// Shared bus + memory channel state.
#[derive(Debug)]
pub struct SharedBus {
    cfg: BusConfig,
    mem: MemConfig,
    queue: VecDeque<BusReq>,
    busy_until: u64,
    mem_busy_until: u64,
    /// Totals for SimStats.
    pub transactions: u64,
    /// Cycles of bus occupancy accumulated.
    pub busy_cycles: u64,
    /// Line fills served by memory.
    pub mem_fills: u64,
    /// Write-backs absorbed by memory.
    pub mem_writebacks: u64,
    /// Bytes exchanged with memory.
    pub mem_bytes: u64,
    /// Bytes moved on the shared bus.
    pub bus_bytes: u64,
    line_bytes: u64,
}

impl SharedBus {
    /// Build from configuration; `line_bytes` sizes data transfers.
    pub fn new(cfg: BusConfig, mem: MemConfig, line_bytes: usize) -> Self {
        Self {
            cfg,
            mem,
            queue: VecDeque::new(),
            busy_until: 0,
            mem_busy_until: 0,
            transactions: 0,
            busy_cycles: 0,
            mem_fills: 0,
            mem_writebacks: 0,
            mem_bytes: 0,
            bus_bytes: 0,
            line_bytes: line_bytes as u64,
        }
    }

    /// Enqueue a request.
    pub fn push(&mut self, req: BusReq) {
        self.queue.push_back(req);
    }

    /// Requests waiting (including the one about to be granted).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether the request queue is empty (the structural half of
    /// [`SharedBus::idle`]; the busy horizons are the time-dependent
    /// half, see [`SharedBus::quiesce_at`]).
    pub fn queue_is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Cycle until which the bus is occupied by the granted transaction;
    /// while `now < busy_until()` no grant can happen.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// First cycle at which both the bus and the memory channel will
    /// have drained their current occupancy. With an empty queue the bus
    /// is [`idle`](SharedBus::idle) from this cycle on.
    pub fn quiesce_at(&self) -> u64 {
        self.busy_until.max(self.mem_busy_until)
    }

    /// Whether the bus and memory channel are fully drained.
    pub fn idle(&self, now: u64) -> bool {
        self.queue.is_empty() && now >= self.busy_until && now >= self.mem_busy_until
    }

    /// Earliest cycle at which [`try_grant`](SharedBus::try_grant) can
    /// return a request: `u64::MAX` while the queue is empty, otherwise
    /// the occupancy horizon of the transaction currently holding the
    /// bus. The queue is FIFO with no per-request readiness delay and a
    /// NACK-retry re-enqueue is itself a granted (occupancy-charged)
    /// transaction, so queue-head readiness and retry backoff both fold
    /// into `busy_until`.
    ///
    /// The value only changes at the bus mutation points — `push` (MAX →
    /// finite) and `try_grant` (horizon advances by the new occupancy, or
    /// to MAX when the queue drains) — so the cycle loop may cache it
    /// across cycles and skip arbitration entirely while
    /// `now < next_possible_grant()`.
    pub fn next_possible_grant(&self) -> u64 {
        if self.queue.is_empty() {
            u64::MAX
        } else {
            self.busy_until
        }
    }

    /// Grant the next transaction if the bus is free. The caller (the
    /// system) performs the snoop logic; this method only accounts for
    /// occupancy and returns the granted request.
    pub fn try_grant(&mut self, now: u64) -> Option<BusReq> {
        if now < self.busy_until {
            return None;
        }
        let req = self.queue.pop_front()?;
        let occupancy = match req.kind {
            BusReqKind::ReadMiss | BusReqKind::WriteMiss | BusReqKind::Writeback => {
                self.bus_bytes += self.line_bytes;
                self.cfg.data_occupancy
            }
            BusReqKind::Upgrade => self.cfg.addr_occupancy,
        };
        self.busy_until = now + occupancy;
        self.busy_cycles += occupancy;
        self.transactions += 1;
        Some(req)
    }

    /// A fill must come from memory: returns the cycle the data will be
    /// ready at the requesting L2, accounting for channel queueing.
    pub fn memory_fill(&mut self, now: u64) -> u64 {
        let start = now.max(self.mem_busy_until);
        self.mem_busy_until = start + self.mem.service;
        self.mem_fills += 1;
        self.mem_bytes += self.line_bytes;
        start + self.mem.latency
    }

    /// A dirty line is pushed to memory (write-back or snoop flush
    /// update). Fire-and-forget: only occupancy and traffic are tracked.
    pub fn memory_writeback(&mut self, now: u64) {
        let start = now.max(self.mem_busy_until);
        self.mem_busy_until = start + self.mem.service;
        self.mem_writebacks += 1;
        self.mem_bytes += self.line_bytes;
    }

    /// Data supplied cache-to-cache: ready after the snoop turnaround.
    pub fn c2c_fill(&self, now: u64) -> u64 {
        now + self.cfg.c2c_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> SharedBus {
        SharedBus::new(
            BusConfig { data_occupancy: 8, addr_occupancy: 4, c2c_latency: 12 },
            MemConfig { latency: 100, service: 16 },
            64,
        )
    }

    fn req(kind: BusReqKind) -> BusReq {
        BusReq { origin: 0, line: LineAddr(1), kind }
    }

    #[test]
    fn grants_are_fifo_and_respect_occupancy() {
        let mut b = bus();
        b.push(BusReq { origin: 0, line: LineAddr(1), kind: BusReqKind::ReadMiss });
        b.push(BusReq { origin: 1, line: LineAddr(2), kind: BusReqKind::ReadMiss });
        let g0 = b.try_grant(0).unwrap();
        assert_eq!(g0.origin, 0);
        assert!(b.try_grant(3).is_none(), "bus still busy");
        let g1 = b.try_grant(8).unwrap();
        assert_eq!(g1.origin, 1);
        assert_eq!(b.transactions, 2);
    }

    #[test]
    fn upgrades_occupy_less_than_data_transactions() {
        let mut b = bus();
        b.push(req(BusReqKind::Upgrade));
        b.try_grant(0).unwrap();
        assert!(b.try_grant(3).is_none());
        b.push(req(BusReqKind::Upgrade));
        assert!(b.try_grant(4).is_some(), "addr-only occupancy is 4 cycles");
    }

    #[test]
    fn memory_fills_queue_behind_each_other() {
        let mut b = bus();
        let t0 = b.memory_fill(0);
        let t1 = b.memory_fill(0);
        assert_eq!(t0, 100);
        assert_eq!(t1, 116, "second fill waits for channel service");
        assert_eq!(b.mem_bytes, 128);
        assert_eq!(b.mem_fills, 2);
    }

    #[test]
    fn writebacks_consume_memory_bandwidth_seen_by_fills() {
        let mut b = bus();
        b.memory_writeback(0);
        let t = b.memory_fill(0);
        assert_eq!(t, 116, "fill queues behind the write-back");
        assert_eq!(b.mem_writebacks, 1);
    }

    #[test]
    fn idle_accounts_for_queue_and_channels() {
        let mut b = bus();
        assert!(b.idle(0));
        b.push(req(BusReqKind::ReadMiss));
        assert!(!b.idle(0));
        b.try_grant(0).unwrap();
        assert!(!b.idle(4), "bus occupancy still running");
        assert!(b.idle(8));
    }

    #[test]
    fn c2c_is_faster_than_memory() {
        let mut b = bus();
        assert!(b.c2c_fill(0) < b.memory_fill(0));
    }

    #[test]
    fn no_grant_strictly_before_the_horizon() {
        let mut b = bus();
        assert_eq!(b.next_possible_grant(), u64::MAX, "empty queue never grants");
        b.push(req(BusReqKind::ReadMiss));
        assert_eq!(b.next_possible_grant(), 0);
        b.try_grant(0).unwrap();
        b.push(req(BusReqKind::Upgrade));
        let h = b.next_possible_grant();
        assert_eq!(h, 8, "data occupancy holds the bus");
        for now in 0..h {
            assert!(b.try_grant(now).is_none(), "granted at {now} before horizon {h}");
            assert_eq!(b.next_possible_grant(), h, "failed probe moved the horizon");
        }
        assert!(b.try_grant(h).is_some(), "horizon cycle itself must grant");
    }

    #[test]
    fn horizon_is_constant_between_mutations() {
        let mut b = bus();
        b.push(req(BusReqKind::ReadMiss));
        b.push(req(BusReqKind::ReadMiss));
        let before = b.next_possible_grant();
        // Read-only traffic between mutation points leaves it fixed.
        let _ = b.pending();
        let _ = b.idle(3);
        assert_eq!(b.next_possible_grant(), before);
        // A grant advances it by the new occupancy; the drain returns MAX.
        b.try_grant(0).unwrap();
        assert_eq!(b.next_possible_grant(), 8);
        b.try_grant(8).unwrap();
        assert_eq!(b.next_possible_grant(), u64::MAX);
    }

    #[test]
    fn nack_retry_reenqueue_reopens_a_finite_horizon() {
        let mut b = bus();
        b.push(req(BusReqKind::ReadMiss));
        // The system's NACK path re-pushes the request after the grant
        // charged occupancy: the horizon must land on the retry slot.
        let g = b.try_grant(0).unwrap();
        b.push(g);
        assert_eq!(b.next_possible_grant(), 8, "retry waits out the charged occupancy");
    }
}
