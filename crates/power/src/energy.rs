//! Per-event dynamic energy model (Wattch/CACTI/Orion substitutes).

use crate::params::PowerParams;
use cmpleak_system::IntervalActivity;

/// Computes dynamic energy from activity counters.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    params: PowerParams,
    /// Per-access L2 energy for the configured bank size.
    l2_access_pj: f64,
}

/// Dynamic energy of one interval, by component (picojoules).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DynamicEnergy {
    /// Core pipelines.
    pub core_pj: f64,
    /// L1 caches.
    pub l1_pj: f64,
    /// L2 caches.
    pub l2_pj: f64,
    /// Shared bus.
    pub bus_pj: f64,
    /// Decay-counter activity.
    pub decay_pj: f64,
}

impl DynamicEnergy {
    /// Total dynamic energy.
    pub fn total(&self) -> f64 {
        self.core_pj + self.l1_pj + self.l2_pj + self.bus_pj + self.decay_pj
    }
}

impl EnergyModel {
    /// Build for a given L2 bank size.
    pub fn new(params: PowerParams, l2_bank_bytes: usize) -> Self {
        Self { params, l2_access_pj: params.l2_access_pj(l2_bank_bytes) }
    }

    /// The parameters in use.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Per-access L2 energy in use.
    pub fn l2_access_pj(&self) -> f64 {
        self.l2_access_pj
    }

    /// Dynamic energy of one activity interval.
    pub fn interval_dynamic(&self, a: &IntervalActivity) -> DynamicEnergy {
        DynamicEnergy {
            core_pj: a.instructions as f64 * self.params.core_epi_pj,
            l1_pj: a.l1_accesses as f64 * self.params.l1_access_pj,
            l2_pj: (a.l2_reads + a.l2_writes) as f64 * self.l2_access_pj,
            bus_pj: a.bus_bytes as f64 * self.params.bus_pj_per_byte
                + a.bus_transactions as f64 * self.params.bus_pj_per_txn,
            decay_pj: a.decay_counter_events as f64 * self.params.decay_counter_event_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval() -> IntervalActivity {
        IntervalActivity {
            cycles: 10_000,
            instructions: 40_000,
            l1_accesses: 7_000,
            l2_reads: 1_000,
            l2_writes: 2_000,
            bus_transactions: 100,
            bus_bytes: 6_400,
            mem_bytes: 6_400,
            l2_powered_line_cycles: 0,
            l2_total_line_cycles: 0,
            decay_counter_events: 500,
        }
    }

    #[test]
    fn dynamic_energy_adds_up() {
        let m = EnergyModel::new(PowerParams::default(), 1024 * 1024);
        let e = m.interval_dynamic(&interval());
        assert!((e.core_pj - 40_000.0 * 40.0).abs() < 1e-6);
        assert!((e.l1_pj - 7_000.0 * 20.0).abs() < 1e-6);
        assert!((e.l2_pj - 3_000.0 * 100.0).abs() < 1e-3);
        assert!((e.bus_pj - (6_400.0 + 5_000.0)).abs() < 1e-6);
        assert!((e.decay_pj - 25.0).abs() < 1e-9);
        let t = e.total();
        assert!((t - (e.core_pj + e.l1_pj + e.l2_pj + e.bus_pj + e.decay_pj)).abs() < 1e-9);
    }

    #[test]
    fn bank_size_drives_l2_energy() {
        let small = EnergyModel::new(PowerParams::default(), 256 * 1024);
        let large = EnergyModel::new(PowerParams::default(), 2 * 1024 * 1024);
        assert!(large.l2_access_pj() > small.l2_access_pj());
    }
}
