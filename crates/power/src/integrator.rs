//! Energy integration over a simulation's activity trace, with the
//! leakage→temperature→leakage feedback loop closed per interval —
//! the paper's methodology (power trace every 10 000 cycles into
//! HotSpot, leakage evaluated at the resulting temperatures).

use crate::energy::EnergyModel;
use crate::leakage::LeakageModel;
use crate::params::PowerParams;
use crate::thermal::ThermalModel;
use cmpleak_coherence::Technique;
use cmpleak_system::SimStats;

/// Total energy of a run, by component (picojoules).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core pipeline dynamic energy.
    pub core_dynamic_pj: f64,
    /// L1 dynamic energy.
    pub l1_dynamic_pj: f64,
    /// L2 dynamic energy.
    pub l2_dynamic_pj: f64,
    /// Shared-bus dynamic energy.
    pub bus_dynamic_pj: f64,
    /// L2 array leakage (the optimization target).
    pub l2_leakage_pj: f64,
    /// Leakage of the never-gated rest of the chip.
    pub other_leakage_pj: f64,
    /// Decay-logic dynamic energy (counter increments/resets).
    pub decay_dynamic_pj: f64,
    /// Decay-counter leakage.
    pub decay_leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total system energy (the denominator of the paper's
    /// energy-reduction figures).
    pub fn total_pj(&self) -> f64 {
        self.core_dynamic_pj
            + self.l1_dynamic_pj
            + self.l2_dynamic_pj
            + self.bus_dynamic_pj
            + self.l2_leakage_pj
            + self.other_leakage_pj
            + self.decay_dynamic_pj
            + self.decay_leakage_pj
    }

    /// L2 leakage share of the total (calibration checks).
    pub fn l2_leakage_share(&self) -> f64 {
        self.l2_leakage_pj / self.total_pj()
    }
}

/// Result of evaluating a run's power/thermal behaviour.
///
/// `PartialEq` is exact (no tolerance): equality means the two reports
/// are bit-identical, as the record/replay differential tests require.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Energy totals by component.
    pub energy: EnergyBreakdown,
    /// Time-average of the mean L2 bank temperature, °C.
    pub avg_l2_temp_c: f64,
    /// Hottest block temperature seen, °C.
    pub peak_temp_c: f64,
    /// Average total power, watts.
    pub avg_power_w: f64,
}

/// Integrate a run's energy.
///
/// * `n_cores` / `l2_bank_bytes` describe the system the stats came from;
/// * `technique` selects the gating/decay overhead accounting.
pub fn evaluate_energy(
    params: PowerParams,
    technique: Technique,
    n_cores: usize,
    l2_bank_bytes: usize,
    stats: &SimStats,
) -> PowerReport {
    let line_bytes = 64;
    let total_lines = (l2_bank_bytes / line_bytes) as u64 * n_cores as u64;
    let energy_model = EnergyModel::new(params, l2_bank_bytes);
    let leak_model = LeakageModel::new(params, technique, total_lines);
    let mut thermal = ThermalModel::new(params, n_cores);

    let mut acc = EnergyBreakdown::default();
    let mut temp_weighted = 0.0f64;
    let mut peak = f64::MIN;
    let mut total_cycles = 0u64;

    for iv in &stats.trace {
        let t_l2 = thermal.mean_bank_temp();
        let dynamic = energy_model.interval_dynamic(iv);
        let l2_leak = leak_model.l2_interval_pj(iv.l2_powered_line_cycles, t_l2);
        let ctr_leak = leak_model.decay_counters_interval_pj(iv.cycles, t_l2);
        // Core-side leakage follows core block temperature.
        let t_core = (0..n_cores).map(|i| thermal.core_temp(i)).sum::<f64>() / n_cores as f64;
        let other_leak = leak_model.other_interval_pj(iv.cycles, t_core);

        acc.core_dynamic_pj += dynamic.core_pj;
        acc.l1_dynamic_pj += dynamic.l1_pj;
        acc.l2_dynamic_pj += dynamic.l2_pj;
        acc.bus_dynamic_pj += dynamic.bus_pj;
        acc.decay_dynamic_pj += dynamic.decay_pj;
        acc.l2_leakage_pj += l2_leak;
        acc.decay_leakage_pj += ctr_leak;
        acc.other_leakage_pj += other_leak;

        // Feed the thermal model: distribute component powers over
        // blocks (cores get pipeline+L1+their share of bus+other leak;
        // banks get L2 dynamic + L2 leakage + counters).
        let nf = n_cores as f64;
        let core_pj = (dynamic.core_pj + dynamic.l1_pj + dynamic.bus_pj + other_leak) / nf;
        let bank_pj = (dynamic.l2_pj + dynamic.decay_pj + l2_leak + ctr_leak) / nf;
        let mut powers = vec![0.0f64; 2 * n_cores];
        for i in 0..n_cores {
            powers[i] = params.pj_per_cycles_to_watts(core_pj, iv.cycles);
            powers[n_cores + i] = params.pj_per_cycles_to_watts(bank_pj, iv.cycles);
        }
        let dt = iv.cycles as f64 * params.cycle_seconds();
        thermal.step(&powers, dt);

        temp_weighted += thermal.mean_bank_temp() * iv.cycles as f64;
        peak = peak.max(thermal.peak_temp());
        total_cycles += iv.cycles;
    }

    let avg_l2_temp_c =
        if total_cycles > 0 { temp_weighted / total_cycles as f64 } else { params.ambient_celsius };
    let avg_power_w = params.pj_per_cycles_to_watts(acc.total_pj(), total_cycles.max(1));
    PowerReport {
        energy: acc,
        avg_l2_temp_c,
        peak_temp_c: if peak == f64::MIN { params.ambient_celsius } else { peak },
        avg_power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpleak_system::IntervalActivity;

    fn fake_stats(intervals: usize, powered_fraction: f64) -> SimStats {
        let lines_total = 4 * 16384u64; // 4 x 1MB banks
        let mut s = SimStats::default();
        for _ in 0..intervals {
            s.trace.push(IntervalActivity {
                cycles: 10_000,
                instructions: 38_000,
                l1_accesses: 7_000,
                l2_reads: 900,
                l2_writes: 2_100,
                bus_transactions: 60,
                bus_bytes: 3_840,
                mem_bytes: 3_840,
                l2_powered_line_cycles: (lines_total as f64 * 10_000.0 * powered_fraction) as u64,
                l2_total_line_cycles: lines_total * 10_000,
                decay_counter_events: 0,
            });
        }
        s.cycles = intervals as u64 * 10_000;
        s
    }

    #[test]
    fn baseline_l2_leak_share_matches_calibration() {
        let stats = fake_stats(200, 1.0);
        let r =
            evaluate_energy(PowerParams::default(), Technique::Baseline, 4, 1024 * 1024, &stats);
        let share = r.energy.l2_leakage_share();
        // The synthetic interval here is less dynamic-heavy than the
        // calibration workloads (whose measured share is ≈0.31 at 4 MB),
        // so accept a band around the target.
        assert!(
            share > 0.25 && share < 0.45,
            "4MB-total baseline L2 leak share ≈ 31%, got {share:.3}"
        );
    }

    #[test]
    fn gating_reduces_l2_leakage_proportionally() {
        let base = evaluate_energy(
            PowerParams::default(),
            Technique::Baseline,
            4,
            1024 * 1024,
            &fake_stats(100, 1.0),
        );
        let gated = evaluate_energy(
            PowerParams::default(),
            Technique::Decay { decay_cycles: 1 << 19 },
            4,
            1024 * 1024,
            &fake_stats(100, 0.1),
        );
        let ratio = gated.energy.l2_leakage_pj / base.energy.l2_leakage_pj;
        // 10% occupancy x 1.05 area, modulo small temperature divergence.
        assert!((ratio - 0.105).abs() < 0.02, "ratio {ratio}");
        assert!(gated.energy.total_pj() < base.energy.total_pj());
    }

    #[test]
    fn temperature_feedback_raises_leakage_over_time() {
        // Same activity; longer runs heat up, so later intervals leak
        // more per cycle.
        let short = evaluate_energy(
            PowerParams::default(),
            Technique::Baseline,
            4,
            1024 * 1024,
            &fake_stats(20, 1.0),
        );
        let long = evaluate_energy(
            PowerParams::default(),
            Technique::Baseline,
            4,
            1024 * 1024,
            &fake_stats(2000, 1.0),
        );
        let short_per_cycle = short.energy.l2_leakage_pj / (20.0 * 10_000.0);
        let long_per_cycle = long.energy.l2_leakage_pj / (2000.0 * 10_000.0);
        assert!(
            long_per_cycle > short_per_cycle,
            "thermal feedback must raise per-cycle leakage: {short_per_cycle} vs {long_per_cycle}"
        );
        assert!(long.avg_l2_temp_c > short.avg_l2_temp_c);
        assert!(long.peak_temp_c < 150.0, "physically sane");
    }

    #[test]
    fn decay_overheads_charged_only_with_decay_logic() {
        let stats = fake_stats(50, 0.2);
        let prot =
            evaluate_energy(PowerParams::default(), Technique::Protocol, 4, 1024 * 1024, &stats);
        let decay = evaluate_energy(
            PowerParams::default(),
            Technique::Decay { decay_cycles: 1 << 19 },
            4,
            1024 * 1024,
            &stats,
        );
        assert_eq!(prot.energy.decay_leakage_pj, 0.0);
        assert!(decay.energy.decay_leakage_pj > 0.0);
    }

    #[test]
    fn empty_trace_yields_ambient_report() {
        let stats = SimStats::default();
        let r =
            evaluate_energy(PowerParams::default(), Technique::Baseline, 4, 1024 * 1024, &stats);
        assert_eq!(r.energy.total_pj(), 0.0);
        assert_eq!(r.avg_l2_temp_c, PowerParams::default().ambient_celsius);
    }
}
