//! Power, thermal and leakage models.
//!
//! The paper's methodology (§V) combines Wattch (core dynamic energy),
//! CACTI (cache access energy), Orion (bus energy), HotSpot 3.0.2
//! (temperature) and the Liao et al. temperature/voltage-dependent
//! leakage model, fed by a power trace dumped every 10 000 cycles. None
//! of those tools exist in the Rust ecosystem, so this crate implements
//! compact analytic equivalents with the same *structure*:
//!
//! * [`params`] — every calibration constant, documented against the
//!   quantity it was tuned to (the load-bearing one is the L2-leakage
//!   share of baseline system energy growing ≈10 → 47 % from 1 MB to
//!   8 MB total L2, which the paper's absolute savings imply);
//! * [`energy`] — per-event dynamic energies with CACTI-style capacity
//!   scaling;
//! * [`leakage`] — exponential temperature-dependent leakage
//!   (`P(T) = P(T₀)·e^{β(T−T₀)}`), plus the Gated-Vdd +5 % area overhead
//!   and the decay-counter overheads the paper charges;
//! * [`thermal`] — a lumped-RC floorplan (per-core and per-L2-bank
//!   blocks with lateral coupling), integrated interval-by-interval;
//! * [`integrator`] — walks a simulation's activity trace, closing the
//!   leakage→temperature→leakage loop each interval, and produces the
//!   [`EnergyBreakdown`] the figures are computed from.

#![forbid(unsafe_code)]

pub mod energy;
pub mod integrator;
pub mod leakage;
pub mod params;
pub mod thermal;

pub use energy::EnergyModel;
pub use integrator::{evaluate_energy, EnergyBreakdown, PowerReport};
pub use leakage::LeakageModel;
pub use params::PowerParams;
pub use thermal::ThermalModel;
