//! Temperature-dependent leakage (Liao et al. substitute).
//!
//! Subthreshold leakage grows exponentially with temperature; around a
//! reference point `T₀` the Liao model is well approximated by
//! `P(T) = P(T₀) · e^{β(T−T₀)}` with β ≈ 0.03/°C at the paper's design
//! point. The L2 model also charges the two overheads the paper accounts
//! for (§V): the Gated-Vdd +5 % area overhead on powered lines of any
//! gating-capable cache, and the always-on decay-counter bits for decay
//! techniques.

use crate::params::PowerParams;
use cmpleak_coherence::Technique;

/// Leakage power evaluator for one simulated system.
#[derive(Debug, Clone, Copy)]
pub struct LeakageModel {
    params: PowerParams,
    technique: Technique,
    /// Total L2 line slots across all private caches.
    total_lines: u64,
}

impl LeakageModel {
    /// Build for a system with `total_lines` L2 line slots.
    pub fn new(params: PowerParams, technique: Technique, total_lines: u64) -> Self {
        Self { params, technique, total_lines }
    }

    /// The Liao-style temperature scaling factor.
    #[inline]
    pub fn temp_factor(&self, t_celsius: f64) -> f64 {
        (self.params.leak_temp_beta * (t_celsius - self.params.t0_celsius)).exp()
    }

    /// L2 leakage energy over an interval, in pJ.
    ///
    /// `powered_line_cycles` is the integral of powered lines over the
    /// interval's cycles (from the activity trace); `t_celsius` is the
    /// representative L2 temperature for the interval.
    pub fn l2_interval_pj(&self, powered_line_cycles: u64, t_celsius: f64) -> f64 {
        let per_line = self.params.l2_leak_per_line_pj * self.temp_factor(t_celsius);
        let area = if self.technique.gates_cold_lines() {
            // Gating-capable array: Powell et al.'s +5 % area.
            1.0 + self.params.gated_vdd_area_overhead
        } else {
            1.0
        };
        powered_line_cycles as f64 * per_line * area
    }

    /// Decay-counter leakage over `cycles`, in pJ. Counters exist for
    /// every line and are never gated.
    pub fn decay_counters_interval_pj(&self, cycles: u64, t_celsius: f64) -> f64 {
        if !self.technique.has_decay_logic() {
            return 0.0;
        }
        let per_line = self.params.l2_leak_per_line_pj
            * self.params.decay_counter_leak_fraction
            * self.temp_factor(t_celsius);
        (self.total_lines * cycles) as f64 * per_line
    }

    /// Non-L2 (cores, L1s, bus) leakage over `cycles`, in pJ.
    pub fn other_interval_pj(&self, cycles: u64, t_celsius: f64) -> f64 {
        self.params.other_leak_pj_per_cycle * cycles as f64 * self.temp_factor(t_celsius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(t: Technique) -> LeakageModel {
        LeakageModel::new(PowerParams::default(), t, 65536)
    }

    #[test]
    fn temperature_scaling_is_exponential() {
        let m = model(Technique::Baseline);
        let p = PowerParams::default();
        assert!((m.temp_factor(p.t0_celsius) - 1.0).abs() < 1e-12);
        let hot = m.temp_factor(p.t0_celsius + 23.0);
        assert!((hot - 2.0).abs() < 0.02, "leakage ~doubles every 23C, factor {hot}");
        assert!(m.temp_factor(p.t0_celsius - 10.0) < 1.0);
    }

    #[test]
    fn baseline_pays_no_area_overhead() {
        let base = model(Technique::Baseline);
        let prot = model(Technique::Protocol);
        let plc = 1_000_000u64;
        let t = 45.0;
        let e_base = base.l2_interval_pj(plc, t);
        let e_prot = prot.l2_interval_pj(plc, t);
        assert!((e_prot / e_base - 1.05).abs() < 1e-9, "+5% gated-Vdd area");
    }

    #[test]
    fn counter_leakage_only_for_decay_techniques() {
        let t = 45.0;
        assert_eq!(model(Technique::Baseline).decay_counters_interval_pj(1000, t), 0.0);
        assert_eq!(model(Technique::Protocol).decay_counters_interval_pj(1000, t), 0.0);
        let d = model(Technique::Decay { decay_cycles: 1 << 19 });
        assert!(d.decay_counters_interval_pj(1000, t) > 0.0);
    }

    #[test]
    fn gating_saves_leakage_proportionally() {
        let m = model(Technique::Decay { decay_cycles: 1 << 19 });
        let full = m.l2_interval_pj(1000, 45.0);
        let tenth = m.l2_interval_pj(100, 45.0);
        assert!((full / tenth - 10.0).abs() < 1e-9);
    }
}
