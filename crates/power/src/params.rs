//! Calibration constants.
//!
//! Magnitudes are chosen for a ~70 nm, 4 GHz design point (the paper's
//! era); only *ratios* affect the reproduced figures, and the single
//! load-bearing calibration is [`PowerParams::l2_leak_per_line_pj`]: it
//! sets the L2-leakage share of baseline system energy to ≈10 / 18 / 31 /
//! 47 % at 1 / 2 / 4 / 8 MB total L2 — the shares implied by the paper's
//! reported savings (Decay saves 9 / 17 / 30 / 43 % of *system* energy
//! while eliminating nearly all L2 leakage).

/// All power/thermal calibration constants. Energies in picojoules,
/// powers derived at [`PowerParams::clock_ghz`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Core clock in GHz (converts per-cycle energies to watts for the
    /// thermal model).
    pub clock_ghz: f64,
    /// Dynamic energy per dispatched instruction (Wattch-style EPI for a
    /// 4-wide 21264-class core).
    pub core_epi_pj: f64,
    /// Dynamic energy per L1 access.
    pub l1_access_pj: f64,
    /// Dynamic energy per L2 access for a 1 MB bank; scales with
    /// capacity as `(size/1MB)^0.5` (CACTI-like bitline/wordline growth).
    pub l2_access_1mb_pj: f64,
    /// Bus energy per byte moved (Orion-style).
    pub bus_pj_per_byte: f64,
    /// Bus energy per transaction (arbitration + address phase).
    pub bus_pj_per_txn: f64,
    /// L2 leakage per powered line per cycle at `t0_celsius`.
    ///
    /// 64-byte line ≈ 550 SRAM cells (data + tag + state); at 70 nm-era
    /// subthreshold currents this is ≈ 0.0032 pJ/cycle/line ≡ 52
    /// pJ/cycle/MB ≡ ~210 mW/MB at 4 GHz — the value that lands the
    /// baseline L2-leakage shares above given the measured baseline
    /// activity (≈467 pJ/cycle of non-L2-leakage system power on the
    /// calibration workloads).
    pub l2_leak_per_line_pj: f64,
    /// Non-L2 leakage (cores + L1s + bus) per cycle, whole chip. Fixed:
    /// these structures are never gated in the paper.
    pub other_leak_pj_per_cycle: f64,
    /// Reference temperature for the leakage calibration, °C.
    pub t0_celsius: f64,
    /// Exponential temperature coefficient β of subthreshold leakage,
    /// 1/°C (Liao et al. report 0.02–0.04 for this era; we use 0.03:
    /// leakage doubles every ~23 °C).
    pub leak_temp_beta: f64,
    /// Gated-Vdd area overhead (Powell et al.: +5 %), charged as extra
    /// leakage on every *powered* line of a gating-capable cache.
    pub gated_vdd_area_overhead: f64,
    /// Leakage of the decay counters (2 bits + control per line),
    /// relative to a full line's leakage. Counters are never gated.
    pub decay_counter_leak_fraction: f64,
    /// Dynamic energy per decay-counter event (increment or reset).
    pub decay_counter_event_pj: f64,
    /// Ambient temperature, °C.
    pub ambient_celsius: f64,
    /// Thermal resistance of one floorplan block to ambient, K/W.
    pub block_r_to_ambient: f64,
    /// Lateral thermal resistance between adjacent blocks, K/W.
    pub block_r_lateral: f64,
    /// Thermal capacitance of one block, J/K (τ = RC ≈ 1 ms).
    pub block_capacitance: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        Self {
            clock_ghz: 4.0,
            core_epi_pj: 40.0,
            l1_access_pj: 20.0,
            l2_access_1mb_pj: 100.0,
            bus_pj_per_byte: 1.0,
            bus_pj_per_txn: 50.0,
            l2_leak_per_line_pj: 0.0032,
            other_leak_pj_per_cycle: 50.0,
            t0_celsius: 45.0,
            leak_temp_beta: 0.03,
            gated_vdd_area_overhead: 0.05,
            decay_counter_leak_fraction: 0.006,
            decay_counter_event_pj: 0.05,
            ambient_celsius: 35.0,
            block_r_to_ambient: 60.0,
            block_r_lateral: 15.0,
            block_capacitance: 1.6e-5,
        }
    }
}

impl PowerParams {
    /// Seconds per cycle at the configured clock.
    #[inline]
    pub fn cycle_seconds(&self) -> f64 {
        1e-9 / self.clock_ghz
    }

    /// Convert an energy in pJ spent over `cycles` into average watts.
    #[inline]
    pub fn pj_per_cycles_to_watts(&self, pj: f64, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            (pj * 1e-12) / (cycles as f64 * self.cycle_seconds())
        }
    }

    /// CACTI-style L2 access energy for a bank of `bank_bytes`.
    #[inline]
    pub fn l2_access_pj(&self, bank_bytes: usize) -> f64 {
        let mb = bank_bytes as f64 / (1024.0 * 1024.0);
        self.l2_access_1mb_pj * mb.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_calibration_hits_target_shares() {
        // Non-L2-leakage system power measured from baseline runs of the
        // calibration workloads (chip IPC ≈ 5, store-dominated L2
        // traffic): ≈467 pJ/cycle. Against it, the per-line leakage
        // constant must land the paper-implied L2-leakage shares.
        let p = PowerParams::default();
        let non_l2 = 467.0;
        for (mb, target) in [(1.0, 0.10), (2.0, 0.18), (4.0, 0.31), (8.0, 0.47)] {
            let lines = mb * 16384.0;
            let leak = lines * p.l2_leak_per_line_pj;
            let share = leak / (leak + non_l2);
            assert!((share - target).abs() < 0.05, "{mb} MB: share {share:.3} vs target {target}");
        }
    }

    #[test]
    fn l2_access_energy_scales_sublinearly() {
        let p = PowerParams::default();
        let e1 = p.l2_access_pj(1024 * 1024);
        let e4 = p.l2_access_pj(4 * 1024 * 1024);
        assert!(e4 > e1 && e4 < 4.0 * e1);
        assert!((e4 / e1 - 2.0).abs() < 1e-9, "sqrt scaling");
    }

    #[test]
    fn unit_conversions() {
        let p = PowerParams::default();
        assert!((p.cycle_seconds() - 0.25e-9).abs() < 1e-15);
        // 1000 pJ over 1000 cycles at 4 GHz: 1 nJ / 250 ns = 4 mW.
        let w = p.pj_per_cycles_to_watts(1000.0, 1000);
        assert!((w - 4.0e-3).abs() < 1e-12);
    }
}
