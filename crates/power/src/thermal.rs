//! Lumped-RC thermal model (HotSpot substitute).
//!
//! The floorplan is a ring-less strip: `n` core blocks followed by `n` L2
//! bank blocks. Each block has a thermal capacitance, a resistance to
//! ambient, and lateral resistances to its neighbours (core *i* couples
//! to core *i±1* and to its own L2 bank; bank *i* couples to bank *i±1*).
//! Temperatures are integrated with forward Euler at the activity-trace
//! interval (10K cycles ≈ 2.5 µs, far below the ≈1 ms RC constant, so
//! the integration is stable and smooth).

use crate::params::PowerParams;

/// Lumped thermal network for `n_cores` cores + `n_cores` L2 banks.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    params: PowerParams,
    n_cores: usize,
    /// Block temperatures in °C: `[core0..coreN, bank0..bankN]`.
    temps: Vec<f64>,
}

impl ThermalModel {
    /// All blocks start at ambient.
    pub fn new(params: PowerParams, n_cores: usize) -> Self {
        Self { params, n_cores, temps: vec![params.ambient_celsius; 2 * n_cores] }
    }

    /// Number of cores (and banks).
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Temperature of core block `i`.
    pub fn core_temp(&self, i: usize) -> f64 {
        self.temps[i]
    }

    /// Temperature of L2 bank block `i`.
    pub fn bank_temp(&self, i: usize) -> f64 {
        self.temps[self.n_cores + i]
    }

    /// Mean L2 bank temperature (what the leakage model samples).
    pub fn mean_bank_temp(&self) -> f64 {
        let n = self.n_cores as f64;
        self.temps[self.n_cores..].iter().sum::<f64>() / n
    }

    /// Hottest block on chip.
    pub fn peak_temp(&self) -> f64 {
        self.temps.iter().copied().fold(f64::MIN, f64::max)
    }

    fn neighbours(&self, b: usize) -> Vec<usize> {
        let n = self.n_cores;
        let mut v = Vec::with_capacity(3);
        if b < n {
            // Core block: adjacent cores + own bank.
            if b > 0 {
                v.push(b - 1);
            }
            if b + 1 < n {
                v.push(b + 1);
            }
            v.push(n + b);
        } else {
            // Bank block: adjacent banks + own core.
            let i = b - n;
            if i > 0 {
                v.push(b - 1);
            }
            if i + 1 < n {
                v.push(b + 1);
            }
            v.push(i);
        }
        v
    }

    /// Advance the network by `dt_seconds` with the given block powers in
    /// watts (`[core0..coreN, bank0..bankN]`).
    pub fn step(&mut self, powers_w: &[f64], dt_seconds: f64) {
        assert_eq!(powers_w.len(), self.temps.len());
        let p = &self.params;
        let mut next = self.temps.clone();
        for b in 0..self.temps.len() {
            let t = self.temps[b];
            let mut flow = powers_w[b] - (t - p.ambient_celsius) / p.block_r_to_ambient;
            for nb in self.neighbours(b) {
                flow -= (t - self.temps[nb]) / p.block_r_lateral;
            }
            next[b] = t + flow * dt_seconds / p.block_capacitance;
        }
        self.temps = next;
    }

    /// Steady-state temperatures for constant block powers (fixed-point
    /// solve; used by tests and the `thermal_runaway` example).
    pub fn steady_state(&self, powers_w: &[f64]) -> Vec<f64> {
        let mut sim = self.clone();
        // τ ≈ RC ≈ 1 ms; integrating 100 τ with 10 µs steps converges
        // far below solver tolerance.
        let dt = 1e-5;
        for _ in 0..100_000 {
            sim.step(powers_w, dt);
        }
        sim.temps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThermalModel {
        ThermalModel::new(PowerParams::default(), 4)
    }

    #[test]
    fn starts_at_ambient() {
        let m = model();
        let p = PowerParams::default();
        for i in 0..4 {
            assert_eq!(m.core_temp(i), p.ambient_celsius);
            assert_eq!(m.bank_temp(i), p.ambient_celsius);
        }
    }

    #[test]
    fn power_heats_blocks_toward_steady_state() {
        let m = model();
        let powers = vec![0.5; 8]; // 0.5 W everywhere
        let ss = m.steady_state(&powers);
        let p = PowerParams::default();
        for &t in &ss {
            assert!(t > p.ambient_celsius + 5.0, "blocks must heat, t={t}");
            assert!(t < 120.0, "bounded, t={t}");
        }
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let mut m = model();
        m.step(&[0.0; 8], 1e-3);
        let p = PowerParams::default();
        for &t in &m.temps {
            assert!((t - p.ambient_celsius).abs() < 1e-9);
        }
    }

    #[test]
    fn lateral_coupling_spreads_heat() {
        let m = model();
        // Only core 0 dissipates.
        let mut powers = vec![0.0; 8];
        powers[0] = 1.0;
        let ss = m.steady_state(&powers);
        let p = PowerParams::default();
        assert!(ss[0] > ss[1], "source hotter than neighbour");
        assert!(ss[1] > ss[3], "heat decays with distance");
        assert!(ss[1] > p.ambient_celsius + 1.0, "neighbour warmed laterally");
        assert!(ss[4] > p.ambient_celsius + 1.0, "own bank warmed");
    }

    #[test]
    fn step_is_stable_at_trace_granularity() {
        let mut m = model();
        let powers = vec![2.0; 8];
        // 10K cycles at 4 GHz = 2.5 microseconds per step.
        for _ in 0..100_000 {
            m.step(&powers, 2.5e-6);
        }
        for &t in &m.temps {
            assert!(t.is_finite() && t < 200.0);
        }
    }

    #[test]
    fn hotter_neighbours_raise_a_cold_block() {
        let mut m = model();
        m.temps[1] = 80.0; // preheat core 1
        let before = m.temps[0];
        m.step(&[0.0; 8], 1e-4);
        assert!(m.temps[0] > before, "conduction from the hot neighbour");
    }
}
